/**
 * @file
 * Replacement-policy building blocks.
 *
 * LRU ordering is realised with monotonically increasing use stamps stored
 * per line; victim selection is a scan of the set (associativities here
 * are at most 16, so a scan is both simple and fast). The Section III-D
 * extensions (spLRU, dataLRU) are expressed as a priority class supplied
 * by the caller: the victim is the LRU line within the lowest-priority
 * non-empty class, so dataLRU evicts every ordinary block in a set before
 * any spilled/fused entry.
 *
 * The sparse directory uses 1-bit NRU (Table I), provided by NruState.
 */

#ifndef ZERODEV_CACHE_REPLACEMENT_HH
#define ZERODEV_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <vector>

namespace zerodev
{

class SerialIn;
class SerialOut;

/** Monotonic stamp source backing LRU ordering for one cache array. */
class LruClock
{
  public:
    /** Next stamp; strictly increasing. */
    std::uint64_t tick() { return ++now_; }

    /** Current stamp (stamp of the most recent touch). */
    std::uint64_t now() const { return now_; }

    /** Snapshot restore: resume stamping from @p now. */
    void setNow(std::uint64_t now) { now_ = now; }

  private:
    std::uint64_t now_ = 0;
};

/**
 * One-bit NRU state for a fixed number of ways, as used by the sparse
 * directory slices. A touched way gets its reference bit set; when every
 * bit in the set becomes set, all other bits are cleared. The victim is
 * the lowest-indexed way with a clear bit.
 */
class NruState
{
  public:
    NruState(std::size_t sets, std::uint32_t ways);

    /** Mark @p way of @p set recently used. */
    void touch(std::size_t set, std::uint32_t way);

    /** Way to evict from @p set. */
    std::uint32_t victim(std::size_t set) const;

    /**
     * Way to evict from @p set restricted to ways
     * [@p first, @p first + @p count). Because touch() only clears
     * reference bits when the *whole* set saturates, a partition's range
     * can be fully referenced while the set is not; the first way of the
     * range is the deterministic victim then (partitioned-tag mode).
     */
    std::uint32_t victimIn(std::size_t set, std::uint32_t first,
                           std::uint32_t count) const;

    /** Clear the reference bit (e.g. on invalidation). */
    void reset(std::size_t set, std::uint32_t way);

    /** Snapshot support: the reference bits are replacement state that
     *  must survive checkpoint/restore for bit-identical resume. */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    std::size_t idx(std::size_t set, std::uint32_t way) const
    {
        return set * ways_ + way;
    }

    std::uint32_t ways_;
    std::vector<bool> ref_;
};

} // namespace zerodev

#endif // ZERODEV_CACHE_REPLACEMENT_HH
