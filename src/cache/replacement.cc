#include "cache/replacement.hh"

#include "cache/block_state.hh"
#include "common/log.hh"
#include "common/serialize.hh"

namespace zerodev
{

const char *
toString(LlcLineKind k)
{
    switch (k) {
      case LlcLineKind::Invalid: return "Invalid";
      case LlcLineKind::Data: return "Data";
      case LlcLineKind::SpilledDe: return "SpilledDE";
      case LlcLineKind::FusedDe: return "FusedDE";
    }
    return "?";
}

NruState::NruState(std::size_t sets, std::uint32_t ways)
    : ways_(ways), ref_(sets * ways, false)
{
}

void
NruState::touch(std::size_t set, std::uint32_t way)
{
    ref_[idx(set, way)] = true;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!ref_[idx(set, w)])
            return;
    }
    // Every bit set: clear all except the just-touched way.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (w != way)
            ref_[idx(set, w)] = false;
    }
}

std::uint32_t
NruState::victim(std::size_t set) const
{
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!ref_[idx(set, w)])
            return w;
    }
    panic("NRU set has every reference bit set");
}

std::uint32_t
NruState::victimIn(std::size_t set, std::uint32_t first,
                   std::uint32_t count) const
{
    for (std::uint32_t w = first; w < first + count; ++w) {
        if (!ref_[idx(set, w)])
            return w;
    }
    return first;
}

void
NruState::reset(std::size_t set, std::uint32_t way)
{
    ref_[idx(set, way)] = false;
}

void
NruState::save(SerialOut &out) const
{
    out.u64(ref_.size());
    // Packed 64 bits per word; the trailing word is zero-padded.
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < ref_.size(); ++i) {
        if (ref_[i])
            word |= 1ull << (i % 64);
        if (i % 64 == 63) {
            out.u64(word);
            word = 0;
        }
    }
    if (ref_.size() % 64 != 0)
        out.u64(word);
}

void
NruState::restore(SerialIn &in)
{
    if (!in.check(in.u64() == ref_.size(), "NRU geometry mismatch"))
        return;
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < ref_.size(); ++i) {
        if (i % 64 == 0)
            word = in.u64();
        ref_[i] = (word >> (i % 64)) & 1;
    }
}

} // namespace zerodev
