#include "cache/replacement.hh"

#include "cache/block_state.hh"
#include "common/log.hh"

namespace zerodev
{

const char *
toString(LlcLineKind k)
{
    switch (k) {
      case LlcLineKind::Invalid: return "Invalid";
      case LlcLineKind::Data: return "Data";
      case LlcLineKind::SpilledDe: return "SpilledDE";
      case LlcLineKind::FusedDe: return "FusedDE";
    }
    return "?";
}

NruState::NruState(std::size_t sets, std::uint32_t ways)
    : ways_(ways), ref_(sets * ways, false)
{
}

void
NruState::touch(std::size_t set, std::uint32_t way)
{
    ref_[idx(set, way)] = true;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!ref_[idx(set, w)])
            return;
    }
    // Every bit set: clear all except the just-touched way.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (w != way)
            ref_[idx(set, w)] = false;
    }
}

std::uint32_t
NruState::victim(std::size_t set) const
{
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!ref_[idx(set, w)])
            return w;
    }
    panic("NRU set has every reference bit set");
}

void
NruState::reset(std::size_t set, std::uint32_t way)
{
    ref_[idx(set, way)] = false;
}

} // namespace zerodev
