/**
 * @file
 * Generic set-associative tag/state array used by the private caches, the
 * LLC banks and the sparse directory slices.
 *
 * The array is laid out structure-of-arrays: tags, LRU stamps and payload
 * state live in parallel vectors, and per-set occupancy is a 64-bit mask.
 * The way-scan in find()/victim() therefore walks a contiguous
 * std::uint64_t tag row (one cache line per 8 ways) instead of striding
 * whole line structs, and free/occupied questions are single bit tests.
 *
 * CacheArray is a template over the *payload* type: the per-line state a
 * client keeps beyond tag/LRU/occupancy. A payload type must provide
 * `void reset()` (return the payload to its free-way state); tag, lastUse
 * and the occupied bit are owned by the array itself.
 */

#ifndef ZERODEV_CACHE_CACHE_ARRAY_HH
#define ZERODEV_CACHE_CACHE_ARRAY_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "cache/replacement.hh"
#include "common/bitops.hh"
#include "common/log.hh"
#include "common/serialize.hh"

namespace zerodev
{

/** Location of a line inside a CacheArray. */
struct WayRef
{
    std::size_t set = 0;
    std::uint32_t way = 0;
    bool found = false;
};

template <typename LineT>
class CacheArray
{
  public:
    CacheArray(std::size_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), setMask_(sets - 1),
          pow2Sets_(isPowerOfTwo(sets)),
          tagShift_(pow2Sets_ ? floorLog2(sets) : 0),
          setDiv_(pow2Sets_ ? 1 : sets),
          waysMask_(ways >= 64 ? ~0ull : (1ull << ways) - 1),
          tags_(sets * ways, 0), lastUse_(sets * ways, 0), occ_(sets, 0),
          payload_(sets * ways)
    {
        if (sets == 0 || ways == 0)
            fatal("cache array with zero sets or ways");
        if (ways > 64)
            fatal("cache array associativity exceeds the 64-way "
                  "occupancy-mask limit");
    }

    std::size_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }

    /** Set index of @p addr: the low index bits (same contract as the
     *  free setIndex(), precomputed once per array). */
    std::size_t
    setOfAddr(std::uint64_t addr) const
    {
        return static_cast<std::size_t>(addr & setMask_);
    }

    /** Tag of @p addr: addr / sets, strength-reduced to a shift for the
     *  power-of-two geometries every shipped config uses and to a
     *  multiply-shift reciprocal for odd geometries, so neither path
     *  pays a hardware divide inside the scan loops. */
    std::uint64_t
    tagOfAddr(std::uint64_t addr) const
    {
        return pow2Sets_ ? (addr >> tagShift_) : setDiv_(addr);
    }

    /** Payload of (@p set, @p way). Valid whether or not the way is
     *  occupied; pair with occupiedAt() when that matters. */
    LineT &line(std::size_t set, std::uint32_t way)
    {
        return payload_[set * ways_ + way];
    }

    const LineT &line(std::size_t set, std::uint32_t way) const
    {
        return payload_[set * ways_ + way];
    }

    bool
    occupiedAt(std::size_t set, std::uint32_t way) const
    {
        return (occ_[set] >> way) & 1u;
    }

    std::uint64_t tagAt(std::size_t set, std::uint32_t way) const
    {
        return tags_[set * ways_ + way];
    }

    std::uint64_t lastUseAt(std::size_t set, std::uint32_t way) const
    {
        return lastUse_[set * ways_ + way];
    }

    /** Claim (@p set, @p way) for @p tag. The payload is left untouched
     *  (callers fill it in afterwards) and the LRU stamp is not bumped —
     *  pair with touch(). Occupying an already-occupied way simply
     *  retags it, which the L1 filter arrays rely on. */
    void
    occupy(std::size_t set, std::uint32_t way, std::uint64_t tag)
    {
        occ_[set] |= 1ull << way;
        tags_[set * ways_ + way] = tag;
    }

    /** Return (@p set, @p way) to the free state and reset its payload. */
    void
    release(std::size_t set, std::uint32_t way)
    {
        occ_[set] &= ~(1ull << way);
        payload_[set * ways_ + way].reset();
    }

    /** Locate a payload pointer previously handed out by line()/find()
     *  paths. Lets clients that traffic in payload pointers free a way
     *  without re-deriving its address. */
    WayRef
    refOf(const LineT *l) const
    {
        const std::size_t idx =
            static_cast<std::size_t>(l - payload_.data());
        return {idx / ways_, static_cast<std::uint32_t>(idx % ways_),
                true};
    }

    void
    releaseAt(const LineT *l)
    {
        const WayRef r = refOf(l);
        release(r.set, r.way);
    }

    /** Bit mask of occupied ways in @p set whose tag matches @p tag.
     *  The scan is branch-free over the contiguous tag row, so the
     *  compiler can vectorize the compares. */
    std::uint64_t
    matchMask(std::size_t set, std::uint64_t tag) const
    {
        const std::uint64_t *row = tags_.data() + set * ways_;
        std::uint64_t m = 0;
        for (std::uint32_t w = 0; w < ways_; ++w)
            m |= static_cast<std::uint64_t>(row[w] == tag) << w;
        return m & occ_[set];
    }

    /**
     * Find the line in @p set whose tag matches @p tag and which satisfies
     * @p pred. The LLC can legitimately hold two lines with the same tag
     * (a data block and its spilled directory entry, Section III-C1), so
     * the predicate selects which one the caller wants. Matches are
     * visited in ascending way order, preserving first-match semantics.
     */
    template <typename Pred>
    WayRef
    find(std::size_t set, std::uint64_t tag, Pred &&pred) const
    {
        for (std::uint64_t m = matchMask(set, tag); m != 0; m &= m - 1) {
            const auto w = static_cast<std::uint32_t>(std::countr_zero(m));
            if (pred(line(set, w)))
                return {set, w, true};
        }
        return {set, 0, false};
    }

    /** Find matching @p tag among occupied lines (no extra predicate). */
    WayRef
    find(std::size_t set, std::uint64_t tag) const
    {
        const std::uint64_t m = matchMask(set, tag);
        if (m == 0)
            return {set, 0, false};
        return {set, static_cast<std::uint32_t>(std::countr_zero(m)),
                true};
    }

    /** First free way in @p set, if any. */
    WayRef
    findFree(std::size_t set) const
    {
        const std::uint64_t free = ~occ_[set] & waysMask_;
        if (free == 0)
            return {set, 0, false};
        return {set, static_cast<std::uint32_t>(std::countr_zero(free)),
                true};
    }

    /** Mark @p way of @p set most recently used. */
    void
    touch(std::size_t set, std::uint32_t way)
    {
        lastUse_[set * ways_ + way] = clock_.tick();
    }

    /**
     * Pick a victim way in @p set: a free way if one exists, otherwise the
     * least-recently-used line within the lowest non-empty priority class.
     * @p classify maps a payload to a class; lower classes are evicted
     * first. Plain LRU is classify = [](auto&){ return 0; }.
     * @p exclude_way (if >= 0) is never selected.
     */
    template <typename Classify>
    std::uint32_t
    victim(std::size_t set, Classify &&classify,
           std::int32_t exclude_way = -1) const
    {
        std::uint64_t allowed = waysMask_;
        if (exclude_way >= 0)
            allowed &= ~(1ull << exclude_way);
        const std::uint64_t free = allowed & ~occ_[set];
        if (free != 0)
            return static_cast<std::uint32_t>(std::countr_zero(free));

        std::uint32_t best_way = 0;
        int best_class = std::numeric_limits<int>::max();
        std::uint64_t best_use = std::numeric_limits<std::uint64_t>::max();
        bool found = false;
        const std::uint64_t *use_row = lastUse_.data() + set * ways_;
        for (std::uint64_t m = allowed & occ_[set]; m != 0; m &= m - 1) {
            const auto w = static_cast<std::uint32_t>(std::countr_zero(m));
            const int cls = classify(line(set, w));
            if (cls < best_class ||
                (cls == best_class && use_row[w] < best_use)) {
                best_class = cls;
                best_use = use_row[w];
                best_way = w;
                found = true;
            }
        }
        if (!found)
            panic("victim(): no eligible way in set");
        return best_way;
    }

    /** LRU victim with a single priority class. */
    std::uint32_t
    victimLru(std::size_t set) const
    {
        return victim(set, [](const LineT &) { return 0; });
    }

    /** Count occupied lines satisfying @p pred over the whole array. */
    template <typename Pred>
    std::uint64_t
    count(Pred &&pred) const
    {
        std::uint64_t n = 0;
        for (std::size_t s = 0; s < sets_; ++s) {
            for (std::uint64_t m = occ_[s]; m != 0; m &= m - 1) {
                const auto w =
                    static_cast<std::uint32_t>(std::countr_zero(m));
                if (pred(line(s, w)))
                    ++n;
            }
        }
        return n;
    }

    /** Total occupied lines (popcount over the occupancy masks). */
    std::uint64_t
    occupiedCount() const
    {
        std::uint64_t n = 0;
        for (const std::uint64_t m : occ_)
            n += static_cast<std::uint64_t>(std::popcount(m));
        return n;
    }

    /** Visit every occupied line: fn(set, way, payload). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t s = 0; s < sets_; ++s) {
            for (std::uint64_t m = occ_[s]; m != 0; m &= m - 1) {
                const auto w =
                    static_cast<std::uint32_t>(std::countr_zero(m));
                fn(s, w, line(s, w));
            }
        }
    }

    /**
     * Snapshot the array: geometry guard, LRU clock, then only the
     * occupied lines as (set, way, tag, lastUse, payload) tuples in
     * set-major order. Sparse encoding keeps snapshots of mostly-empty
     * arrays small, and the fixed iteration order makes restore →
     * re-serialize byte-identical. The byte format is unchanged from the
     * array-of-structs layout this class used to have. @p saveLine
     * encodes the fields the payload type adds beyond tag/lastUse.
     */
    template <typename SaveLine>
    void
    save(SerialOut &out, SaveLine &&saveLine) const
    {
        out.u64(sets_);
        out.u32(ways_);
        out.u64(clock_.now());
        out.u64(occupiedCount());
        forEach([&](std::size_t s, std::uint32_t w, const LineT &l) {
            out.u64(s);
            out.u32(w);
            out.u64(tagAt(s, w));
            out.u64(lastUseAt(s, w));
            saveLine(out, l);
        });
    }

    /** Inverse of save(): clears every line, then repopulates the
     *  occupied ones via @p loadLine (which decodes the payload
     *  fields; occupancy is re-established by the array itself). */
    template <typename LoadLine>
    void
    restore(SerialIn &in, LoadLine &&loadLine)
    {
        if (!in.check(in.u64() == sets_, "cache array set count mismatch") ||
            !in.check(in.u32() == ways_, "cache array way count mismatch"))
            return;
        clock_.setNow(in.u64());
        std::fill(tags_.begin(), tags_.end(), 0);
        std::fill(lastUse_.begin(), lastUse_.end(), 0);
        std::fill(occ_.begin(), occ_.end(), 0);
        for (LineT &l : payload_)
            l = LineT{};
        const std::uint64_t n = in.u64();
        for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
            const std::uint64_t s = in.u64();
            const std::uint32_t w = in.u32();
            if (!in.check(s < sets_ && w < ways_,
                          "cache array line out of range"))
                return;
            occupy(s, w, in.u64());
            lastUse_[s * ways_ + w] = in.u64();
            loadLine(in, line(s, w));
        }
    }

  private:
    std::size_t sets_;
    std::uint32_t ways_;
    std::size_t setMask_;
    bool pow2Sets_;
    unsigned tagShift_;
    MulShiftDiv setDiv_;
    std::uint64_t waysMask_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint64_t> occ_;
    std::vector<LineT> payload_;
    LruClock clock_;
};

/** Set index for a non-banked array with power-of-two sets. */
constexpr std::size_t
setIndex(std::uint64_t block_addr, std::size_t sets)
{
    return static_cast<std::size_t>(block_addr & (sets - 1));
}

/** Tag for a non-banked array with power-of-two sets. */
constexpr std::uint64_t
tagOf(std::uint64_t block_addr, std::size_t sets)
{
    return block_addr / sets;
}

/** Home bank of a block in a banked structure. */
constexpr std::uint32_t
bankOf(std::uint64_t block_addr, std::uint32_t banks)
{
    return static_cast<std::uint32_t>(block_addr & (banks - 1));
}

/** Set index within a bank: banks strip the low bits first. */
constexpr std::size_t
bankSetIndex(std::uint64_t block_addr, std::uint32_t banks,
             std::size_t sets_per_bank)
{
    return static_cast<std::size_t>((block_addr >> floorLog2(banks)) &
                                    (sets_per_bank - 1));
}

/** Tag within a banked structure. */
constexpr std::uint64_t
bankTag(std::uint64_t block_addr, std::uint32_t banks,
        std::size_t sets_per_bank)
{
    return (block_addr >> floorLog2(banks)) / sets_per_bank;
}

} // namespace zerodev

#endif // ZERODEV_CACHE_CACHE_ARRAY_HH
