/**
 * @file
 * Generic set-associative tag/state array used by the private caches, the
 * LLC banks and the sparse directory slices.
 *
 * CacheArray is a template over the line type. A line type must provide:
 *   - member `std::uint64_t tag`
 *   - member `std::uint64_t lastUse` (LRU stamp; managed by the array)
 *   - method `bool occupied() const` (false iff the way is free)
 *   - method `void reset()` (return the way to the free state)
 */

#ifndef ZERODEV_CACHE_CACHE_ARRAY_HH
#define ZERODEV_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "cache/replacement.hh"
#include "common/bitops.hh"
#include "common/log.hh"
#include "common/serialize.hh"

namespace zerodev
{

/** Location of a line inside a CacheArray. */
struct WayRef
{
    std::size_t set = 0;
    std::uint32_t way = 0;
    bool found = false;
};

template <typename LineT>
class CacheArray
{
  public:
    CacheArray(std::size_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), setMask_(sets - 1),
          pow2Sets_(isPowerOfTwo(sets)),
          tagShift_(pow2Sets_ ? floorLog2(sets) : 0),
          lines_(sets * ways)
    {
        if (sets == 0 || ways == 0)
            fatal("cache array with zero sets or ways");
    }

    std::size_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }

    /** Set index of @p addr: the low index bits (same contract as the
     *  free setIndex(), precomputed once per array). */
    std::size_t
    setOfAddr(std::uint64_t addr) const
    {
        return static_cast<std::size_t>(addr & setMask_);
    }

    /** Tag of @p addr: addr / sets, strength-reduced to a shift for the
     *  power-of-two geometries every shipped config uses. */
    std::uint64_t
    tagOfAddr(std::uint64_t addr) const
    {
        return pow2Sets_ ? (addr >> tagShift_) : (addr / sets_);
    }

    LineT &line(std::size_t set, std::uint32_t way)
    {
        return lines_[set * ways_ + way];
    }

    const LineT &line(std::size_t set, std::uint32_t way) const
    {
        return lines_[set * ways_ + way];
    }

    /**
     * Find the line in @p set whose tag matches @p tag and which satisfies
     * @p pred. The LLC can legitimately hold two lines with the same tag
     * (a data block and its spilled directory entry, Section III-C1), so
     * the predicate selects which one the caller wants.
     */
    template <typename Pred>
    WayRef
    find(std::size_t set, std::uint64_t tag, Pred &&pred) const
    {
        const LineT *row = rowPtr(set);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const LineT &l = row[w];
            if (l.occupied() && l.tag == tag && pred(l))
                return {set, w, true};
        }
        return {set, 0, false};
    }

    /** Find matching @p tag among occupied lines (no extra predicate).
     *  Spelled out (not delegated through a lambda) so the tag scan —
     *  the hottest loop in the simulator — stays a tight compare loop
     *  over the contiguous set even without inlining. */
    WayRef
    find(std::size_t set, std::uint64_t tag) const
    {
        const LineT *row = rowPtr(set);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const LineT &l = row[w];
            if (l.occupied() && l.tag == tag)
                return {set, w, true};
        }
        return {set, 0, false};
    }

    /** First free way in @p set, if any. */
    WayRef
    findFree(std::size_t set) const
    {
        const LineT *row = rowPtr(set);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (!row[w].occupied())
                return {set, w, true};
        }
        return {set, 0, false};
    }

    /** Mark @p way of @p set most recently used. */
    void
    touch(std::size_t set, std::uint32_t way)
    {
        line(set, way).lastUse = clock_.tick();
    }

    /**
     * Pick a victim way in @p set: a free way if one exists, otherwise the
     * least-recently-used line within the lowest non-empty priority class.
     * @p classify maps a line to a class; lower classes are evicted first.
     * Plain LRU is classify = [](auto&){ return 0; }.
     */
    template <typename Classify>
    std::uint32_t
    victim(std::size_t set, Classify &&classify) const
    {
        std::uint32_t best_way = 0;
        int best_class = std::numeric_limits<int>::max();
        std::uint64_t best_use = std::numeric_limits<std::uint64_t>::max();
        bool found = false;
        const LineT *row = rowPtr(set);
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const LineT &l = row[w];
            if (!l.occupied())
                return w;
            const int cls = classify(l);
            if (cls < best_class ||
                (cls == best_class && l.lastUse < best_use)) {
                best_class = cls;
                best_use = l.lastUse;
                best_way = w;
                found = true;
            }
        }
        if (!found)
            panic("victim(): classify rejected every line");
        return best_way;
    }

    /** LRU victim with a single priority class. */
    std::uint32_t
    victimLru(std::size_t set) const
    {
        return victim(set, [](const LineT &) { return 0; });
    }

    /** Count occupied lines satisfying @p pred over the whole array. */
    template <typename Pred>
    std::uint64_t
    count(Pred &&pred) const
    {
        std::uint64_t n = 0;
        for (const LineT &l : lines_) {
            if (l.occupied() && pred(l))
                ++n;
        }
        return n;
    }

    /** Visit every occupied line: fn(set, way, line). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t s = 0; s < sets_; ++s) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                const LineT &l = line(s, w);
                if (l.occupied())
                    fn(s, w, l);
            }
        }
    }

    /**
     * Snapshot the array: geometry guard, LRU clock, then only the
     * occupied lines as (set, way, tag, lastUse, payload) tuples in
     * set-major order. Sparse encoding keeps snapshots of mostly-empty
     * arrays small, and the fixed iteration order makes restore →
     * re-serialize byte-identical. @p saveLine encodes the fields the
     * line type adds beyond tag/lastUse.
     */
    template <typename SaveLine>
    void
    save(SerialOut &out, SaveLine &&saveLine) const
    {
        out.u64(sets_);
        out.u32(ways_);
        out.u64(clock_.now());
        out.u64(count([](const LineT &) { return true; }));
        forEach([&](std::size_t s, std::uint32_t w, const LineT &l) {
            out.u64(s);
            out.u32(w);
            out.u64(l.tag);
            out.u64(l.lastUse);
            saveLine(out, l);
        });
    }

    /** Inverse of save(): clears every line, then repopulates the
     *  occupied ones via @p loadLine (which decodes the payload fields
     *  and must leave the line occupied). */
    template <typename LoadLine>
    void
    restore(SerialIn &in, LoadLine &&loadLine)
    {
        if (!in.check(in.u64() == sets_, "cache array set count mismatch") ||
            !in.check(in.u32() == ways_, "cache array way count mismatch"))
            return;
        clock_.setNow(in.u64());
        for (LineT &l : lines_)
            l = LineT{};
        const std::uint64_t n = in.u64();
        for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
            const std::uint64_t s = in.u64();
            const std::uint32_t w = in.u32();
            if (!in.check(s < sets_ && w < ways_,
                          "cache array line out of range"))
                return;
            LineT &l = line(s, w);
            l.tag = in.u64();
            l.lastUse = in.u64();
            loadLine(in, l);
        }
    }

  private:
    const LineT *
    rowPtr(std::size_t set) const
    {
        return lines_.data() + set * ways_;
    }

    std::size_t sets_;
    std::uint32_t ways_;
    std::size_t setMask_;
    bool pow2Sets_;
    unsigned tagShift_;
    std::vector<LineT> lines_;
    LruClock clock_;
};

/** Set index for a non-banked array with power-of-two sets. */
constexpr std::size_t
setIndex(std::uint64_t block_addr, std::size_t sets)
{
    return static_cast<std::size_t>(block_addr & (sets - 1));
}

/** Tag for a non-banked array with power-of-two sets. */
constexpr std::uint64_t
tagOf(std::uint64_t block_addr, std::size_t sets)
{
    return block_addr / sets;
}

/** Home bank of a block in a banked structure. */
constexpr std::uint32_t
bankOf(std::uint64_t block_addr, std::uint32_t banks)
{
    return static_cast<std::uint32_t>(block_addr & (banks - 1));
}

/** Set index within a bank: banks strip the low bits first. */
constexpr std::size_t
bankSetIndex(std::uint64_t block_addr, std::uint32_t banks,
             std::size_t sets_per_bank)
{
    return static_cast<std::size_t>((block_addr >> floorLog2(banks)) &
                                    (sets_per_bank - 1));
}

/** Tag within a banked structure. */
constexpr std::uint64_t
bankTag(std::uint64_t block_addr, std::uint32_t banks,
        std::size_t sets_per_bank)
{
    return (block_addr >> floorLog2(banks)) / sets_per_bank;
}

} // namespace zerodev

#endif // ZERODEV_CACHE_CACHE_ARRAY_HH
