/**
 * @file
 * CacheArray is header-only (it is a template); this translation unit
 * exists to host non-template sanity checks exercised by the test suite.
 */

#include "cache/cache_array.hh"

namespace zerodev
{

static_assert(setIndex(0x10, 16) == 0, "set index masks low bits");
static_assert(tagOf(0x13, 16) == 1, "tag strips the index bits");

} // namespace zerodev
