/**
 * @file
 * LLC line kinds and their mapping onto the paper's (V, D) state encoding.
 *
 * The baseline LLC uses three states: invalid (V=0,D=0), clean valid
 * (V=1,D=0) and dirty valid (V=1,D=1). ZeroDEV repurposes the unused
 * (V=0,D=1) encoding for lines that hold directory information: a whole
 * LLC block holding a spilled directory entry, or a data block whose low
 * bits have been overwritten by a fused directory entry (Section III-C).
 */

#ifndef ZERODEV_CACHE_BLOCK_STATE_HH
#define ZERODEV_CACHE_BLOCK_STATE_HH

#include <cstdint>

namespace zerodev
{

/** What an LLC line currently holds. */
enum class LlcLineKind : std::uint8_t
{
    Invalid,   //!< (V=0, D=0)
    Data,      //!< (V=1, D=0/1) ordinary code/data block
    SpilledDe, //!< (V=0, D=1, b0=1) whole block is a directory entry
    FusedDe,   //!< (V=0, D=1, b0=0) data block with an embedded entry
};

/** Valid bit of the (V, D) pair for a given kind. */
constexpr bool
vBit(LlcLineKind k)
{
    return k == LlcLineKind::Data;
}

/** Dirty-state bit of the (V, D) pair; for Data lines it is the real
 *  dirty flag and must be tracked separately. */
constexpr bool
dBitForDirKinds(LlcLineKind k)
{
    return k == LlcLineKind::SpilledDe || k == LlcLineKind::FusedDe;
}

/** True iff the line participates in directory tracking. */
constexpr bool
holdsDirEntry(LlcLineKind k)
{
    return k == LlcLineKind::SpilledDe || k == LlcLineKind::FusedDe;
}

const char *toString(LlcLineKind k);

} // namespace zerodev

#endif // ZERODEV_CACHE_BLOCK_STATE_HH
