#include "interconnect/mesh.hh"

#include <cmath>

#include "common/log.hh"
#include "common/serialize.hh"

namespace zerodev
{

Mesh::Mesh(std::uint32_t tiles, std::uint32_t hop_cycles)
    : tiles_(tiles), hopCycles_(hop_cycles)
{
    if (tiles == 0)
        fatal("mesh with zero tiles");
    cols_ = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(tiles))));
    rows_ = (tiles + cols_ - 1) / cols_;
}

std::uint32_t
Mesh::hops(std::uint32_t from, std::uint32_t to) const
{
    const std::uint32_t fx = from % cols_, fy = from / cols_;
    const std::uint32_t tx = to % cols_, ty = to / cols_;
    const std::uint32_t dx = fx > tx ? fx - tx : tx - fx;
    const std::uint32_t dy = fy > ty ? fy - ty : ty - fy;
    return dx + dy;
}

double
Mesh::averageHops() const
{
    std::uint64_t total = 0;
    for (std::uint32_t a = 0; a < tiles_; ++a)
        for (std::uint32_t b = 0; b < tiles_; ++b)
            total += hops(a, b);
    return static_cast<double>(total) /
           (static_cast<double>(tiles_) * tiles_);
}


void
Mesh::save(SerialOut &out) const
{
    // The totals are derived from the histogram but stay in the stream
    // so the byte format (and old snapshots) remain valid.
    const MeshStats s = stats();
    out.u64(s.traversals);
    out.u64(s.hops);
    hopHist_.save(out);
}

void
Mesh::restore(SerialIn &in)
{
    in.u64(); // traversals: derived, stream-compatible
    in.u64(); // hops: derived, stream-compatible
    hopHist_.restore(in);
}

} // namespace zerodev
