/**
 * @file
 * 2D mesh interconnect model (Table I: 1-cycle routing delay, 1-cycle link
 * latency per hop).
 *
 * The CMP is modelled as a tiled layout: tile i holds core i and LLC bank
 * (i mod banks). Latency between two tiles is the Manhattan hop count
 * times the per-hop cost. Contention inside the mesh is not modelled (the
 * paper's evaluation attributes queueing to the cache interface queues,
 * which our transaction latencies subsume); the mesh contributes latency
 * and distance-weighted traffic.
 */

#ifndef ZERODEV_INTERCONNECT_MESH_HH
#define ZERODEV_INTERCONNECT_MESH_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "interconnect/message.hh"

namespace zerodev
{

/** Accumulated traversal counts of one mesh (observability series). */
struct MeshStats
{
    std::uint64_t traversals = 0; //!< latency-costed tile-to-tile trips
    std::uint64_t hops = 0;       //!< total hops those trips covered
};

/** Geometry and latency of one socket's on-die mesh. */
class Mesh
{
  public:
    /**
     * @param tiles Number of mesh tiles (max of core count, bank count).
     * @param hop_cycles Per-hop cost (routing + link).
     */
    Mesh(std::uint32_t tiles, std::uint32_t hop_cycles);

    std::uint32_t numTiles() const { return tiles_; }
    std::uint32_t columns() const { return cols_; }
    std::uint32_t rows() const { return rows_; }

    /** Manhattan hop count between two tiles. */
    std::uint32_t hops(std::uint32_t from, std::uint32_t to) const;

    /** One-way latency in cycles between two tiles. Every call is one
     *  costed traversal, so the stats count real protocol trips. */
    Cycle
    latency(std::uint32_t from, std::uint32_t to) const
    {
        const std::uint32_t h = hops(from, to);
        hopHist_.record(h);
        return static_cast<Cycle>(h) * hopCycles_;
    }

    /** Traversal totals, derived from the hop histogram (one histogram
     *  update per traversal is the only hot-path accounting). */
    MeshStats
    stats() const
    {
        return {hopHist_.samples(), hopHist_.sum()};
    }

    /** Per-traversal hop-count distribution (feeds the latency-probe
     *  reporting; a traversal's cycles are hops * hopCycles). */
    const Histogram &hopHist() const { return hopHist_; }

    std::uint32_t hopCycles() const { return hopCycles_; }

    void clearStats() { hopHist_.clear(); }

    /** The socket's message arena: every modelled protocol message is
     *  carved from (and returned to) this pool. */
    MessagePool &msgPool() { return pool_; }
    const MessagePool &msgPool() const { return pool_; }

    /** Tile of core @p c (one core per tile). */
    std::uint32_t tileOfCore(CoreId c) const { return c % tiles_; }

    /** Tile of LLC bank @p b (banks striped over tiles). */
    std::uint32_t tileOfBank(std::uint32_t b) const { return b % tiles_; }

    /** Average hop count over all ordered tile pairs (for reporting). */
    double averageHops() const;

    /** Snapshot the traversal counters + hop histogram (the mesh has no
     *  architectural state, but its stats feed resumed run reports). */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    std::uint32_t tiles_;
    std::uint32_t cols_;
    std::uint32_t rows_;
    std::uint32_t hopCycles_;
    /** Largest Manhattan distance in a kMaxCores-tile mesh is well
     *  under 64; exact buckets keep every percentile precise. */
    mutable Histogram hopHist_{64};
    MessagePool pool_;
};

} // namespace zerodev

#endif // ZERODEV_INTERCONNECT_MESH_HH
