/**
 * @file
 * Coherence message catalogue with per-type wire sizes, and the traffic
 * accounting used to reproduce the paper's interconnect-traffic results
 * (total bytes communicated, Figures 2 and 3).
 *
 * Control messages carry an 8-byte header (command, address, ids);
 * data-bearing messages add the 64-byte block. The ZeroDEV-specific
 * messages that carry reconstruction bits or directory entries account for
 * their extra payload explicitly (Sections III-C2, III-C3, III-D).
 */

#ifndef ZERODEV_INTERCONNECT_MESSAGE_HH
#define ZERODEV_INTERCONNECT_MESSAGE_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace zerodev
{

/** Every message class exchanged in the system. */
enum class MsgType : std::uint8_t
{
    // Core requests to the home LLC bank / directory slice.
    GetS,          //!< read request
    GetX,          //!< read-exclusive request
    Upgrade,       //!< S -> M permission request (no data needed)

    // Responses.
    DataResp,      //!< data block response (home or owner to requester)
    DataRespCorrupted, //!< corrupted-memory-block response (carries a DE)
    AckResp,       //!< dataless response (upgrade grant, inv-ack count)

    // Forwards and invalidations.
    FwdGetS,       //!< forwarded read to the owner/sharer core or socket
    FwdGetX,       //!< forwarded read-exclusive (invalidate at the target)
    Inv,           //!< invalidation to a sharer
    InvAck,        //!< invalidation acknowledgment
    BusyClear,     //!< owner -> home, clears the pending directory state
    BusyClearBits, //!< BusyClear carrying block-reconstruction bits (FPSS)

    // Evictions from the private hierarchy.
    PutS,          //!< clean eviction notice of a shared block
    PutE,          //!< clean eviction notice of an exclusively owned block
    PutEBits,      //!< PutE carrying 3+log2(N) reconstruction bits (FPSS)
    PutM,          //!< dirty writeback (carries data)
    EvictAck,      //!< home acks an eviction (releases eviction buffer)
    EvictAckFetchBits, //!< FuseAll: ack that retrieves 4+N low bits

    // ZeroDEV directory-entry movement (Section III-D).
    WbDe,          //!< directory entry writeback from LLC to home memory
    GetDe,         //!< directory entry read request (core-eviction flow)
    DeResp,        //!< corrupted block returned for a GetDe
    PutDe,         //!< updated directory entry returned to home memory
    DenfNack,      //!< "directory entry not found" NACK from socket F
    FwdWithDe,     //!< re-forwarded request carrying the directory entry

    // DRAM interface (counted as traffic only between socket and memory).
    MemRead,
    MemReadResp,
    MemWrite,

    NumTypes,
};

const char *toString(MsgType t);

/** Wire size of one message of type @p t in bytes. @p cores sizes the
 *  sharer-vector payloads carried by the directory-entry messages. */
std::uint32_t msgBytes(MsgType t, std::uint32_t cores);

/** Accumulates message counts and byte totals, optionally hop-weighted. */
class TrafficStats
{
  public:
    explicit TrafficStats(std::uint32_t cores);

    /** Record one message of type @p t. */
    void record(MsgType t);

    /** Total bytes communicated. */
    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Total message count. */
    std::uint64_t totalMessages() const { return totalMsgs_; }

    /** Bytes for one message type. */
    std::uint64_t bytesOf(MsgType t) const
    {
        return bytes_[static_cast<std::size_t>(t)];
    }

    /** Message count for one type. */
    std::uint64_t countOf(MsgType t) const
    {
        return counts_[static_cast<std::size_t>(t)];
    }

    /** Reset all accumulators. */
    void clear();

    /** Per-type dump. */
    StatDump report() const;

    /** Snapshot the per-type counters and byte totals. */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    static constexpr std::size_t kN =
        static_cast<std::size_t>(MsgType::NumTypes);

    std::uint32_t cores_;
    std::array<std::uint64_t, kN> counts_{};
    std::array<std::uint64_t, kN> bytes_{};
    std::uint64_t totalBytes_ = 0;
    std::uint64_t totalMsgs_ = 0;
};

} // namespace zerodev

#endif // ZERODEV_INTERCONNECT_MESSAGE_HH
