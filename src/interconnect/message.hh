/**
 * @file
 * Coherence message catalogue with per-type wire sizes, and the traffic
 * accounting used to reproduce the paper's interconnect-traffic results
 * (total bytes communicated, Figures 2 and 3).
 *
 * Control messages carry an 8-byte header (command, address, ids);
 * data-bearing messages add the 64-byte block. The ZeroDEV-specific
 * messages that carry reconstruction bits or directory entries account for
 * their extra payload explicitly (Sections III-C2, III-C3, III-D).
 */

#ifndef ZERODEV_INTERCONNECT_MESSAGE_HH
#define ZERODEV_INTERCONNECT_MESSAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace zerodev
{

/** Every message class exchanged in the system. */
enum class MsgType : std::uint8_t
{
    // Core requests to the home LLC bank / directory slice.
    GetS,          //!< read request
    GetX,          //!< read-exclusive request
    Upgrade,       //!< S -> M permission request (no data needed)

    // Responses.
    DataResp,      //!< data block response (home or owner to requester)
    DataRespCorrupted, //!< corrupted-memory-block response (carries a DE)
    AckResp,       //!< dataless response (upgrade grant, inv-ack count)

    // Forwards and invalidations.
    FwdGetS,       //!< forwarded read to the owner/sharer core or socket
    FwdGetX,       //!< forwarded read-exclusive (invalidate at the target)
    Inv,           //!< invalidation to a sharer
    InvAck,        //!< invalidation acknowledgment
    BusyClear,     //!< owner -> home, clears the pending directory state
    BusyClearBits, //!< BusyClear carrying block-reconstruction bits (FPSS)

    // Evictions from the private hierarchy.
    PutS,          //!< clean eviction notice of a shared block
    PutE,          //!< clean eviction notice of an exclusively owned block
    PutEBits,      //!< PutE carrying 3+log2(N) reconstruction bits (FPSS)
    PutM,          //!< dirty writeback (carries data)
    EvictAck,      //!< home acks an eviction (releases eviction buffer)
    EvictAckFetchBits, //!< FuseAll: ack that retrieves 4+N low bits

    // ZeroDEV directory-entry movement (Section III-D).
    WbDe,          //!< directory entry writeback from LLC to home memory
    GetDe,         //!< directory entry read request (core-eviction flow)
    DeResp,        //!< corrupted block returned for a GetDe
    PutDe,         //!< updated directory entry returned to home memory
    DenfNack,      //!< "directory entry not found" NACK from socket F
    FwdWithDe,     //!< re-forwarded request carrying the directory entry

    // DRAM interface (counted as traffic only between socket and memory).
    MemRead,
    MemReadResp,
    MemWrite,

    NumTypes,
};

const char *toString(MsgType t);

/** Wire size of one message of type @p t in bytes. @p cores sizes the
 *  sharer-vector payloads carried by the directory-entry messages. */
std::uint32_t msgBytes(MsgType t, std::uint32_t cores);

/** One in-flight interconnect message. Pool-recycled: the protocol paths
 *  stamp it, account it, and hand it straight back, so the fields only
 *  need to live for the duration of one modelled transfer. */
struct Message
{
    MsgType type = MsgType::GetS;
    SocketId src = 0;    //!< socket whose interconnect carries it
    BlockAddr block = 0; //!< block the message concerns
    Message *next = nullptr; //!< freelist link while pooled
};

/**
 * Freelist arena of Message objects. Chunked backing storage keeps every
 * steady-state acquire/release to a pointer pop/push with zero heap
 * traffic; memory is only allocated when the high-water mark of
 * concurrently live messages grows (bounded by the deepest protocol
 * flow, a handful of messages).
 *
 * With ZERODEV_ASSERTS the pool counts outstanding messages so the
 * invariant sweep can prove the protocol paths leak none (every access
 * returns with the pool drained back to empty).
 */
class MessagePool
{
  public:
    MessagePool() = default;
    MessagePool(const MessagePool &) = delete;
    MessagePool &operator=(const MessagePool &) = delete;

    Message *
    acquire()
    {
        if (free_ == nullptr)
            grow();
        Message *m = free_;
        free_ = m->next;
        m->next = nullptr;
#if ZERODEV_ASSERTS
        ++outstanding_;
#endif
        return m;
    }

    void
    release(Message *m)
    {
        m->next = free_;
        free_ = m;
#if ZERODEV_ASSERTS
        --outstanding_;
#endif
    }

    /** Messages acquired but not yet released. Only maintained under
     *  ZERODEV_ASSERTS; reads 0 otherwise (the invariant sweep then
     *  checks nothing). */
    std::uint64_t
    outstanding() const
    {
#if ZERODEV_ASSERTS
        return outstanding_;
#else
        return 0;
#endif
    }

    /** Total messages the arena has ever materialized (capacity). */
    std::uint64_t allocated() const { return chunks_.size() * kChunk; }

  private:
    static constexpr std::size_t kChunk = 64;

    void
    grow()
    {
        chunks_.push_back(std::make_unique<Message[]>(kChunk));
        Message *chunk = chunks_.back().get();
        for (std::size_t i = 0; i < kChunk; ++i) {
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
    }

    std::vector<std::unique_ptr<Message[]>> chunks_;
    Message *free_ = nullptr;
#if ZERODEV_ASSERTS
    std::uint64_t outstanding_ = 0;
#endif
};

/** Accumulates message counts and byte totals, optionally hop-weighted. */
class TrafficStats
{
  public:
    explicit TrafficStats(std::uint32_t cores);

    /** Record one message of type @p t. The wire size comes from the
     *  constructor-computed per-type byte table; totals are derived
     *  lazily, so the hot path is two array adds. */
    void
    record(MsgType t)
    {
        const auto i = static_cast<std::size_t>(t);
        counts_[i] += 1;
        bytes_[i] += byteTable_[i];
    }

    /** Total bytes communicated (summed over the per-type table). */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t n = 0;
        for (const std::uint64_t b : bytes_)
            n += b;
        return n;
    }

    /** Total message count (summed over the per-type table). */
    std::uint64_t
    totalMessages() const
    {
        std::uint64_t n = 0;
        for (const std::uint64_t c : counts_)
            n += c;
        return n;
    }

    /** Bytes for one message type. */
    std::uint64_t bytesOf(MsgType t) const
    {
        return bytes_[static_cast<std::size_t>(t)];
    }

    /** Message count for one type. */
    std::uint64_t countOf(MsgType t) const
    {
        return counts_[static_cast<std::size_t>(t)];
    }

    /** Reset all accumulators. */
    void clear();

    /** Per-type dump. */
    StatDump report() const;

    /** Snapshot the per-type counters and byte totals. */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    static constexpr std::size_t kN =
        static_cast<std::size_t>(MsgType::NumTypes);

    std::uint32_t cores_;
    std::array<std::uint32_t, kN> byteTable_{}; //!< msgBytes per type
    std::array<std::uint64_t, kN> counts_{};
    std::array<std::uint64_t, kN> bytes_{};
};

} // namespace zerodev

#endif // ZERODEV_INTERCONNECT_MESSAGE_HH
