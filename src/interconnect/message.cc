#include "interconnect/message.hh"

#include "common/bitops.hh"
#include "common/serialize.hh"

namespace zerodev
{

const char *
toString(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::Upgrade: return "Upgrade";
      case MsgType::DataResp: return "DataResp";
      case MsgType::DataRespCorrupted: return "DataRespCorrupted";
      case MsgType::AckResp: return "AckResp";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetX: return "FwdGetX";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::BusyClear: return "BusyClear";
      case MsgType::BusyClearBits: return "BusyClearBits";
      case MsgType::PutS: return "PutS";
      case MsgType::PutE: return "PutE";
      case MsgType::PutEBits: return "PutEBits";
      case MsgType::PutM: return "PutM";
      case MsgType::EvictAck: return "EvictAck";
      case MsgType::EvictAckFetchBits: return "EvictAckFetchBits";
      case MsgType::WbDe: return "WbDe";
      case MsgType::GetDe: return "GetDe";
      case MsgType::DeResp: return "DeResp";
      case MsgType::PutDe: return "PutDe";
      case MsgType::DenfNack: return "DenfNack";
      case MsgType::FwdWithDe: return "FwdWithDe";
      case MsgType::MemRead: return "MemRead";
      case MsgType::MemReadResp: return "MemReadResp";
      case MsgType::MemWrite: return "MemWrite";
      case MsgType::NumTypes: break;
    }
    return "?";
}

std::uint32_t
msgBytes(MsgType t, std::uint32_t cores)
{
    constexpr std::uint32_t kHeader = 8;   // command + address + ids
    constexpr std::uint32_t kBlock = 64;   // cache block payload

    // Size in bytes of a full directory entry payload: N sharer bits plus
    // state/owner bits, rounded up (Section III-D: N+1 bits per entry).
    const std::uint32_t de_bytes = (cores + 1 + 7) / 8;
    // Reconstruction bits carried by E-state eviction notices and
    // busy-clear messages under FPSS: 3 + ceil(log2 N) bits (Sec. III-C2).
    const std::uint32_t recon_bytes = (3 + ceilLog2(cores) + 7) / 8;
    // FuseAll retrieves the least significant 4 + N bits (Sec. III-C3).
    const std::uint32_t fuseall_bits_bytes = (4 + cores + 7) / 8;

    switch (t) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::Upgrade:
      case MsgType::AckResp:
      case MsgType::FwdGetS:
      case MsgType::FwdGetX:
      case MsgType::Inv:
      case MsgType::InvAck:
      case MsgType::BusyClear:
      case MsgType::PutS:
      case MsgType::PutE:
      case MsgType::EvictAck:
      case MsgType::GetDe:
      case MsgType::DenfNack:
      case MsgType::MemRead:
        return kHeader;
      case MsgType::BusyClearBits:
      case MsgType::PutEBits:
        return kHeader + recon_bytes;
      case MsgType::EvictAckFetchBits:
        return kHeader + fuseall_bits_bytes;
      case MsgType::PutDe:
      case MsgType::FwdWithDe:
        return kHeader + de_bytes;
      case MsgType::DataResp:
      case MsgType::DataRespCorrupted:
      case MsgType::PutM:
      case MsgType::WbDe:
      case MsgType::DeResp:
      case MsgType::MemReadResp:
      case MsgType::MemWrite:
        return kHeader + kBlock;
      case MsgType::NumTypes:
        break;
    }
    return kHeader;
}

TrafficStats::TrafficStats(std::uint32_t cores) : cores_(cores)
{
    for (std::size_t i = 0; i < kN; ++i)
        byteTable_[i] = msgBytes(static_cast<MsgType>(i), cores_);
}

void
TrafficStats::clear()
{
    counts_.fill(0);
    bytes_.fill(0);
}

StatDump
TrafficStats::report() const
{
    StatDump d;
    d.add("total_bytes", static_cast<double>(totalBytes()));
    d.add("total_messages", static_cast<double>(totalMessages()));
    for (std::size_t i = 0; i < kN; ++i) {
        if (counts_[i] == 0)
            continue;
        const auto t = static_cast<MsgType>(i);
        d.add(std::string("count.") + toString(t),
              static_cast<double>(counts_[i]));
        d.add(std::string("bytes.") + toString(t),
              static_cast<double>(bytes_[i]));
    }
    return d;
}


void
TrafficStats::save(SerialOut &out) const
{
    out.u64(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        out.u64(counts_[i]);
        out.u64(bytes_[i]);
    }
    // Totals are derived from the per-type table but stay in the stream
    // so the byte format (and old snapshots) remain valid.
    out.u64(totalBytes());
    out.u64(totalMessages());
}

void
TrafficStats::restore(SerialIn &in)
{
    if (!in.check(in.u64() == kN, "traffic message-type count mismatch"))
        return;
    for (std::size_t i = 0; i < kN; ++i) {
        counts_[i] = in.u64();
        bytes_[i] = in.u64();
    }
    in.u64(); // total bytes: derived, stream-compatible
    in.u64(); // total messages: derived, stream-compatible
}

} // namespace zerodev
