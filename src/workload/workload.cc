#include "workload/workload.hh"

#include "common/log.hh"

namespace zerodev
{

std::uint32_t
appIdOf(const std::string &name)
{
    // FNV-1a, folded to keep the code-region window index small.
    std::uint32_t h = 2166136261u;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 16777619u;
    }
    return h % 4096;
}

Workload
Workload::multiThreaded(const AppProfile &profile, std::uint32_t threads,
                        std::uint64_t seed)
{
    Workload w;
    w.name_ = profile.name;
    w.multiProgrammed_ = false;
    for (std::uint32_t t = 0; t < threads; ++t) {
        w.threads_.push_back({profile, 0, t, threads,
                              appIdOf(profile.name), seed});
    }
    return w;
}

Workload
Workload::rate(const AppProfile &profile, std::uint32_t copies,
               std::uint64_t seed)
{
    Workload w;
    w.name_ = profile.name;
    w.multiProgrammed_ = true;
    for (std::uint32_t i = 0; i < copies; ++i) {
        // Separate instances: private data and process-shared regions
        // are distinct, only the code image is shared (same binary).
        w.threads_.push_back({profile, i, 0, 1, appIdOf(profile.name),
                              seed + i});
    }
    return w;
}

Workload
Workload::heterogeneous(const std::string &name,
                        const std::vector<AppProfile> &profiles,
                        std::uint64_t seed)
{
    Workload w;
    w.name_ = name;
    w.multiProgrammed_ = true;
    std::uint32_t i = 0;
    for (const AppProfile &p : profiles) {
        w.threads_.push_back({p, i, 0, 1, appIdOf(p.name), seed + i});
        ++i;
    }
    return w;
}

ThreadGenerator
Workload::makeGenerator(std::uint32_t i) const
{
    if (i >= threads_.size())
        fatal("workload %s has no thread %u", name_.c_str(), i);
    const ThreadSpec &t = threads_[i];
    const RegionLayout layout(t.instance, t.thread, t.appId);
    return ThreadGenerator(t.profile, layout, t.thread, t.threads, t.seed);
}

std::vector<Workload>
Workload::hetMixes(std::uint32_t count, std::uint32_t width,
                   std::uint64_t seed)
{
    const std::vector<AppProfile> apps = cpu2017Profiles();
    std::vector<Workload> mixes;
    mixes.reserve(count);
    for (std::uint32_t m = 0; m < count; ++m) {
        std::vector<AppProfile> chosen;
        chosen.reserve(width);
        for (std::uint32_t j = 0; j < width; ++j) {
            // Consecutive windows modulo the suite size give each
            // application equal representation across the mixes.
            chosen.push_back(apps[(m * width + j) % apps.size()]);
        }
        mixes.push_back(heterogeneous("W" + std::to_string(m + 1), chosen,
                                      seed + m));
    }
    return mixes;
}

} // namespace zerodev
