/**
 * @file
 * Synthetic memory-access stream generation. A ThreadGenerator produces
 * the per-thread access stream of an application profile: a mixture of
 * private (reuse-skewed), shared read-only, shared read-write (migratory
 * or read-mostly), streaming and instruction-fetch regions, with a
 * configurable non-memory instruction gap between accesses.
 *
 * These streams substitute for the paper's PARSEC / SPLASH2X / SPEC OMP /
 * FFTW / SPEC CPU 2017 / server binaries (see DESIGN.md section 3): the
 * mixture parameters are calibrated per application to the sharing and
 * footprint statistics the paper itself reports.
 */

#ifndef ZERODEV_WORKLOAD_ACCESS_PATTERN_HH
#define ZERODEV_WORKLOAD_ACCESS_PATTERN_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace zerodev
{

/** One generated memory operation. */
struct MemAccess
{
    AccessType type = AccessType::Load;
    BlockAddr block = 0;
    /** Non-memory instructions executed before this access (1 IPC). */
    std::uint32_t gap = 0;
};

/** Mixture parameters of one application profile (block granularity). */
struct AppProfile
{
    std::string name;
    std::string suite;

    // Region footprints, in 64-byte blocks.
    std::uint64_t privateBlocks = 4096;  //!< per-thread private data
    std::uint64_t sharedRoBlocks = 0;    //!< shared read-only data
    std::uint64_t sharedRwBlocks = 0;    //!< shared read-write data
    std::uint64_t codeBlocks = 256;      //!< instruction footprint
    std::uint64_t streamBlocks = 0;      //!< per-thread streaming data

    // Mixture probabilities (private = remainder).
    double pIfetch = 0.02;   //!< instruction fetch misses reaching L1I
    double pSharedRo = 0.0;
    double pSharedRw = 0.0;
    double pStream = 0.0;

    double storeFrac = 0.3;     //!< stores among private data accesses
    double rwStoreFrac = 0.5;   //!< stores among shared-RW accesses

    /**
     * Private-region locality: a fraction @c hotFrac of private accesses
     * goes to a reuse-skewed hot subset of @c hotBlocks blocks; the rest
     * sweep the full private footprint uniformly. The hot-subset size
     * relative to the L2/LLC and the cold fraction directly set the
     * application's miss profile (cache-friendly vs capacity-bound).
     */
    double hotFrac = 0.95;
    std::uint64_t hotBlocks = 1024;

    /** Spatial run length of the cold sweep: cold accesses touch this
     *  many consecutive blocks before jumping (page-sized bursts, the
     *  locality that region-grain directories exploit). */
    std::uint32_t coldRunBlocks = 16;

    double zipfSkew = 0.4;      //!< reuse skew within the hot subset
    double roZipfSkew = 0.5;    //!< reuse skew of shared/code regions

    /** Consecutive accesses per streaming block (spatial locality of a
     *  sequential sweep: ~8 word accesses per 64-byte block). */
    std::uint32_t streamRepeat = 8;

    /**
     * Migratory sharing: the shared-RW region is partitioned into
     * per-epoch chunks that rotate across threads (producer/consumer
     * style); 0 selects uniform read-mostly sharing.
     */
    double migratory = 0.0;
    std::uint64_t epochLength = 4096; //!< accesses per migration epoch

    std::uint32_t gapMean = 4; //!< mean non-memory instructions per access
};

/** Address-space layout: distinct, non-overlapping region bases. */
struct RegionLayout
{
    /**
     * @param instance process id (distinct data for multi-programming)
     * @param thread thread id within the process
     * @param app_id stable id of the application (code sharing across
     *        rate-mode copies of the same binary)
     */
    RegionLayout(std::uint32_t instance, std::uint32_t thread,
                 std::uint32_t app_id);

    BlockAddr privateBase;
    BlockAddr sharedBase;  //!< per process (shared among its threads)
    BlockAddr codeBase;    //!< per application binary
    BlockAddr streamBase;
};

/** Per-thread stream generator. */
class ThreadGenerator
{
  public:
    /**
     * @param profile the application profile
     * @param layout address-space layout of this thread
     * @param thread thread id within the application (migratory rotation)
     * @param threads total threads of the application
     * @param seed deterministic stream seed
     */
    ThreadGenerator(const AppProfile &profile, const RegionLayout &layout,
                    std::uint32_t thread, std::uint32_t threads,
                    std::uint64_t seed);

    /** Produce the next access of this thread. */
    MemAccess next();

    /** Accesses generated so far. */
    std::uint64_t generated() const { return count_; }

    /** Snapshot the mutable stream state (engine words + positions);
     *  the profile/layout are reconstructed from the workload config. */
    void
    save(SerialOut &out) const
    {
        for (std::uint64_t w : rng_.state())
            out.u64(w);
        out.u64(count_);
        out.u64(streamPos_);
        out.u64(coldPos_);
        out.u32(coldRemaining_);
    }

    void
    restore(SerialIn &in)
    {
        std::array<std::uint64_t, 4> s;
        for (std::uint64_t &w : s)
            w = in.u64();
        rng_.setState(s);
        count_ = in.u64();
        streamPos_ = in.u64();
        coldPos_ = in.u64();
        coldRemaining_ = in.u32();
    }

  private:
    BlockAddr pickPrivate();
    BlockAddr pickSharedRo();
    BlockAddr pickSharedRw();
    BlockAddr pickStream();
    BlockAddr pickCode();

    AppProfile profile_;
    RegionLayout layout_;
    std::uint32_t thread_;
    std::uint32_t threads_;
    Rng rng_;
    std::uint64_t count_ = 0;
    std::uint64_t streamPos_ = 0;
    std::uint64_t coldPos_ = 0;
    std::uint32_t coldRemaining_ = 0;
};

} // namespace zerodev

#endif // ZERODEV_WORKLOAD_ACCESS_PATTERN_HH
