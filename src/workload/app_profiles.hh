/**
 * @file
 * Per-application synthetic profiles standing in for the paper's Table II
 * workloads. Parameters are calibrated to the qualitative statistics the
 * paper reports: the shared-entry fractions per suite (PARSEC ~10%,
 * SPLASH2X ~19%, SPEC OMP ~0.5%, FFTW ~0, CPU 2017 rate ~9% from code
 * sharing), the directory-footprint outliers (xalancbmk), the LLC
 * capacity-sensitive applications (vips, lu_ncb, 330.art, gcc.ppO2) and
 * the forwarding-heavy ones (freqmine).
 */

#ifndef ZERODEV_WORKLOAD_APP_PROFILES_HH
#define ZERODEV_WORKLOAD_APP_PROFILES_HH

#include <string>
#include <vector>

#include "workload/access_pattern.hh"

namespace zerodev
{

/** All profiles of one suite, in the paper's figure order. */
std::vector<AppProfile> parsecProfiles();
std::vector<AppProfile> splash2xProfiles();
std::vector<AppProfile> specOmpProfiles();
std::vector<AppProfile> fftwProfiles();
std::vector<AppProfile> cpu2017Profiles();
std::vector<AppProfile> serverProfiles();

/** Look up a profile by name across all suites; fatal() if unknown. */
AppProfile profileByName(const std::string &name);

/** Suite names in the paper's order. */
std::vector<std::string> suiteNames();

/** Profiles of a suite by name ("parsec", "splash2x", "specomp",
 *  "fftw", "cpu2017", "server"). */
std::vector<AppProfile> suiteProfiles(const std::string &suite);

} // namespace zerodev

#endif // ZERODEV_WORKLOAD_APP_PROFILES_HH
