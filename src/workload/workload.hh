/**
 * @file
 * A Workload binds application profiles to the cores of a simulated
 * system: multi-threaded (one application, N threads sharing its data
 * regions), homogeneous multi-programmed ("rate": N copies of one
 * application with private data but shared code), and heterogeneous
 * multi-programmed mixes (the W1..W36 workloads of Figure 23).
 */

#ifndef ZERODEV_WORKLOAD_WORKLOAD_HH
#define ZERODEV_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/access_pattern.hh"
#include "workload/app_profiles.hh"

namespace zerodev
{

class Workload
{
  public:
    /** One application, @p threads threads sharing its data regions. */
    static Workload multiThreaded(const AppProfile &profile,
                                  std::uint32_t threads,
                                  std::uint64_t seed = 1);

    /** Homogeneous multi-programming: @p copies single-thread instances
     *  with private data but a shared code image (rate mode). */
    static Workload rate(const AppProfile &profile, std::uint32_t copies,
                         std::uint64_t seed = 1);

    /** Heterogeneous multi-programming: one single-thread instance per
     *  profile, in core order. */
    static Workload heterogeneous(const std::string &name,
                                  const std::vector<AppProfile> &profiles,
                                  std::uint64_t seed = 1);

    const std::string &name() const { return name_; }
    std::uint32_t threadCount() const
    {
        return static_cast<std::uint32_t>(threads_.size());
    }

    /** Whether per-thread progress should be weighted independently
     *  (multi-programmed) or jointly (multi-threaded). */
    bool multiProgrammed() const { return multiProgrammed_; }

    /** Profile driving core @p i. */
    const AppProfile &profileOf(std::uint32_t i) const
    {
        return threads_[i].profile;
    }

    /** Instantiate the generator of core @p i. */
    ThreadGenerator makeGenerator(std::uint32_t i) const;

    /** The heterogeneous W1..W36 mixes of Figure 23: @p width apps per
     *  mix with equal representation of every application. */
    static std::vector<Workload> hetMixes(std::uint32_t count,
                                          std::uint32_t width,
                                          std::uint64_t seed = 1);

  private:
    struct ThreadSpec
    {
        AppProfile profile;
        std::uint32_t instance;
        std::uint32_t thread;
        std::uint32_t threads;
        std::uint32_t appId;
        std::uint64_t seed;
    };

    std::string name_;
    bool multiProgrammed_ = false;
    std::vector<ThreadSpec> threads_;
};

/** Stable application id used for cross-process code sharing. */
std::uint32_t appIdOf(const std::string &name);

} // namespace zerodev

#endif // ZERODEV_WORKLOAD_WORKLOAD_HH
