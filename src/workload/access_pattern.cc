#include "workload/access_pattern.hh"

#include "common/log.hh"

namespace zerodev
{

namespace
{
// Region strides chosen so that no two regions can ever overlap: each
// region gets a 2^24-block (1 GB) window.
constexpr BlockAddr kWindow = 1ull << 24;
constexpr BlockAddr kPrivateBase = 0x1ull << 32;
constexpr BlockAddr kSharedBase = 0x9ull << 32;
constexpr BlockAddr kCodeBase = 0xDull << 32;
constexpr BlockAddr kStreamBase = 0x11ull << 32;
} // namespace

namespace
{

/** splitmix64 finaliser: decorrelates region bases. */
BlockAddr
scramble(BlockAddr x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Pseudo-random sub-window offset so that no two regions start at the
 *  same set-index alignment (aligned bases would pile every region's
 *  hot prefix onto the same cache and directory sets). */
BlockAddr
jitter(BlockAddr key, BlockAddr room)
{
    return scramble(key) % room;
}

} // namespace

RegionLayout::RegionLayout(std::uint32_t instance, std::uint32_t thread,
                           std::uint32_t app_id)
{
    // Each (instance, thread) pair gets a 2^20-block (64 MB) window for
    // its private and streaming data; instances get 16 M-block windows
    // for process-shared data; application binaries get their own code
    // windows (shared across rate-mode copies of the same binary). The
    // start of each region is jittered inside the first half of its
    // window (footprints fit in the second half), so set indices are
    // decorrelated across regions and instances.
    const BlockAddr slot = static_cast<BlockAddr>(instance) * 160 + thread;
    privateBase = kPrivateBase + slot * (1ull << 20) +
                  jitter(slot * 2 + 1, 1ull << 19);
    sharedBase = kSharedBase + static_cast<BlockAddr>(instance) * kWindow +
                 jitter(instance * 2 + 0x10001, kWindow / 4);
    codeBase = kCodeBase + static_cast<BlockAddr>(app_id) * kWindow +
               jitter(app_id * 2 + 0x20001, kWindow / 2);
    streamBase = kStreamBase + slot * (1ull << 20) +
                 jitter(slot * 2 + 0x30001, 1ull << 19);
}

ThreadGenerator::ThreadGenerator(const AppProfile &profile,
                                 const RegionLayout &layout,
                                 std::uint32_t thread,
                                 std::uint32_t threads, std::uint64_t seed)
    : profile_(profile),
      layout_(layout),
      thread_(thread),
      threads_(threads == 0 ? 1 : threads),
      rng_(seed * 0x9e3779b97f4a7c15ull + thread + 1)
{
}

BlockAddr
ThreadGenerator::pickPrivate()
{
    const std::uint64_t n =
        std::max<std::uint64_t>(profile_.privateBlocks, 1);
    const std::uint64_t hot =
        std::min<std::uint64_t>(std::max<std::uint64_t>(
                                    profile_.hotBlocks, 1), n);
    if (rng_.chance(profile_.hotFrac))
        return layout_.privateBase + rng_.zipfish(hot, profile_.zipfSkew);
    // Cold sweep over the full private footprint, in run-aligned
    // spatial bursts (page-style locality).
    if (coldRemaining_ == 0) {
        const std::uint32_t run =
            std::max<std::uint32_t>(profile_.coldRunBlocks, 1);
        coldPos_ = (rng_.below(n) / run) * run;
        coldRemaining_ = run;
    }
    --coldRemaining_;
    return layout_.privateBase + (coldPos_++ % n);
}

BlockAddr
ThreadGenerator::pickSharedRo()
{
    const std::uint64_t n =
        std::max<std::uint64_t>(profile_.sharedRoBlocks, 1);
    return layout_.sharedBase + rng_.zipfish(n, profile_.roZipfSkew);
}

BlockAddr
ThreadGenerator::pickSharedRw()
{
    const std::uint64_t n =
        std::max<std::uint64_t>(profile_.sharedRwBlocks, 1);
    if (profile_.migratory > 0.0 &&
        rng_.chance(profile_.migratory)) {
        // Migratory chunks rotate across threads every epoch: thread t
        // works on chunk (epoch + t) mod threads, so ownership of each
        // chunk migrates producer/consumer style.
        const std::uint64_t epoch = count_ / profile_.epochLength;
        const std::uint64_t chunk = (epoch + thread_) % threads_;
        const std::uint64_t chunk_size =
            std::max<std::uint64_t>(n / threads_, 1);
        const std::uint64_t off =
            chunk * chunk_size + rng_.zipfish(chunk_size, 0.3);
        return layout_.sharedBase + kWindow / 2 + (off % n);
    }
    return layout_.sharedBase + kWindow / 2 +
           rng_.zipfish(n, profile_.roZipfSkew);
}

BlockAddr
ThreadGenerator::pickStream()
{
    const std::uint64_t n =
        std::max<std::uint64_t>(profile_.streamBlocks, 1);
    const std::uint32_t rep = std::max<std::uint32_t>(
        profile_.streamRepeat, 1);
    const BlockAddr b = layout_.streamBase + ((streamPos_ / rep) % n);
    ++streamPos_;
    return b;
}

BlockAddr
ThreadGenerator::pickCode()
{
    const std::uint64_t n = std::max<std::uint64_t>(profile_.codeBlocks, 1);
    return layout_.codeBase + rng_.zipfish(n, profile_.roZipfSkew);
}

MemAccess
ThreadGenerator::next()
{
    ++count_;
    MemAccess a;
    a.gap = profile_.gapMean == 0
                ? 0
                : static_cast<std::uint32_t>(
                      rng_.below(2 * profile_.gapMean + 1));

    const double r = rng_.uniform();
    if (r < profile_.pIfetch) {
        a.type = AccessType::Ifetch;
        a.block = pickCode();
        return a;
    }
    double acc = profile_.pIfetch;
    if (r < (acc += profile_.pSharedRo)) {
        a.type = AccessType::Load;
        a.block = pickSharedRo();
        return a;
    }
    if (r < (acc += profile_.pSharedRw)) {
        a.type = rng_.chance(profile_.rwStoreFrac) ? AccessType::Store
                                                   : AccessType::Load;
        a.block = pickSharedRw();
        return a;
    }
    if (r < (acc += profile_.pStream)) {
        a.type = rng_.chance(profile_.storeFrac) ? AccessType::Store
                                                 : AccessType::Load;
        a.block = pickStream();
        return a;
    }
    a.type = rng_.chance(profile_.storeFrac) ? AccessType::Store
                                             : AccessType::Load;
    a.block = pickPrivate();
    return a;
}

} // namespace zerodev
