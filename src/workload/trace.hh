/**
 * @file
 * Binary access-trace record/replay. A trace captures the exact
 * interleaved access stream of a run (core id, access type, block
 * address, instruction gap), so experiments can be reproduced bit-for-bit
 * and external traces can be fed to the simulator.
 */

#ifndef ZERODEV_WORKLOAD_TRACE_HH
#define ZERODEV_WORKLOAD_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "workload/access_pattern.hh"

namespace zerodev
{

/** One trace record. */
struct TraceRecord
{
    std::uint32_t core = 0;
    MemAccess access;
};

/** Streaming trace writer. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path, std::uint32_t cores);
    ~TraceWriter();

    void append(const TraceRecord &rec);
    std::uint64_t written() const { return count_; }
    void close();

  private:
    std::ofstream out_;
    std::uint64_t count_ = 0;
    bool open_ = false;
};

/**
 * Whole-trace reader. Construction never exits the process: a missing
 * file, a bad magic, a corrupt header, an out-of-range record or a
 * truncated tail leave the reader in a failed state instead —
 * ok() / error() report it, and records() is empty. Callers that cannot
 * proceed without a trace use mustLoad().
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    /** Construct-or-fatal(): exits with the load error (code 1) when
     *  the trace is unusable. */
    static TraceReader mustLoad(const std::string &path);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    std::uint32_t cores() const { return cores_; }
    const std::vector<TraceRecord> &records() const { return records_; }

  private:
    std::uint32_t cores_ = 0;
    std::vector<TraceRecord> records_;
    std::string error_;
};

} // namespace zerodev

#endif // ZERODEV_WORKLOAD_TRACE_HH
