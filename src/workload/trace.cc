#include "workload/trace.hh"

#include <cstring>

#include "common/log.hh"

namespace zerodev
{

namespace
{
constexpr char kMagic[8] = {'Z', 'D', 'E', 'V', 'T', 'R', 'C', '1'};

struct PackedRecord
{
    std::uint32_t core;
    std::uint8_t type;
    std::uint8_t pad[3];
    std::uint64_t block;
    std::uint32_t gap;
    std::uint32_t pad2;
};
static_assert(sizeof(PackedRecord) == 24, "trace record layout");
} // namespace

TraceWriter::TraceWriter(const std::string &path, std::uint32_t cores)
    : out_(path, std::ios::binary)
{
    if (!out_)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    out_.write(kMagic, sizeof(kMagic));
    out_.write(reinterpret_cast<const char *>(&cores), sizeof(cores));
    open_ = true;
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    PackedRecord p{};
    p.core = rec.core;
    p.type = static_cast<std::uint8_t>(rec.access.type);
    p.block = rec.access.block;
    p.gap = rec.access.gap;
    out_.write(reinterpret_cast<const char *>(&p), sizeof(p));
    ++count_;
}

void
TraceWriter::close()
{
    if (open_) {
        out_.close();
        open_ = false;
    }
}

TraceReader::TraceReader(const std::string &path)
{
    auto fail = [&](const std::string &why) {
        error_ = "'" + path + "': " + why;
        cores_ = 0;
        records_.clear();
    };

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        fail("cannot open trace file");
        return;
    }
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        fail("not a ZeroDEV trace (bad magic)");
        return;
    }
    in.read(reinterpret_cast<char *>(&cores_), sizeof(cores_));
    if (!in) {
        fail("truncated trace header");
        return;
    }
    if (cores_ == 0 || cores_ > kMaxCores * kMaxSockets) {
        fail("corrupt header: implausible core count " +
             std::to_string(cores_));
        return;
    }
    PackedRecord p;
    while (in.read(reinterpret_cast<char *>(&p), sizeof(p))) {
        if (p.core >= cores_) {
            fail("record " + std::to_string(records_.size()) +
                 " targets core " + std::to_string(p.core) + " of " +
                 std::to_string(cores_));
            return;
        }
        if (p.type > static_cast<std::uint8_t>(AccessType::Ifetch)) {
            fail("record " + std::to_string(records_.size()) +
                 " has invalid access type " + std::to_string(p.type));
            return;
        }
        TraceRecord rec;
        rec.core = p.core;
        rec.access.type = static_cast<AccessType>(p.type);
        rec.access.block = p.block;
        rec.access.gap = p.gap;
        records_.push_back(rec);
    }
    // A partial trailing record means the file was truncated mid-write;
    // silently dropping it would turn data loss into a shorter trace.
    if (in.gcount() != 0)
        fail("truncated record at end of file");
}

TraceReader
TraceReader::mustLoad(const std::string &path)
{
    TraceReader r(path);
    if (!r.ok())
        fatal("%s", r.error().c_str());
    return r;
}

} // namespace zerodev
