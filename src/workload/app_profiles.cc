#include "workload/app_profiles.hh"

#include "common/log.hh"

namespace zerodev
{

namespace
{

/**
 * Compact profile builder.
 *
 * @param priv full private footprint (blocks)
 * @param hot_frac fraction of private accesses hitting the hot subset
 * @param hot hot-subset size (blocks); ~L2-sized hot sets make an
 *        application DEV-sensitive, ~LLC-share-sized hot sets make it
 *        LLC-capacity-sensitive
 */
AppProfile
make(const std::string &suite, const std::string &name,
     std::uint64_t priv, double hot_frac, std::uint64_t hot,
     std::uint64_t shared_ro, std::uint64_t shared_rw,
     std::uint64_t code, std::uint64_t stream, double p_ifetch,
     double p_ro, double p_rw, double p_stream, double store_frac,
     double skew, double migratory, std::uint32_t gap)
{
    AppProfile p;
    p.suite = suite;
    p.name = name;
    p.privateBlocks = priv;
    p.hotFrac = hot_frac;
    p.hotBlocks = hot;
    p.sharedRoBlocks = shared_ro;
    p.sharedRwBlocks = shared_rw;
    p.codeBlocks = code;
    p.streamBlocks = stream;
    p.pIfetch = p_ifetch;
    p.pSharedRo = p_ro;
    p.pSharedRw = p_rw;
    p.pStream = p_stream;
    p.storeFrac = store_frac;
    p.zipfSkew = skew;
    p.migratory = migratory;
    p.gapMean = gap;
    return p;
}

} // namespace

std::vector<AppProfile>
parsecProfiles()
{
    // PARSEC: moderate sharing (~10% of tracked entries shared); vips is
    // the LLC-capacity-sensitive outlier (LLC-share-sized hot set);
    // freqmine is dominated by migratory M-state sharing (forwarded
    // requests / the DEV-refill effect the paper explains in Fig. 3).
    std::vector<AppProfile> v;
    const char *s = "parsec";
    v.push_back(make(s, "blackscholes", 3072, 0.996, 512, 512, 128, 192,
                     0, 0.02, 0.04, 0.01, 0.00, 0.20, 0.55, 0.0, 6));
    v.push_back(make(s, "canneal", 98304, 0.95, 1024, 4096, 512, 256, 0,
                     0.02, 0.06, 0.02, 0.00, 0.25, 0.45, 0.1, 4));
    v.push_back(make(s, "dedup", 16384, 0.978, 1024, 2048, 1024, 384,
                     8192, 0.03, 0.05, 0.04, 0.10, 0.35, 0.45, 0.3, 4));
    v.push_back(make(s, "facesim", 24576, 0.978, 1280, 3072, 768, 512,
                     4096, 0.02, 0.05, 0.03, 0.06, 0.30, 0.45, 0.2, 5));
    v.push_back(make(s, "ferret", 12288, 0.978, 1024, 6144, 512, 512,
                     2048, 0.04, 0.10, 0.02, 0.04, 0.25, 0.45, 0.2, 4));
    v.push_back(make(s, "fluidanimate", 20480, 0.985, 1024, 1024, 2048,
                     256, 0, 0.02, 0.03, 0.06, 0.00, 0.35, 0.45, 0.4, 5));
    v.push_back(make(s, "freqmine", 16384, 0.978, 1280, 2048, 4096, 384,
                     0, 0.02, 0.04, 0.14, 0.00, 0.30, 0.45, 0.7, 4));
    v.push_back(make(s, "streamcluster", 8192, 0.985, 768, 4096, 256,
                     192, 16384, 0.01, 0.12, 0.01, 0.25, 0.15, 0.40, 0.0,
                     3));
    v.push_back(make(s, "swaptions", 2048, 0.998, 384, 256, 64, 256, 0,
                     0.02, 0.02, 0.01, 0.00, 0.25, 0.60, 0.0, 7));
    v.push_back(make(s, "vips", 17408, 0.98, 15360, 2048, 512, 640, 6144,
                     0.04, 0.05, 0.02, 0.08, 0.35, 0.10, 0.1, 3));
    return v;
}

std::vector<AppProfile>
splash2xProfiles()
{
    // SPLASH2X: the highest shared fraction (~19%); lu_ncb is the
    // LLC-capacity-sensitive outlier.
    std::vector<AppProfile> v;
    const char *s = "splash2x";
    v.push_back(make(s, "fft", 24576, 0.972, 1536, 2048, 3072, 128, 8192,
                     0.01, 0.04, 0.08, 0.10, 0.35, 0.40, 0.5, 4));
    v.push_back(make(s, "lu_cb", 12288, 0.985, 1280, 1024, 2048, 128, 0,
                     0.01, 0.03, 0.10, 0.00, 0.35, 0.50, 0.6, 4));
    v.push_back(make(s, "lu_ncb", 16384, 0.975, 14848, 1024, 3072, 128, 0,
                     0.01, 0.04, 0.12, 0.00, 0.35, 0.10, 0.5, 3));
    v.push_back(make(s, "ocean_cp", 65536, 0.96, 1536, 4096, 6144, 192,
                     12288, 0.01, 0.05, 0.10, 0.08, 0.35, 0.35, 0.4, 4));
    v.push_back(make(s, "radiosity", 8192, 0.985, 1024, 2048, 2048, 256,
                     0, 0.02, 0.06, 0.10, 0.00, 0.30, 0.50, 0.4, 5));
    v.push_back(make(s, "radix", 32768, 0.965, 1024, 1024, 2048, 96,
                     16384, 0.01, 0.02, 0.06, 0.20, 0.45, 0.30, 0.3, 3));
    v.push_back(make(s, "raytrace", 10240, 0.978, 1024, 6144, 1024, 320,
                     0, 0.03, 0.16, 0.04, 0.00, 0.20, 0.45, 0.2, 4));
    v.push_back(make(s, "water_nsquared", 6144, 0.992, 768, 1024, 2048,
                     192, 0, 0.02, 0.04, 0.12, 0.00, 0.30, 0.50, 0.6, 5));
    v.push_back(make(s, "water_spatial", 6144, 0.992, 768, 1024, 1536,
                     192, 0, 0.02, 0.04, 0.09, 0.00, 0.30, 0.50, 0.5, 5));
    return v;
}

std::vector<AppProfile>
specOmpProfiles()
{
    // SPEC OMP: tiny shared fraction (~0.5%): mostly private loop data;
    // 330.art is the LLC-capacity-sensitive outlier.
    std::vector<AppProfile> v;
    const char *s = "specomp";
    v.push_back(make(s, "312.swim", 49152, 0.96, 1280, 256, 96, 96,
                     24576, 0.01, 0.005, 0.003, 0.25, 0.35, 0.35, 0.0, 4));
    v.push_back(make(s, "314.mgrid", 32768, 0.965, 1280, 256, 96, 96,
                     12288, 0.01, 0.005, 0.003, 0.18, 0.30, 0.35, 0.0, 4));
    v.push_back(make(s, "316.applu", 24576, 0.97, 1280, 256, 96, 128,
                     8192, 0.01, 0.005, 0.003, 0.12, 0.35, 0.40, 0.0, 4));
    v.push_back(make(s, "320.equake", 20480, 0.97, 1024, 512, 128, 128,
                     4096, 0.01, 0.008, 0.004, 0.10, 0.30, 0.40, 0.1, 4));
    v.push_back(make(s, "324.apsi", 16384, 0.978, 1024, 256, 96, 128,
                     4096, 0.01, 0.005, 0.003, 0.08, 0.30, 0.45, 0.0, 5));
    v.push_back(make(s, "330.art", 16384, 0.975, 15104, 512, 128, 96, 0,
                     0.01, 0.008, 0.004, 0.00, 0.25, 0.10, 0.0, 3));
    return v;
}

std::vector<AppProfile>
fftwProfiles()
{
    // FFTW 256^3: streaming butterflies over a large private footprint,
    // nearly zero sharing.
    std::vector<AppProfile> v;
    v.push_back(make("fftw", "FFTW", 57344, 0.95, 6144, 128, 64, 96,
                     32768, 0.005, 0.002, 0.002, 0.30, 0.40, 0.20, 0.0,
                     3));
    return v;
}

std::vector<AppProfile>
cpu2017Profiles()
{
    // SPEC CPU 2017 (rate): single-threaded; sharing arises only from
    // code blocks shared between the copies of the same binary (~9% of
    // tracked entries). xalancbmk pairs a big churn footprint with an
    // L2-sized hot set (the 3.2-MPKI DEV outlier of Fig. 2); gcc.ppO2 is
    // the most LLC-capacity sensitive; cam4 is ZeroDEV's worst case.
    std::vector<AppProfile> v;
    const char *s = "cpu2017";
    auto app = [&](const char *name, std::uint64_t priv, double hot_frac,
                   std::uint64_t hot, std::uint64_t code,
                   std::uint64_t stream, double p_ifetch, double p_stream,
                   double store, double skew, std::uint32_t gap) {
        v.push_back(make(s, name, priv, hot_frac, hot, 0, 0, code, stream,
                         p_ifetch, 0.0, 0.0, p_stream, store, skew, 0.0,
                         gap));
    };
    app("blender", 12288, 0.985, 1024, 1024, 2048, 0.06, 0.05, 0.30,
        0.45, 5);
    app("bwaves.1", 40960, 0.975, 768, 192, 16384, 0.01, 0.22, 0.35,
        0.35, 4);
    app("bwaves.2", 40960, 0.975, 768, 192, 16384, 0.01, 0.22, 0.35,
        0.35, 4);
    app("bwaves.3", 38912, 0.975, 768, 192, 14336, 0.01, 0.20, 0.35,
        0.35, 4);
    app("bwaves.4", 38912, 0.975, 768, 192, 14336, 0.01, 0.20, 0.35,
        0.35, 4);
    app("cactuBSSN", 28672, 0.975, 1024, 512, 8192, 0.02, 0.12, 0.35,
        0.35, 4);
    app("cam4", 20480, 0.98, 1152, 1536, 4096, 0.08, 0.08, 0.30, 0.40,
        4);
    app("deepsjeng", 6144, 0.995, 768, 768, 0, 0.06, 0.00, 0.30, 0.50,
        6);
    app("exchange2", 1536, 0.998, 384, 512, 0, 0.05, 0.00, 0.25, 0.60,
        8);
    app("fotonik3d", 49152, 0.97, 768, 256, 20480, 0.01, 0.25, 0.35,
        0.30, 3);
    app("gcc.pp", 14336, 0.985, 1024, 1536, 1024, 0.08, 0.03, 0.30, 0.45,
        5);
    app("gcc.ppO2", 16384, 0.98, 14848, 1536, 1024, 0.08, 0.03, 0.32,
        0.10, 4);
    app("gcc.ref32", 12288, 0.985, 1024, 1280, 1024, 0.07, 0.03, 0.30,
        0.45, 5);
    app("gcc.ref32O5", 13312, 0.982, 1024, 1280, 1024, 0.07, 0.03, 0.30,
        0.45, 5);
    app("gcc.smaller", 10240, 0.985, 1024, 1280, 512, 0.07, 0.02, 0.30,
        0.45, 5);
    app("imagick", 4096, 0.996, 768, 512, 2048, 0.02, 0.06, 0.30, 0.50,
        6);
    app("lbm", 65536, 0.97, 384, 96, 32768, 0.005, 0.30, 0.45, 0.25, 3);
    app("leela", 4096, 0.996, 768, 640, 0, 0.05, 0.00, 0.25, 0.50, 6);
    app("mcf", 131072, 0.95, 1536, 256, 0, 0.01, 0.00, 0.25, 0.40, 3);
    app("nab", 8192, 0.992, 1024, 384, 1024, 0.02, 0.04, 0.30, 0.50, 5);
    app("namd", 6144, 0.992, 1024, 384, 1024, 0.02, 0.04, 0.30, 0.50, 6);
    app("omnetpp", 81920, 0.95, 1536, 1024, 0, 0.05, 0.00, 0.30, 0.40,
        3);
    app("parest", 16384, 0.982, 1152, 768, 2048, 0.03, 0.05, 0.30, 0.40,
        5);
    app("perl.check", 8192, 0.988, 1024, 1536, 0, 0.09, 0.00, 0.30,
        0.50, 5);
    app("perl.diff", 8192, 0.988, 1024, 1536, 0, 0.09, 0.00, 0.30, 0.50,
        5);
    app("perl.split", 9216, 0.988, 1024, 1536, 0, 0.09, 0.00, 0.30,
        0.50, 5);
    app("povray", 2048, 0.998, 384, 768, 0, 0.06, 0.00, 0.25, 0.55, 7);
    app("roms", 32768, 0.972, 1024, 384, 12288, 0.01, 0.18, 0.35, 0.35,
        4);
    app("wrf", 24576, 0.978, 1152, 1024, 6144, 0.04, 0.10, 0.30, 0.40, 4);
    app("x264.pass1", 8192, 0.988, 896, 640, 3072, 0.03, 0.10, 0.35,
        0.45, 5);
    app("x264.pass2", 8192, 0.988, 896, 640, 3072, 0.03, 0.10, 0.35,
        0.45, 5);
    app("x264.seek500", 9216, 0.988, 896, 640, 4096, 0.03, 0.12, 0.35,
        0.45, 5);
    app("xalancbmk", 114688, 0.9, 3584, 2048, 0, 0.07, 0.00, 0.25,
        0.50, 3);
    app("xz.cld", 24576, 0.978, 1024, 384, 8192, 0.01, 0.12, 0.40, 0.35,
        4);
    app("xz.docs", 20480, 0.978, 1024, 384, 6144, 0.01, 0.10, 0.40, 0.35,
        4);
    app("xz.combined", 28672, 0.978, 1024, 384, 10240, 0.01, 0.14, 0.40,
        0.35, 4);
    return v;
}

std::vector<AppProfile>
serverProfiles()
{
    // Throughput servers on 128 cores: large shared instruction
    // footprints, high-degree read-mostly data sharing, per-client
    // private heaps (the 128-core L2 is 128 KB = 2048 blocks).
    std::vector<AppProfile> v;
    const char *s = "server";
    v.push_back(make(s, "SPECjbb", 12288, 0.97, 1024, 8192, 3072, 6144,
                     0, 0.14, 0.10, 0.05, 0.00, 0.30, 0.40, 0.2, 4));
    v.push_back(make(s, "SPECWeb-B", 8192, 0.975, 768, 12288, 2048,
                     8192, 0, 0.16, 0.14, 0.04, 0.00, 0.25, 0.40, 0.1,
                     4));
    v.push_back(make(s, "SPECWeb-E", 8192, 0.975, 768, 10240, 2048,
                     8192, 0, 0.16, 0.12, 0.04, 0.00, 0.25, 0.40, 0.1,
                     4));
    v.push_back(make(s, "SPECWeb-S", 10240, 0.97, 896, 14336, 2560,
                     9216, 0, 0.17, 0.15, 0.05, 0.00, 0.25, 0.38, 0.1,
                     4));
    v.push_back(make(s, "TPC-C", 16384, 0.962, 1024, 8192, 4096, 5120, 0,
                     0.12, 0.10, 0.08, 0.00, 0.35, 0.40, 0.3, 4));
    v.push_back(make(s, "TPC-E", 20480, 0.962, 1024, 10240, 3072, 6144,
                     0, 0.12, 0.12, 0.05, 0.00, 0.30, 0.40, 0.2, 4));
    v.push_back(make(s, "TPC-H", 32768, 0.955, 1024, 6144, 1024, 4096,
                     8192, 0.08, 0.10, 0.02, 0.12, 0.25, 0.38, 0.1, 4));
    return v;
}

std::vector<std::string>
suiteNames()
{
    return {"parsec", "splash2x", "specomp", "fftw", "cpu2017", "server"};
}

std::vector<AppProfile>
suiteProfiles(const std::string &suite)
{
    if (suite == "parsec")
        return parsecProfiles();
    if (suite == "splash2x")
        return splash2xProfiles();
    if (suite == "specomp")
        return specOmpProfiles();
    if (suite == "fftw")
        return fftwProfiles();
    if (suite == "cpu2017")
        return cpu2017Profiles();
    if (suite == "server")
        return serverProfiles();
    fatal("unknown suite '%s'", suite.c_str());
}

AppProfile
profileByName(const std::string &name)
{
    for (const auto &suite : suiteNames()) {
        for (const auto &p : suiteProfiles(suite)) {
            if (p.name == name)
                return p;
        }
    }
    fatal("unknown application profile '%s'", name.c_str());
}

} // namespace zerodev
