/**
 * @file
 * Multi-grain Directory (MgD) baseline (Zebchuk et al., MICRO 2013), as
 * used in the Figure 26 comparison of the ZeroDEV paper.
 *
 * MgD invests a single directory entry to track a whole *private region*
 * (1 KB in the paper: 16 blocks) owned in M/E by one core, falling back to
 * conventional per-block entries for shared blocks. This makes a small
 * directory go a long way for private-heavy footprints, but evicting a
 * region entry invalidates every tracked block of the region in the owner
 * core — a burst of DEVs — so performance degrades as the directory
 * shrinks (the effect Figure 26 shows against ZeroDEV).
 *
 * Approximation: region entries here track only blocks the owner holds in
 * M/E; blocks in S state always use block-grain entries. (MgD proper also
 * covers one-core S-state regions; M/E-private data dominates the private
 * footprint, so the tracking-cost behaviour is preserved.)
 */

#ifndef ZERODEV_DIRECTORY_MGD_HH
#define ZERODEV_DIRECTORY_MGD_HH

#include <cstdint>
#include <vector>

#include "cache/cache_array.hh"
#include "directory/dir_org.hh"

namespace zerodev
{

/** Statistics specific to MgD. */
struct MgdStats
{
    std::uint64_t regionAllocs = 0;
    std::uint64_t blockAllocs = 0;
    std::uint64_t regionEvictions = 0; //!< multi-block DEV bursts
    std::uint64_t blockEvictions = 0;
    std::uint64_t regionBreaks = 0;    //!< block pulled out on sharing
};

class MultiGrainDirectory : public DirOrgBase
{
  public:
    /**
     * @param cores socket core count
     * @param slices number of slices (LLC bank hash)
     * @param sets_per_slice sets per slice
     * @param ways slice associativity
     * @param blocks_per_region region grain (16 for 1 KB regions)
     */
    MultiGrainDirectory(std::uint32_t cores, std::uint32_t slices,
                        std::uint64_t sets_per_slice, std::uint32_t ways,
                        std::uint32_t blocks_per_region);

    std::optional<DirEntry> lookup(BlockAddr block) override;
    std::optional<DirEntry> peek(BlockAddr block) const override;
    using DirOrgBase::set;
    void set(BlockAddr block, const DirEntry &e,
             std::vector<Invalidation> &invs, CoreId requester) override;
    std::uint64_t liveEntries() const override;

    void save(SerialOut &out) const override;
    void restore(SerialIn &in) override;

    const MgdStats &stats() const { return stats_; }

  private:
    /** A way holds either a block-grain or a region-grain entry. */
    struct Line
    {
        bool isRegion = false;
        BlockAddr base = 0;       //!< block addr, or region base block
        CoreId owner = 0;         //!< region grain: owning core
        std::uint32_t presentMap = 0; //!< region grain: tracked blocks
        DirEntry payload;         //!< block grain

        void
        reset()
        {
            isRegion = false;
            presentMap = 0;
            payload.clear();
        }
    };

    struct Slice
    {
        Slice(std::uint64_t sets, std::uint32_t ways) : array(sets, ways) {}
        CacheArray<Line> array;
    };

    std::uint32_t sliceOf(BlockAddr b) const;

    /** Region base block of @p b. */
    BlockAddr regionOf(BlockAddr b) const
    {
        return b & ~static_cast<BlockAddr>(blocksPerRegion_ - 1);
    }

    /** Find the block-grain line for @p b; null if absent. */
    Line *findBlockLine(BlockAddr b);

    /** Find the region-grain line covering @p b; null if absent. */
    Line *findRegionLine(BlockAddr b);

    /** Allocate a line in @p b's set, evicting if needed. */
    Line *allocLine(BlockAddr b, std::vector<Invalidation> &invs);

    /** Turn an evicted line into invalidation orders (the caller frees
     *  the way afterwards). */
    void evictLine(const Line &line, std::vector<Invalidation> &invs);

    /** Slice holding @p b's block-grain line. */
    Slice &blockSlice(BlockAddr b) { return slices_[sliceOf(b)]; }

    /** Slice holding the region-grain line covering @p b. */
    Slice &
    regionSlice(BlockAddr b)
    {
        return slices_[sliceOf(regionOf(b) / blocksPerRegion_)];
    }

    std::uint32_t cores_;
    std::uint32_t numSlices_;
    std::uint64_t setsPerSlice_;
    std::uint32_t blocksPerRegion_;
    std::vector<Slice> slices_;
    MgdStats stats_;
};

} // namespace zerodev

#endif // ZERODEV_DIRECTORY_MGD_HH
