/**
 * @file
 * Bit-accurate encodings of directory entries accommodated inside LLC
 * blocks, exactly as laid out in Figure 9 (FusePrivateSpillShared) and
 * Figure 11 (FuseAll) of the paper.
 *
 * An LLC block image is 512 bits. For a line in state (V=0, D=1):
 *   - bit b0 distinguishes spilled (1) from fused (0);
 *   - a spilled image stores the directory entry in bits b1.. (Fig 9a/11a);
 *   - an FPSS fused image stores: b1 = LLC-block dirty, b2 = busy,
 *     b3..b3+ceil(log2 N)-1 = owner id, remainder = the surviving part of
 *     the data block (Fig 9b);
 *   - a FuseAll fused image additionally stores b3 = M/E-vs-S and either
 *     the owner id or the N-bit sharer vector (Fig 11b/11c).
 *
 * The simulator's hot path keeps structured DirEntry payloads; these
 * encoders exist to validate that the formats fit and round-trip (the
 * test suite checks every layout claim the paper makes, e.g. that a fused
 * FPSS entry corrupts exactly 3 + ceil(log2 N) + 1 bits).
 */

#ifndef ZERODEV_DIRECTORY_DIR_FORMATS_HH
#define ZERODEV_DIRECTORY_DIR_FORMATS_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "directory/dir_entry.hh"

namespace zerodev
{

/** A 512-bit LLC block image. */
using BlockImage = std::array<std::uint64_t, 8>;

/** Read bit @p i of an image. */
bool imageBit(const BlockImage &img, std::uint32_t i);

/** Write bit @p i of an image. */
void setImageBit(BlockImage &img, std::uint32_t i, bool v);

/** Fields of a decoded spilled directory entry (Fig 9a / 11a). */
struct SpilledFields
{
    DirEntry entry;
};

/** Fields of a decoded FPSS fused block (Fig 9b). */
struct FusedFpssFields
{
    bool llcDirty = false;   //!< b1: dirty bit of the overwritten block
    bool busy = false;       //!< b2: directory busy/pending state
    CoreId owner = 0;        //!< b3..: owner encoding
};

/** Fields of a decoded FuseAll fused block (Fig 11b/11c). */
struct FusedFuseAllFields
{
    bool llcDirty = false;
    bool busy = false;
    DirState state = DirState::Owned; //!< b3: M/E (Owned) vs S
    CoreId owner = 0;                 //!< valid when state is Owned
    SharerSet sharers;                //!< valid when state is Shared
};

/**
 * Encode a spilled entry: b0 = 1, then state bit, then the N-bit sharer
 * vector. @p cores is the socket core count N.
 */
BlockImage encodeSpilled(const DirEntry &e, std::uint32_t cores);

/** Decode a spilled-entry image. */
SpilledFields decodeSpilled(const BlockImage &img, std::uint32_t cores);

/** Encode an FPSS fused block over an existing data image @p data. */
BlockImage encodeFusedFpss(const FusedFpssFields &f, std::uint32_t cores,
                           const BlockImage &data);

/** Decode an FPSS fused image. */
FusedFpssFields decodeFusedFpss(const BlockImage &img, std::uint32_t cores);

/** Encode a FuseAll fused block over an existing data image @p data. */
BlockImage encodeFusedFuseAll(const FusedFuseAllFields &f,
                              std::uint32_t cores, const BlockImage &data);

/** Decode a FuseAll fused image. */
FusedFuseAllFields decodeFusedFuseAll(const BlockImage &img,
                                      std::uint32_t cores);

/** Number of data bits corrupted by an FPSS fusion: 1 + 1 + 1 +
 *  ceil(log2 N) plus the F/Sp bit (Section III-C2's 3 + ceil(log2 N)
 *  reconstruction bits plus b0). */
std::uint32_t fusedFpssCorruptedBits(std::uint32_t cores);

/** Number of data bits corrupted by a FuseAll fusion in state @p s:
 *  4 + ceil(log2 N) for M/E, 4 + N for S (Section III-C3). */
std::uint32_t fusedFuseAllCorruptedBits(std::uint32_t cores, DirState s);

/** Reconstruction payload (the low bits a core returns with an E-state
 *  eviction notice under FPSS: 3 + ceil(log2 N) bits). */
std::uint32_t fpssReconstructionBits(std::uint32_t cores);

/**
 * Maximum number of sockets whose intra-socket entries fit in one 512-bit
 * memory block with N cores per socket: floor(512 / (N+1)) (Sec. III-D).
 */
std::uint32_t maxSocketsPerBlock(std::uint32_t cores);

/**
 * Maximum socket count when one partition also houses the socket-level
 * entry (Section III-D5): largest M with 512 >= M(N+1) + (M+2).
 */
std::uint32_t maxSocketsPerBlockWithSocketEntry(std::uint32_t cores);

} // namespace zerodev

#endif // ZERODEV_DIRECTORY_DIR_FORMATS_HH
