#include "directory/dir_org.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace zerodev
{

std::optional<DirEntry>
SparseOrg::lookup(BlockAddr block)
{
    ++orgStats_.lookups;
    DirEntry *e = dir_.find(block);
    if (!e)
        return std::nullopt;
    ++orgStats_.hits;
    return *e;
}

std::optional<DirEntry>
SparseOrg::peek(BlockAddr block) const
{
    const DirEntry *e = dir_.peek(block);
    if (!e)
        return std::nullopt;
    return *e;
}

void
SparseOrg::set(BlockAddr block, const DirEntry &e,
               std::vector<Invalidation> &invs, CoreId requester)
{
    DirEntry *existing = dir_.find(block);
    if (!e.live()) {
        if (existing)
            dir_.free(block);
        return;
    }
    if (existing) {
        *existing = e;
        return;
    }
    DirAllocResult res = dir_.alloc(block, requester);
    if (!res.entry)
        panic("SparseOrg: allocation refused (replacement-disabled sparse "
              "directories must be driven through the ZeroDEV paths)");
    if (res.evictedVictim && res.victimEntry.live()) {
        invs.push_back({res.victimBlock, res.victimEntry.sharers,
                        res.victimEntry.state == DirState::Owned});
        ++orgStats_.forcedInvalidations;
        ++orgStats_.entryEvictions;
    }
    *res.entry = e;
}

void
DirOrgBase::saveOrgStats(SerialOut &out) const
{
    out.u64(orgStats_.lookups);
    out.u64(orgStats_.hits);
    out.u64(orgStats_.forcedInvalidations);
    out.u64(orgStats_.entryEvictions);
}

void
DirOrgBase::restoreOrgStats(SerialIn &in)
{
    orgStats_.lookups = in.u64();
    orgStats_.hits = in.u64();
    orgStats_.forcedInvalidations = in.u64();
    orgStats_.entryEvictions = in.u64();
}

void
SparseOrg::save(SerialOut &out) const
{
    dir_.save(out);
    saveOrgStats(out);
}

void
SparseOrg::restore(SerialIn &in)
{
    dir_.restore(in);
    restoreOrgStats(in);
}

PhasePriorityOrg::PhasePriorityOrg(std::uint32_t slices,
                                   std::uint64_t sets_per_slice,
                                   std::uint32_t ways)
    : slices_(slices), setsPerSlice_(sets_per_slice), ways_(ways)
{
    if (!isPowerOfTwo(slices_))
        panic("PhasePriorityOrg: slice count must be a power of two");
    if (!isPowerOfTwo(setsPerSlice_))
        panic("PhasePriorityOrg: sets per slice must be a power of two");
    if (ways_ == 0)
        panic("PhasePriorityOrg: zero ways");
    sliceShift_ = floorLog2(slices_);
    lines_.resize(capacityEntries());
}

std::size_t
PhasePriorityOrg::rowOf(BlockAddr block) const
{
    // Same block interleaving as the sparse directory: low bits pick the
    // slice (one per LLC bank), the next bits pick the set.
    const std::uint64_t slice = block & (slices_ - 1);
    const std::uint64_t set = (block >> sliceShift_) & (setsPerSlice_ - 1);
    return static_cast<std::size_t>((slice * setsPerSlice_ + set) * ways_);
}

PhasePriorityOrg::Line *
PhasePriorityOrg::find(BlockAddr block)
{
    Line *row = &lines_[rowOf(block)];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (row[w].entry.live() && row[w].block == block)
            return &row[w];
    }
    return nullptr;
}

const PhasePriorityOrg::Line *
PhasePriorityOrg::find(BlockAddr block) const
{
    const Line *row = &lines_[rowOf(block)];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (row[w].entry.live() && row[w].block == block)
            return &row[w];
    }
    return nullptr;
}

void
PhasePriorityOrg::stamp(Line &l)
{
    l.phase = phase_;
    l.tick = ++tick_;
}

std::optional<DirEntry>
PhasePriorityOrg::lookup(BlockAddr block)
{
    ++orgStats_.lookups;
    Line *l = find(block);
    if (!l)
        return std::nullopt;
    ++orgStats_.hits;
    stamp(*l);
    return l->entry;
}

std::optional<DirEntry>
PhasePriorityOrg::peek(BlockAddr block) const
{
    const Line *l = find(block);
    if (!l)
        return std::nullopt;
    return l->entry;
}

void
PhasePriorityOrg::set(BlockAddr block, const DirEntry &e,
                      std::vector<Invalidation> &invs, CoreId requester)
{
    (void)requester; // whole sets are shared; no per-core domains
    Line *existing = find(block);
    if (!e.live()) {
        if (existing) {
            existing->entry.clear();
            --live_;
        }
        return;
    }
    if (existing) {
        existing->entry = e;
        stamp(*existing);
        return;
    }
    Line *row = &lines_[rowOf(block)];
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!row[w].entry.live()) {
            victim = &row[w];
            break;
        }
        // Prefer the way last touched by the lowest-priority phase
        // (highest phase number); among equals evict the oldest touch.
        if (!victim || row[w].phase > victim->phase ||
            (row[w].phase == victim->phase && row[w].tick < victim->tick)) {
            victim = &row[w];
        }
    }
    if (victim->entry.live()) {
        invs.push_back({victim->block, victim->entry.sharers,
                        victim->entry.state == DirState::Owned});
        ++orgStats_.forcedInvalidations;
        ++orgStats_.entryEvictions;
        --live_;
    }
    victim->block = block;
    victim->entry = e;
    stamp(*victim);
    ++live_;
}

void
PhasePriorityOrg::save(SerialOut &out) const
{
    out.u64(lines_.size());
    for (const Line &l : lines_) {
        out.u64(l.block);
        saveEntry(out, l.entry);
        out.u8(l.phase);
        out.u64(l.tick);
    }
    out.u64(live_);
    out.u64(tick_);
    out.u8(phase_);
    saveOrgStats(out);
}

void
PhasePriorityOrg::restore(SerialIn &in)
{
    const std::uint64_t n = in.u64();
    if (n != lines_.size())
        panic("PhasePriorityOrg: geometry mismatch on restore");
    for (Line &l : lines_) {
        l.block = in.u64();
        l.entry = loadEntry(in);
        l.phase = in.u8();
        l.tick = in.u64();
    }
    live_ = in.u64();
    tick_ = in.u64();
    phase_ = in.u8();
    restoreOrgStats(in);
}

} // namespace zerodev
