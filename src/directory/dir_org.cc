#include "directory/dir_org.hh"

#include "common/log.hh"

namespace zerodev
{

std::optional<DirEntry>
SparseOrg::lookup(BlockAddr block)
{
    ++orgStats_.lookups;
    DirEntry *e = dir_.find(block);
    if (!e)
        return std::nullopt;
    ++orgStats_.hits;
    return *e;
}

std::optional<DirEntry>
SparseOrg::peek(BlockAddr block) const
{
    const DirEntry *e = dir_.peek(block);
    if (!e)
        return std::nullopt;
    return *e;
}

void
SparseOrg::set(BlockAddr block, const DirEntry &e,
               std::vector<Invalidation> &invs, CoreId requester)
{
    DirEntry *existing = dir_.find(block);
    if (!e.live()) {
        if (existing)
            dir_.free(block);
        return;
    }
    if (existing) {
        *existing = e;
        return;
    }
    DirAllocResult res = dir_.alloc(block, requester);
    if (!res.entry)
        panic("SparseOrg: allocation refused (replacement-disabled sparse "
              "directories must be driven through the ZeroDEV paths)");
    if (res.evictedVictim && res.victimEntry.live()) {
        invs.push_back({res.victimBlock, res.victimEntry.sharers,
                        res.victimEntry.state == DirState::Owned});
        ++orgStats_.forcedInvalidations;
        ++orgStats_.entryEvictions;
    }
    *res.entry = e;
}

void
DirOrgBase::saveOrgStats(SerialOut &out) const
{
    out.u64(orgStats_.lookups);
    out.u64(orgStats_.hits);
    out.u64(orgStats_.forcedInvalidations);
    out.u64(orgStats_.entryEvictions);
}

void
DirOrgBase::restoreOrgStats(SerialIn &in)
{
    orgStats_.lookups = in.u64();
    orgStats_.hits = in.u64();
    orgStats_.forcedInvalidations = in.u64();
    orgStats_.entryEvictions = in.u64();
}

void
SparseOrg::save(SerialOut &out) const
{
    dir_.save(out);
    saveOrgStats(out);
}

void
SparseOrg::restore(SerialIn &in)
{
    dir_.restore(in);
    restoreOrgStats(in);
}

} // namespace zerodev
