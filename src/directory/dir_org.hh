/**
 * @file
 * Abstract interface over the directory organisations the paper compares:
 * the baseline sparse directory (and its unbounded reference), SecDir
 * (ISCA'19) and the Multi-grain Directory (MICRO'13).
 *
 * The protocol engine reads tracking state with lookup() and writes the
 * new tracking state with set(); an organisation reports any *forced
 * invalidations* (the source of directory eviction victims) that the
 * write caused. ZeroDEV does not implement this interface — its tracking
 * state is spread across the sparse directory, the LLC and home memory
 * and is managed directly by the CMP system.
 */

#ifndef ZERODEV_DIRECTORY_DIR_ORG_HH
#define ZERODEV_DIRECTORY_DIR_ORG_HH

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "directory/dir_entry.hh"
#include "directory/sparse_directory.hh"

namespace zerodev
{

/**
 * An invalidation order produced by a directory conflict: the listed
 * cores must drop their copies of @p block. Each invalidated private
 * copy is a directory eviction victim (DEV).
 */
struct Invalidation
{
    BlockAddr block = 0;
    SharerSet cores;
    bool wasOwned = false; //!< the entry tracked an M/E owner
};

/** Common statistics across organisations. */
struct DirOrgStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t forcedInvalidations = 0; //!< Invalidation orders issued
    std::uint64_t entryEvictions = 0;      //!< live entries displaced
};

class DirOrgBase
{
  public:
    virtual ~DirOrgBase() = default;

    /** Current tracking state of @p block, if tracked. Touches the
     *  replacement/hit state. */
    virtual std::optional<DirEntry> lookup(BlockAddr block) = 0;

    /** Side-effect-free lookup (invariant checks, introspection). */
    virtual std::optional<DirEntry> peek(BlockAddr block) const = 0;

    /**
     * Record that @p block is now tracked as @p e (a dead @p e erases the
     * tracking). Forced invalidations caused by conflicts are appended to
     * @p invs. The caller must apply them to the private caches.
     * @p requester is the in-socket core driving the update; partitioned
     * organisations confine any allocation to its domain (others ignore
     * it).
     */
    virtual void set(BlockAddr block, const DirEntry &e,
                     std::vector<Invalidation> &invs,
                     CoreId requester) = 0;

    /** Convenience overload for callers with no meaningful requester
     *  (tests, unpartitioned organisations): domain 0. */
    void
    set(BlockAddr block, const DirEntry &e,
        std::vector<Invalidation> &invs)
    {
        set(block, e, invs, 0);
    }

    /** Number of live tracked blocks. */
    virtual std::uint64_t liveEntries() const = 0;

    /** Total entry slots, 0 when unbounded or not meaningfully bounded
     *  (occupancy probes report 0 occupancy then). */
    virtual std::uint64_t capacityEntries() const { return 0; }

    /** Snapshot the organisation's full tracking + counter state. The
     *  target of restore() must have been built from the same config. */
    virtual void save(SerialOut &out) const = 0;
    virtual void restore(SerialIn &in) = 0;

    const DirOrgStats &orgStats() const { return orgStats_; }

  protected:
    void saveOrgStats(SerialOut &out) const;
    void restoreOrgStats(SerialIn &in);

    DirOrgStats orgStats_;
};

/** Adapter presenting SparseDirectory (or unbounded mode) as a DirOrg. */
class SparseOrg : public DirOrgBase
{
  public:
    explicit SparseOrg(SparseDirectory dir) : dir_(std::move(dir)) {}

    std::optional<DirEntry> lookup(BlockAddr block) override;
    std::optional<DirEntry> peek(BlockAddr block) const override;
    using DirOrgBase::set;
    void set(BlockAddr block, const DirEntry &e,
             std::vector<Invalidation> &invs, CoreId requester) override;
    std::uint64_t liveEntries() const override
    {
        return dir_.liveEntries();
    }

    std::uint64_t capacityEntries() const override
    {
        return dir_.capacityEntries();
    }

    void save(SerialOut &out) const override;
    void restore(SerialIn &in) override;

    SparseDirectory &dir() { return dir_; }

  private:
    SparseDirectory dir_;
};

/**
 * Bounded set-associative directory for the phase-priority backend: every
 * entry remembers the access phase (0 = store/upgrade, 1 = load,
 * 2 = ifetch) of the request that last touched it, and victim selection
 * prefers entries last touched by the *lowest-priority* phase (highest
 * phase number), breaking ties towards the oldest touch. The protocol
 * backend stamps the current request phase with notePhase() before
 * driving the generic lookup()/set() path.
 *
 * Geometry mirrors the sparse directory: one slice per LLC bank,
 * power-of-two sets per slice, `ways` entries per set.
 */
class PhasePriorityOrg : public DirOrgBase
{
  public:
    /** Lowest-priority phase; also the reset stamp for empty ways. */
    static constexpr std::uint8_t kLowestPhase = 2;

    PhasePriorityOrg(std::uint32_t slices, std::uint64_t sets_per_slice,
                     std::uint32_t ways);

    /** Stamp the phase of the request about to drive lookup()/set(). */
    void notePhase(std::uint8_t phase) { phase_ = phase; }

    std::optional<DirEntry> lookup(BlockAddr block) override;
    std::optional<DirEntry> peek(BlockAddr block) const override;
    using DirOrgBase::set;
    void set(BlockAddr block, const DirEntry &e,
             std::vector<Invalidation> &invs, CoreId requester) override;
    std::uint64_t liveEntries() const override { return live_; }
    std::uint64_t capacityEntries() const override
    {
        return static_cast<std::uint64_t>(slices_) * setsPerSlice_ * ways_;
    }

    void save(SerialOut &out) const override;
    void restore(SerialIn &in) override;

  private:
    struct Line
    {
        BlockAddr block = 0;
        DirEntry entry;
        std::uint8_t phase = kLowestPhase; //!< phase of the last touch
        std::uint64_t tick = 0;            //!< logical time of the last touch
    };

    std::size_t rowOf(BlockAddr block) const;
    Line *find(BlockAddr block);
    const Line *find(BlockAddr block) const;
    void stamp(Line &l);

    std::uint32_t slices_;
    std::uint64_t setsPerSlice_;
    std::uint32_t ways_;
    std::uint32_t sliceShift_; //!< log2(slices_)
    std::vector<Line> lines_;  //!< row-major: (slice * sets + set) * ways
    std::uint64_t live_ = 0;
    std::uint64_t tick_ = 0;
    std::uint8_t phase_ = kLowestPhase;
};

} // namespace zerodev

#endif // ZERODEV_DIRECTORY_DIR_ORG_HH
