#include "directory/sparse_directory.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/log.hh"

namespace zerodev
{

SparseDirectory::SparseDirectory(std::uint32_t slices,
                                 std::uint64_t sets_per_slice,
                                 std::uint32_t ways,
                                 bool replacement_disabled,
                                 std::uint32_t tag_partitions)
    : numSlices_(slices),
      setsPerSlice_(sets_per_slice),
      ways_(ways),
      replacementDisabled_(replacement_disabled),
      unbounded_(sets_per_slice == 0),
      tagPartitions_(tag_partitions)
{
    if (slices == 0 || !isPowerOfTwo(slices))
        fatal("sparse directory slice count %u must be a power of two",
              slices);
    if (tag_partitions != 0 && ways % tag_partitions != 0)
        fatal("%u directory ways do not divide into %u tag partitions",
              ways, tag_partitions);
    sliceShift_ = floorLog2(slices);
    if (!unbounded_) {
        if (!isPowerOfTwo(sets_per_slice))
            fatal("sparse directory sets/slice must be a power of two");
        setMask_ = sets_per_slice - 1;
        tagShift_ = sliceShift_ + floorLog2(sets_per_slice);
        slices_.reserve(slices);
        for (std::uint32_t i = 0; i < slices; ++i)
            slices_.emplace_back(sets_per_slice, ways);
    }
}

SparseDirectory
SparseDirectory::makeUnbounded(std::uint32_t slices)
{
    return SparseDirectory(slices, 0, 8, false);
}

std::uint32_t
SparseDirectory::sliceOf(BlockAddr block) const
{
    return static_cast<std::uint32_t>(block & (numSlices_ - 1));
}

std::size_t
SparseDirectory::setOf(BlockAddr block) const
{
    return static_cast<std::size_t>((block >> sliceShift_) & setMask_);
}

std::uint64_t
SparseDirectory::tagOfBlock(BlockAddr block) const
{
    return block >> tagShift_;
}

DirEntry *
SparseDirectory::find(BlockAddr block)
{
    ++stats_.lookups;
    if (unbounded_) {
        DirEntry *e = map_.find(block);
        if (e != nullptr)
            ++stats_.hits;
        return e;
    }
    Slice &slice = slices_[sliceOf(block)];
    const std::size_t set = setOf(block);
    const WayRef ref = slice.array.find(set, tagOfBlock(block));
    if (!ref.found)
        return nullptr;
    ++stats_.hits;
    slice.array.touch(set, ref.way);
    slice.nru.touch(set, ref.way);
    return &slice.array.line(set, ref.way).payload;
}

const DirEntry *
SparseDirectory::peek(BlockAddr block) const
{
    if (unbounded_)
        return map_.find(block);
    const Slice &slice = slices_[sliceOf(block)];
    const std::size_t set = setOf(block);
    const WayRef ref = slice.array.find(set, tagOfBlock(block));
    if (!ref.found)
        return nullptr;
    return &slice.array.line(set, ref.way).payload;
}

DirAllocResult
SparseDirectory::alloc(BlockAddr block, std::uint32_t domain)
{
    DirAllocResult res;
    ++stats_.allocs;

    if (unbounded_) {
        auto [entry, inserted] = map_.tryEmplace(block);
        if (!inserted)
            panic("directory entry for block %#llx already exists",
                  static_cast<unsigned long long>(block));
        res.entry = entry;
        ++live_;
        peak_ = std::max(peak_, live_);
        return res;
    }

    Slice &slice = slices_[sliceOf(block)];
    const std::size_t set = setOf(block);

    // Partitioned tags: allocation (and therefore eviction) is confined
    // to the requesting domain's way range; lookups stay set-wide.
    std::uint32_t way_first = 0;
    std::uint32_t way_count = ways_;
    if (tagPartitions_ != 0) {
        way_count = ways_ / tagPartitions_;
        way_first = (domain % tagPartitions_) * way_count;
    }

    WayRef free_way;
    if (tagPartitions_ == 0) {
        free_way = slice.array.findFree(set);
    } else {
        for (std::uint32_t w = way_first; w < way_first + way_count;
             ++w) {
            if (!slice.array.occupiedAt(set, w)) {
                free_way = {set, w, true};
                break;
            }
        }
    }
    if (!free_way.found) {
        if (replacementDisabled_) {
            // ZeroDEV: never evict a valid entry; the caller will
            // accommodate the new entry in the LLC (Section III-C4).
            ++stats_.refusals;
            --stats_.allocs;
            return res;
        }
        const std::uint32_t victim =
            tagPartitions_ == 0
                ? slice.nru.victim(set)
                : slice.nru.victimIn(set, way_first, way_count);
        const Line &vline = slice.array.line(set, victim);
        res.evictedVictim = true;
        res.victimBlock = vline.block;
        res.victimEntry = vline.payload;
        ++stats_.evictions;
        slice.array.release(set, victim);
        slice.nru.reset(set, victim);
        --live_;
        free_way = {set, victim, true};
    }

    slice.array.occupy(set, free_way.way, tagOfBlock(block));
    Line &line = slice.array.line(set, free_way.way);
    line.block = block;
    line.payload.clear();
    slice.array.touch(set, free_way.way);
    slice.nru.touch(set, free_way.way);
    res.entry = &line.payload;
    ++live_;
    peak_ = std::max(peak_, live_);
    return res;
}

void
SparseDirectory::free(BlockAddr block)
{
    ++stats_.frees;
    if (unbounded_) {
        if (!map_.erase(block))
            panic("freeing absent directory entry");
        --live_;
        return;
    }
    Slice &slice = slices_[sliceOf(block)];
    const std::size_t set = setOf(block);
    const WayRef ref = slice.array.find(set, tagOfBlock(block));
    if (!ref.found)
        panic("freeing absent directory entry for block %#llx",
              static_cast<unsigned long long>(block));
    slice.array.release(set, ref.way);
    slice.nru.reset(set, ref.way);
    --live_;
}

std::uint64_t
SparseDirectory::liveEntries() const
{
    return live_;
}

void
SparseDirectory::save(SerialOut &out) const
{
    out.u32(numSlices_);
    out.u64(setsPerSlice_);
    out.u32(ways_);
    out.b(replacementDisabled_);
    out.b(unbounded_);
    if (unbounded_) {
        // Sorted so that restore -> re-serialize is byte-identical
        // regardless of the hash map's iteration order.
        std::vector<BlockAddr> keys;
        keys.reserve(map_.size());
        map_.forEach([&](BlockAddr block, const DirEntry &) {
            keys.push_back(block);
        });
        std::sort(keys.begin(), keys.end());
        out.u64(keys.size());
        for (BlockAddr block : keys) {
            out.u64(block);
            saveEntry(out, *map_.find(block));
        }
    } else {
        for (const Slice &slice : slices_) {
            slice.array.save(out, [](SerialOut &o, const Line &l) {
                o.u64(l.block);
                saveEntry(o, l.payload);
            });
            slice.nru.save(out);
        }
    }
    out.u64(live_);
    out.u64(peak_);
    out.u64(stats_.lookups);
    out.u64(stats_.hits);
    out.u64(stats_.allocs);
    out.u64(stats_.evictions);
    out.u64(stats_.refusals);
    out.u64(stats_.frees);
}

void
SparseDirectory::restore(SerialIn &in)
{
    if (!in.check(in.u32() == numSlices_ &&
                      in.u64() == setsPerSlice_ && in.u32() == ways_ &&
                      in.b() == replacementDisabled_ &&
                      in.b() == unbounded_,
                  "sparse directory geometry mismatch"))
        return;
    if (unbounded_) {
        map_.clear();
        const std::uint64_t n = in.u64();
        for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
            const BlockAddr block = in.u64();
            map_[block] = loadEntry(in);
        }
    } else {
        for (Slice &slice : slices_) {
            slice.array.restore(in, [](SerialIn &i, Line &l) {
                l.block = i.u64();
                l.payload = loadEntry(i);
            });
            slice.nru.restore(in);
        }
    }
    live_ = in.u64();
    peak_ = in.u64();
    stats_.lookups = in.u64();
    stats_.hits = in.u64();
    stats_.allocs = in.u64();
    stats_.evictions = in.u64();
    stats_.refusals = in.u64();
    stats_.frees = in.u64();
}

} // namespace zerodev
