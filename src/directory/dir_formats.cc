#include "directory/dir_formats.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace zerodev
{

bool
imageBit(const BlockImage &img, std::uint32_t i)
{
    return (img[i / 64] >> (i % 64)) & 1u;
}

void
setImageBit(BlockImage &img, std::uint32_t i, bool v)
{
    if (v)
        img[i / 64] |= 1ull << (i % 64);
    else
        img[i / 64] &= ~(1ull << (i % 64));
}

namespace
{

void
putField(BlockImage &img, std::uint32_t lo, std::uint32_t len,
         std::uint64_t value)
{
    for (std::uint32_t i = 0; i < len; ++i)
        setImageBit(img, lo + i, (value >> i) & 1u);
}

std::uint64_t
getField(const BlockImage &img, std::uint32_t lo, std::uint32_t len)
{
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < len; ++i)
        v |= static_cast<std::uint64_t>(imageBit(img, lo + i)) << i;
    return v;
}

} // namespace

BlockImage
encodeSpilled(const DirEntry &e, std::uint32_t cores)
{
    if (!e.live())
        panic("encoding a dead entry as spilled");
    BlockImage img{};
    setImageBit(img, 0, true); // b0: spilled
    setImageBit(img, 1, e.state == DirState::Owned);
    for (std::uint32_t c = 0; c < cores; ++c)
        setImageBit(img, 2 + c, e.sharers.test(c));
    return img;
}

SpilledFields
decodeSpilled(const BlockImage &img, std::uint32_t cores)
{
    if (!imageBit(img, 0))
        panic("decodeSpilled on a fused image");
    SpilledFields f;
    const bool owned = imageBit(img, 1);
    for (std::uint32_t c = 0; c < cores; ++c) {
        if (imageBit(img, 2 + c))
            f.entry.sharers.set(c);
    }
    f.entry.state = f.entry.sharers.none()
                        ? DirState::Invalid
                        : (owned ? DirState::Owned : DirState::Shared);
    return f;
}

BlockImage
encodeFusedFpss(const FusedFpssFields &f, std::uint32_t cores,
                const BlockImage &data)
{
    BlockImage img = data;
    const std::uint32_t owner_bits = ceilLog2(cores);
    setImageBit(img, 0, false);      // b0: fused
    setImageBit(img, 1, f.llcDirty); // b1
    setImageBit(img, 2, f.busy);     // b2
    putField(img, 3, owner_bits, f.owner);
    return img;
}

FusedFpssFields
decodeFusedFpss(const BlockImage &img, std::uint32_t cores)
{
    if (imageBit(img, 0))
        panic("decodeFusedFpss on a spilled image");
    FusedFpssFields f;
    f.llcDirty = imageBit(img, 1);
    f.busy = imageBit(img, 2);
    f.owner = static_cast<CoreId>(getField(img, 3, ceilLog2(cores)));
    return f;
}

BlockImage
encodeFusedFuseAll(const FusedFuseAllFields &f, std::uint32_t cores,
                   const BlockImage &data)
{
    BlockImage img = data;
    setImageBit(img, 0, false);      // b0: fused
    setImageBit(img, 1, f.llcDirty); // b1
    setImageBit(img, 2, f.busy);     // b2
    setImageBit(img, 3, f.state == DirState::Owned); // b3: M/E vs S
    if (f.state == DirState::Owned) {
        putField(img, 4, ceilLog2(cores), f.owner);
    } else {
        for (std::uint32_t c = 0; c < cores; ++c)
            setImageBit(img, 4 + c, f.sharers.test(c));
    }
    return img;
}

FusedFuseAllFields
decodeFusedFuseAll(const BlockImage &img, std::uint32_t cores)
{
    if (imageBit(img, 0))
        panic("decodeFusedFuseAll on a spilled image");
    FusedFuseAllFields f;
    f.llcDirty = imageBit(img, 1);
    f.busy = imageBit(img, 2);
    f.state = imageBit(img, 3) ? DirState::Owned : DirState::Shared;
    if (f.state == DirState::Owned) {
        f.owner = static_cast<CoreId>(getField(img, 4, ceilLog2(cores)));
    } else {
        for (std::uint32_t c = 0; c < cores; ++c) {
            if (imageBit(img, 4 + c))
                f.sharers.set(c);
        }
    }
    return f;
}

std::uint32_t
fusedFpssCorruptedBits(std::uint32_t cores)
{
    return 3 + ceilLog2(cores) + 1;
}

std::uint32_t
fusedFuseAllCorruptedBits(std::uint32_t cores, DirState s)
{
    return s == DirState::Owned ? 4 + ceilLog2(cores) : 4 + cores;
}

std::uint32_t
fpssReconstructionBits(std::uint32_t cores)
{
    return 3 + ceilLog2(cores);
}

std::uint32_t
maxSocketsPerBlock(std::uint32_t cores)
{
    return 512u / (cores + 1);
}

std::uint32_t
maxSocketsPerBlockWithSocketEntry(std::uint32_t cores)
{
    // 512 >= M(N+1) + (M+2)  =>  M <= 510 / (N+2)
    return 510u / (cores + 2);
}

} // namespace zerodev
