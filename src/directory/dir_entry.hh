/**
 * @file
 * The coherence-tracking payload of a sparse directory entry: merged M/E
 * vs S state, owner id, and a full-map sharer vector (the paper maintains
 * the full-map representation throughout, Section III-D).
 */

#ifndef ZERODEV_DIRECTORY_DIR_ENTRY_HH
#define ZERODEV_DIRECTORY_DIR_ENTRY_HH

#include "common/log.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace zerodev
{

/** Coherence payload tracked for one block. */
struct DirEntry
{
    DirState state = DirState::Invalid;
    SharerSet sharers;

    /** Core owning the block when state is Owned (M/E). */
    CoreId
    owner() const
    {
        if (state != DirState::Owned)
            panic("owner() on a %s entry", toString(state));
        for (CoreId c = 0; c < kMaxCores; ++c) {
            if (sharers.test(c))
                return c;
        }
        panic("Owned entry with empty sharer vector");
    }

    /** Number of cores currently tracked. */
    std::uint32_t count() const
    {
        return static_cast<std::uint32_t>(sharers.count());
    }

    bool isSharer(CoreId c) const { return sharers.test(c); }

    /** Track @p c as the exclusive owner. */
    void
    makeOwned(CoreId c)
    {
        state = DirState::Owned;
        sharers.reset();
        sharers.set(c);
    }

    /** Track @p c as one of possibly many sharers. */
    void
    addSharer(CoreId c)
    {
        state = DirState::Shared;
        sharers.set(c);
    }

    /** Stop tracking @p c; frees the entry when it was the last core. */
    void
    removeSharer(CoreId c)
    {
        sharers.reset(c);
        if (sharers.none())
            state = DirState::Invalid;
    }

    /** Lowest-numbered tracked core (used to elect a sharer to forward
     *  to, Section III-C3). */
    CoreId
    anySharer() const
    {
        for (CoreId c = 0; c < kMaxCores; ++c) {
            if (sharers.test(c))
                return c;
        }
        return kInvalidCore;
    }

    bool live() const { return state != DirState::Invalid; }

    void
    clear()
    {
        state = DirState::Invalid;
        sharers.reset();
    }
};

/** Socket-level directory states (Section III-D): the unused fourth state
 *  of the two state bits encodes "home memory block is corrupted". */
enum class SocketDirState : std::uint8_t
{
    Invalid,
    Owned,     //!< exactly one socket caches the block (M/E)
    Shared,    //!< one or more sockets cache the block in S
    Corrupted, //!< home memory block houses evicted directory entries
};

const char *toString(SocketDirState s);

/** Socket-level directory payload. */
struct SocketDirEntry
{
    SocketDirState state = SocketDirState::Invalid;
    SocketSet sharers;

    bool live() const { return state != SocketDirState::Invalid; }
    bool isSharer(SocketId s) const { return sharers.test(s); }

    std::uint32_t count() const
    {
        return static_cast<std::uint32_t>(sharers.count());
    }

    SocketId
    anySharerExcept(SocketId not_this) const
    {
        for (SocketId s = 0; s < kMaxSockets; ++s) {
            if (sharers.test(s) && s != not_this)
                return s;
        }
        return static_cast<SocketId>(~0u);
    }

    void
    clear()
    {
        state = SocketDirState::Invalid;
        sharers.reset();
    }
};

/** Snapshot codecs shared by every structure that embeds an entry. */
inline void
saveEntry(SerialOut &out, const DirEntry &e)
{
    out.u8(static_cast<std::uint8_t>(e.state));
    out.bits(e.sharers);
}

inline DirEntry
loadEntry(SerialIn &in)
{
    DirEntry e;
    e.state = static_cast<DirState>(in.u8());
    e.sharers = in.bits<kMaxCores>();
    in.check(e.state <= DirState::Shared, "bad DirEntry state");
    return e;
}

inline void
saveEntry(SerialOut &out, const SocketDirEntry &e)
{
    out.u8(static_cast<std::uint8_t>(e.state));
    out.bits(e.sharers);
}

inline SocketDirEntry
loadSocketEntry(SerialIn &in)
{
    SocketDirEntry e;
    e.state = static_cast<SocketDirState>(in.u8());
    e.sharers = in.bits<kMaxSockets>();
    in.check(e.state <= SocketDirState::Corrupted,
             "bad SocketDirEntry state");
    return e;
}

} // namespace zerodev

#endif // ZERODEV_DIRECTORY_DIR_ENTRY_HH
