#include "directory/sharer_formats.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace zerodev
{

const char *
toString(SharerFormat f)
{
    switch (f) {
      case SharerFormat::LimitedPointer: return "limited-pointer";
      case SharerFormat::CoarseVector: return "coarse-vector";
    }
    return "?";
}

HybridGeometry
HybridGeometry::forConfig(std::uint32_t cores, std::uint32_t budget_bits)
{
    if (budget_bits < 4 || budget_bits > 64)
        fatal("hybrid sharer budget must be 4..64 bits");
    HybridGeometry g;
    g.budgetBits = budget_bits;
    g.pointerBits = std::max(1u, ceilLog2(cores));
    // One bit selects the format; the pointer layout also reserves a
    // 4-bit count field; the coarse vector uses every data bit.
    const std::uint32_t data_bits = budget_bits - 1;
    g.pointers = data_bits > 4 ? (data_bits - 4) / g.pointerBits : 0;
    g.pointers = std::min(g.pointers, 15u);
    g.vectorBits = data_bits;
    g.groupSize = (cores + data_bits - 1) / data_bits;
    return g;
}

CompressedEntry
compressEntry(const DirEntry &e, std::uint32_t cores,
              const HybridGeometry &geom)
{
    CompressedEntry c;
    c.state = e.state;
    if (!e.live())
        return c;

    if (e.count() <= geom.pointers) {
        c.format = SharerFormat::LimitedPointer;
        std::uint32_t slot = 0;
        for (CoreId core = 0; core < cores; ++core) {
            if (!e.isSharer(core))
                continue;
            c.bits = insertBits(c.bits, slot * geom.pointerBits,
                                geom.pointerBits, core);
            ++slot;
        }
        // The 4-bit count field sits after the pointer slots (reserved
        // by the geometry, so everything stays within the budget).
        c.bits = insertBits(c.bits, geom.pointers * geom.pointerBits, 4,
                            slot);
        return c;
    }

    c.format = SharerFormat::CoarseVector;
    for (CoreId core = 0; core < cores; ++core) {
        if (e.isSharer(core))
            c.bits |= 1ull << (core / geom.groupSize);
    }
    return c;
}

DirEntry
decompressEntry(const CompressedEntry &c, std::uint32_t cores,
                const HybridGeometry &geom)
{
    DirEntry e;
    e.state = c.state;
    if (c.state == DirState::Invalid)
        return e;

    if (c.format == SharerFormat::LimitedPointer) {
        const std::uint32_t count = static_cast<std::uint32_t>(
            bits(c.bits, geom.pointers * geom.pointerBits, 4));
        for (std::uint32_t slot = 0; slot < count; ++slot) {
            const CoreId core = static_cast<CoreId>(
                bits(c.bits, slot * geom.pointerBits, geom.pointerBits));
            e.sharers.set(core);
        }
        return e;
    }

    for (CoreId core = 0; core < cores; ++core) {
        if (c.bits & (1ull << (core / geom.groupSize)))
            e.sharers.set(core);
    }
    return e;
}

bool
coversSharers(const DirEntry &cover, const DirEntry &exact)
{
    return (exact.sharers & ~cover.sharers).none();
}

std::uint32_t
overInvalidations(const DirEntry &cover, const DirEntry &exact)
{
    return static_cast<std::uint32_t>(
        (cover.sharers & ~exact.sharers).count());
}

std::uint32_t
maxSocketsPerBlockCompressed(std::uint32_t budget_bits)
{
    return 512u / (budget_bits + 2);
}

} // namespace zerodev
