/**
 * @file
 * SecDir baseline (Yan et al., ISCA 2019), as described in Sections I-A2
 * and V of the ZeroDEV paper.
 *
 * Each directory slice is divided into one *shared* partition and one
 * *private* partition per core. A new entry starts in the shared
 * partition. When it is evicted from the shared partition by a cross-core
 * conflict, it migrates into the private partitions of the cores that are
 * caching the block, so cross-core conflicts no longer *directly*
 * invalidate private copies. However, the migration can cause
 * self-conflicts inside a core's private partition; evicting a private
 * partition entry invalidates that core's copy (a DEV limited to one
 * core). Private-partition entries need no sharer list (only a tag and an
 * owned bit), which is why the iso-storage configurations of the paper
 * give SecDir slightly more entries than the baseline.
 */

#ifndef ZERODEV_DIRECTORY_SECDIR_HH
#define ZERODEV_DIRECTORY_SECDIR_HH

#include <cstdint>
#include <vector>

#include "cache/cache_array.hh"
#include "directory/dir_org.hh"

namespace zerodev
{

/** Per-slice geometry of a SecDir instance. */
struct SecDirGeometry
{
    std::uint64_t sharedSets = 0;
    std::uint32_t sharedWays = 0;
    std::uint64_t privateSets = 0;  //!< per core
    std::uint32_t privateWays = 0;

    /**
     * The iso-storage geometries of Section V: for an 8-core socket a
     * baseline slice of (sets, 8 ways) becomes 8 private zones of
     * (sets/16, 7 ways) plus a shared zone of (sets, 5 ways); for a
     * 128-core socket it becomes 128 private zones of (max(sets/64, 1),
     * 8 or 4 ways) plus a shared zone of (sets, 4 ways).
     */
    static SecDirGeometry forConfig(std::uint32_t cores,
                                    std::uint64_t slice_sets,
                                    std::uint32_t slice_ways);
};

/** Statistics specific to SecDir. */
struct SecDirStats
{
    std::uint64_t sharedEvictions = 0;   //!< migrations out of shared zone
    std::uint64_t privateEvictions = 0;  //!< self-conflict DEV sources
    std::uint64_t migrationsBack = 0;    //!< private -> shared promotions
};

class SecDir : public DirOrgBase
{
  public:
    SecDir(std::uint32_t cores, std::uint32_t slices,
           const SecDirGeometry &geom);

    std::optional<DirEntry> lookup(BlockAddr block) override;
    std::optional<DirEntry> peek(BlockAddr block) const override;
    using DirOrgBase::set;
    void set(BlockAddr block, const DirEntry &e,
             std::vector<Invalidation> &invs, CoreId requester) override;
    std::uint64_t liveEntries() const override;

    void save(SerialOut &out) const override;
    void restore(SerialIn &in) override;

    const SecDirStats &stats() const { return stats_; }

  private:
    struct SharedLine
    {
        BlockAddr block = 0;
        DirEntry payload;

        void reset() { payload.clear(); }
    };

    struct PrivateLine
    {
        BlockAddr block = 0;
        bool owned = false; //!< this core holds the block in M/E

        void reset() { owned = false; }
    };

    struct Slice
    {
        Slice(const SecDirGeometry &g, std::uint32_t cores)
            : shared(g.sharedSets, g.sharedWays)
        {
            priv.reserve(cores);
            for (std::uint32_t c = 0; c < cores; ++c)
                priv.emplace_back(g.privateSets, g.privateWays);
        }

        CacheArray<SharedLine> shared;
        std::vector<CacheArray<PrivateLine>> priv;
    };

    std::uint32_t sliceOf(BlockAddr b) const;
    std::uint64_t sliceAddr(BlockAddr b) const;

    /** Remove every private-zone entry for @p block; returns the merged
     *  tracking state they represented. */
    DirEntry collectPrivate(Slice &slice, BlockAddr block);

    /** Install @p e for @p block in the shared zone, migrating any evicted
     *  victim into private zones (appending DEV orders to @p invs). */
    void installShared(Slice &slice, BlockAddr block, const DirEntry &e,
                       std::vector<Invalidation> &invs);

    /** Migrate evicted shared-zone entry @p victim into the private zones
     *  of its sharer cores. */
    void migrateToPrivate(Slice &slice, BlockAddr block,
                          const DirEntry &victim,
                          std::vector<Invalidation> &invs);

    std::uint32_t cores_;
    std::uint32_t numSlices_;
    SecDirGeometry geom_;
    std::vector<Slice> slices_;
    SecDirStats stats_;
};

} // namespace zerodev

#endif // ZERODEV_DIRECTORY_SECDIR_HH
