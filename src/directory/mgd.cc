#include "directory/mgd.hh"

#include <bit>

#include "common/bitops.hh"
#include "common/log.hh"

namespace zerodev
{

MultiGrainDirectory::MultiGrainDirectory(std::uint32_t cores,
                                         std::uint32_t slices,
                                         std::uint64_t sets_per_slice,
                                         std::uint32_t ways,
                                         std::uint32_t blocks_per_region)
    : cores_(cores),
      numSlices_(slices),
      setsPerSlice_(sets_per_slice),
      blocksPerRegion_(blocks_per_region)
{
    if (!isPowerOfTwo(slices) || !isPowerOfTwo(sets_per_slice) ||
        !isPowerOfTwo(blocks_per_region)) {
        fatal("MgD geometry must be powers of two");
    }
    if (blocks_per_region > 32)
        fatal("MgD present map supports at most 32 blocks per region");
    slices_.reserve(slices);
    for (std::uint32_t i = 0; i < slices; ++i)
        slices_.emplace_back(sets_per_slice, ways);
}

std::uint32_t
MultiGrainDirectory::sliceOf(BlockAddr b) const
{
    return static_cast<std::uint32_t>(b & (numSlices_ - 1));
}

MultiGrainDirectory::Line *
MultiGrainDirectory::findBlockLine(BlockAddr b)
{
    Slice &slice = slices_[sliceOf(b)];
    const std::uint64_t sa = b >> floorLog2(numSlices_);
    const std::size_t set = setIndex(sa, setsPerSlice_);
    WayRef ref = slice.array.find(set, sa, [](const Line &l) {
        return !l.isRegion;
    });
    if (!ref.found)
        return nullptr;
    slice.array.touch(set, ref.way);
    return &slice.array.line(set, ref.way);
}

MultiGrainDirectory::Line *
MultiGrainDirectory::findRegionLine(BlockAddr b)
{
    // Region lines are indexed by the region *number* (base >> grain):
    // indexing by the 16-block-aligned base address would collapse every
    // region onto slice 0.
    const BlockAddr region = regionOf(b) / blocksPerRegion_;
    Slice &slice = slices_[sliceOf(region)];
    const std::uint64_t sa = region >> floorLog2(numSlices_);
    const std::size_t set = setIndex(sa, setsPerSlice_);
    WayRef ref = slice.array.find(set, sa, [](const Line &l) {
        return l.isRegion;
    });
    if (!ref.found)
        return nullptr;
    slice.array.touch(set, ref.way);
    return &slice.array.line(set, ref.way);
}

void
MultiGrainDirectory::evictLine(const Line &line,
                               std::vector<Invalidation> &invs)
{
    if (line.isRegion) {
        ++stats_.regionEvictions;
        for (std::uint32_t i = 0; i < blocksPerRegion_; ++i) {
            if (line.presentMap & (1u << i)) {
                Invalidation inv;
                inv.block = line.base + i;
                inv.cores.set(line.owner);
                inv.wasOwned = true;
                invs.push_back(inv);
                ++orgStats_.forcedInvalidations;
            }
        }
    } else {
        ++stats_.blockEvictions;
        if (line.payload.live()) {
            invs.push_back({line.base, line.payload.sharers,
                            line.payload.state == DirState::Owned});
            ++orgStats_.forcedInvalidations;
        }
    }
    ++orgStats_.entryEvictions;
}

MultiGrainDirectory::Line *
MultiGrainDirectory::allocLine(BlockAddr index_addr,
                               std::vector<Invalidation> &invs)
{
    Slice &slice = slices_[sliceOf(index_addr)];
    const std::uint64_t sa = index_addr >> floorLog2(numSlices_);
    const std::size_t set = setIndex(sa, setsPerSlice_);
    WayRef free_way = slice.array.findFree(set);
    if (!free_way.found) {
        // Protect dense region entries: evicting one invalidates every
        // tracked block of the region at once, so block-grain and
        // sparse region entries go first.
        const std::uint32_t vway = slice.array.victim(
            set, [](const Line &l) {
                if (!l.isRegion)
                    return 0;
                const int pop = std::popcount(l.presentMap);
                return pop > 8 ? 2 : pop > 2 ? 1 : 0;
            });
        evictLine(slice.array.line(set, vway), invs);
        slice.array.release(set, vway);
        free_way = {set, vway, true};
    }
    slice.array.occupy(set, free_way.way, sa);
    slice.array.touch(set, free_way.way);
    return &slice.array.line(set, free_way.way);
}

std::optional<DirEntry>
MultiGrainDirectory::lookup(BlockAddr block)
{
    ++orgStats_.lookups;
    if (Line *bl = findBlockLine(block)) {
        ++orgStats_.hits;
        return bl->payload;
    }
    if (Line *rl = findRegionLine(block)) {
        const std::uint32_t off =
            static_cast<std::uint32_t>(block - rl->base);
        if (rl->presentMap & (1u << off)) {
            ++orgStats_.hits;
            DirEntry e;
            e.makeOwned(rl->owner);
            return e;
        }
    }
    return std::nullopt;
}

std::optional<DirEntry>
MultiGrainDirectory::peek(BlockAddr block) const
{
    // Block-grain probe.
    {
        const Slice &slice = slices_[sliceOf(block)];
        const std::uint64_t sa = block >> floorLog2(numSlices_);
        const std::size_t set = setIndex(sa, setsPerSlice_);
        WayRef ref = slice.array.find(set, sa, [](const Line &l) {
            return !l.isRegion;
        });
        if (ref.found)
            return slice.array.line(set, ref.way).payload;
    }
    // Region-grain probe (indexed by region number; see findRegionLine).
    const BlockAddr region = regionOf(block) / blocksPerRegion_;
    const Slice &slice = slices_[sliceOf(region)];
    const std::uint64_t sa = region >> floorLog2(numSlices_);
    const std::size_t set = setIndex(sa, setsPerSlice_);
    WayRef ref = slice.array.find(set, sa, [](const Line &l) {
        return l.isRegion;
    });
    if (ref.found) {
        const Line &l = slice.array.line(set, ref.way);
        const std::uint32_t off =
            static_cast<std::uint32_t>(block - l.base);
        if (l.presentMap & (1u << off)) {
            DirEntry e;
            e.makeOwned(l.owner);
            return e;
        }
    }
    return std::nullopt;
}

void
MultiGrainDirectory::set(BlockAddr block, const DirEntry &e,
                         std::vector<Invalidation> &invs, CoreId requester)
{
    (void)requester; // no way partitioning in MgD
    Line *bl = findBlockLine(block);
    Line *rl = findRegionLine(block);
    const std::uint32_t off =
        rl ? static_cast<std::uint32_t>(block - rl->base) : 0;
    const bool in_region = rl && (rl->presentMap & (1u << off));

    if (!e.live()) {
        if (bl)
            blockSlice(block).array.releaseAt(bl);
        if (in_region) {
            rl->presentMap &= ~(1u << off);
            if (rl->presentMap == 0)
                regionSlice(block).array.releaseAt(rl);
        }
        return;
    }

    if (bl) {
        // Keep block-grain tracking once it exists.
        bl->payload = e;
        return;
    }

    const bool private_owned =
        e.state == DirState::Owned && e.count() == 1;

    bool region_conflicted = false;
    if (in_region) {
        if (private_owned && rl->owner == e.owner()) {
            // Already tracked at region grain by the right owner.
            return;
        }
        // Sharing broke the private region for this block.
        rl->presentMap &= ~(1u << off);
        if (rl->presentMap == 0)
            regionSlice(block).array.releaseAt(rl);
        ++stats_.regionBreaks;
        region_conflicted = true;
        rl = nullptr;
    }

    if (private_owned && !region_conflicted) {
        if (rl && rl->owner == e.owner()) {
            rl->presentMap |= 1u << off;
            return;
        }
        if (!rl) {
            // Allocate a region entry covering this block (indexed by
            // region number).
            Line *nl = allocLine(regionOf(block) / blocksPerRegion_,
                                 invs);
            nl->isRegion = true;
            nl->base = regionOf(block);
            nl->owner = e.owner();
            nl->presentMap = 1u << (block - nl->base);
            ++stats_.regionAllocs;
            return;
        }
        // Region exists with a different owner: fall through to a block
        // entry for this block.
    }

    Line *nl = allocLine(block, invs);
    nl->isRegion = false;
    nl->base = block;
    nl->payload = e;
    ++stats_.blockAllocs;
}

std::uint64_t
MultiGrainDirectory::liveEntries() const
{
    std::uint64_t n = 0;
    for (const Slice &slice : slices_) {
        slice.array.forEach(
            [&](std::size_t, std::uint32_t, const Line &l) {
                n += l.isRegion
                         ? std::popcount(l.presentMap)
                         : static_cast<std::uint32_t>(l.payload.live());
            });
    }
    return n;
}

void
MultiGrainDirectory::save(SerialOut &out) const
{
    out.u32(cores_);
    out.u32(numSlices_);
    out.u32(blocksPerRegion_);
    for (const Slice &slice : slices_) {
        slice.array.save(out, [](SerialOut &o, const Line &l) {
            o.b(l.isRegion);
            o.u64(l.base);
            o.u32(l.owner);
            o.u32(l.presentMap);
            saveEntry(o, l.payload);
        });
    }
    out.u64(stats_.regionAllocs);
    out.u64(stats_.blockAllocs);
    out.u64(stats_.regionEvictions);
    out.u64(stats_.blockEvictions);
    out.u64(stats_.regionBreaks);
    saveOrgStats(out);
}

void
MultiGrainDirectory::restore(SerialIn &in)
{
    if (!in.check(in.u32() == cores_ && in.u32() == numSlices_ &&
                      in.u32() == blocksPerRegion_,
                  "MgD geometry mismatch"))
        return;
    for (Slice &slice : slices_) {
        slice.array.restore(in, [](SerialIn &i, Line &l) {
            l.isRegion = i.b();
            l.base = i.u64();
            l.owner = i.u32();
            l.presentMap = i.u32();
            l.payload = loadEntry(i);
        });
    }
    stats_.regionAllocs = in.u64();
    stats_.blockAllocs = in.u64();
    stats_.regionEvictions = in.u64();
    stats_.blockEvictions = in.u64();
    stats_.regionBreaks = in.u64();
    restoreOrgStats(in);
}

} // namespace zerodev
