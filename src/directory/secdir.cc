#include "directory/secdir.hh"

#include <unordered_set>

#include "common/bitops.hh"
#include "common/log.hh"

namespace zerodev
{

SecDirGeometry
SecDirGeometry::forConfig(std::uint32_t cores, std::uint64_t slice_sets,
                          std::uint32_t slice_ways)
{
    SecDirGeometry g;
    if (cores <= 8) {
        // 8-core instance (Section V): 8 private zones of (sets/16, 7)
        // and a shared zone of (sets, 5).
        g.privateSets = std::max<std::uint64_t>(slice_sets / 16, 1);
        g.privateWays = 7;
        g.sharedSets = slice_sets;
        g.sharedWays = 5;
    } else {
        // 128-core instance: private zones of (sets/64, 8) and a shared
        // zone of (sets, 4); at the 1/8x size the private zones collapse
        // to 4-way fully associative.
        g.privateSets = slice_sets / 64;
        g.privateWays = 8;
        if (g.privateSets == 0) {
            g.privateSets = 1;
            g.privateWays = 4;
        }
        g.sharedSets = slice_sets;
        g.sharedWays = 4;
    }
    (void)slice_ways;
    return g;
}

SecDir::SecDir(std::uint32_t cores, std::uint32_t slices,
               const SecDirGeometry &geom)
    : cores_(cores), numSlices_(slices), geom_(geom)
{
    if (!isPowerOfTwo(slices))
        fatal("SecDir slice count must be a power of two");
    slices_.reserve(slices);
    for (std::uint32_t i = 0; i < slices; ++i)
        slices_.emplace_back(geom, cores);
}

std::uint32_t
SecDir::sliceOf(BlockAddr b) const
{
    return static_cast<std::uint32_t>(b & (numSlices_ - 1));
}

std::uint64_t
SecDir::sliceAddr(BlockAddr b) const
{
    return b >> floorLog2(numSlices_);
}

std::optional<DirEntry>
SecDir::lookup(BlockAddr block)
{
    ++orgStats_.lookups;
    Slice &slice = slices_[sliceOf(block)];
    const std::uint64_t sa = sliceAddr(block);

    const std::size_t sset = setIndex(sa, slice.shared.numSets());
    const std::uint64_t stag = tagOf(sa, slice.shared.numSets());
    WayRef ref = slice.shared.find(sset, stag);
    if (ref.found) {
        ++orgStats_.hits;
        slice.shared.touch(sset, ref.way);
        return slice.shared.line(sset, ref.way).payload;
    }

    DirEntry merged;
    for (std::uint32_t c = 0; c < cores_; ++c) {
        auto &zone = slice.priv[c];
        const std::size_t pset = setIndex(sa, zone.numSets());
        const std::uint64_t ptag = tagOf(sa, zone.numSets());
        WayRef pref = zone.find(pset, ptag);
        if (pref.found) {
            zone.touch(pset, pref.way);
            merged.sharers.set(c);
            if (zone.line(pset, pref.way).owned)
                merged.state = DirState::Owned;
        }
    }
    if (merged.sharers.none())
        return std::nullopt;
    if (merged.state != DirState::Owned)
        merged.state = DirState::Shared;
    ++orgStats_.hits;
    return merged;
}

std::optional<DirEntry>
SecDir::peek(BlockAddr block) const
{
    const Slice &slice = slices_[sliceOf(block)];
    const std::uint64_t sa = sliceAddr(block);

    const std::size_t sset = setIndex(sa, slice.shared.numSets());
    const std::uint64_t stag = tagOf(sa, slice.shared.numSets());
    WayRef ref = slice.shared.find(sset, stag);
    if (ref.found)
        return slice.shared.line(sset, ref.way).payload;

    DirEntry merged;
    for (std::uint32_t c = 0; c < cores_; ++c) {
        const auto &zone = slice.priv[c];
        const std::size_t pset = setIndex(sa, zone.numSets());
        const std::uint64_t ptag = tagOf(sa, zone.numSets());
        WayRef pref = zone.find(pset, ptag);
        if (pref.found) {
            merged.sharers.set(c);
            if (zone.line(pset, pref.way).owned)
                merged.state = DirState::Owned;
        }
    }
    if (merged.sharers.none())
        return std::nullopt;
    if (merged.state != DirState::Owned)
        merged.state = DirState::Shared;
    return merged;
}

DirEntry
SecDir::collectPrivate(Slice &slice, BlockAddr block)
{
    const std::uint64_t sa = sliceAddr(block);
    DirEntry merged;
    for (std::uint32_t c = 0; c < cores_; ++c) {
        auto &zone = slice.priv[c];
        const std::size_t pset = setIndex(sa, zone.numSets());
        const std::uint64_t ptag = tagOf(sa, zone.numSets());
        WayRef pref = zone.find(pset, ptag);
        if (pref.found) {
            merged.sharers.set(c);
            if (zone.line(pset, pref.way).owned)
                merged.state = DirState::Owned;
            zone.release(pset, pref.way);
        }
    }
    if (merged.sharers.any() && merged.state != DirState::Owned)
        merged.state = DirState::Shared;
    return merged;
}

void
SecDir::migrateToPrivate(Slice &slice, BlockAddr block,
                         const DirEntry &victim,
                         std::vector<Invalidation> &invs)
{
    const std::uint64_t sa = sliceAddr(block);
    for (std::uint32_t c = 0; c < cores_; ++c) {
        if (!victim.sharers.test(c))
            continue;
        auto &zone = slice.priv[c];
        const std::size_t pset = setIndex(sa, zone.numSets());
        const std::uint64_t ptag = tagOf(sa, zone.numSets());
        WayRef free_way = zone.findFree(pset);
        if (!free_way.found) {
            // Self-conflict inside core c's private partition: the
            // evicted entry invalidates c's copy of its block (a DEV).
            const std::uint32_t vway = zone.victimLru(pset);
            const PrivateLine &vline = zone.line(pset, vway);
            Invalidation inv;
            inv.block = vline.block;
            inv.cores.set(c);
            inv.wasOwned = vline.owned;
            invs.push_back(inv);
            ++stats_.privateEvictions;
            ++orgStats_.forcedInvalidations;
            ++orgStats_.entryEvictions;
            zone.release(pset, vway);
            free_way = {pset, vway, true};
        }
        zone.occupy(pset, free_way.way, ptag);
        PrivateLine &line = zone.line(pset, free_way.way);
        line.block = block;
        line.owned = victim.state == DirState::Owned;
        zone.touch(pset, free_way.way);
    }
}

void
SecDir::installShared(Slice &slice, BlockAddr block, const DirEntry &e,
                      std::vector<Invalidation> &invs)
{
    const std::uint64_t sa = sliceAddr(block);
    const std::size_t sset = setIndex(sa, slice.shared.numSets());
    const std::uint64_t stag = tagOf(sa, slice.shared.numSets());

    WayRef free_way = slice.shared.findFree(sset);
    if (!free_way.found) {
        const std::uint32_t vway = slice.shared.victimLru(sset);
        const SharedLine &vline = slice.shared.line(sset, vway);
        // Cross-core conflict: migrate the victim into the private
        // partitions of its sharers instead of invalidating them.
        ++stats_.sharedEvictions;
        ++orgStats_.entryEvictions;
        const BlockAddr vblock = vline.block;
        const DirEntry ventry = vline.payload;
        slice.shared.release(sset, vway);
        migrateToPrivate(slice, vblock, ventry, invs);
        free_way = {sset, vway, true};
    }
    slice.shared.occupy(sset, free_way.way, stag);
    SharedLine &line = slice.shared.line(sset, free_way.way);
    line.block = block;
    line.payload = e;
    slice.shared.touch(sset, free_way.way);
}

void
SecDir::set(BlockAddr block, const DirEntry &e,
            std::vector<Invalidation> &invs, CoreId requester)
{
    (void)requester; // no way partitioning in SecDir
    Slice &slice = slices_[sliceOf(block)];
    const std::uint64_t sa = sliceAddr(block);
    const std::size_t sset = setIndex(sa, slice.shared.numSets());
    const std::uint64_t stag = tagOf(sa, slice.shared.numSets());

    WayRef ref = slice.shared.find(sset, stag);
    if (ref.found) {
        if (!e.live()) {
            slice.shared.release(sset, ref.way);
            return;
        }
        slice.shared.line(sset, ref.way).payload = e;
        slice.shared.touch(sset, ref.way);
        return;
    }

    // Not in the shared zone: the block may be tracked by private zones.
    DirEntry old = collectPrivate(slice, block);
    if (!e.live())
        return; // tracking erased
    if (old.sharers.any()) {
        const bool subset = (e.sharers & ~old.sharers).none();
        if (subset && e.sharers.count() == old.sharers.count()) {
            // Same sharer set (e.g. an upgrade): keep it private.
            migrateToPrivate(slice, block, e, invs);
            return;
        }
        if (subset) {
            // Pure removal (eviction notices): shrink in place.
            migrateToPrivate(slice, block, e, invs);
            return;
        }
        // A new core joined: promote the entry back to the shared zone.
        ++stats_.migrationsBack;
    }
    installShared(slice, block, e, invs);
}

std::uint64_t
SecDir::liveEntries() const
{
    std::unordered_set<BlockAddr> blocks;
    for (const Slice &slice : slices_) {
        slice.shared.forEach(
            [&](std::size_t, std::uint32_t, const SharedLine &l) {
                blocks.insert(l.block);
            });
        for (const auto &zone : slice.priv) {
            zone.forEach(
                [&](std::size_t, std::uint32_t, const PrivateLine &l) {
                    blocks.insert(l.block);
                });
        }
    }
    return blocks.size();
}

void
SecDir::save(SerialOut &out) const
{
    out.u32(cores_);
    out.u32(numSlices_);
    for (const Slice &slice : slices_) {
        slice.shared.save(out, [](SerialOut &o, const SharedLine &l) {
            o.u64(l.block);
            saveEntry(o, l.payload);
        });
        for (const auto &zone : slice.priv) {
            zone.save(out, [](SerialOut &o, const PrivateLine &l) {
                o.u64(l.block);
                o.b(l.owned);
            });
        }
    }
    out.u64(stats_.sharedEvictions);
    out.u64(stats_.privateEvictions);
    out.u64(stats_.migrationsBack);
    saveOrgStats(out);
}

void
SecDir::restore(SerialIn &in)
{
    if (!in.check(in.u32() == cores_ && in.u32() == numSlices_,
                  "SecDir geometry mismatch"))
        return;
    for (Slice &slice : slices_) {
        slice.shared.restore(in, [](SerialIn &i, SharedLine &l) {
            l.block = i.u64();
            l.payload = loadEntry(i);
        });
        for (auto &zone : slice.priv) {
            zone.restore(in, [](SerialIn &i, PrivateLine &l) {
                l.block = i.u64();
                l.owned = i.b();
            });
        }
    }
    stats_.sharedEvictions = in.u64();
    stats_.privateEvictions = in.u64();
    stats_.migrationsBack = in.u64();
    restoreOrgStats(in);
}

} // namespace zerodev
