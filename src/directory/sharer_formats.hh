/**
 * @file
 * Compressed sharer-set representations for directory entries housed in
 * memory blocks. Section III-D notes that a 64-byte block can hold at
 * most floor(512 / (N+1)) full-map segments, and suggests "a hybrid of
 * limited-pointer and coarse-vector formats [that] can dynamically
 * choose between precise and imprecise representations depending on the
 * sharer count" to scale beyond that. This module implements that
 * hybrid:
 *
 *  - a *limited-pointer* encoding stores up to P exact core ids
 *    (precise as long as the sharer count fits);
 *  - a *coarse-vector* encoding falls back to one bit per group of
 *    cores (imprecise but safe: decoding yields a superset, so
 *    invalidations may over-target cores but never miss a sharer).
 *
 * The hybrid picks whichever fits the bit budget and stays precise when
 * it can, exactly like classic DirP-CV schemes.
 */

#ifndef ZERODEV_DIRECTORY_SHARER_FORMATS_HH
#define ZERODEV_DIRECTORY_SHARER_FORMATS_HH

#include <cstdint>

#include "common/types.hh"
#include "directory/dir_entry.hh"

namespace zerodev
{

/** Representation chosen by the hybrid encoder. */
enum class SharerFormat : std::uint8_t
{
    LimitedPointer, //!< exact core ids (precise)
    CoarseVector,   //!< one bit per core group (superset)
};

const char *toString(SharerFormat f);

/** A compressed directory-entry payload of at most 64 bits. */
struct CompressedEntry
{
    SharerFormat format = SharerFormat::LimitedPointer;
    DirState state = DirState::Invalid;
    std::uint64_t bits = 0; //!< pointers or the coarse vector
};

/**
 * Encoding geometry for a given bit budget and core count:
 * pointer count P = floor((budget - header) / ceil(log2 N)) and coarse
 * group size g = ceil(N / (budget - header)).
 */
struct HybridGeometry
{
    std::uint32_t budgetBits;   //!< total bits per compressed segment
    std::uint32_t pointerBits;  //!< bits per pointer: ceil(log2 N)
    std::uint32_t pointers;     //!< P
    std::uint32_t groupSize;    //!< cores per coarse-vector bit
    std::uint32_t vectorBits;   //!< coarse-vector width

    static HybridGeometry forConfig(std::uint32_t cores,
                                    std::uint32_t budget_bits);
};

/** Encode @p e into the hybrid format under @p geom. */
CompressedEntry compressEntry(const DirEntry &e, std::uint32_t cores,
                              const HybridGeometry &geom);

/**
 * Decode back to a DirEntry. Limited-pointer decodes are exact; a
 * coarse-vector decode returns the covering superset of cores.
 */
DirEntry decompressEntry(const CompressedEntry &c, std::uint32_t cores,
                         const HybridGeometry &geom);

/** True iff @p cover tracks every sharer of @p exact (safety). */
bool coversSharers(const DirEntry &cover, const DirEntry &exact);

/** Number of extra (falsely included) cores in a decoded entry. */
std::uint32_t overInvalidations(const DirEntry &cover,
                                const DirEntry &exact);

/**
 * Sockets whose segments fit in a 512-bit memory block when each
 * segment is compressed to @p budget_bits (plus 2 state bits), versus
 * the full-map bound of Section III-D.
 */
std::uint32_t maxSocketsPerBlockCompressed(std::uint32_t budget_bits);

} // namespace zerodev

#endif // ZERODEV_DIRECTORY_SHARER_FORMATS_HH
