/**
 * @file
 * The sparse coherence directory: a tagged set-associative cache of
 * DirEntry payloads, sliced per LLC bank (Section III-A), with 1-bit NRU
 * replacement (Table I).
 *
 * Three operating modes cover the paper's design space:
 *  - normal: a full set evicts the NRU victim (the eviction generates
 *    DEVs; that is the caller's responsibility to act on);
 *  - replacement-disabled (Section III-C4, ZeroDEV): a full set refuses
 *    the allocation and the entry is accommodated in the LLC instead;
 *  - unbounded: the structure never runs out of space (Figures 2-3's
 *    unlimited-capacity reference).
 */

#ifndef ZERODEV_DIRECTORY_SPARSE_DIRECTORY_HH
#define ZERODEV_DIRECTORY_SPARSE_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/replacement.hh"
#include "common/flat_table.hh"
#include "common/types.hh"
#include "directory/dir_entry.hh"

namespace zerodev
{

/** Statistics of one sparse directory. */
struct SparseDirStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t allocs = 0;
    std::uint64_t evictions = 0; //!< valid entries evicted (DEV sources)
    std::uint64_t refusals = 0;  //!< replacement-disabled set-full refusals
    std::uint64_t frees = 0;
};

/** Result of an allocation attempt. */
struct DirAllocResult
{
    DirEntry *entry = nullptr;    //!< the new entry, null if refused
    bool evictedVictim = false;   //!< a valid entry was evicted
    BlockAddr victimBlock = 0;    //!< block the victim tracked
    DirEntry victimEntry;         //!< payload of the evicted victim
};

class SparseDirectory
{
  public:
    /**
     * @param slices number of slices (one per LLC bank; also the bank
     *        hash used for slice selection)
     * @param sets_per_slice sets in each slice; 0 selects unbounded mode
     * @param ways slice associativity
     * @param replacement_disabled ZeroDEV mode (Section III-C4)
     * @param tag_partitions partitioned-tag strict isolation: split each
     *        set's ways into this many per-core domains; an allocation
     *        only uses (and only victimises) its domain's way range.
     *        0 disables partitioning; must divide @p ways evenly.
     */
    SparseDirectory(std::uint32_t slices, std::uint64_t sets_per_slice,
                    std::uint32_t ways, bool replacement_disabled,
                    std::uint32_t tag_partitions = 0);

    /** Unbounded-mode factory. */
    static SparseDirectory makeUnbounded(std::uint32_t slices);

    /** Find the live entry tracking @p block; null if absent. Touches
     *  the replacement state and hit statistics. */
    DirEntry *find(BlockAddr block);

    /** Side-effect-free lookup (invariant checks, introspection). */
    const DirEntry *peek(BlockAddr block) const;

    /**
     * Allocate an entry for @p block (which must not already have one).
     * In normal mode a full set evicts its NRU victim and reports it; in
     * replacement-disabled mode a full set returns entry == nullptr; in
     * unbounded mode allocation always succeeds.
     *
     * With tag partitioning active, @p domain (the requesting core's
     * in-socket id) selects the way range the allocation — and any
     * victim — is confined to; @p domain is ignored otherwise.
     */
    DirAllocResult alloc(BlockAddr block, std::uint32_t domain = 0);

    /** Free the entry tracking @p block (it became untracked). */
    void free(BlockAddr block);

    /** Live entries currently held. */
    std::uint64_t liveEntries() const;

    /** High-water mark of live entries (sizing studies, Figure 5). */
    std::uint64_t peakEntries() const { return peak_; }

    /** Total entry capacity; 0 in unbounded mode (occupancy series). */
    std::uint64_t
    capacityEntries() const
    {
        return unbounded_ ? 0
                          : static_cast<std::uint64_t>(numSlices_) *
                                setsPerSlice_ * ways_;
    }

    bool unbounded() const { return unbounded_; }
    bool replacementDisabled() const { return replacementDisabled_; }
    std::uint32_t tagPartitions() const { return tagPartitions_; }

    const SparseDirStats &stats() const { return stats_; }
    void clearStats() { stats_ = SparseDirStats{}; }

    /** Snapshot the slices (or the unbounded map, serialized in sorted
     *  block order so re-serialization is byte-identical), the NRU bits
     *  and the counters. */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

    /** Visit every live entry: fn(block, entry). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (unbounded_) {
            map_.forEach(fn);
            return;
        }
        for (const auto &slice : slices_) {
            slice.array.forEach(
                [&](std::size_t, std::uint32_t, const Line &l) {
                    fn(l.block, l.payload);
                });
        }
    }

  private:
    struct Line
    {
        BlockAddr block = 0;  //!< full block address for victim reporting
        DirEntry payload;

        void reset() { payload.clear(); }
    };

    struct Slice
    {
        Slice(std::uint64_t sets, std::uint32_t ways)
            : array(sets, ways), nru(sets, ways)
        {}

        CacheArray<Line> array;
        NruState nru;
    };

    std::uint32_t sliceOf(BlockAddr block) const;
    std::size_t setOf(BlockAddr block) const;
    std::uint64_t tagOfBlock(BlockAddr block) const;

    std::uint32_t numSlices_;
    std::uint64_t setsPerSlice_;
    std::uint32_t ways_;
    bool replacementDisabled_;
    bool unbounded_;
    /** Per-core way-partition count (0 = off). Config-derived, so it is
     *  deliberately not serialized: the snapshot fingerprint guard
     *  already pins the configuration. */
    std::uint32_t tagPartitions_ = 0;
    /** Precomputed decomposition (slices and sets/slice are enforced
     *  powers of two): block -> slice | set | tag without per-lookup
     *  floorLog2 or division. */
    unsigned sliceShift_ = 0;
    std::uint64_t setMask_ = 0;
    unsigned tagShift_ = 0;

    std::vector<Slice> slices_;
    FlatTable<DirEntry> map_; //!< unbounded mode

    std::uint64_t live_ = 0;
    std::uint64_t peak_ = 0;
    SparseDirStats stats_;
};

} // namespace zerodev

#endif // ZERODEV_DIRECTORY_SPARSE_DIRECTORY_HH
