/**
 * @file
 * Fundamental scalar types and enumerations shared by every subsystem of
 * the ZeroDEV simulator.
 */

#ifndef ZERODEV_COMMON_TYPES_HH
#define ZERODEV_COMMON_TYPES_HH

#include <bitset>
#include <cstdint>
#include <string>

namespace zerodev
{

/** Byte address of a memory location. */
using Addr = std::uint64_t;

/** Block-granular address (byte address >> log2(blockBytes)). */
using BlockAddr = std::uint64_t;

/** Simulated clock cycle count (core clock domain, 4 GHz by default). */
using Cycle = std::uint64_t;

/** Core identifier within a socket. */
using CoreId = std::uint32_t;

/** Socket identifier within the system. */
using SocketId = std::uint32_t;

/** Maximum number of cores per socket supported by the full-map vectors. */
constexpr std::uint32_t kMaxCores = 128;

/** Maximum number of sockets supported by the socket-level directory. */
constexpr std::uint32_t kMaxSockets = 8;

/** Full-map sharer bit-vector over the cores of one socket. */
using SharerSet = std::bitset<kMaxCores>;

/** Full-map sharer bit-vector over sockets. */
using SocketSet = std::bitset<kMaxSockets>;

/** Sentinel for "no core". */
constexpr CoreId kInvalidCore = ~0u;

/** Kind of memory operation issued by a core. */
enum class AccessType : std::uint8_t
{
    Load,    //!< data read
    Store,   //!< data write
    Ifetch,  //!< instruction fetch (fills in S state to accelerate sharing)
};

/** Human-readable name of an AccessType. */
const char *toString(AccessType t);

/**
 * Stable MESI coherence state of a block as tracked by a directory entry.
 *
 * The directory cannot distinguish M from E (footnote 2 of the paper), so
 * it only tracks the merged Owned (M/E) state versus Shared.
 */
enum class DirState : std::uint8_t
{
    Invalid,  //!< entry free
    Owned,    //!< exactly one core caches the block in M or E
    Shared,   //!< one or more cores cache the block in S
};

const char *toString(DirState s);

/** MESI state of a block in a private (L1/L2) cache. */
enum class MesiState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *toString(MesiState s);

/** LLC inclusion flavour (Section III-A, III-E, III-F of the paper). */
enum class LlcFlavor : std::uint8_t
{
    NonInclusive,  //!< baseline: demand fills allocate in LLC and core caches
    Inclusive,     //!< LLC eviction back-invalidates the core caches
    Epd,           //!< exclusive private data: M/E blocks live only privately
};

const char *toString(LlcFlavor f);

/** Directory-entry-in-LLC caching policy (Section III-C). */
enum class DirCachePolicy : std::uint8_t
{
    None,      //!< baseline: directory entries are never cached in the LLC
    SpillAll,  //!< every evicted entry occupies a full LLC block
    Fpss,      //!< FusePrivateSpillShared: fuse M/E entries, spill S entries
    FuseAll,   //!< fuse regardless of state; 3-hop reads to shared blocks
};

const char *toString(DirCachePolicy p);

/** LLC replacement policy (baseline LRU plus the Section III-D extensions). */
enum class LlcReplPolicy : std::uint8_t
{
    Lru,      //!< baseline least-recently-used
    SpLru,    //!< spill-protect LRU: spilled entry shadows its block at MRU
    DataLru,  //!< evict ordinary data blocks before any spilled/fused entry
};

const char *toString(LlcReplPolicy p);

/** Which directory organisation a system instance runs. */
enum class DirOrg : std::uint8_t
{
    SparseNru,   //!< baseline sparse directory, NRU replacement, DEVs allowed
    Unbounded,   //!< infinite directory (no evictions ever)
    ZeroDev,     //!< replacement-disabled sparse directory + LLC caching
    SecDir,      //!< SecDir baseline: private + shared partitions
    MultiGrain,  //!< Multi-grain Directory baseline: region + block entries
};

const char *toString(DirOrg o);

/**
 * Which coherence protocol backend a system instance runs.
 *
 * MesiZeroDev is the original MESI directory family (every DirOrg above,
 * including the ZeroDEV LLC-caching flavours). Dls models a directoryless
 * shared-LLC protocol where the LLC bank is the serialization point and
 * holders are found by probing the cores — there is no directory structure
 * at all, so it is the rival "other way to zero directory cost". The
 * PhasePriority backend keeps the MESI directory flows but orders requests
 * at each bank by access-phase priority (stores > loads > ifetches) and
 * runs a bounded directory whose victim selection prefers entries last
 * touched by low-priority phases.
 */
enum class ProtocolKind : std::uint8_t
{
    MesiZeroDev,    //!< MESI + ZeroDEV family (default, all DirOrg values)
    Dls,            //!< directoryless shared LLC; broadcast-probe cores
    PhasePriority,  //!< phase-priority queues + priority-victim directory
};

const char *toString(ProtocolKind p);

} // namespace zerodev

#endif // ZERODEV_COMMON_TYPES_HH
