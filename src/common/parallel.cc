#include "common/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace zerodev
{

namespace
{
std::atomic<unsigned> gJobsOverride{0};
}

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
defaultJobs()
{
    const char *v = std::getenv("ZERODEV_JOBS");
    if (v && *v) {
        const unsigned long parsed = std::strtoul(v, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    return hardwareJobs();
}

void
setJobs(unsigned n)
{
    gJobsOverride.store(n, std::memory_order_relaxed);
}

unsigned
jobs()
{
    const unsigned n = gJobsOverride.load(std::memory_order_relaxed);
    return n > 0 ? n : defaultJobs();
}

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers > 0 ? workers : jobs())
{
    if (workers_ <= 1)
        return; // inline mode: submit() runs jobs on the caller
    threads_.reserve(workers_);
    for (unsigned i = 0; i < workers_; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::noteFailure(std::size_t index, std::exception_ptr e)
{
    // Keep only the failure of the lowest submission index so wait()
    // rethrows deterministically no matter how workers interleaved.
    if (!firstError_ || index < firstErrorIndex_) {
        firstError_ = std::move(e);
        firstErrorIndex_ = index;
    }
}

std::size_t
ThreadPool::submit(std::function<void()> job)
{
    if (threads_.empty()) {
        // Serial fallback: run inline, same error contract as the pool.
        const std::size_t index = submitted_++;
        try {
            job();
        } catch (...) {
            noteFailure(index, std::current_exception());
        }
        return index;
    }
    std::size_t index;
    {
        std::unique_lock<std::mutex> lock(mu_);
        index = submitted_++;
        queue_.push_back({index, std::move(job)});
    }
    workCv_.notify_one();
    return index;
}

void
ThreadPool::runJob(const Job &job)
{
    try {
        job.fn();
    } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        noteFailure(job.index, std::current_exception());
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        workCv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        Job job = std::move(queue_.front());
        queue_.pop_front();
        ++inFlight_;
        lock.unlock();
        runJob(job);
        lock.lock();
        --inFlight_;
        if (queue_.empty() && inFlight_ == 0)
            idleCv_.notify_all();
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock,
                 [this] { return queue_.empty() && inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = std::move(firstError_);
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            unsigned jobs_override)
{
    if (n == 0)
        return;
    const unsigned k = jobs_override > 0 ? jobs_override : jobs();
    if (k <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(k, n)));
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&body, i] { body(i); });
    pool.wait();
}

} // namespace zerodev
