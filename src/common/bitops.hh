/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 */

#ifndef ZERODEV_COMMON_BITOPS_HH
#define ZERODEV_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace zerodev
{

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/** ceil(log2(v)); v must be non-zero. */
constexpr std::uint32_t
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p v down to a power of two (at least 1). */
constexpr std::uint64_t
floorPow2(std::uint64_t v)
{
    return v <= 1 ? 1 : 1ull << floorLog2(v);
}

/** Extract bit field [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, std::uint32_t lo, std::uint32_t len)
{
    return len >= 64 ? (v >> lo) : ((v >> lo) & ((1ull << len) - 1));
}

/** Insert @p field into bits [lo, lo+len) of @p v, returning the result. */
constexpr std::uint64_t
insertBits(std::uint64_t v, std::uint32_t lo, std::uint32_t len,
           std::uint64_t field)
{
    const std::uint64_t mask =
        (len >= 64 ? ~0ull : ((1ull << len) - 1)) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

} // namespace zerodev

#endif // ZERODEV_COMMON_BITOPS_HH
