/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 */

#ifndef ZERODEV_COMMON_BITOPS_HH
#define ZERODEV_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace zerodev
{

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

/** ceil(log2(v)); v must be non-zero. */
constexpr std::uint32_t
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p v down to a power of two (at least 1). */
constexpr std::uint64_t
floorPow2(std::uint64_t v)
{
    return v <= 1 ? 1 : 1ull << floorLog2(v);
}

/** Extract bit field [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, std::uint32_t lo, std::uint32_t len)
{
    return len >= 64 ? (v >> lo) : ((v >> lo) & ((1ull << len) - 1));
}

/** Insert @p field into bits [lo, lo+len) of @p v, returning the result. */
constexpr std::uint64_t
insertBits(std::uint64_t v, std::uint32_t lo, std::uint32_t len,
           std::uint64_t field)
{
    const std::uint64_t mask =
        (len >= 64 ? ~0ull : ((1ull << len) - 1)) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/**
 * Exact unsigned division by a construction-time divisor, strength-
 * reduced to a multiply-high + shift (Granlund-Montgomery style, the
 * libdivide technique). The magic multiplier underestimates 2^(64+s)/d,
 * so the mul-shift quotient never overshoots and is at most 2 short; a
 * remainder-based fix-up loop closes the gap, keeping the result exactly
 * floor(n/d) for every 64-bit @p n. Used by the cache arrays' rare
 * non-power-of-two set-count geometries, where a hardware divide per
 * tag computation would sit inside the hottest scan loops.
 */
class MulShiftDiv
{
  public:
    MulShiftDiv() = default;

    explicit MulShiftDiv(std::uint64_t d) : d_(d == 0 ? 1 : d)
    {
        if (isPowerOfTwo(d_)) {
            mul_ = 0; // shift-only fast path
            shift_ = floorLog2(d_);
        } else {
            shift_ = floorLog2(d_);
            mul_ = static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(1) << (64 + shift_)) /
                d_);
        }
    }

    /** floor(@p n / divisor), exactly. */
    std::uint64_t
    operator()(std::uint64_t n) const
    {
        if (mul_ == 0)
            return n >> shift_;
        std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(n) * mul_) >> 64);
        q >>= shift_;
        std::uint64_t r = n - q * d_; // q <= n/d, so this cannot wrap
        while (r >= d_) {
            ++q;
            r -= d_;
        }
        return q;
    }

    std::uint64_t divisor() const { return d_; }

  private:
    std::uint64_t d_ = 1;
    std::uint64_t mul_ = 0;
    std::uint32_t shift_ = 0;
};

} // namespace zerodev

#endif // ZERODEV_COMMON_BITOPS_HH
