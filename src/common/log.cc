#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace zerodev
{

namespace
{
LogLevel gLevel = LogLevel::Warn;

void
vlog(const char *prefix, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogLevel(LogLevel lvl)
{
    gLevel = lvl;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
logMsg(LogLevel lvl, const char *fmt, ...)
{
    if (lvl < gLevel)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    const char *prefix = lvl == LogLevel::Debug ? "debug: "
                       : lvl == LogLevel::Info  ? "info: "
                       : lvl == LogLevel::Warn  ? "warn: "
                                                : "error: ";
    vlog(prefix, fmt, ap);
    va_end(ap);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vlog("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vlog("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
inform(const char *fmt, ...)
{
    if (LogLevel::Info < gLevel)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog("info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (LogLevel::Warn < gLevel)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vlog("warn: ", fmt, ap);
    va_end(ap);
}

} // namespace zerodev
