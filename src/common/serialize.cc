#include "common/serialize.hh"

#include <array>

namespace zerodev
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t n)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace zerodev
