#include "common/config.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/log.hh"

namespace zerodev
{

namespace
{

const char *
name(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "Load";
      case AccessType::Store: return "Store";
      case AccessType::Ifetch: return "Ifetch";
    }
    return "?";
}

} // namespace

const char *
toString(AccessType t)
{
    return name(t);
}

const char *
toString(DirState s)
{
    switch (s) {
      case DirState::Invalid: return "I";
      case DirState::Owned: return "M/E";
      case DirState::Shared: return "S";
    }
    return "?";
}

const char *
toString(MesiState s)
{
    switch (s) {
      case MesiState::Invalid: return "I";
      case MesiState::Shared: return "S";
      case MesiState::Exclusive: return "E";
      case MesiState::Modified: return "M";
    }
    return "?";
}

const char *
toString(LlcFlavor f)
{
    switch (f) {
      case LlcFlavor::NonInclusive: return "non-inclusive";
      case LlcFlavor::Inclusive: return "inclusive";
      case LlcFlavor::Epd: return "EPD";
    }
    return "?";
}

const char *
toString(DirCachePolicy p)
{
    switch (p) {
      case DirCachePolicy::None: return "none";
      case DirCachePolicy::SpillAll: return "SpillAll";
      case DirCachePolicy::Fpss: return "FPSS";
      case DirCachePolicy::FuseAll: return "FuseAll";
    }
    return "?";
}

const char *
toString(LlcReplPolicy p)
{
    switch (p) {
      case LlcReplPolicy::Lru: return "LRU";
      case LlcReplPolicy::SpLru: return "spLRU";
      case LlcReplPolicy::DataLru: return "dataLRU";
    }
    return "?";
}

const char *
toString(DirOrg o)
{
    switch (o) {
      case DirOrg::SparseNru: return "sparse-NRU";
      case DirOrg::Unbounded: return "unbounded";
      case DirOrg::ZeroDev: return "ZeroDEV";
      case DirOrg::SecDir: return "SecDir";
      case DirOrg::MultiGrain: return "MgD";
    }
    return "?";
}

const char *
toString(ProtocolKind p)
{
    switch (p) {
      case ProtocolKind::MesiZeroDev: return "mesi-zerodev";
      case ProtocolKind::Dls: return "DLS";
      case ProtocolKind::PhasePriority: return "phase-priority";
    }
    return "?";
}

std::uint64_t
SystemConfig::dirEntries() const
{
    const double entries =
        directory.sizeRatio * static_cast<double>(privateL2Blocks());
    return static_cast<std::uint64_t>(std::llround(entries));
}

std::uint64_t
SystemConfig::dirSetsPerSlice() const
{
    const std::uint64_t entries = dirEntries();
    if (entries == 0)
        return 0;
    const std::uint64_t per_slice =
        entries / (static_cast<std::uint64_t>(directory.ways) * llcBanks);
    return per_slice == 0 ? 1 : per_slice;
}

void
SystemConfig::validate() const
{
    if (!isPowerOfTwo(blockBytes))
        fatal("block size %u is not a power of two", blockBytes);
    if (!isPowerOfTwo(llcBanks))
        fatal("LLC bank count %u is not a power of two", llcBanks);
    if (llcBlocks() % (static_cast<std::uint64_t>(llcWays) * llcBanks) != 0)
        fatal("LLC geometry does not divide evenly");
    if (coresPerSocket > kMaxCores)
        fatal("%u cores exceed the %u-core sharer vector",
              coresPerSocket, kMaxCores);
    if (sockets > kMaxSockets)
        fatal("%u sockets exceed the %u-socket limit", sockets, kMaxSockets);
    if (dirOrg == DirOrg::ZeroDev &&
        dirCachePolicy == DirCachePolicy::None) {
        fatal("ZeroDEV requires a directory-entry caching policy");
    }
    if (dirOrg != DirOrg::ZeroDev && directory.sizeRatio <= 0.0 &&
        dirOrg != DirOrg::Unbounded) {
        fatal("a %s directory cannot be sized 0x", toString(dirOrg));
    }
    if (directory.tagPartitions != 0) {
        if (dirOrg != DirOrg::SparseNru) {
            fatal("directory tag partitioning requires the sparse-NRU "
                  "organisation");
        }
        if (directory.ways % directory.tagPartitions != 0) {
            fatal("%u directory ways do not divide into %u tag "
                  "partitions",
                  directory.ways, directory.tagPartitions);
        }
        if (directory.tagPartitions > coresPerSocket) {
            fatal("%u tag partitions exceed %u cores per socket",
                  directory.tagPartitions, coresPerSocket);
        }
    }
    if (protocol == ProtocolKind::Dls) {
        // DLS has no directory structure: the shared LLC serialises
        // requests and holders are found by probing the cores, so every
        // directory knob is meaningless and must stay at a value the
        // backend can ignore safely.
        if (sockets != 1)
            fatal("the DLS backend is single-socket");
        if (llcFlavor != LlcFlavor::NonInclusive)
            fatal("the DLS backend requires the non-inclusive LLC flavour");
        if (dirCachePolicy != DirCachePolicy::None)
            fatal("the DLS backend cannot cache directory entries");
        if (directory.tagPartitions != 0)
            fatal("the DLS backend has no directory tags to partition");
    }
    if (protocol == ProtocolKind::PhasePriority) {
        // Phase-priority keeps the MESI directory flows but swaps the
        // organisation for its own priority-victim directory, driven
        // through the generic DirOrg path.
        if (sockets != 1)
            fatal("the phase-priority backend is single-socket");
        if (dirOrg != DirOrg::SparseNru) {
            fatal("the phase-priority backend replaces the sparse-NRU "
                  "organisation only");
        }
        if (llcFlavor != LlcFlavor::NonInclusive) {
            fatal("the phase-priority backend requires the non-inclusive "
                  "LLC flavour");
        }
        if (dirCachePolicy != DirCachePolicy::None)
            fatal("the phase-priority backend cannot cache directory entries");
        if (directory.tagPartitions != 0)
            fatal("the phase-priority backend manages whole sets, not "
                  "partitions");
    }
}

SystemConfig
makeEightCoreConfig()
{
    SystemConfig cfg;
    cfg.name = "8core";
    // Every field already defaults to the Table I value.
    return cfg;
}

SystemConfig
makeServerConfig()
{
    SystemConfig cfg;
    cfg.name = "128core-server";
    cfg.coresPerSocket = 128;
    cfg.l2 = CacheConfig{128 * 1024, 8, 8};
    cfg.llcSizeBytes = 32ull * 1024 * 1024;
    cfg.llcBanks = 128;
    cfg.dram.channels = 8;
    cfg.dram.ranksPerChannel = 2;
    return cfg;
}

SystemConfig
makeQuadSocketConfig()
{
    SystemConfig cfg = makeEightCoreConfig();
    cfg.name = "4socket";
    cfg.sockets = 4;
    return cfg;
}

void
applyZeroDev(SystemConfig &cfg, double dir_ratio)
{
    cfg.dirOrg = DirOrg::ZeroDev;
    cfg.dirCachePolicy = DirCachePolicy::Fpss;
    cfg.llcReplPolicy = LlcReplPolicy::DataLru;
    cfg.directory.sizeRatio = dir_ratio;
    cfg.directory.replacementDisabled = true;
}

} // namespace zerodev
