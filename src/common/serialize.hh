/**
 * @file
 * Endian-safe binary serialization primitives for simulator snapshots.
 *
 * SerialOut appends little-endian fixed-width fields to a growable byte
 * buffer; SerialIn reads them back with a sticky fail flag instead of
 * exceptions (the same error idiom as TraceReader): after the first
 * malformed read every subsequent read returns 0 and `ok()` is false,
 * so decoders can be written straight-line and checked once at the end.
 *
 * The encoding is deliberately dumb — no varints, no alignment, no
 * field tags — because snapshots are versioned as a whole (see
 * sim/snapshot.hh): any layout change bumps the container version
 * rather than negotiating per-field.
 */

#ifndef ZERODEV_COMMON_SERIALIZE_HH
#define ZERODEV_COMMON_SERIALIZE_HH

#include <bitset>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace zerodev
{

/** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of @p n bytes. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t n);

/** Little-endian append-only encoder. */
class SerialOut
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void b(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern; doubles in snapshots are always exact
     *  copies, never re-derived, so bit-casting round-trips. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    /** Length-prefixed (u32) byte string. */
    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /** Append raw bytes with no length prefix (container assembly). */
    void
    raw(const std::uint8_t *data, std::size_t n)
    {
        buf_.insert(buf_.end(), data, data + n);
    }

    /** Bitset as ceil(N/64) little-endian u64 words. */
    template <std::size_t N>
    void
    bits(const std::bitset<N> &bs)
    {
        for (std::size_t w = 0; w < (N + 63) / 64; ++w) {
            std::uint64_t word = 0;
            for (std::size_t i = 0; i < 64 && w * 64 + i < N; ++i)
                if (bs[w * 64 + i])
                    word |= 1ull << i;
            u64(word);
        }
    }

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Little-endian decoder with a sticky fail flag. */
class SerialIn
{
  public:
    SerialIn(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit SerialIn(const std::vector<std::uint8_t> &buf)
        : SerialIn(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (std::uint16_t(u8()) << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    bool b() { return u8() != 0; }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    template <std::size_t N>
    std::bitset<N>
    bits()
    {
        std::bitset<N> bs;
        for (std::size_t w = 0; w < (N + 63) / 64; ++w) {
            const std::uint64_t word = u64();
            for (std::size_t i = 0; i < 64 && w * 64 + i < N; ++i)
                if (word & (1ull << i))
                    bs.set(w * 64 + i);
        }
        return bs;
    }

    /** Record a decoding failure; the first message wins. */
    void
    fail(const std::string &msg)
    {
        if (ok_) {
            ok_ = false;
            error_ = msg;
        }
    }

    /** Fail unless @p cond holds; returns @p cond for inline guards. */
    bool
    check(bool cond, const char *what)
    {
        if (!cond)
            fail(what);
        return cond;
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }

    /** True iff every byte has been consumed and no read failed. */
    bool exhausted() const { return ok_ && pos_ == size_; }

  private:
    bool
    need(std::size_t n)
    {
        if (!ok_)
            return false;
        if (size_ - pos_ < n) {
            fail("snapshot truncated");
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace zerodev

#endif // ZERODEV_COMMON_SERIALIZE_HH
