/**
 * @file
 * Logging and error-exit helpers in the gem5 style: panic() for simulator
 * bugs (aborts), fatal() for user errors (clean exit), warn()/inform() for
 * status messages.
 */

#ifndef ZERODEV_COMMON_LOG_HH
#define ZERODEV_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace zerodev
{

/** Severity of a log message. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/** Global log threshold; messages below it are suppressed. */
void setLogLevel(LogLevel lvl);
LogLevel logLevel();

/** printf-style message at the given level. */
void logMsg(LogLevel lvl, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Abort the process: something happened that should never happen regardless
 * of user input, i.e. a simulator bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit the process with an error code: the simulation cannot continue due
 * to a condition that is the user's fault (bad configuration, etc.).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Informative message users should know about but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something may not behave exactly as expected. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace zerodev

#endif // ZERODEV_COMMON_LOG_HH
