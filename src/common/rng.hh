/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xoshiro256** engine is used instead of std::mt19937 so that the
 * generated address streams are bit-identical across standard library
 * implementations, which keeps every experiment reproducible.
 */

#ifndef ZERODEV_COMMON_RNG_HH
#define ZERODEV_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace zerodev
{

/** xoshiro256** 1.0 pseudo-random generator (public-domain algorithm). */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Approximate Zipf(s=@p skew) draw over [0, n): a cheap two-level
     * scheme where a "hot" prefix of the range receives most draws.
     * Used for reuse-skewed working sets; exact Zipf is not required.
     */
    std::uint64_t
    zipfish(std::uint64_t n, double skew)
    {
        if (n <= 1)
            return 0;
        // Repeatedly halve the candidate range with probability `skew`,
        // yielding a geometric concentration toward small indices.
        std::uint64_t lo = 0, hi = n;
        while (hi - lo > 1 && chance(skew))
            hi = lo + (hi - lo + 1) / 2;
        return lo + below(hi - lo);
    }

    /** Raw engine state, exposed for snapshot serialization: restoring
     *  the four words resumes the stream exactly where it left off. */
    const std::array<std::uint64_t, 4> &state() const { return state_; }

    void setState(const std::array<std::uint64_t, 4> &s) { state_ = s; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace zerodev

#endif // ZERODEV_COMMON_RNG_HH
