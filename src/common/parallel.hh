/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel sweep execution.
 *
 * Every (config, workload) simulation owns a private CmpSystem and Rng,
 * so sweeps parallelise without changing simulated results — as long as
 * results are collected by *submission index*, never completion order.
 * parallelMap() guarantees exactly that: out[i] is fn(i) regardless of
 * which worker ran it or when it finished, so a parallel sweep is
 * bit-identical to the serial loop it replaces.
 *
 * Job-count selection (highest priority first):
 *   1. an explicit @p jobs_override argument (e.g. a --jobs flag),
 *   2. setJobs() (process-wide override),
 *   3. the ZERODEV_JOBS environment variable,
 *   4. std::thread::hardware_concurrency().
 * A job count of 1 runs everything inline on the calling thread.
 */

#ifndef ZERODEV_COMMON_PARALLEL_HH
#define ZERODEV_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace zerodev
{

/** max(1, hardware_concurrency). */
unsigned hardwareJobs();

/** ZERODEV_JOBS when set to a positive integer, else hardwareJobs(). */
unsigned defaultJobs();

/** Process-wide job-count override (a --jobs flag); 0 restores
 *  defaultJobs(). */
void setJobs(unsigned n);

/** Effective job count: setJobs() override, else defaultJobs(). */
unsigned jobs();

/**
 * A fixed-size pool of worker threads draining a FIFO job queue.
 *
 * Jobs are numbered by submission order. wait() blocks until every
 * submitted job completed; if any job threw, wait() rethrows the
 * exception of the *lowest-numbered* failing job (deterministic no
 * matter how execution interleaved) and leaves the pool reusable.
 * With a single worker the pool runs each job inline in submit(),
 * making jobs=1 an exact serial fallback with no thread involved.
 */
class ThreadPool
{
  public:
    /** @param workers worker count; 0 selects jobs(). */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; returns its submission index. */
    std::size_t submit(std::function<void()> job);

    /** Block until all submitted jobs finished; rethrow the earliest
     *  failure, if any. */
    void wait();

    unsigned workers() const { return workers_; }

  private:
    struct Job
    {
        std::size_t index;
        std::function<void()> fn;
    };

    void workerLoop();
    void runJob(const Job &job);
    void noteFailure(std::size_t index, std::exception_ptr e);

    mutable std::mutex mu_;
    std::condition_variable workCv_; //!< signals queued work / shutdown
    std::condition_variable idleCv_; //!< signals the pool drained
    std::deque<Job> queue_;
    std::vector<std::thread> threads_;
    std::size_t submitted_ = 0;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
    std::size_t firstErrorIndex_ = 0;
    unsigned workers_;
};

/**
 * Run body(0..n-1) on up to min(jobs, n) workers. Returns when every
 * iteration completed; rethrows the exception of the lowest failing
 * index. @p jobs_override picks the worker count (0 = jobs()).
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 unsigned jobs_override = 0);

/**
 * Parallel map with deterministic result placement: out[i] = fn(i),
 * always, independent of completion order.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn, unsigned jobs_override = 0)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t>;
    std::vector<R> out(n);
    parallelFor(
        n, [&](std::size_t i) { out[i] = fn(i); }, jobs_override);
    return out;
}

} // namespace zerodev

#endif // ZERODEV_COMMON_PARALLEL_HH
