/**
 * @file
 * Lightweight statistics support: named counter registries that components
 * expose for dumping, plus scalar aggregation helpers (mean, geomean).
 *
 * Hot-path counters are plain uint64_t members of the owning component;
 * the registry is only consulted when a report is produced, so statistics
 * never cost anything during simulation.
 */

#ifndef ZERODEV_COMMON_STATS_HH
#define ZERODEV_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zerodev
{

class SerialIn;
class SerialOut;

/** An ordered name -> value map produced by a component when reporting. */
class StatDump
{
  public:
    /** Record a scalar statistic under @p name. */
    void add(const std::string &name, double value);

    /** Merge another dump in, prefixing every name with @p prefix. */
    void merge(const std::string &prefix, const StatDump &other);

    /** Value lookup; returns 0 if the name is absent. */
    double get(const std::string &name) const;

    /** True iff @p name has been recorded. */
    bool has(const std::string &name) const;

    /** All (name, value) pairs in insertion order. */
    const std::vector<std::pair<std::string, double>> &entries() const
    {
        return entries_;
    }

    /** Render as "name = value" lines. */
    std::string toString() const;

    /** Render as a flat JSON object ({"name": value, ...}) preserving
     *  insertion order. */
    std::string toJson() const;

  private:
    std::vector<std::pair<std::string, double>> entries_;
    std::map<std::string, std::size_t> index_;
};

/**
 * A fixed-bucket histogram for small-integer observations (sharer
 * degrees, hop counts, residency quantiles). The last bucket absorbs
 * overflow. Cheap enough for protocol hot paths (one add + one
 * increment).
 */
class Histogram
{
  public:
    /** @param buckets number of exact buckets before the overflow one */
    explicit Histogram(std::size_t buckets);

    /** Record one observation of value @p v. */
    void record(std::uint64_t v);

    std::uint64_t samples() const { return samples_; }

    /** Sum of all recorded observations (overflow values contribute
     *  their true magnitude, not the bucket index). */
    std::uint64_t sum() const { return sum_; }

    /** Count of observations equal to @p v (or >= buckets for the
     *  overflow bucket). */
    std::uint64_t bucket(std::size_t v) const;

    /** Mean of all recorded observations. */
    double meanValue() const;

    /** Smallest value v such that at least @p q of the samples are
     *  <= v (overflow bucket reported as bucket count). */
    std::uint64_t percentile(double q) const;

    /** Render into a dump under names "<prefix>.pN" / buckets. */
    void addTo(StatDump &dump, const std::string &prefix) const;

    /** Render as a JSON object: samples, mean, p50/p95/p99, and the
     *  sparse non-zero buckets ("counts": {"<value>": n, ...}). */
    std::string toJson() const;

    void clear();

    /** Snapshot support (counters are part of checkpointed state so a
     *  resumed run reports the same statistics as a straight one). */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
};

/** Arithmetic mean; returns 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean; every element must be positive. */
double geomean(const std::vector<double> &xs);

/** Minimum; returns 0 for an empty vector. */
double minOf(const std::vector<double> &xs);

/** Maximum; returns 0 for an empty vector. */
double maxOf(const std::vector<double> &xs);

} // namespace zerodev

#endif // ZERODEV_COMMON_STATS_HH
