/**
 * @file
 * System configuration structures mirroring Table I of the paper, plus the
 * named presets used throughout the evaluation (8-core socket, 128-core
 * server socket, 4-socket system).
 */

#ifndef ZERODEV_COMMON_CONFIG_HH
#define ZERODEV_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace zerodev
{

/** Geometry and latency of one set-associative cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 0;  //!< total capacity
    std::uint32_t ways = 8;       //!< associativity
    std::uint32_t lookupCycles = 3; //!< tag+data lookup latency

    /** Number of blocks given @p block_bytes. */
    std::uint64_t blocks(std::uint32_t block_bytes) const
    {
        return sizeBytes / block_bytes;
    }

    /** Number of sets given @p block_bytes. */
    std::uint64_t sets(std::uint32_t block_bytes) const
    {
        return blocks(block_bytes) / ways;
    }
};

/** Sparse directory sizing and organisation. */
struct DirectoryConfig
{
    /**
     * Ratio R of directory entries to the aggregate number of private
     * last-level (L2) cache blocks; the paper writes this as "R x".
     * 0 means "no sparse directory structure at all".
     */
    double sizeRatio = 1.0;
    std::uint32_t ways = 8;        //!< set associativity (Table I)
    std::uint32_t lookupCycles = 2; //!< slice lookup latency

    /**
     * ZeroDEV option (Section III-C4): a new entry never evicts a valid
     * entry; if the set is full it goes to the LLC instead.
     */
    bool replacementDisabled = false;

    /**
     * "Partitioned Tags, Shared Data"-style strict isolation: statically
     * partition each set's ways into this many per-core domains.
     * Lookups search every way (sharing is unrestricted), but a core
     * allocates — and therefore evicts — only within its own way range,
     * so one core's directory conflicts can never victimise another
     * core's entries. 0 disables partitioning; `ways` must divide
     * evenly. Only meaningful for the sparse-NRU organisation (the
     * side-channel lab's strict-isolation comparison point).
     */
    std::uint32_t tagPartitions = 0;
};

/** DDR3-2133-style DRAM timing, expressed in core-clock cycles (4 GHz). */
struct DramConfig
{
    std::uint32_t channels = 2;  //!< single-rank-pair channels
    std::uint32_t ranksPerChannel = 2;
    std::uint32_t banksPerRank = 8;
    std::uint32_t rowBytes = 1024; //!< row-buffer size per bank

    // DDR3-2133: tCK ~= 0.9375 ns ~= 3.75 core cycles at 4 GHz.
    std::uint32_t tCas = 53;   //!< 14 DRAM cycles
    std::uint32_t tRcd = 53;   //!< 14 DRAM cycles
    std::uint32_t tRp = 53;    //!< 14 DRAM cycles
    std::uint32_t tRas = 131;  //!< 35 DRAM cycles
    std::uint32_t tBurst = 15; //!< BL=8 on a 64-bit channel: 4 DRAM cycles
};

/** Multi-grain Directory baseline parameters (MICRO'13). */
struct MgdConfig
{
    std::uint32_t regionBytes = 1024; //!< private-region tracking grain
};

/** Top-level configuration of one simulated system. */
struct SystemConfig
{
    std::string name = "default";

    std::uint32_t sockets = 1;
    std::uint32_t coresPerSocket = 8;
    std::uint32_t blockBytes = 64;

    CacheConfig l1i{32 * 1024, 8, 3};
    CacheConfig l1d{32 * 1024, 8, 3};
    CacheConfig l2{256 * 1024, 8, 8};

    /** Shared LLC: size, ways, plus separate tag/data access latencies. */
    std::uint64_t llcSizeBytes = 8ull * 1024 * 1024;
    std::uint32_t llcWays = 16;
    std::uint32_t llcBanks = 8;
    std::uint32_t llcTagCycles = 3;
    std::uint32_t llcDataCycles = 4;

    DirectoryConfig directory;
    DramConfig dram;
    MgdConfig mgd;

    /** Mesh per-hop cost: 1-cycle routing + 1-cycle link (Table I). */
    std::uint32_t meshHopCycles = 2;

    /** Inter-socket one-way routing delay: 20 ns at 4 GHz. */
    std::uint32_t interSocketCycles = 80;

    DirOrg dirOrg = DirOrg::SparseNru;
    DirCachePolicy dirCachePolicy = DirCachePolicy::None;
    LlcReplPolicy llcReplPolicy = LlcReplPolicy::Lru;
    LlcFlavor llcFlavor = LlcFlavor::NonInclusive;

    /**
     * Coherence protocol backend. MesiZeroDev (the default) is the
     * original MESI directory family and honours every field above; the
     * rival backends (Dls, PhasePriority) are single-socket and restrict
     * the directory knobs they ignore (see validate()).
     */
    ProtocolKind protocol = ProtocolKind::MesiZeroDev;

    /**
     * ZeroDEV socket-level directory backing (Section III-D5): when true,
     * evicted socket-level entries are housed in memory blocks guarded by
     * a DirEvict bit (solution 2, constant 0.2% DRAM overhead); when
     * false, the socket directory is fully backed up in home memory
     * (solution 1, the scheme the paper's evaluation uses).
     */
    bool socketDirZeroDev = false;

    /** Socket-level directory cache geometry (per home socket). */
    std::uint64_t socketDirCacheSets = 2048;
    std::uint32_t socketDirCacheWays = 8;

    /** Aggregate number of private L2 blocks in one socket. */
    std::uint64_t privateL2Blocks() const
    {
        return static_cast<std::uint64_t>(coresPerSocket) *
               l2.blocks(blockBytes);
    }

    /** Total sparse directory entries in one socket (R x sizing). */
    std::uint64_t dirEntries() const;

    /** Directory sets per slice (one slice per LLC bank). */
    std::uint64_t dirSetsPerSlice() const;

    /** Number of LLC blocks in one socket. */
    std::uint64_t llcBlocks() const { return llcSizeBytes / blockBytes; }

    /** LLC sets per bank. */
    std::uint64_t llcSetsPerBank() const
    {
        return llcBlocks() / llcWays / llcBanks;
    }

    /** Validate derived geometry; calls fatal() on inconsistency. */
    void validate() const;
};

/** 8-core single-socket preset (Table I). */
SystemConfig makeEightCoreConfig();

/** 128-core single-socket server preset (Section IV). */
SystemConfig makeServerConfig();

/** Four-socket preset: 8 cores per socket (Section V, multi-socket). */
SystemConfig makeQuadSocketConfig();

/** Apply the canonical ZeroDEV settings (Section V selections). */
void applyZeroDev(SystemConfig &cfg, double dir_ratio);

} // namespace zerodev

#endif // ZERODEV_COMMON_CONFIG_HH
