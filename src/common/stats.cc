#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.hh"
#include "common/serialize.hh"

namespace zerodev
{

void
StatDump::add(const std::string &name, double value)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        entries_[it->second].second = value;
        return;
    }
    index_[name] = entries_.size();
    entries_.emplace_back(name, value);
}

void
StatDump::merge(const std::string &prefix, const StatDump &other)
{
    for (const auto &[name, value] : other.entries_)
        add(prefix + name, value);
}

double
StatDump::get(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? 0.0 : entries_[it->second].second;
}

bool
StatDump::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

std::string
StatDump::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : entries_)
        os << name << " = " << value << "\n";
    return os.str();
}

namespace
{

/** Minimal JSON string escaping (names here are plain identifiers, but
 *  stay correct for anything). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Format a double as JSON: integral values print without a fraction,
 *  non-finite values become null (JSON has no NaN/Inf). */
void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[40];
    if (v == std::floor(v) && std::abs(v) < 9e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.12g", v);
    }
    out += buf;
}

} // namespace

std::string
StatDump::toJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, value] : entries_) {
        if (!first)
            out += ",";
        first = false;
        appendJsonString(out, name);
        out += ":";
        appendJsonNumber(out, value);
    }
    out += "}";
    return out;
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets + 1, 0)
{
    if (buckets == 0)
        panic("histogram with zero buckets");
}

void
Histogram::record(std::uint64_t v)
{
    const std::size_t idx =
        v < counts_.size() - 1 ? static_cast<std::size_t>(v)
                               : counts_.size() - 1;
    ++counts_[idx];
    ++samples_;
    sum_ += v;
}

std::uint64_t
Histogram::bucket(std::size_t v) const
{
    return v < counts_.size() ? counts_[v] : 0;
}

double
Histogram::meanValue() const
{
    return samples_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(samples_);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (samples_ == 0)
        return 0;
    // Smallest v covering ceil(q * N) samples; never less than one, so
    // a single observation reports itself as every percentile.
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(samples_)));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t v = 0; v < counts_.size(); ++v) {
        seen += counts_[v];
        if (seen >= target)
            return v;
    }
    return counts_.size() - 1;
}

void
Histogram::addTo(StatDump &dump, const std::string &prefix) const
{
    dump.add(prefix + ".samples", static_cast<double>(samples_));
    dump.add(prefix + ".mean", meanValue());
    dump.add(prefix + ".p50", static_cast<double>(percentile(0.50)));
    dump.add(prefix + ".p95", static_cast<double>(percentile(0.95)));
    dump.add(prefix + ".p99", static_cast<double>(percentile(0.99)));
    for (std::size_t v = 0; v < counts_.size(); ++v) {
        if (counts_[v] != 0) {
            dump.add(prefix + ".bucket" + std::to_string(v),
                     static_cast<double>(counts_[v]));
        }
    }
}

std::string
Histogram::toJson() const
{
    std::string out = "{\"samples\":";
    appendJsonNumber(out, static_cast<double>(samples_));
    out += ",\"mean\":";
    appendJsonNumber(out, meanValue());
    out += ",\"p50\":";
    appendJsonNumber(out, static_cast<double>(percentile(0.50)));
    out += ",\"p95\":";
    appendJsonNumber(out, static_cast<double>(percentile(0.95)));
    out += ",\"p99\":";
    appendJsonNumber(out, static_cast<double>(percentile(0.99)));
    out += ",\"counts\":{";
    bool first = true;
    for (std::size_t v = 0; v < counts_.size(); ++v) {
        if (counts_[v] == 0)
            continue;
        if (!first)
            out += ",";
        first = false;
        appendJsonString(out, std::to_string(v));
        out += ":";
        appendJsonNumber(out, static_cast<double>(counts_[v]));
    }
    out += "}}";
    return out;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = 0;
    sum_ = 0;
}

void
Histogram::save(SerialOut &out) const
{
    out.u64(counts_.size());
    for (std::uint64_t c : counts_)
        out.u64(c);
    out.u64(samples_);
    out.u64(sum_);
}

void
Histogram::restore(SerialIn &in)
{
    if (!in.check(in.u64() == counts_.size(),
                  "histogram bucket count mismatch"))
        return;
    for (std::uint64_t &c : counts_)
        c = in.u64();
    samples_ = in.u64();
    sum_ = in.u64();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean of non-positive value %f", x);
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

} // namespace zerodev
