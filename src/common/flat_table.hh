/**
 * @file
 * Open-addressed hash containers keyed by 64-bit addresses, used on the
 * simulator's hot path in place of the node-based std::unordered_map /
 * std::unordered_set: FlatTable (key -> value) and FlatSet (keys only).
 *
 * Layout: power-of-two capacity, robin-hood linear probing (an insert
 * displaces any occupant closer to its home slot), and tombstone-free
 * backward-shift deletion, so lookups stay short even after heavy
 * insert/erase churn and every probe walks contiguous arrays.
 *
 * Pointer stability: a value pointer returned by find()/tryEmplace() is
 * invalidated by ANY subsequent insert or erase (robin-hood displacement
 * moves values even without a rehash). Callers must copy out or finish
 * writing through the pointer before mutating the table again — the
 * simulator's directory/memory-store access patterns already do.
 *
 * Iteration order is unspecified; callers that serialize collect and
 * sort the keys (as they already did for the std:: containers), keeping
 * snapshot bytes identical.
 */

#ifndef ZERODEV_COMMON_FLAT_TABLE_HH
#define ZERODEV_COMMON_FLAT_TABLE_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace zerodev
{

template <typename V>
class FlatTable
{
  public:
    FlatTable() { rehash(kMinCapacity); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Value tracked under @p key, or null. */
    V *
    find(std::uint64_t key)
    {
        const std::size_t idx = findIndex(key);
        return idx == kNotFound ? nullptr : &vals_[idx];
    }

    const V *
    find(std::uint64_t key) const
    {
        const std::size_t idx = findIndex(key);
        return idx == kNotFound ? nullptr : &vals_[idx];
    }

    bool contains(std::uint64_t key) const
    {
        return findIndex(key) != kNotFound;
    }

    /**
     * Insert a default-constructed value under @p key if absent.
     * Returns {value pointer, inserted}. The pointer is valid only until
     * the next mutation (see the header comment).
     */
    std::pair<V *, bool>
    tryEmplace(std::uint64_t key)
    {
        if ((size_ + 1) * 8 > capacity() * 7)
            rehash(capacity() * 2);
        for (;;) {
            std::size_t idx = homeOf(key);
            std::uint8_t d = 1;
            bool overflow = false;
            for (;;) {
                if (dist_[idx] == 0) {
                    keys_[idx] = key;
                    vals_[idx] = V{};
                    dist_[idx] = d;
                    ++size_;
                    return {&vals_[idx], true};
                }
                if (dist_[idx] < d)
                    break; // displace the richer occupant (robin hood)
                if (keys_[idx] == key)
                    return {&vals_[idx], false};
                idx = (idx + 1) & mask_;
                if (++d == kMaxDist) {
                    overflow = true;
                    break;
                }
            }
            if (overflow) {
                // Pathological probe chain: grow and retry from scratch.
                rehash(capacity() * 2);
                continue;
            }
            // Swap the new element into the displaced slot, then push the
            // evicted occupant down the probe chain. The new element does
            // not move again, so its pointer survives the shuffle.
            std::uint64_t ck = keys_[idx];
            V cv = std::move(vals_[idx]);
            std::uint8_t cd = dist_[idx];
            keys_[idx] = key;
            vals_[idx] = V{};
            dist_[idx] = d;
            ++size_;
            V *result = &vals_[idx];
            if (!placeCarried(ck, std::move(cv), (idx + 1) & mask_,
                              static_cast<std::uint8_t>(cd + 1))) {
                // Overflow while re-homing the carried element (the new
                // element is already placed): grow — which re-inserts
                // everything — then re-locate the new element.
                rehash(capacity() * 2);
                result = find(key);
            }
            return {result, true};
        }
    }

    V &operator[](std::uint64_t key) { return *tryEmplace(key).first; }

    /** Remove @p key; returns whether it was present. Backward-shift:
     *  the displaced probe chain closes up, no tombstones. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t idx = findIndex(key);
        if (idx == kNotFound)
            return false;
        std::size_t next = (idx + 1) & mask_;
        while (dist_[next] > 1) {
            keys_[idx] = keys_[next];
            vals_[idx] = std::move(vals_[next]);
            dist_[idx] = static_cast<std::uint8_t>(dist_[next] - 1);
            idx = next;
            next = (next + 1) & mask_;
        }
        dist_[idx] = 0;
        vals_[idx] = V{};
        --size_;
        return true;
    }

    void
    clear()
    {
        keys_.clear();
        vals_.clear();
        dist_.clear();
        size_ = 0;
        mask_ = 0;
        rehash(kMinCapacity);
    }

    /** Visit every entry: fn(key, value). Unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < dist_.size(); ++i) {
            if (dist_[i] != 0)
                fn(keys_[i], vals_[i]);
        }
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::uint8_t kMaxDist = 255;
    static constexpr std::size_t kNotFound = ~static_cast<std::size_t>(0);

    std::size_t capacity() const { return mask_ + 1; }

    /** splitmix64 finalizer: full-avalanche mix of the block address so
     *  strided access patterns spread over the table. */
    static std::uint64_t
    hashKey(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    std::size_t homeOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(hashKey(key)) & mask_;
    }

    std::size_t
    findIndex(std::uint64_t key) const
    {
        std::size_t idx = homeOf(key);
        std::uint8_t d = 1;
        for (;;) {
            const std::uint8_t occ = dist_[idx];
            if (occ == 0 || occ < d)
                return kNotFound; // a richer slot means the key is absent
            if (keys_[idx] == key)
                return idx;
            idx = (idx + 1) & mask_;
            if (++d == kMaxDist)
                return kNotFound;
        }
    }

    /** Robin-hood push of an already-resident element displaced by an
     *  insert. Returns false on probe-distance overflow. */
    bool
    placeCarried(std::uint64_t ck, V cv, std::size_t idx, std::uint8_t cd)
    {
        for (;;) {
            if (cd == kMaxDist)
                return false;
            if (dist_[idx] == 0) {
                keys_[idx] = ck;
                vals_[idx] = std::move(cv);
                dist_[idx] = cd;
                return true;
            }
            if (dist_[idx] < cd) {
                std::swap(ck, keys_[idx]);
                std::swap(cv, vals_[idx]);
                std::swap(cd, dist_[idx]);
            }
            idx = (idx + 1) & mask_;
            ++cd;
        }
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        std::vector<std::uint8_t> old_dist = std::move(dist_);

        keys_.assign(new_capacity, 0);
        vals_.assign(new_capacity, V{});
        dist_.assign(new_capacity, 0);
        mask_ = new_capacity - 1;
        size_ = 0;

        for (std::size_t i = 0; i < old_dist.size(); ++i) {
            if (old_dist[i] != 0)
                *tryEmplace(old_keys[i]).first = std::move(old_vals[i]);
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> vals_;
    std::vector<std::uint8_t> dist_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/** Key-only companion of FlatTable (replaces std::unordered_set of
 *  block addresses). */
class FlatSet
{
  public:
    std::size_t size() const { return table_.size(); }
    bool empty() const { return table_.empty(); }
    bool contains(std::uint64_t key) const { return table_.contains(key); }

    /** Returns whether the key was newly inserted. */
    bool insert(std::uint64_t key) { return table_.tryEmplace(key).second; }

    bool erase(std::uint64_t key) { return table_.erase(key); }
    void clear() { table_.clear(); }

    /** Visit every key. Unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        table_.forEach([&](std::uint64_t key, const Unit &) { fn(key); });
    }

  private:
    struct Unit
    {
    };

    FlatTable<Unit> table_;
};

} // namespace zerodev

#endif // ZERODEV_COMMON_FLAT_TABLE_HH
