#include "mem/memory_store.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace zerodev
{

const char *
toString(SocketDirState s)
{
    switch (s) {
      case SocketDirState::Invalid: return "I";
      case SocketDirState::Owned: return "M/E";
      case SocketDirState::Shared: return "S";
      case SocketDirState::Corrupted: return "Corrupted";
    }
    return "?";
}

bool
MemoryStore::corrupted(BlockAddr block) const
{
    const BlockMeta *m = blocks_.find(block);
    return m != nullptr && m->anySegment();
}

bool
MemoryStore::hasSegment(BlockAddr block, SocketId s) const
{
    const BlockMeta *m = blocks_.find(block);
    return m != nullptr && m->segments[s].has_value();
}

void
MemoryStore::storeSegment(BlockAddr block, SocketId s, const DirEntry &e)
{
    if (!e.live())
        panic("housing a dead directory entry in memory");
    BlockMeta &meta = blocks_[block];
    const bool was_corrupted = meta.anySegment();
    meta.segments[s] = e;
    if (!was_corrupted)
        ++corruptedCount_;
    destroyed_.insert(block);
}

void
MemoryStore::restoreData(BlockAddr block)
{
    destroyed_.erase(block);
}

std::optional<DirEntry>
MemoryStore::loadSegment(BlockAddr block, SocketId s) const
{
    const BlockMeta *m = blocks_.find(block);
    if (m == nullptr)
        return std::nullopt;
    return m->segments[s];
}

void
MemoryStore::clearSegment(BlockAddr block, SocketId s)
{
    BlockMeta *m = blocks_.find(block);
    if (m == nullptr || !m->segments[s].has_value())
        return;
    m->segments[s].reset();
    if (!m->anySegment())
        --corruptedCount_;
    maybeErase(block);
}

void
MemoryStore::clearBlock(BlockAddr block)
{
    BlockMeta *m = blocks_.find(block);
    if (m == nullptr)
        return;
    if (m->anySegment())
        --corruptedCount_;
    for (auto &seg : m->segments)
        seg.reset();
    maybeErase(block);
}

std::uint32_t
MemoryStore::segmentCount(BlockAddr block) const
{
    const BlockMeta *m = blocks_.find(block);
    if (m == nullptr)
        return 0;
    std::uint32_t n = 0;
    for (const auto &seg : m->segments) {
        if (seg.has_value())
            ++n;
    }
    return n;
}

bool
MemoryStore::dirEvictBit(BlockAddr block) const
{
    const BlockMeta *m = blocks_.find(block);
    return m != nullptr && m->socketEntry.has_value();
}

void
MemoryStore::storeSocketEntry(BlockAddr block, const SocketDirEntry &e)
{
    BlockMeta &meta = blocks_[block];
    if (!meta.socketEntry.has_value())
        ++dirEvictCount_;
    meta.socketEntry = e;
}

std::optional<SocketDirEntry>
MemoryStore::loadSocketEntry(BlockAddr block) const
{
    const BlockMeta *m = blocks_.find(block);
    if (m == nullptr)
        return std::nullopt;
    return m->socketEntry;
}

void
MemoryStore::clearSocketEntry(BlockAddr block)
{
    BlockMeta *m = blocks_.find(block);
    if (m == nullptr || !m->socketEntry.has_value())
        return;
    m->socketEntry.reset();
    --dirEvictCount_;
    maybeErase(block);
}

void
MemoryStore::maybeErase(BlockAddr block)
{
    const BlockMeta *m = blocks_.find(block);
    if (m != nullptr && m->empty())
        blocks_.erase(block);
}

void
MemoryStore::save(SerialOut &out) const
{
    std::vector<BlockAddr> keys;
    keys.reserve(blocks_.size());
    blocks_.forEach([&](BlockAddr block, const BlockMeta &) {
        keys.push_back(block);
    });
    std::sort(keys.begin(), keys.end());
    out.u64(keys.size());
    for (BlockAddr block : keys) {
        const BlockMeta &meta = *blocks_.find(block);
        out.u64(block);
        for (const auto &seg : meta.segments) {
            out.b(seg.has_value());
            if (seg)
                saveEntry(out, *seg);
        }
        out.b(meta.socketEntry.has_value());
        if (meta.socketEntry)
            saveEntry(out, *meta.socketEntry);
    }
    std::vector<BlockAddr> dead;
    dead.reserve(destroyed_.size());
    destroyed_.forEach([&](BlockAddr block) { dead.push_back(block); });
    std::sort(dead.begin(), dead.end());
    out.u64(dead.size());
    for (BlockAddr block : dead)
        out.u64(block);
    out.u64(corruptedCount_);
    out.u64(dirEvictCount_);
}

void
MemoryStore::restore(SerialIn &in)
{
    blocks_.clear();
    destroyed_.clear();
    const std::uint64_t nBlocks = in.u64();
    for (std::uint64_t i = 0; i < nBlocks && in.ok(); ++i) {
        const BlockAddr block = in.u64();
        BlockMeta meta;
        for (auto &seg : meta.segments) {
            if (in.b())
                seg = loadEntry(in);
        }
        // Qualified: the member loadSocketEntry(BlockAddr) would hide
        // the namespace-scope codec.
        if (in.b())
            meta.socketEntry = zerodev::loadSocketEntry(in);
        blocks_[block] = meta;
    }
    const std::uint64_t nDead = in.u64();
    for (std::uint64_t i = 0; i < nDead && in.ok(); ++i)
        destroyed_.insert(in.u64());
    corruptedCount_ = in.u64();
    dirEvictCount_ = in.u64();
}

} // namespace zerodev
