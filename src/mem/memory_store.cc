#include "mem/memory_store.hh"

#include "common/log.hh"

namespace zerodev
{

const char *
toString(SocketDirState s)
{
    switch (s) {
      case SocketDirState::Invalid: return "I";
      case SocketDirState::Owned: return "M/E";
      case SocketDirState::Shared: return "S";
      case SocketDirState::Corrupted: return "Corrupted";
    }
    return "?";
}

bool
MemoryStore::corrupted(BlockAddr block) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() && it->second.anySegment();
}

bool
MemoryStore::hasSegment(BlockAddr block, SocketId s) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() && it->second.segments[s].has_value();
}

void
MemoryStore::storeSegment(BlockAddr block, SocketId s, const DirEntry &e)
{
    if (!e.live())
        panic("housing a dead directory entry in memory");
    BlockMeta &meta = blocks_[block];
    const bool was_corrupted = meta.anySegment();
    meta.segments[s] = e;
    if (!was_corrupted)
        ++corruptedCount_;
    destroyed_.insert(block);
}

void
MemoryStore::restoreData(BlockAddr block)
{
    destroyed_.erase(block);
}

std::optional<DirEntry>
MemoryStore::loadSegment(BlockAddr block, SocketId s) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return std::nullopt;
    return it->second.segments[s];
}

void
MemoryStore::clearSegment(BlockAddr block, SocketId s)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end() || !it->second.segments[s].has_value())
        return;
    it->second.segments[s].reset();
    if (!it->second.anySegment())
        --corruptedCount_;
    maybeErase(block);
}

void
MemoryStore::clearBlock(BlockAddr block)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return;
    if (it->second.anySegment())
        --corruptedCount_;
    for (auto &seg : it->second.segments)
        seg.reset();
    maybeErase(block);
}

std::uint32_t
MemoryStore::segmentCount(BlockAddr block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return 0;
    std::uint32_t n = 0;
    for (const auto &seg : it->second.segments) {
        if (seg.has_value())
            ++n;
    }
    return n;
}

bool
MemoryStore::dirEvictBit(BlockAddr block) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() && it->second.socketEntry.has_value();
}

void
MemoryStore::storeSocketEntry(BlockAddr block, const SocketDirEntry &e)
{
    BlockMeta &meta = blocks_[block];
    if (!meta.socketEntry.has_value())
        ++dirEvictCount_;
    meta.socketEntry = e;
}

std::optional<SocketDirEntry>
MemoryStore::loadSocketEntry(BlockAddr block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return std::nullopt;
    return it->second.socketEntry;
}

void
MemoryStore::clearSocketEntry(BlockAddr block)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end() || !it->second.socketEntry.has_value())
        return;
    it->second.socketEntry.reset();
    --dirEvictCount_;
    maybeErase(block);
}

void
MemoryStore::maybeErase(BlockAddr block)
{
    auto it = blocks_.find(block);
    if (it != blocks_.end() && it->second.empty())
        blocks_.erase(it);
}

} // namespace zerodev
