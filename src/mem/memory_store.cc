#include "mem/memory_store.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace zerodev
{

const char *
toString(SocketDirState s)
{
    switch (s) {
      case SocketDirState::Invalid: return "I";
      case SocketDirState::Owned: return "M/E";
      case SocketDirState::Shared: return "S";
      case SocketDirState::Corrupted: return "Corrupted";
    }
    return "?";
}

bool
MemoryStore::corrupted(BlockAddr block) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() && it->second.anySegment();
}

bool
MemoryStore::hasSegment(BlockAddr block, SocketId s) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() && it->second.segments[s].has_value();
}

void
MemoryStore::storeSegment(BlockAddr block, SocketId s, const DirEntry &e)
{
    if (!e.live())
        panic("housing a dead directory entry in memory");
    BlockMeta &meta = blocks_[block];
    const bool was_corrupted = meta.anySegment();
    meta.segments[s] = e;
    if (!was_corrupted)
        ++corruptedCount_;
    destroyed_.insert(block);
}

void
MemoryStore::restoreData(BlockAddr block)
{
    destroyed_.erase(block);
}

std::optional<DirEntry>
MemoryStore::loadSegment(BlockAddr block, SocketId s) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return std::nullopt;
    return it->second.segments[s];
}

void
MemoryStore::clearSegment(BlockAddr block, SocketId s)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end() || !it->second.segments[s].has_value())
        return;
    it->second.segments[s].reset();
    if (!it->second.anySegment())
        --corruptedCount_;
    maybeErase(block);
}

void
MemoryStore::clearBlock(BlockAddr block)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return;
    if (it->second.anySegment())
        --corruptedCount_;
    for (auto &seg : it->second.segments)
        seg.reset();
    maybeErase(block);
}

std::uint32_t
MemoryStore::segmentCount(BlockAddr block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return 0;
    std::uint32_t n = 0;
    for (const auto &seg : it->second.segments) {
        if (seg.has_value())
            ++n;
    }
    return n;
}

bool
MemoryStore::dirEvictBit(BlockAddr block) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() && it->second.socketEntry.has_value();
}

void
MemoryStore::storeSocketEntry(BlockAddr block, const SocketDirEntry &e)
{
    BlockMeta &meta = blocks_[block];
    if (!meta.socketEntry.has_value())
        ++dirEvictCount_;
    meta.socketEntry = e;
}

std::optional<SocketDirEntry>
MemoryStore::loadSocketEntry(BlockAddr block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return std::nullopt;
    return it->second.socketEntry;
}

void
MemoryStore::clearSocketEntry(BlockAddr block)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end() || !it->second.socketEntry.has_value())
        return;
    it->second.socketEntry.reset();
    --dirEvictCount_;
    maybeErase(block);
}

void
MemoryStore::maybeErase(BlockAddr block)
{
    auto it = blocks_.find(block);
    if (it != blocks_.end() && it->second.empty())
        blocks_.erase(it);
}

void
MemoryStore::save(SerialOut &out) const
{
    std::vector<BlockAddr> keys;
    keys.reserve(blocks_.size());
    for (const auto &[block, meta] : blocks_) {
        (void)meta;
        keys.push_back(block);
    }
    std::sort(keys.begin(), keys.end());
    out.u64(keys.size());
    for (BlockAddr block : keys) {
        const BlockMeta &meta = blocks_.at(block);
        out.u64(block);
        for (const auto &seg : meta.segments) {
            out.b(seg.has_value());
            if (seg)
                saveEntry(out, *seg);
        }
        out.b(meta.socketEntry.has_value());
        if (meta.socketEntry)
            saveEntry(out, *meta.socketEntry);
    }
    std::vector<BlockAddr> dead(destroyed_.begin(), destroyed_.end());
    std::sort(dead.begin(), dead.end());
    out.u64(dead.size());
    for (BlockAddr block : dead)
        out.u64(block);
    out.u64(corruptedCount_);
    out.u64(dirEvictCount_);
}

void
MemoryStore::restore(SerialIn &in)
{
    blocks_.clear();
    destroyed_.clear();
    const std::uint64_t nBlocks = in.u64();
    for (std::uint64_t i = 0; i < nBlocks && in.ok(); ++i) {
        const BlockAddr block = in.u64();
        BlockMeta meta;
        for (auto &seg : meta.segments) {
            if (in.b())
                seg = loadEntry(in);
        }
        // Qualified: the member loadSocketEntry(BlockAddr) would hide
        // the namespace-scope codec.
        if (in.b())
            meta.socketEntry = zerodev::loadSocketEntry(in);
        blocks_[block] = meta;
    }
    const std::uint64_t nDead = in.u64();
    for (std::uint64_t i = 0; i < nDead && in.ok(); ++i)
        destroyed_.insert(in.u64());
    corruptedCount_ = in.u64();
    dirEvictCount_ = in.u64();
}

} // namespace zerodev
