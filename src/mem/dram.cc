#include "mem/dram.hh"

#include "common/log.hh"
#include "common/serialize.hh"

namespace zerodev
{

Dram::Dram(const DramConfig &cfg, std::uint32_t block_bytes)
    : cfg_(cfg),
      blocksPerRow_(cfg.rowBytes / block_bytes),
      banksPerChannel_(cfg.ranksPerChannel * cfg.banksPerRank),
      banks_(static_cast<std::size_t>(cfg.channels) * banksPerChannel_)
{
    if (blocksPerRow_ == 0)
        fatal("DRAM row smaller than a block");
}

Dram::Decoded
Dram::decode(BlockAddr block) const
{
    const std::uint64_t channel = block % cfg_.channels;
    const std::uint64_t a1 = block / cfg_.channels;
    const std::uint64_t a2 = a1 / blocksPerRow_; // drop column bits
    const std::uint64_t bank_in_channel = a2 % banksPerChannel_;
    const std::uint64_t row = a2 / banksPerChannel_;
    return {static_cast<std::size_t>(channel * banksPerChannel_ +
                                     bank_in_channel),
            static_cast<std::int64_t>(row)};
}

Cycle
Dram::access(BlockAddr block, Cycle now)
{
    const Decoded d = decode(block);
    Bank &bank = banks_[d.bank];
    const Cycle start = bank.availableAt > now ? bank.availableAt : now;

    Cycle service;
    if (bank.openRow == d.row) {
        service = cfg_.tCas + cfg_.tBurst;
        ++stats_.rowHits;
    } else if (bank.openRow < 0) {
        service = cfg_.tRcd + cfg_.tCas + cfg_.tBurst;
        ++stats_.rowMisses;
    } else {
        service = cfg_.tRp + cfg_.tRcd + cfg_.tCas + cfg_.tBurst;
        ++stats_.rowConflicts;
    }
    bank.openRow = d.row;
    bank.availableAt = start + service;
    return start + service;
}

Cycle
Dram::read(BlockAddr block, Cycle now, bool de_flow)
{
    ++stats_.reads;
    if (de_flow)
        ++stats_.deReads;
    return access(block, now);
}

void
Dram::write(BlockAddr block, Cycle now, bool de_flow)
{
    ++stats_.writes;
    if (de_flow)
        ++stats_.deWrites;
    access(block, now);
}

StatDump
Dram::report() const
{
    StatDump d;
    d.add("reads", static_cast<double>(stats_.reads));
    d.add("writes", static_cast<double>(stats_.writes));
    d.add("row_hits", static_cast<double>(stats_.rowHits));
    d.add("row_misses", static_cast<double>(stats_.rowMisses));
    d.add("row_conflicts", static_cast<double>(stats_.rowConflicts));
    d.add("de_reads", static_cast<double>(stats_.deReads));
    d.add("de_writes", static_cast<double>(stats_.deWrites));
    return d;
}

void
Dram::save(SerialOut &out) const
{
    out.u64(banks_.size());
    for (const Bank &b : banks_) {
        out.i64(b.openRow);
        out.u64(b.availableAt);
    }
    out.u64(stats_.reads);
    out.u64(stats_.writes);
    out.u64(stats_.rowHits);
    out.u64(stats_.rowMisses);
    out.u64(stats_.rowConflicts);
    out.u64(stats_.deReads);
    out.u64(stats_.deWrites);
}

void
Dram::restore(SerialIn &in)
{
    if (!in.check(in.u64() == banks_.size(), "DRAM bank count mismatch"))
        return;
    for (Bank &b : banks_) {
        b.openRow = in.i64();
        b.availableAt = in.u64();
    }
    stats_.reads = in.u64();
    stats_.writes = in.u64();
    stats_.rowHits = in.u64();
    stats_.rowMisses = in.u64();
    stats_.rowConflicts = in.u64();
    stats_.deReads = in.u64();
    stats_.deWrites = in.u64();
}

} // namespace zerodev
