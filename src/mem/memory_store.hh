/**
 * @file
 * Per-block home-memory metadata backing the ZeroDEV "house the evicted
 * directory entry inside the stale memory block" mechanism (Section III-D,
 * Figures 13-14).
 *
 * A 64-byte memory block is partitioned into fixed per-socket segments for
 * intra-socket directory entries, plus (optionally) one segment for an
 * evicted socket-level directory entry guarded by a per-block DirEvict
 * bit (Section III-D5, second solution). Only blocks that currently house
 * at least one entry carry any storage here; everything else is implicit.
 */

#ifndef ZERODEV_MEM_MEMORY_STORE_HH
#define ZERODEV_MEM_MEMORY_STORE_HH

#include <array>
#include <cstdint>
#include <optional>

#include "common/flat_table.hh"
#include "common/types.hh"
#include "directory/dir_entry.hh"

namespace zerodev
{

/** Home-memory metadata for blocks in the corrupted state. */
class MemoryStore
{
  public:
    /** True iff any intra-socket segment of @p block holds an entry,
     *  i.e. the data contents of the block are corrupted. */
    bool corrupted(BlockAddr block) const;

    /** True iff socket @p s has an entry housed in @p block. */
    bool hasSegment(BlockAddr block, SocketId s) const;

    /** Write socket @p s's evicted directory entry into @p block
     *  (the WB_DE flow). */
    void storeSegment(BlockAddr block, SocketId s, const DirEntry &e);

    /** Read socket @p s's segment (the GET_DE / corrupted-response
     *  flows); the segment stays in place. */
    std::optional<DirEntry> loadSegment(BlockAddr block, SocketId s) const;

    /** Remove socket @p s's segment; un-corrupts the block when it was
     *  the last occupied segment. */
    void clearSegment(BlockAddr block, SocketId s);

    /** Remove every segment of @p block (the block is being rewritten
     *  with real data). */
    void clearBlock(BlockAddr block);

    /** Number of sockets with a segment housed in @p block. */
    std::uint32_t segmentCount(BlockAddr block) const;

    // --- Data-destruction lifetime (the "corrupted" memory state) ---
    //
    // The first WB_DE overwrites the block's data in memory; the data
    // stays unusable even after segments are extracted back into
    // sockets, until a *full-block* write restores it (a dirty
    // writeback, or the Section III-D4 last-copy retrieval).

    /** True iff @p block's memory data has been overwritten and not yet
     *  restored by a full-block write. */
    bool destroyed(BlockAddr block) const
    {
        return destroyed_.contains(block);
    }

    /** A full-block data write landed: the memory copy is valid again. */
    void restoreData(BlockAddr block);

    /** Number of blocks whose memory data is currently destroyed. */
    std::uint64_t destroyedBlocks() const { return destroyed_.size(); }

    /** Visit every destroyed block: fn(block). */
    template <typename Fn>
    void
    forEachDestroyed(Fn &&fn) const
    {
        destroyed_.forEach(fn);
    }

    // --- Socket-level directory entry housed in memory (Sec. III-D5) ---

    /** DirEvict bit: true iff @p block houses an evicted socket-level
     *  directory entry. */
    bool dirEvictBit(BlockAddr block) const;

    /** House an evicted socket-level entry in @p block. */
    void storeSocketEntry(BlockAddr block, const SocketDirEntry &e);

    /** Read the housed socket-level entry. */
    std::optional<SocketDirEntry> loadSocketEntry(BlockAddr block) const;

    /** Clear the housed socket-level entry and its DirEvict bit. */
    void clearSocketEntry(BlockAddr block);

    /** Number of blocks currently corrupted (for statistics). */
    std::uint64_t corruptedBlocks() const { return corruptedCount_; }

    /** Number of blocks whose DirEvict bit is set. */
    std::uint64_t dirEvictBlocks() const { return dirEvictCount_; }

    /** Snapshot every housed segment, socket entry and destroyed-data
     *  bit, serialized in sorted block order. */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    struct BlockMeta
    {
        std::array<std::optional<DirEntry>, kMaxSockets> segments;
        std::optional<SocketDirEntry> socketEntry;

        bool
        anySegment() const
        {
            for (const auto &s : segments) {
                if (s.has_value())
                    return true;
            }
            return false;
        }

        bool empty() const { return !anySegment() && !socketEntry; }
    };

    /** Drop the map entry when nothing is housed any more. */
    void maybeErase(BlockAddr block);

    FlatTable<BlockMeta> blocks_;
    FlatSet destroyed_;
    std::uint64_t corruptedCount_ = 0;
    std::uint64_t dirEvictCount_ = 0;
};

} // namespace zerodev

#endif // ZERODEV_MEM_MEMORY_STORE_HH
