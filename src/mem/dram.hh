/**
 * @file
 * DRAMSim2-lite main-memory timing model (Table I): per-channel, per-rank,
 * per-bank row-buffer state with DDR3-2133 latency parameters expressed in
 * core cycles. Bank availability times serialise conflicting accesses,
 * which is the first-order queueing behaviour the paper's DE-writeback
 * overheads interact with.
 */

#ifndef ZERODEV_MEM_DRAM_HH
#define ZERODEV_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace zerodev
{

/** Aggregate DRAM statistics. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;    //!< closed-row activations
    std::uint64_t rowConflicts = 0; //!< precharge + activate
    std::uint64_t deReads = 0;   //!< reads caused by directory-entry flows
    std::uint64_t deWrites = 0;  //!< writes caused by directory-entry flows
};

/** One socket's main memory (all channels). */
class Dram
{
  public:
    Dram(const DramConfig &cfg, std::uint32_t block_bytes);

    /**
     * Issue a read of @p block at time @p now.
     * @param de_flow true when the access serves a directory-entry
     *        movement (WB_DE / GET_DE / corrupted-block repair).
     * @return the cycle at which the data is available.
     */
    Cycle read(BlockAddr block, Cycle now, bool de_flow = false);

    /**
     * Issue a write of @p block at time @p now. Writes are posted: the
     * requester does not wait, but the bank is occupied, delaying later
     * accesses to it.
     */
    void write(BlockAddr block, Cycle now, bool de_flow = false);

    const DramStats &stats() const { return stats_; }
    void clearStats() { stats_ = DramStats{}; }

    StatDump report() const;

    /** Snapshot the row-buffer/availability timing state + counters
     *  (bank availability times shape post-resume scheduling, so they
     *  are part of the bit-identical-resume contract). */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        Cycle availableAt = 0;
    };

    struct Decoded
    {
        std::size_t bank; //!< flat bank index across channels and ranks
        std::int64_t row;
    };

    Decoded decode(BlockAddr block) const;

    /** Occupy the bank and return the completion time of the access. */
    Cycle access(BlockAddr block, Cycle now);

    DramConfig cfg_;
    std::uint32_t blocksPerRow_;
    std::uint32_t banksPerChannel_;
    std::vector<Bank> banks_;
    DramStats stats_;
};

} // namespace zerodev

#endif // ZERODEV_MEM_DRAM_HH
