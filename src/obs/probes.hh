/**
 * @file
 * Standard probe set binding an IntervalSampler to a CmpSystem: directory
 * occupancy, LLC ways consumed by spilled/fused entries, DEV rate, mesh
 * traffic, access/miss rates — the series the paper's occupancy and
 * eviction-dynamics arguments are made from.
 */

#ifndef ZERODEV_OBS_PROBES_HH
#define ZERODEV_OBS_PROBES_HH

namespace zerodev
{
class CmpSystem;
}

namespace zerodev::obs
{

class IntervalSampler;

/**
 * Register the standard system series on @p sampler. @p sys must outlive
 * the sampler's last tick. Registered series (see OBSERVABILITY.md):
 *  Level: dir_live_entries, dir_occupancy, llc_de_lines,
 *         llc_spilled_lines, llc_fused_lines, mem_corrupted_blocks
 *  Rate:  accesses, l2_misses, dev_invalidations, llc_de_evictions,
 *         traffic_bytes, mesh_hops
 */
void registerSystemProbes(IntervalSampler &sampler, const CmpSystem &sys);

} // namespace zerodev::obs

#endif // ZERODEV_OBS_PROBES_HH
