#include "obs/report.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <cmath>
#include <map>
#include <mutex>

#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hh"
#include "obs/json.hh"
#include "obs/latency.hh"

namespace zerodev::obs
{

namespace
{

/** mkdir -p: create @p path and every missing parent. */
bool
makeDirs(const std::string &path)
{
    std::string prefix;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t slash = path.find('/', pos);
        prefix = slash == std::string::npos ? path
                                            : path.substr(0, slash);
        pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
        if (prefix.empty())
            continue; // leading '/'
        if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    struct ::stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace

std::string
buildCommit()
{
    const char *commit = std::getenv("ZERODEV_COMMIT");
    return commit ? commit : "";
}

void
stampArtifact(JsonWriter &w, std::string_view schema)
{
    w.field("schema", schema);
    w.field("commit", buildCommit());
}

namespace
{

std::mutex g_dirOverrideMu;
std::map<std::string, std::string> g_dirOverrides;

/** The active override for @p var, or "" when none is set. */
std::string
dirOverride(const char *var)
{
    std::lock_guard<std::mutex> lock(g_dirOverrideMu);
    const auto it = g_dirOverrides.find(var);
    return it == g_dirOverrides.end() ? std::string() : it->second;
}

} // namespace

void
setOutputDirOverride(const char *var, const std::string &dir)
{
    std::lock_guard<std::mutex> lock(g_dirOverrideMu);
    if (dir.empty())
        g_dirOverrides.erase(var);
    else
        g_dirOverrides[var] = dir;
}

std::string
outputDirFromEnv(const char *var)
{
    std::string path = dirOverride(var);
    if (path.empty()) {
        const char *dir = std::getenv(var);
        if (!dir || !*dir)
            return {};
        path = dir;
    }
    if (!makeDirs(path)) {
        std::fprintf(stderr,
                     "zerodev: cannot create %s directory '%s': %s\n",
                     var, path.c_str(), std::strerror(errno));
        std::exit(2);
    }
    // Probe writability up front: a full run whose reports all vanish
    // into EACCES at the end is strictly worse than failing now.
    const std::string probe = path + "/.zerodev-writable";
    std::FILE *f = std::fopen(probe.c_str(), "w");
    if (!f) {
        std::fprintf(stderr,
                     "zerodev: %s directory '%s' is not writable: %s\n",
                     var, path.c_str(), std::strerror(errno));
        std::exit(2);
    }
    std::fclose(f);
    ::unlink(probe.c_str());
    return path;
}

namespace
{

void
kv(std::string &out, const char *k, const std::string &v)
{
    out += k;
    out += '=';
    out += v;
    out += ';';
}

void
kv(std::string &out, const char *k, std::uint64_t v)
{
    kv(out, k, std::to_string(v));
}

void
kv(std::string &out, const char *k, double v)
{
    kv(out, k, jsonNumber(v));
}

void
kv(std::string &out, const char *k, bool v)
{
    kv(out, k, std::string(v ? "1" : "0"));
}

void
cacheKv(std::string &out, const char *name, const CacheConfig &c)
{
    std::string pfx(name);
    kv(out, (pfx + ".size").c_str(), c.sizeBytes);
    kv(out, (pfx + ".ways").c_str(), std::uint64_t(c.ways));
    kv(out, (pfx + ".lookup").c_str(), std::uint64_t(c.lookupCycles));
}

void
latencyBreakdownToJson(JsonWriter &w, const LatencyBreakdown &lat)
{
    w.beginObject();
    w.field("transactions", lat.transactions);
    w.field("totalCycles", lat.totalCycles);
    w.field("overlapCycles", lat.overlapCycles);

    w.key("components").beginObject();
    for (std::size_t i = 0; i < LatencyBreakdown::kNumComps; ++i) {
        const auto &c = lat.components[i];
        w.key(toString(static_cast<LatComp>(i))).beginObject();
        w.field("cycles", c.cycles);
        w.field("samples", c.samples);
        w.field("mean", c.mean);
        w.field("p50", c.p50);
        w.field("p95", c.p95);
        w.field("p99", c.p99);
        w.endObject();
    }
    w.endObject();

    w.key("perClass").beginObject();
    for (std::size_t k = 0; k < LatencyBreakdown::kMaxClasses; ++k) {
        const auto &row = lat.classes[k];
        if (row.count == 0)
            continue;
        // The class index is an AccessClass ordinal; name it so reports
        // stay readable without the enum definition at hand.
        w.key(toString(static_cast<AccessClass>(k))).beginObject();
        w.field("count", row.count);
        w.field("cycles", row.cycles);
        w.key("components").beginObject();
        for (std::size_t i = 0; i < LatencyBreakdown::kNumComps; ++i) {
            if (row.compCycles[i])
                w.field(toString(static_cast<LatComp>(i)),
                        row.compCycles[i]);
        }
        w.endObject();
        w.endObject();
    }
    w.endObject();

    w.key("background").beginObject();
    for (std::size_t i = 0; i < LatencyBreakdown::kNumComps; ++i) {
        if (lat.background[i])
            w.field(toString(static_cast<LatComp>(i)), lat.background[i]);
    }
    w.endObject();
    w.endObject();
}

} // namespace

std::string
configCanonicalString(const SystemConfig &cfg)
{
    std::string s;
    kv(s, "name", cfg.name);
    kv(s, "sockets", std::uint64_t(cfg.sockets));
    kv(s, "coresPerSocket", std::uint64_t(cfg.coresPerSocket));
    kv(s, "blockBytes", std::uint64_t(cfg.blockBytes));
    cacheKv(s, "l1i", cfg.l1i);
    cacheKv(s, "l1d", cfg.l1d);
    cacheKv(s, "l2", cfg.l2);
    kv(s, "llc.size", cfg.llcSizeBytes);
    kv(s, "llc.ways", std::uint64_t(cfg.llcWays));
    kv(s, "llc.banks", std::uint64_t(cfg.llcBanks));
    kv(s, "llc.tag", std::uint64_t(cfg.llcTagCycles));
    kv(s, "llc.data", std::uint64_t(cfg.llcDataCycles));
    kv(s, "dir.ratio", cfg.directory.sizeRatio);
    kv(s, "dir.ways", std::uint64_t(cfg.directory.ways));
    kv(s, "dir.lookup", std::uint64_t(cfg.directory.lookupCycles));
    kv(s, "dir.replDisabled", cfg.directory.replacementDisabled);
    // Appended only when active so every pre-partitioning fingerprint
    // (checked-in baselines, golden snapshots) is preserved verbatim.
    if (cfg.directory.tagPartitions != 0)
        kv(s, "dir.parts", std::uint64_t(cfg.directory.tagPartitions));
    kv(s, "dram.channels", std::uint64_t(cfg.dram.channels));
    kv(s, "dram.ranks", std::uint64_t(cfg.dram.ranksPerChannel));
    kv(s, "dram.banks", std::uint64_t(cfg.dram.banksPerRank));
    kv(s, "dram.rowBytes", std::uint64_t(cfg.dram.rowBytes));
    kv(s, "dram.tCas", std::uint64_t(cfg.dram.tCas));
    kv(s, "dram.tRcd", std::uint64_t(cfg.dram.tRcd));
    kv(s, "dram.tRp", std::uint64_t(cfg.dram.tRp));
    kv(s, "dram.tRas", std::uint64_t(cfg.dram.tRas));
    kv(s, "dram.tBurst", std::uint64_t(cfg.dram.tBurst));
    kv(s, "mgd.regionBytes", std::uint64_t(cfg.mgd.regionBytes));
    kv(s, "meshHop", std::uint64_t(cfg.meshHopCycles));
    kv(s, "interSocket", std::uint64_t(cfg.interSocketCycles));
    kv(s, "dirOrg", std::string(toString(cfg.dirOrg)));
    kv(s, "dirCachePolicy", std::string(toString(cfg.dirCachePolicy)));
    kv(s, "llcRepl", std::string(toString(cfg.llcReplPolicy)));
    kv(s, "llcFlavor", std::string(toString(cfg.llcFlavor)));
    kv(s, "socketDirZeroDev", cfg.socketDirZeroDev);
    kv(s, "socketDirSets", cfg.socketDirCacheSets);
    kv(s, "socketDirWays", std::uint64_t(cfg.socketDirCacheWays));
    // Appended only for the rival backends so every pre-backend
    // fingerprint (checked-in baselines, golden snapshots) is preserved
    // verbatim for the MESI+ZeroDEV family.
    if (cfg.protocol != ProtocolKind::MesiZeroDev)
        kv(s, "protocol", std::string(toString(cfg.protocol)));
    return s;
}

std::uint64_t
configFingerprint(const SystemConfig &cfg)
{
    // 64-bit FNV-1a over the canonical string: stable across runs and
    // hosts, cheap, and good enough to distinguish sweep points.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : configCanonicalString(cfg)) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
configToJson(JsonWriter &w, const SystemConfig &cfg)
{
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(configFingerprint(cfg)));

    w.beginObject();
    w.field("name", cfg.name);
    w.field("fingerprint", fp);
    w.field("sockets", std::uint64_t(cfg.sockets));
    w.field("coresPerSocket", std::uint64_t(cfg.coresPerSocket));
    w.field("blockBytes", std::uint64_t(cfg.blockBytes));
    if (cfg.protocol != ProtocolKind::MesiZeroDev)
        w.field("protocol", toString(cfg.protocol));

    const auto cache = [&w](const char *name, const CacheConfig &c) {
        w.key(name).beginObject();
        w.field("sizeBytes", c.sizeBytes);
        w.field("ways", std::uint64_t(c.ways));
        w.field("lookupCycles", std::uint64_t(c.lookupCycles));
        w.endObject();
    };
    cache("l1i", cfg.l1i);
    cache("l1d", cfg.l1d);
    cache("l2", cfg.l2);

    w.key("llc").beginObject();
    w.field("sizeBytes", cfg.llcSizeBytes);
    w.field("ways", std::uint64_t(cfg.llcWays));
    w.field("banks", std::uint64_t(cfg.llcBanks));
    w.field("tagCycles", std::uint64_t(cfg.llcTagCycles));
    w.field("dataCycles", std::uint64_t(cfg.llcDataCycles));
    w.field("flavor", toString(cfg.llcFlavor));
    w.field("replPolicy", toString(cfg.llcReplPolicy));
    w.endObject();

    w.key("directory").beginObject();
    w.field("org", toString(cfg.dirOrg));
    w.field("cachePolicy", toString(cfg.dirCachePolicy));
    w.field("sizeRatio", cfg.directory.sizeRatio);
    w.field("ways", std::uint64_t(cfg.directory.ways));
    w.field("lookupCycles", std::uint64_t(cfg.directory.lookupCycles));
    w.field("replacementDisabled", cfg.directory.replacementDisabled);
    if (cfg.directory.tagPartitions != 0) {
        w.field("tagPartitions",
                std::uint64_t(cfg.directory.tagPartitions));
    }
    w.endObject();

    w.key("mesh").beginObject();
    w.field("hopCycles", std::uint64_t(cfg.meshHopCycles));
    w.field("interSocketCycles", std::uint64_t(cfg.interSocketCycles));
    w.endObject();
    w.endObject();
}

std::string
runReportJson(const SystemConfig &cfg, const RunResult &res)
{
    JsonWriter w;
    w.beginObject();
    stampArtifact(w, "zerodev-run-report-v2");

    w.key("config");
    configToJson(w, cfg);

    w.key("result").beginObject();
    w.field("workload", res.workload);
    w.field("cycles", static_cast<std::uint64_t>(res.cycles));
    w.field("instructions", res.instructions);
    w.field("coreCacheMisses", res.coreCacheMisses);
    w.field("trafficBytes", res.trafficBytes);
    w.field("devInvalidations", res.devInvalidations);
    w.key("cores").beginArray();
    for (std::size_t c = 0; c < res.coreCycles.size(); ++c) {
        w.beginObject();
        w.field("cycles", static_cast<std::uint64_t>(res.coreCycles[c]));
        w.field("instructions", res.coreInstructions[c]);
        w.field("ipc", res.ipc(static_cast<std::uint32_t>(c)));
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("profile").beginObject();
    w.field("wallSeconds", res.wallSeconds);
    const double wall = res.wallSeconds;
    w.field("accessesPerSecond",
            wall > 0.0 ? static_cast<double>(res.instructions) / wall : 0.0);
    w.field("cyclesPerSecond",
            wall > 0.0 ? static_cast<double>(res.cycles) / wall : 0.0);
    // Host sim-rate (informational, never gated: the compare tool only
    // extracts result/latency metrics, so profile fields cannot fail a
    // perf gate).
    w.field("simAccesses", res.accesses);
    w.field("maccessesPerSecond", res.maccessesPerSecond());
    w.endObject();

    // Eviction provenance: which core induced every DEV / inclusion
    // invalidation. The per-core vectors sum to the totals (the
    // provenance-conservation invariant, checked by validateRunReport).
    // Synthetic RunResults without attribution vectors (and pre-
    // provenance consumers) simply omit the section.
    if (!res.devByInducer.empty()) {
        w.key("leakage").beginObject();
        w.field("devInvalidations", res.devInvalidations);
        w.key("devByInducingCore").beginArray();
        for (std::uint64_t v : res.devByInducer)
            w.value(v);
        w.endArray();
        w.key("inclusionByInducingCore").beginArray();
        for (std::uint64_t v : res.inclusionByInducer)
            w.value(v);
        w.endArray();
        w.endObject();
    }

    // Where the cycles went: zeros unless a LatencyProfiler was
    // attached, but always present so v2 consumers need no probing.
    w.key("latency_breakdown");
    latencyBreakdownToJson(w, res.latency);

    // The full StatDump: every counter the console dump prints, flat.
    w.key("stats").beginObject();
    for (const auto &[name, value] : res.system.entries())
        w.field(name, value);
    w.endObject();

    w.endObject();
    return w.str();
}

bool
writeRunReport(const std::string &path, const SystemConfig &cfg,
               const RunResult &res)
{
    return writeTextFile(path, runReportJson(cfg, res) + "\n");
}

bool
maybeWriteRunReport(const std::string &name, const SystemConfig &cfg,
                    const RunResult &res)
{
    const std::string dir = outputDirFromEnv("ZERODEV_REPORT_DIR");
    if (dir.empty())
        return false;
    std::string file;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        file += ok ? c : '_';
    }
    if (file.empty())
        file = "run";
    return writeRunReport(dir + "/" + file + ".json", cfg, res);
}

const std::vector<std::string> &
requiredReportKeys()
{
    static const std::vector<std::string> keys = {
        "schema", "config", "result", "profile", "stats",
    };
    return keys;
}

bool
validateRunReport(const JsonValue &doc, std::string *err)
{
    const auto fail = [err](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    if (!doc.isObject())
        return fail("report is not a JSON object");
    for (const std::string &k : requiredReportKeys()) {
        if (!doc.has(k))
            return fail("missing top-level key: " + k);
    }
    const std::string schema = doc.str("schema");
    const bool v2 = schema == "zerodev-run-report-v2";
    if (!v2 && schema != "zerodev-run-report-v1")
        return fail("unexpected schema: " + schema);

    const JsonValue *config = doc.find("config");
    if (!config->isObject() || config->str("fingerprint").empty())
        return fail("config missing fingerprint");

    const JsonValue *result = doc.find("result");
    if (!result->isObject())
        return fail("result is not an object");
    for (const char *k : {"cycles", "instructions", "coreCacheMisses",
                          "trafficBytes", "devInvalidations"}) {
        const JsonValue *v = result->find(k);
        if (!v || !v->isNumber())
            return fail(std::string("result.") + k + " missing");
    }
    const JsonValue *cores = result->find("cores");
    if (!cores || !cores->isArray())
        return fail("result.cores missing");

    const JsonValue *profile = doc.find("profile");
    if (!profile->isObject() || !profile->find("wallSeconds"))
        return fail("profile.wallSeconds missing");

    if (!doc.find("stats")->isObject())
        return fail("stats is not an object");

    // Leakage section (reports written since the provenance layer):
    // the attributed per-core DEVs must conserve the total DEV counter.
    // Optional, so pre-provenance v2 reports (checked-in baselines)
    // still validate.
    if (const JsonValue *leak = doc.find("leakage")) {
        if (!leak->isObject())
            return fail("leakage is not an object");
        const JsonValue *by = leak->find("devByInducingCore");
        if (!by || !by->isArray())
            return fail("leakage.devByInducingCore missing");
        double sum = 0.0;
        for (const JsonValue &v : by->array)
            sum += v.number;
        if (sum != leak->num("devInvalidations"))
            return fail("leakage.devByInducingCore does not sum to "
                        "devInvalidations (provenance conservation)");
    }

    if (v2) {
        const JsonValue *lat = doc.find("latency_breakdown");
        if (!lat || !lat->isObject())
            return fail("latency_breakdown missing (v2)");
        const JsonValue *comps = lat->find("components");
        if (!comps || !comps->isObject())
            return fail("latency_breakdown.components missing");
        if (lat->num("transactions") > 0.0) {
            // Attribution is exact by construction; allow 1% slack for
            // the double round-trip through JSON.
            double sum = 0.0;
            for (const auto &[name, comp] : comps->object) {
                (void)name;
                sum += comp.num("cycles");
            }
            const double total = lat->num("totalCycles");
            if (std::fabs(sum - total) > 0.01 * total)
                return fail("latency_breakdown components do not sum to "
                            "totalCycles");
        }
    }
    return true;
}

} // namespace zerodev::obs
