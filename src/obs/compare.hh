/**
 * @file
 * Run-report comparison: the perf-regression gate behind
 * `trace_tool compare`. Loads run reports (v1 or v2, single files or
 * whole directories), pairs baseline and candidate runs by config
 * fingerprint + workload, applies per-metric relative noise thresholds,
 * and renders the outcome as a human-readable markdown table and a
 * machine-readable JSON verdict ("zerodev-compare-v1").
 *
 * Every gated metric is a "higher is worse" count (cycles, misses,
 * traffic, DEV invalidations, per-component critical-path cycles), so a
 * relative increase beyond the metric's threshold is a regression and a
 * matching decrease is reported as an improvement.
 */

#ifndef ZERODEV_OBS_COMPARE_HH
#define ZERODEV_OBS_COMPARE_HH

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace zerodev::obs
{

/** One run report reduced to the fields the comparator needs. */
struct LoadedReport
{
    std::string path;        //!< file it came from
    std::string configName;  //!< config.name
    std::string fingerprint; //!< config.fingerprint (hex string)
    std::string workload;    //!< result.workload
    std::vector<double> coreIpc; //!< per-core IPC (weighted speedup)
    /** Gated metrics: result counters plus "latency.<component>"
     *  critical-path cycle totals (v2 reports only). */
    std::map<std::string, double> metrics;

    /** Pairing key: fingerprint + "/" + workload. */
    std::string key() const { return fingerprint + "/" + workload; }
};

/**
 * Parse one run-report file. Returns nullopt (with a reason in @p err)
 * when the file is unreadable, not valid JSON, or fails
 * validateRunReport(). Non-report JSON documents (e.g. bench
 * trajectories) also return nullopt.
 */
std::optional<LoadedReport> loadReportFile(const std::string &path,
                                           std::string *err = nullptr);

/**
 * Load @p path into @p out: a single report file, or a directory whose
 * "*.json" entries are loaded in sorted order (files that are valid
 * JSON but not run reports — trajectory files, verdicts — are skipped
 * silently). Returns false (with @p err) when the path does not exist,
 * a report file is malformed, or a directory yields no reports.
 */
bool loadReports(const std::string &path, std::vector<LoadedReport> &out,
                 std::string *err = nullptr);

/** Comparison knobs. */
struct CompareOptions
{
    /** Relative threshold a metric may grow by before it regresses. */
    double defaultThreshold = 0.01;

    /** Longest-prefix-match overrides; latency components and DEV
     *  invalidation counts are noisier than end-to-end cycles. */
    std::vector<std::pair<std::string, double>> prefixThresholds = {
        {"latency.", 0.05},
        {"devInvalidations", 0.05},
    };

    double thresholdFor(const std::string &metric) const;
};

/** One metric's baseline/candidate delta. */
struct MetricDelta
{
    std::string metric;
    double base = 0.0;
    double cand = 0.0;
    double rel = 0.0; //!< (cand - base) / base; huge when base == 0
    double threshold = 0.0;
    bool regression = false;  //!< rel > threshold
    bool improvement = false; //!< rel < -threshold
};

/** All metric deltas for one (fingerprint, workload) pair. */
struct PairComparison
{
    std::string key;
    std::string configName;
    std::string workload;
    /** Candidate weighted speedup over baseline (per-core IPC ratio
     *  mean); 1.0 means unchanged. */
    double weightedSpeedup = 0.0;
    std::vector<MetricDelta> deltas;

    bool regression() const;
};

/** Outcome of comparing two report sets. */
struct CompareResult
{
    std::vector<PairComparison> pairs;
    std::vector<std::string> baselineOnly;  //!< keys without a candidate
    std::vector<std::string> candidateOnly; //!< keys without a baseline

    /** True iff any pair regressed. Unpaired runs are reported but do
     *  not trip the gate (sweeps grow and shrink legitimately). */
    bool regression() const;

    /** Markdown tables, one section per pair. */
    std::string markdown() const;

    /** "zerodev-compare-v1" verdict document. */
    std::string verdictJson() const;
};

/** Pair up and diff two loaded report sets. */
CompareResult compareReports(const std::vector<LoadedReport> &base,
                             const std::vector<LoadedReport> &cand,
                             const CompareOptions &opt = {});

} // namespace zerodev::obs

#endif // ZERODEV_OBS_COMPARE_HH
