/**
 * @file
 * Critical-path latency attribution profiler.
 *
 * The protocol engine composes every transaction's completion time from a
 * handful of architectural delays — private lookups, mesh traversals,
 * directory/LLC array accesses, DRAM, entry-in-memory round-trips,
 * invalidation stalls. This profiler tags each such charge with a
 * component as it is added, and on completion attributes the
 * transaction's total latency across components:
 *
 *  - per-component cycle totals and per-transaction Histograms
 *    (p50/p95/p99 of the cycles one transaction spent in a component);
 *  - per-service-class component totals (where do Memory-class cycles
 *    go vs ThreeHop-class cycles);
 *  - an explicit residual ("other") component that absorbs whatever the
 *    instrumentation did not tag, so the components of every
 *    transaction — and therefore of the whole run — sum *exactly* to
 *    the observed total latency;
 *  - overlap accounting: the engine models parallel paths with max()
 *    (data return vs invalidation fan-out), so tagged charges can
 *    exceed the observed latency. The excess is clipped off the tail
 *    charges and counted in overlapCycles rather than inflating sums.
 *
 * Off-critical-path work (posted WB_DE writebacks, background GET_DE
 * flows, DEV invalidations) is recorded separately via addOffPath() and
 * reported as a "background" section — it costs the requester nothing
 * in this model and must not pollute the per-transaction attribution.
 *
 * Cost model: identical to the tracer. Hooks sit behind ZDEV_LAT
 * macros; a ZERODEV_TRACE=0 build removes them entirely, and in the
 * default build each hook is a never-taken null-pointer test until a
 * profiler is attached (CmpSystem::attachLatencyProfiler, or
 * RunConfig::latency through the runner).
 */

#ifndef ZERODEV_OBS_LATENCY_HH
#define ZERODEV_OBS_LATENCY_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace zerodev::obs
{

/** Critical-path component a latency charge is attributed to. */
enum class LatComp : std::uint8_t
{
    CoreLookup,  //!< private L1/L2 array lookups (requester or supplier)
    DirLookup,   //!< directory / LLC tag / socket-directory lookups
    Mesh,        //!< on-chip mesh traversals
    LlcData,     //!< LLC data-array accesses serving the request
    FuseSpill,   //!< extra data-array reads for spilled/fused entries
    Dram,        //!< DRAM data fills on the critical path
    DeMemory,    //!< entry-in-memory round-trips (WB_DE/GET_DE/corrupted)
    InvStall,    //!< stall waiting on sharer/owner invalidations
    InterSocket, //!< inter-socket link crossings
    Other,       //!< residual: total minus every tagged charge
    NumComps,
};

const char *toString(LatComp c);

/** Immutable snapshot of a profiler's accumulated attribution. */
struct LatencyBreakdown
{
    static constexpr std::size_t kNumComps =
        static_cast<std::size_t>(LatComp::NumComps);
    /** Service classes are tracked by index so this header does not
     *  depend on core/; sized for AccessClass::NumClasses with slack. */
    static constexpr std::size_t kMaxClasses = 8;

    struct Component
    {
        std::uint64_t cycles = 0;  //!< total attributed cycles
        std::uint64_t samples = 0; //!< transactions the component touched
        double mean = 0.0;         //!< cycles per touching transaction
        std::uint64_t p50 = 0;
        std::uint64_t p95 = 0;
        std::uint64_t p99 = 0;
    };

    struct ClassRow
    {
        std::uint64_t count = 0;  //!< transactions of this class
        std::uint64_t cycles = 0; //!< their total latency
        std::array<std::uint64_t, kNumComps> compCycles{};
    };

    std::uint64_t transactions = 0; //!< completed transactions observed
    std::uint64_t totalCycles = 0;  //!< sum of their latencies
    std::uint64_t overlapCycles = 0; //!< charges clipped by max() overlap
    std::array<Component, kNumComps> components{};
    std::array<ClassRow, kMaxClasses> classes{};
    /** Off-critical-path cycles (posted writebacks, background entry
     *  flows) per component; not part of totalCycles. */
    std::array<std::uint64_t, kNumComps> background{};

    /** Sum of components[i].cycles — equals totalCycles by design. */
    std::uint64_t attributedCycles() const;
};

/**
 * The profiler the protocol engine charges into. One transaction is
 * bracketed by beginTxn()/endTxn(); add() calls in between tag the
 * serial-chain delays composing its latency.
 */
class LatencyProfiler
{
  public:
    LatencyProfiler();

    /** Runtime master switch (starts enabled: attaching one means you
     *  want attribution). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Open attribution for the next transaction. */
    void
    beginTxn()
    {
        if (!enabled_)
            return;
        cur_.fill(0);
        inTxn_ = true;
    }

    /** Charge @p cycles of the in-flight transaction to @p comp. */
    void
    add(LatComp comp, Cycle cycles)
    {
        if (!enabled_ || !inTxn_ || cycles == 0)
            return;
        cur_[static_cast<std::size_t>(comp)] += cycles;
    }

    /** Record off-critical-path work (not tied to a transaction). */
    void
    addOffPath(LatComp comp, Cycle cycles)
    {
        if (!enabled_)
            return;
        background_[static_cast<std::size_t>(comp)] += cycles;
    }

    /**
     * Close the in-flight transaction: clip tagged charges to the
     * observed @p latency (excess -> overlapCycles), attribute the
     * untagged residual to LatComp::Other, and fold everything into the
     * per-component histograms and the per-class row @p cls (an
     * AccessClass index; rows >= kMaxClasses are dropped).
     */
    void endTxn(std::uint32_t cls, Cycle latency);

    std::uint64_t transactions() const { return transactions_; }

    /** Aggregate view (percentiles computed here). */
    LatencyBreakdown snapshot() const;

    /** Per-transaction cycles-in-component distribution. */
    const Histogram &componentHist(LatComp c) const
    {
        return hist_[static_cast<std::size_t>(c)];
    }

    void clear();

  private:
    static constexpr std::size_t kNumComps = LatencyBreakdown::kNumComps;
    static constexpr std::size_t kMaxClasses =
        LatencyBreakdown::kMaxClasses;

    std::array<std::uint64_t, kNumComps> cur_{};    //!< in-flight charges
    std::array<std::uint64_t, kNumComps> totals_{}; //!< attributed cycles
    std::array<std::uint64_t, kNumComps> background_{};
    std::vector<Histogram> hist_; //!< per-component, per-txn cycles
    std::array<LatencyBreakdown::ClassRow, kMaxClasses> classes_{};
    std::uint64_t transactions_ = 0;
    std::uint64_t totalCycles_ = 0;
    std::uint64_t overlapCycles_ = 0;
    bool enabled_ = true;
    bool inTxn_ = false;
};

} // namespace zerodev::obs

// Hot-path hooks: compiled out entirely when the library is built with
// ZERODEV_TRACE=0; otherwise a null test on the attached profiler.
#ifndef ZERODEV_TRACE
#define ZERODEV_TRACE 0
#endif
#if ZERODEV_TRACE
#define ZDEV_LAT_BEGIN(lp)                                                  \
    do {                                                                    \
        if (lp)                                                             \
            (lp)->beginTxn();                                               \
    } while (0)
#define ZDEV_LAT(lp, comp, cycles)                                          \
    do {                                                                    \
        if (lp)                                                             \
            (lp)->add((comp), (cycles));                                    \
    } while (0)
#define ZDEV_LAT_OFFPATH(lp, comp, cycles)                                  \
    do {                                                                    \
        if (lp)                                                             \
            (lp)->addOffPath((comp), (cycles));                             \
    } while (0)
#define ZDEV_LAT_END(lp, cls, latency)                                      \
    do {                                                                    \
        if (lp)                                                             \
            (lp)->endTxn((cls), (latency));                                 \
    } while (0)
#else
#define ZDEV_LAT_BEGIN(lp) ((void)0)
#define ZDEV_LAT(lp, comp, cycles) ((void)0)
#define ZDEV_LAT_OFFPATH(lp, comp, cycles) ((void)0)
#define ZDEV_LAT_END(lp, cls, latency) ((void)0)
#endif

#endif // ZERODEV_OBS_LATENCY_HH
