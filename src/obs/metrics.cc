#include "obs/metrics.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace zerodev::obs
{

std::size_t
metricShardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return idx;
}

namespace
{

/** fetch_add for a double stored as bits (CAS loop). Unused in
 *  ZERODEV_METRICS=OFF builds, where observe() compiles to nothing. */
[[maybe_unused]] void
atomicAddDouble(std::atomic<std::uint64_t> &bits, double delta)
{
    std::uint64_t old = bits.load(std::memory_order_relaxed);
    for (;;) {
        double cur;
        __builtin_memcpy(&cur, &old, sizeof cur);
        const double next = cur + delta;
        std::uint64_t nextBits;
        __builtin_memcpy(&nextBits, &next, sizeof nextBits);
        if (bits.compare_exchange_weak(old, nextBits,
                                       std::memory_order_relaxed))
            return;
    }
}

double
doubleFromBits(std::uint64_t bits)
{
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    return v;
}

/** Render a double the way Prometheus expects: shortest %g spelling
 *  that round-trips exactly (so a 0.1 bucket bound reads `le="0.1"`,
 *  not 17 digits of noise). Integral values keep an integer spelling
 *  for readability. */
std::string
promNumber(double v)
{
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (std::isnan(v))
        return "NaN";
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    for (int prec = 1; prec < 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** `name{labels}` or bare `name`; @p extra is appended inside the
 *  braces after the series labels (used for histogram `le`). */
std::string
sampleName(const std::string &name, const std::string &labels,
           const std::string &extra = "")
{
    std::string body = labels;
    if (!extra.empty()) {
        if (!body.empty())
            body += ",";
        body += extra;
    }
    if (body.empty())
        return name;
    return name + "{" + body + "}";
}

const char *
kindName(Metric::Kind k)
{
    switch (k) {
      case Metric::Kind::Counter:
        return "counter";
      case Metric::Kind::Gauge:
        return "gauge";
      case Metric::Kind::Histogram:
        return "histogram";
    }
    return "untyped";
}

[[noreturn]] void
kindMismatch(const std::string &name)
{
    std::fprintf(stderr,
                 "zerodev: metric '%s' re-registered with a different "
                 "kind\n",
                 name.c_str());
    std::abort();
}

} // namespace

HistogramMetric::HistogramMetric(std::string name, std::string labels,
                                 std::string help,
                                 std::vector<double> bounds,
                                 const std::atomic<bool> *enabled)
    : Metric(Kind::Histogram, std::move(name), std::move(labels),
             std::move(help), enabled),
      bounds_(std::move(bounds)), shards_(kMetricShards)
{
    for (Shard &s : shards_)
        s.buckets = std::vector<std::atomic<std::uint64_t>>(
            bounds_.size() + 1);
}

void
HistogramMetric::observe(double v)
{
#if ZERODEV_METRICS
    if (!live())
        return;
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b])
        ++b;
    Shard &s = shards_[metricShardIndex()];
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(s.sumBits, v);
#else
    (void)v;
#endif
}

HistogramMetric::Snapshot
HistogramMetric::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds_;
    snap.counts.assign(bounds_.size() + 1, 0);
    for (const Shard &s : shards_) {
        for (std::size_t b = 0; b < snap.counts.size(); ++b)
            snap.counts[b] +=
                s.buckets[b].load(std::memory_order_relaxed);
        snap.sum += doubleFromBits(
            s.sumBits.load(std::memory_order_relaxed));
    }
    for (const std::uint64_t c : snap.counts)
        snap.count += c;
    return snap;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

Metric *
MetricsRegistry::find(const std::string &name,
                      const std::string &labels) const
{
    for (const std::unique_ptr<Metric> &m : series_) {
        if (m->name() == name && m->labels() == labels)
            return m.get();
    }
    return nullptr;
}

Counter *
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Metric *m = find(name, labels)) {
        if (m->kind() != Metric::Kind::Counter)
            kindMismatch(name);
        return static_cast<Counter *>(m);
    }
    series_.emplace_back(new Counter(name, labels, help, &enabled_));
    return static_cast<Counter *>(series_.back().get());
}

Gauge *
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Metric *m = find(name, labels)) {
        if (m->kind() != Metric::Kind::Gauge)
            kindMismatch(name);
        return static_cast<Gauge *>(m);
    }
    series_.emplace_back(new Gauge(name, labels, help, &enabled_));
    return static_cast<Gauge *>(series_.back().get());
}

HistogramMetric *
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           std::vector<double> bounds,
                           const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Metric *m = find(name, labels)) {
        if (m->kind() != Metric::Kind::Histogram)
            kindMismatch(name);
        return static_cast<HistogramMetric *>(m);
    }
    series_.emplace_back(new HistogramMetric(name, labels, help,
                                             std::move(bounds),
                                             &enabled_));
    return static_cast<HistogramMetric *>(series_.back().get());
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return series_.size();
}

std::string
MetricsRegistry::prometheusText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    // Group same-name series behind one HELP/TYPE block, preserving
    // first-registration order of the names.
    std::vector<std::string> names;
    for (const std::unique_ptr<Metric> &m : series_) {
        bool seen = false;
        for (const std::string &n : names)
            seen = seen || n == m->name();
        if (!seen)
            names.push_back(m->name());
    }
    for (const std::string &name : names) {
        bool headered = false;
        for (const std::unique_ptr<Metric> &m : series_) {
            if (m->name() != name)
                continue;
            if (!headered) {
                out << "# HELP " << name << " " << m->help() << "\n";
                out << "# TYPE " << name << " "
                    << kindName(m->kind()) << "\n";
                headered = true;
            }
            switch (m->kind()) {
              case Metric::Kind::Counter:
                out << sampleName(name, m->labels()) << " "
                    << static_cast<const Counter *>(m.get())->value()
                    << "\n";
                break;
              case Metric::Kind::Gauge:
                out << sampleName(name, m->labels()) << " "
                    << promNumber(
                           static_cast<const Gauge *>(m.get())->value())
                    << "\n";
                break;
              case Metric::Kind::Histogram: {
                const HistogramMetric::Snapshot snap =
                    static_cast<const HistogramMetric *>(m.get())->snapshot();
                std::uint64_t cum = 0;
                for (std::size_t b = 0; b < snap.counts.size(); ++b) {
                    cum += snap.counts[b];
                    const std::string le =
                        b < snap.bounds.size()
                            ? promNumber(snap.bounds[b])
                            : "+Inf";
                    out << sampleName(name + "_bucket", m->labels(),
                                      "le=\"" + le + "\"")
                        << " " << cum << "\n";
                }
                out << sampleName(name + "_sum", m->labels()) << " "
                    << promNumber(snap.sum) << "\n";
                out << sampleName(name + "_count", m->labels()) << " "
                    << snap.count << "\n";
                break;
              }
            }
        }
    }
    return out.str();
}

void
MetricsRegistry::resetForTesting()
{
    std::lock_guard<std::mutex> lock(mu_);
    series_.clear();
}

namespace
{

bool
validMetricName(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
        s[0] != ':')
        return false;
    for (const char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != ':')
            return false;
    }
    return true;
}

bool
validLabelName(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')
        return false;
    for (const char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            return false;
    }
    return true;
}

bool
parseSampleValue(const std::string &s)
{
    if (s == "+Inf" || s == "-Inf" || s == "NaN")
        return true;
    if (s.empty())
        return false;
    char *end = nullptr;
    std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && end != s.c_str();
}

bool
fail(std::string *err, std::size_t lineNo, const std::string &why)
{
    if (err) {
        *err = "line " + std::to_string(lineNo) + ": " + why;
    }
    return false;
}

/** Strip a histogram/summary sample suffix back to its base name. */
std::string
baseMetricName(const std::string &name)
{
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        const std::string suf(suffix);
        if (name.size() > suf.size() &&
            name.compare(name.size() - suf.size(), suf.size(), suf) == 0)
            return name.substr(0, name.size() - suf.size());
    }
    return name;
}

} // namespace

bool
checkPrometheusText(const std::string &text, std::string *err)
{
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    // name -> declared type; tracked so TYPE precedes samples and is
    // declared at most once per name.
    std::vector<std::pair<std::string, std::string>> types;
    std::vector<std::string> seenSeries;  // duplicate detection
    std::vector<std::string> sampledBase; // base names with samples

    const auto typeOf = [&](const std::string &name) -> const std::string * {
        for (const auto &t : types) {
            if (t.first == name)
                return &t.second;
        }
        return nullptr;
    };

    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream ls(line);
            std::string hash, kw, name;
            ls >> hash >> kw >> name;
            if (kw != "HELP" && kw != "TYPE")
                continue; // arbitrary comment: legal
            if (!validMetricName(name))
                return fail(err, lineNo,
                            "bad metric name in # " + kw + ": '" +
                                name + "'");
            if (kw == "TYPE") {
                std::string type;
                ls >> type;
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped")
                    return fail(err, lineNo,
                                "unknown TYPE '" + type + "'");
                if (typeOf(name) != nullptr)
                    return fail(err, lineNo,
                                "duplicate TYPE for '" + name + "'");
                for (const std::string &s : sampledBase) {
                    if (s == name)
                        return fail(err, lineNo,
                                    "TYPE for '" + name +
                                        "' after its samples");
                }
                types.emplace_back(name, type);
            }
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        std::size_t i = 0;
        while (i < line.size() && line[i] != '{' && line[i] != ' ')
            ++i;
        const std::string name = line.substr(0, i);
        if (!validMetricName(name))
            return fail(err, lineNo, "bad sample name '" + name + "'");

        std::string labels;
        if (i < line.size() && line[i] == '{') {
            const std::size_t close = line.find('}', i);
            if (close == std::string::npos)
                return fail(err, lineNo, "unterminated label set");
            labels = line.substr(i + 1, close - i - 1);
            i = close + 1;

            // Validate label pairs: name="value",...
            std::size_t p = 0;
            while (p < labels.size()) {
                const std::size_t eq = labels.find('=', p);
                if (eq == std::string::npos)
                    return fail(err, lineNo, "label without '='");
                if (!validLabelName(labels.substr(p, eq - p)))
                    return fail(err, lineNo,
                                "bad label name '" +
                                    labels.substr(p, eq - p) + "'");
                if (eq + 1 >= labels.size() || labels[eq + 1] != '"')
                    return fail(err, lineNo, "label value not quoted");
                std::size_t q = eq + 2;
                while (q < labels.size() &&
                       (labels[q] != '"' || labels[q - 1] == '\\'))
                    ++q;
                if (q >= labels.size())
                    return fail(err, lineNo, "unterminated label value");
                p = q + 1;
                if (p < labels.size()) {
                    if (labels[p] != ',')
                        return fail(err, lineNo,
                                    "expected ',' between labels");
                    ++p;
                }
            }
        }

        if (i >= line.size() || line[i] != ' ')
            return fail(err, lineNo, "missing sample value");
        std::istringstream rest(line.substr(i + 1));
        std::string value, timestamp, extra;
        rest >> value >> timestamp >> extra;
        if (!parseSampleValue(value))
            return fail(err, lineNo,
                        "unparseable sample value '" + value + "'");
        if (!extra.empty())
            return fail(err, lineNo, "trailing tokens after sample");
        if (!timestamp.empty()) {
            char *end = nullptr;
            std::strtoll(timestamp.c_str(), &end, 10);
            if (end == nullptr || *end != '\0')
                return fail(err, lineNo,
                            "bad timestamp '" + timestamp + "'");
        }

        // TYPE (when present) must have preceded its samples; histogram
        // component samples resolve to the base name's TYPE block.
        const std::string base = baseMetricName(name);
        if (typeOf(name) == nullptr && typeOf(base) == nullptr &&
            !types.empty() && name.rfind("zerodev_", 0) == 0)
            return fail(err, lineNo,
                        "sample '" + name + "' has no TYPE block");

        const std::string key = name + "{" + labels + "}";
        for (const std::string &s : seenSeries) {
            if (s == key)
                return fail(err, lineNo,
                            "duplicate series '" + key + "'");
        }
        seenSeries.push_back(key);
        sampledBase.push_back(base);
        if (base != name)
            sampledBase.push_back(name);
    }
    if (err)
        err->clear();
    return true;
}

} // namespace zerodev::obs
