/**
 * @file
 * Interval time-series sampler.
 *
 * Components register probes (closures returning a double); the runner
 * calls tick() with the advancing simulated time and the sampler snapshots
 * every probe at each crossed interval boundary. Boundaries are aligned to
 * multiples of the interval (sample k is taken at cycle k*interval), so
 * series from different runs line up when diffed.
 *
 * Probe kinds:
 *  - Level: the probe's instantaneous value (e.g. directory occupancy);
 *  - Rate: the delta of a monotonically increasing counter since the
 *    previous sample (e.g. DEV invalidations per interval).
 *
 * Output: CSV (one row per sample, "cycle" first column) and a JSON
 * document carrying the schema, interval, and column-major series.
 */

#ifndef ZERODEV_OBS_SAMPLER_HH
#define ZERODEV_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace zerodev
{
class SerialOut;
class SerialIn;
} // namespace zerodev

namespace zerodev::obs
{

class IntervalSampler
{
  public:
    enum class ProbeKind : std::uint8_t
    {
        Level, //!< report the probe value as-is
        Rate,  //!< report the delta since the previous sample
    };

    /**
     * @param interval cycles between samples (> 0)
     * @param max_samples rows retained before further samples are
     *        counted as overflowed and discarded (memory bound)
     */
    explicit IntervalSampler(Cycle interval,
                             std::size_t max_samples = 1u << 20);

    /** Register a probe; its current value seeds the Rate baseline. */
    void addProbe(const std::string &name, ProbeKind kind,
                  std::function<double()> fn);

    /**
     * Advance to simulated time @p now, emitting one sample per interval
     * boundary crossed since the last call. @p now may repeat or move
     * backwards (out-of-order completion times); only forward progress
     * samples.
     */
    void tick(Cycle now);

    /** Take one final (unaligned) sample at @p now if it is past the
     *  last sampled boundary — call at end of run. */
    void finish(Cycle now);

    Cycle interval() const { return interval_; }

    /** Registered probe names, column order. */
    std::vector<std::string> names() const;

    struct Sample
    {
        Cycle cycle = 0;
        std::vector<double> values;
    };

    const std::vector<Sample> &samples() const { return samples_; }

    /** Samples discarded because max_samples was reached. */
    std::uint64_t overflowed() const { return overflowed_; }

    /** CSV document: header "cycle,<probe>,..." then one row per sample. */
    std::string toCsv() const;

    /** JSON document with schema id, interval, and per-probe series. */
    std::string toJson() const;

    bool writeCsv(const std::string &path) const;
    bool writeJson(const std::string &path) const;

    /**
     * Serialize the resume-critical state — the next aligned boundary
     * and every probe's Rate baseline — into a checkpoint section
     * (sim/runner.cc writes it as "sampler"). Collected samples are NOT
     * saved: a resumed run re-collects only the post-restore suffix,
     * and restore() keeps that suffix phase-aligned and delta-correct
     * against a straight run.
     */
    void save(SerialOut &out) const;

    /** Restore state written by save(). The same probes must already be
     *  registered (count-checked); sampling must not have started. */
    void restore(SerialIn &in);

  private:
    struct Probe
    {
        std::string name;
        ProbeKind kind;
        std::function<double()> fn;
        double prev = 0.0; //!< last raw value (Rate baseline)
    };

    void sampleAt(Cycle cycle);

    Cycle interval_;
    Cycle next_;  //!< next aligned boundary to sample at
    std::size_t maxSamples_;
    std::uint64_t overflowed_ = 0;
    std::vector<Probe> probes_;
    std::vector<Sample> samples_;
};

} // namespace zerodev::obs

#endif // ZERODEV_OBS_SAMPLER_HH
