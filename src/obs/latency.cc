#include "obs/latency.hh"

namespace zerodev::obs
{

namespace
{

/** Per-transaction cycles one component can contribute before the
 *  histogram's overflow bucket absorbs it. DRAM fills and corrupted
 *  multi-socket chains reach a few hundred cycles; 1024 keeps exact
 *  percentiles well past p99 for every modelled flow. */
constexpr std::size_t kHistBuckets = 1024;

} // namespace

const char *
toString(LatComp c)
{
    switch (c) {
      case LatComp::CoreLookup: return "core_lookup";
      case LatComp::DirLookup: return "dir_lookup";
      case LatComp::Mesh: return "mesh";
      case LatComp::LlcData: return "llc_data";
      case LatComp::FuseSpill: return "fuse_spill";
      case LatComp::Dram: return "dram";
      case LatComp::DeMemory: return "de_memory";
      case LatComp::InvStall: return "inv_stall";
      case LatComp::InterSocket: return "inter_socket";
      case LatComp::Other: return "other";
      case LatComp::NumComps: break;
    }
    return "?";
}

std::uint64_t
LatencyBreakdown::attributedCycles() const
{
    std::uint64_t sum = 0;
    for (const Component &c : components)
        sum += c.cycles;
    return sum;
}

LatencyProfiler::LatencyProfiler()
{
    hist_.reserve(kNumComps);
    for (std::size_t i = 0; i < kNumComps; ++i)
        hist_.emplace_back(kHistBuckets);
}

void
LatencyProfiler::endTxn(std::uint32_t cls, Cycle latency)
{
    if (!enabled_ || !inTxn_)
        return;
    inTxn_ = false;

    // Clip the tagged charges to the observed latency. The engine joins
    // parallel paths with max(), so the serial charges can overshoot;
    // walking in enum order clips the overshoot off the *last* charged
    // components (deterministically) and counts it as overlap.
    std::uint64_t room = latency;
    for (std::size_t i = 0; i < kNumComps; ++i) {
        std::uint64_t &c = cur_[i];
        if (c > room) {
            overlapCycles_ += c - room;
            c = room;
        }
        room -= c;
    }
    // room is now the untagged residual; make the sum exact.
    cur_[static_cast<std::size_t>(LatComp::Other)] += room;

    ++transactions_;
    totalCycles_ += latency;
    for (std::size_t i = 0; i < kNumComps; ++i) {
        if (cur_[i] == 0)
            continue;
        totals_[i] += cur_[i];
        hist_[i].record(cur_[i]);
    }
    if (cls < kMaxClasses) {
        LatencyBreakdown::ClassRow &row = classes_[cls];
        ++row.count;
        row.cycles += latency;
        for (std::size_t i = 0; i < kNumComps; ++i)
            row.compCycles[i] += cur_[i];
    }
}

LatencyBreakdown
LatencyProfiler::snapshot() const
{
    LatencyBreakdown b;
    b.transactions = transactions_;
    b.totalCycles = totalCycles_;
    b.overlapCycles = overlapCycles_;
    for (std::size_t i = 0; i < kNumComps; ++i) {
        LatencyBreakdown::Component &c = b.components[i];
        c.cycles = totals_[i];
        c.samples = hist_[i].samples();
        c.mean = hist_[i].meanValue();
        c.p50 = hist_[i].percentile(0.50);
        c.p95 = hist_[i].percentile(0.95);
        c.p99 = hist_[i].percentile(0.99);
        b.background[i] = background_[i];
    }
    b.classes = classes_;
    return b;
}

void
LatencyProfiler::clear()
{
    cur_.fill(0);
    totals_.fill(0);
    background_.fill(0);
    for (Histogram &h : hist_)
        h.clear();
    classes_ = {};
    transactions_ = 0;
    totalCycles_ = 0;
    overlapCycles_ = 0;
    inTxn_ = false;
}

} // namespace zerodev::obs
