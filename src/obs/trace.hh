/**
 * @file
 * Structured coherence-transaction tracer.
 *
 * The protocol engine records one TraceEvent per interesting step of a
 * transaction's life — request issue, directory lookup (with the entry's
 * location), entry spills/fusions, WB_DE / GET_DE entry migrations, DEV
 * invalidations, forwards, memory fills, and completion (with service
 * class and latency). Events of one transaction share a txn id, so a
 * trace can be re-grouped into per-transaction timelines.
 *
 * Storage is a fixed-capacity ring buffer: tracing a long run keeps the
 * newest events and counts the overwritten ones. Output formats:
 *  - Chrome trace_event JSON (load in chrome://tracing or Perfetto);
 *  - compact JSONL, one event object per line (grep/jq-friendly, parsed
 *    back by obs::parseJson and the trace_tool inspector).
 *
 * Cost model: hooks sit behind the ZDEV_TRACE macro. When the library is
 * built with ZERODEV_TRACE=0 they vanish entirely; in the default build
 * they compile to a never-taken null-pointer test until a Tracer is
 * attached to the system (runtime enable), plus per-component filtering
 * inside record().
 */

#ifndef ZERODEV_OBS_TRACE_HH
#define ZERODEV_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace zerodev::obs
{

/** Component a trace event originates from (filterable). */
enum class TraceComp : std::uint8_t
{
    Core,      //!< private hierarchy (requests, completions)
    Directory, //!< sparse directory / baseline organisation
    Llc,       //!< shared LLC (spill/fuse/victims)
    Mesh,      //!< interconnect (forwards)
    Memory,    //!< DRAM and entry-in-memory flows
    Protocol,  //!< cross-component protocol decisions
    NumComps,
};

const char *toString(TraceComp c);

/** What happened. */
enum class TraceEventKind : std::uint8_t
{
    Request,    //!< core issued a request (arg = AccessType)
    Complete,   //!< transaction finished (arg = AccessClass, dur = latency)
    DirLookup,  //!< tracking lookup (arg = TrackWhere found)
    Spill,      //!< entry spilled into an LLC line
    Fuse,       //!< entry fused into its data block's LLC line
    Unfuse,     //!< fused line reconstructed into a plain data block
    WbDe,       //!< live entry written back to home memory (Figure 14)
    GetDe,      //!< entry retrieved from memory on a core eviction (Fig. 16)
    DeExtract,  //!< entry segment extracted from a corrupted memory block
    Dev,        //!< forced directory eviction victim (arg = copies killed)
    Forward,    //!< 3-hop forward to an owner/sharer (arg = target core)
    MemRead,    //!< DRAM read on the critical path
    SocketMiss, //!< request left the socket
    LlcVictim,  //!< LLC displaced a line (arg = LlcLineKind)
    NumKinds,
};

const char *toString(TraceEventKind k);

/** Provenance sentinel: the event has no inducing agent. */
constexpr std::uint16_t kTraceNoProv = 0xffff;

/** One recorded event. 56 bytes; the ring buffer is allocated up front. */
struct TraceEvent
{
    std::uint64_t seq = 0;   //!< global record order (monotonic)
    std::uint64_t txn = 0;   //!< enclosing transaction id (0 = none)
    Cycle cycle = 0;         //!< simulated start time
    Cycle dur = 0;           //!< duration in cycles (0 = instant)
    BlockAddr block = 0;     //!< block the event concerns
    std::uint32_t arg = 0;   //!< kind-specific payload
    TraceEventKind kind = TraceEventKind::Request;
    TraceComp comp = TraceComp::Protocol;
    std::uint8_t socket = 0;
    std::uint8_t core = 0;
    /** Inducing agent (global core of the transaction that forced the
     *  eviction) for Dev / LlcVictim events; kTraceNoProv otherwise.
     *  Added by the v2 JSONL writer — emitted as an optional "prov"
     *  member, so v1 traces (no member) still parse. */
    std::uint16_t prov = kTraceNoProv;
};

class Tracer
{
  public:
    /** @param capacity ring size in events (newest retained). */
    explicit Tracer(std::size_t capacity = 1 << 16);

    /** Runtime master switch (a disabled tracer records nothing). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Per-component runtime filter (all components start enabled). */
    void setComponentEnabled(TraceComp c, bool on);
    bool componentEnabled(TraceComp c) const;

    /** Record one event (fast path; returns immediately when disabled
     *  or filtered out). */
    void
    record(TraceEventKind kind, TraceComp comp, std::uint32_t socket,
           std::uint32_t core, BlockAddr block, Cycle cycle,
           Cycle dur = 0, std::uint32_t arg = 0, std::uint64_t txn = 0,
           std::uint32_t prov = kTraceNoProv)
    {
        if (!enabled_ || !(compMask_ & (1u << static_cast<unsigned>(comp))))
            return;
        TraceEvent &e = buf_[accepted_ % buf_.size()];
        e.seq = accepted_;
        e.txn = txn;
        e.cycle = cycle;
        e.dur = dur;
        e.block = block;
        e.arg = arg;
        e.kind = kind;
        e.comp = comp;
        e.socket = static_cast<std::uint8_t>(socket);
        e.core = static_cast<std::uint8_t>(core);
        e.prov = static_cast<std::uint16_t>(prov);
        ++accepted_;
    }

    /** Events accepted since construction/clear(). */
    std::uint64_t recorded() const { return accepted_; }

    /** Events lost to ring wraparound. */
    std::uint64_t
    dropped() const
    {
        return accepted_ > buf_.size() ? accepted_ - buf_.size() : 0;
    }

    /** Events currently retained. */
    std::size_t
    size() const
    {
        return accepted_ < buf_.size()
                   ? static_cast<std::size_t>(accepted_)
                   : buf_.size();
    }

    std::size_t capacity() const { return buf_.size(); }

    void clear() { accepted_ = 0; }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** One compact JSON object per line (oldest first). */
    std::string toJsonl() const;

    /** Chrome trace_event document ("X" complete events; pid = socket,
     *  tid = core, ts/dur in simulated cycles). */
    std::string toChromeJson() const;

    bool writeJsonl(const std::string &path) const;
    bool writeChromeJson(const std::string &path) const;

  private:
    std::vector<TraceEvent> buf_;
    std::uint64_t accepted_ = 0;
    std::uint32_t compMask_;
    bool enabled_ = false;
};

} // namespace zerodev::obs

// Hot-path hook: compiled out entirely when the library is built with
// ZERODEV_TRACE=0; otherwise a null test on the attached tracer.
#ifndef ZERODEV_TRACE
#define ZERODEV_TRACE 0
#endif
#if ZERODEV_TRACE
#define ZDEV_TRACE(trc, ...)                                                \
    do {                                                                    \
        if (trc)                                                            \
            (trc)->record(__VA_ARGS__);                                     \
    } while (0)
#else
#define ZDEV_TRACE(trc, ...) ((void)0)
#endif

#endif // ZERODEV_OBS_TRACE_HH
