#include "obs/compare.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/json.hh"
#include "obs/report.hh"
#include "sim/runner.hh"

namespace zerodev::obs
{

namespace
{

/** Sentinel relative delta for a metric that appears from zero. */
constexpr double kFromZero = 1e9;

bool
isRunReportSchema(const JsonValue &doc)
{
    return doc.str("schema").rfind("zerodev-run-report-", 0) == 0;
}

std::optional<LoadedReport>
extractReport(const JsonValue &doc, const std::string &path,
              std::string *err)
{
    std::string why;
    if (!validateRunReport(doc, &why)) {
        if (err)
            *err = path + ": " + why;
        return std::nullopt;
    }

    LoadedReport r;
    r.path = path;
    const JsonValue *config = doc.find("config");
    r.configName = config->str("name");
    r.fingerprint = config->str("fingerprint");

    const JsonValue *result = doc.find("result");
    r.workload = result->str("workload");
    for (const char *k : {"cycles", "coreCacheMisses", "trafficBytes",
                          "devInvalidations"})
        r.metrics[k] = result->num(k);
    if (const JsonValue *cores = result->find("cores")) {
        for (const JsonValue &core : cores->array)
            r.coreIpc.push_back(core.num("ipc"));
    }

    // v2: per-component critical-path cycle totals.
    if (const JsonValue *lat = doc.find("latency_breakdown")) {
        if (const JsonValue *comps = lat->find("components")) {
            for (const auto &[name, comp] : comps->object)
                r.metrics["latency." + name] = comp.num("cycles");
        }
    }
    return r;
}

std::string
percent(double rel)
{
    if (rel >= kFromZero)
        return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", rel * 100.0);
    return buf;
}

} // namespace

std::optional<LoadedReport>
loadReportFile(const std::string &path, std::string *err)
{
    const auto text = readTextFile(path);
    if (!text) {
        if (err)
            *err = path + ": cannot read";
        return std::nullopt;
    }
    std::string why;
    const auto doc = parseJson(*text, &why);
    if (!doc) {
        if (err)
            *err = path + ": " + why;
        return std::nullopt;
    }
    return extractReport(*doc, path, err);
}

bool
loadReports(const std::string &path, std::vector<LoadedReport> &out,
            std::string *err)
{
    namespace fs = std::filesystem;
    const auto fail = [err](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        std::vector<std::string> files;
        for (const auto &entry : fs::directory_iterator(path, ec)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".json")
                files.push_back(entry.path().string());
        }
        if (ec)
            return fail(path + ": " + ec.message());
        std::sort(files.begin(), files.end());

        const std::size_t before = out.size();
        for (const std::string &file : files) {
            const auto text = readTextFile(file);
            if (!text)
                return fail(file + ": cannot read");
            std::string why;
            const auto doc = parseJson(*text, &why);
            if (!doc)
                return fail(file + ": " + why);
            // Report directories also hold trajectory files and compare
            // verdicts; only run reports participate.
            if (!isRunReportSchema(*doc))
                continue;
            auto r = extractReport(*doc, file, err);
            if (!r)
                return false;
            out.push_back(std::move(*r));
        }
        if (out.size() == before)
            return fail(path + ": no run reports found");
        return true;
    }

    if (!fs::exists(path, ec))
        return fail(path + ": no such file or directory");
    auto r = loadReportFile(path, err);
    if (!r)
        return false;
    out.push_back(std::move(*r));
    return true;
}

double
CompareOptions::thresholdFor(const std::string &metric) const
{
    double best = defaultThreshold;
    std::size_t best_len = 0;
    for (const auto &[prefix, thr] : prefixThresholds) {
        if (metric.rfind(prefix, 0) == 0 && prefix.size() >= best_len) {
            best = thr;
            best_len = prefix.size();
        }
    }
    return best;
}

bool
PairComparison::regression() const
{
    for (const MetricDelta &d : deltas) {
        if (d.regression)
            return true;
    }
    return false;
}

bool
CompareResult::regression() const
{
    for (const PairComparison &p : pairs) {
        if (p.regression())
            return true;
    }
    return false;
}

CompareResult
compareReports(const std::vector<LoadedReport> &base,
               const std::vector<LoadedReport> &cand,
               const CompareOptions &opt)
{
    CompareResult res;

    std::map<std::string, const LoadedReport *> base_by_key;
    for (const LoadedReport &b : base)
        base_by_key.emplace(b.key(), &b); // keep the first on duplicates

    std::map<std::string, bool> base_matched;
    for (const LoadedReport &c : cand) {
        const auto it = base_by_key.find(c.key());
        if (it == base_by_key.end()) {
            res.candidateOnly.push_back(c.key());
            continue;
        }
        const LoadedReport &b = *it->second;
        base_matched[c.key()] = true;

        PairComparison pair;
        pair.key = c.key();
        pair.configName = c.configName;
        pair.workload = c.workload;
        pair.weightedSpeedup = weightedSpeedup(b.coreIpc, c.coreIpc);

        for (const auto &[name, bval] : b.metrics) {
            const auto cit = c.metrics.find(name);
            if (cit == c.metrics.end())
                continue; // v1-vs-v2: gate only the common metrics
            MetricDelta d;
            d.metric = name;
            d.base = bval;
            d.cand = cit->second;
            d.threshold = opt.thresholdFor(name);
            if (bval > 0.0)
                d.rel = (d.cand - bval) / bval;
            else
                d.rel = d.cand > 0.0 ? kFromZero : 0.0;
            d.regression = d.rel > d.threshold;
            d.improvement = d.rel < -d.threshold;
            pair.deltas.push_back(std::move(d));
        }
        res.pairs.push_back(std::move(pair));
    }

    for (const LoadedReport &b : base) {
        if (!base_matched.count(b.key()) &&
            std::find(res.baselineOnly.begin(), res.baselineOnly.end(),
                      b.key()) == res.baselineOnly.end())
            res.baselineOnly.push_back(b.key());
    }
    return res;
}

std::string
CompareResult::markdown() const
{
    std::string out = "# Run-report comparison\n\n";
    out += regression() ? "**Verdict: REGRESSION**\n"
                        : "Verdict: no regression\n";

    for (const PairComparison &p : pairs) {
        out += "\n## " + p.configName + " / " + p.workload + " (`" +
               p.key + "`)\n\n";
        char ws[64];
        std::snprintf(ws, sizeof(ws),
                      "Weighted speedup (candidate / baseline): %.4f\n\n",
                      p.weightedSpeedup);
        out += ws;
        out += "| metric | baseline | candidate | delta | threshold | "
               "status |\n";
        out += "|---|---:|---:|---:|---:|---|\n";
        for (const MetricDelta &d : p.deltas) {
            out += "| " + d.metric + " | " + jsonNumber(d.base) + " | " +
                   jsonNumber(d.cand) + " | " + percent(d.rel) + " | ";
            char thr[16];
            std::snprintf(thr, sizeof(thr), "%g%%", d.threshold * 100.0);
            out += thr;
            out += " | ";
            out += d.regression    ? "**REGRESSION**"
                   : d.improvement ? "improvement"
                                   : "ok";
            out += " |\n";
        }
    }

    if (!baselineOnly.empty() || !candidateOnly.empty()) {
        out += "\n## Unpaired runs\n\n";
        for (const std::string &k : baselineOnly)
            out += "- baseline only: `" + k + "`\n";
        for (const std::string &k : candidateOnly)
            out += "- candidate only: `" + k + "`\n";
    }
    return out;
}

std::string
CompareResult::verdictJson() const
{
    JsonWriter w;
    w.beginObject();
    stampArtifact(w, "zerodev-compare-v1");
    w.field("regression", regression());

    w.key("pairs").beginArray();
    for (const PairComparison &p : pairs) {
        w.beginObject();
        w.field("key", p.key);
        w.field("config", p.configName);
        w.field("workload", p.workload);
        w.field("weightedSpeedup", p.weightedSpeedup);
        w.field("regression", p.regression());

        // The gate's one-line answer: which metrics regressed.
        w.key("regressions").beginArray();
        for (const MetricDelta &d : p.deltas) {
            if (d.regression)
                w.value(d.metric);
        }
        w.endArray();

        w.key("metrics").beginArray();
        for (const MetricDelta &d : p.deltas) {
            w.beginObject();
            w.field("name", d.metric);
            w.field("baseline", d.base);
            w.field("candidate", d.cand);
            w.field("rel", d.rel);
            w.field("threshold", d.threshold);
            w.field("status", d.regression    ? "regression"
                              : d.improvement ? "improvement"
                                              : "ok");
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("baselineOnly").beginArray();
    for (const std::string &k : baselineOnly)
        w.value(k);
    w.endArray();
    w.key("candidateOnly").beginArray();
    for (const std::string &k : candidateOnly)
        w.value(k);
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace zerodev::obs
