#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace zerodev::obs
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Counters and cycle values are integral; render them without a
    // fraction so the output diffs cleanly across runs.
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::comma()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already placed the separator
    }
    if (!first_.empty()) {
        if (!first_.back())
            out_ += ',';
        first_.back() = false;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    out_ += jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    comma();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view json)
{
    comma();
    out_ += json;
    return *this;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::num(std::string_view key, double dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number : dflt;
}

std::string
JsonValue::str(std::string_view key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->string : dflt;
}

std::string
renderJson(const JsonValue &v)
{
    switch (v.type) {
      case JsonValue::Type::Null:
        return "null";
      case JsonValue::Type::Bool:
        return v.boolean ? "true" : "false";
      case JsonValue::Type::Number:
        return jsonNumber(v.number);
      case JsonValue::Type::String:
        return '"' + jsonEscape(v.string) + '"';
      case JsonValue::Type::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i)
                out += ',';
            out += renderJson(v.array[i]);
        }
        return out + ']';
      }
      case JsonValue::Type::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < v.object.size(); ++i) {
            if (i)
                out += ',';
            out += '"' + jsonEscape(v.object[i].first) + "\":" +
                   renderJson(v.object[i].second);
        }
        return out + '}';
      }
    }
    return "null"; // unreachable
}

namespace
{

/** Recursive-descent JSON parser over a string_view cursor. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : text_(text), err_(err)
    {}

    std::optional<JsonValue>
    parse()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing content after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (err_ && err_->empty()) {
            std::ostringstream os;
            os << why << " at offset " << pos_;
            *err_ = os.str();
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            fail("bad literal");
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return false;
            }
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape digit");
                        return false;
                    }
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // not produced by our writer; pass them through raw).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue &v)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("expected number");
            return false;
        }
        const std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        v.type = JsonValue::Type::Number;
        v.number = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            fail("malformed number");
            return false;
        }
        return true;
    }

    bool
    parseValue(JsonValue &v)
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        if (depth_ > kMaxDepth) {
            fail("nesting too deep");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            ++depth_;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            while (true) {
                std::string key;
                skipWs();
                if (!parseString(key))
                    return false;
                if (!expect(':'))
                    return false;
                JsonValue member;
                if (!parseValue(member))
                    return false;
                v.object.emplace_back(std::move(key), std::move(member));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                --depth_;
                return expect('}');
            }
        }
        if (c == '[') {
            ++pos_;
            ++depth_;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            while (true) {
                JsonValue elem;
                if (!parseValue(elem))
                    return false;
                v.array.push_back(std::move(elem));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                --depth_;
                return expect(']');
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            return parseString(v.string);
        }
        if (c == 't') {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            v.type = JsonValue::Type::Null;
            return literal("null");
        }
        return parseNumber(v);
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::string *err_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *err)
{
    if (err)
        err->clear();
    return Parser(text, err).parse();
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        warn("cannot open %s for writing", path.c_str());
        return false;
    }
    os << content;
    os.flush();
    if (!os) {
        warn("short write to %s", path.c_str());
        return false;
    }
    return true;
}

bool
appendTextFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::app);
    if (!os) {
        warn("cannot open %s for appending", path.c_str());
        return false;
    }
    os << content;
    os.flush();
    if (!os) {
        warn("short write to %s", path.c_str());
        return false;
    }
    return true;
}

std::optional<std::string>
readTextFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace zerodev::obs
