/**
 * @file
 * Machine-readable run reports: every bench / example can emit one JSON
 * document per run carrying the configuration (with a stable
 * fingerprint), the RunResult metrics, host-side profiling (wall-clock,
 * simulation rate), and the full StatDump. Downstream tooling diffs
 * reports across commits or sweeps without scraping console output.
 *
 * Schema identifier: "zerodev-run-report-v1".
 */

#ifndef ZERODEV_OBS_REPORT_HH
#define ZERODEV_OBS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/runner.hh"

namespace zerodev::obs
{

struct JsonValue;
class JsonWriter;

/**
 * Canonical "key=value;" rendering of every SystemConfig field, in a
 * fixed order. Two configs produce the same string iff they describe
 * the same simulated machine.
 */
std::string configCanonicalString(const SystemConfig &cfg);

/** 64-bit FNV-1a hash of the canonical config string. */
std::uint64_t configFingerprint(const SystemConfig &cfg);

/** Emit @p cfg as a JSON object (including the fingerprint) into @p w. */
void configToJson(JsonWriter &w, const SystemConfig &cfg);

/** Render one complete run report document. */
std::string runReportJson(const SystemConfig &cfg, const RunResult &res);

/** Write runReportJson() to @p path; false (and a warning) on failure. */
bool writeRunReport(const std::string &path, const SystemConfig &cfg,
                    const RunResult &res);

/**
 * If the ZERODEV_REPORT_DIR environment variable is set, write the
 * report to "<dir>/<name>.json" (name sanitised to [A-Za-z0-9._-]) and
 * return true; otherwise do nothing and return false.
 */
bool maybeWriteRunReport(const std::string &name, const SystemConfig &cfg,
                         const RunResult &res);

/** Top-level keys every v1 report must carry. */
const std::vector<std::string> &requiredReportKeys();

/**
 * Structural validation of a parsed report: schema identifier, required
 * top-level keys, and the numeric result fields. On failure stores a
 * reason in @p err (when non-null).
 */
bool validateRunReport(const JsonValue &doc, std::string *err = nullptr);

} // namespace zerodev::obs

#endif // ZERODEV_OBS_REPORT_HH
