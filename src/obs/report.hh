/**
 * @file
 * Machine-readable run reports: every bench / example can emit one JSON
 * document per run carrying the configuration (with a stable
 * fingerprint), the RunResult metrics, host-side profiling (wall-clock,
 * simulation rate), the critical-path latency attribution, and the full
 * StatDump. Downstream tooling (obs/compare.hh, trace_tool compare)
 * diffs reports across commits or sweeps without scraping console
 * output.
 *
 * Schema identifier: "zerodev-run-report-v2". v2 adds the
 * "latency_breakdown" section (per-component cycles/percentiles,
 * per-class rows, background work); the validator still accepts v1
 * documents, which simply lack it.
 */

#ifndef ZERODEV_OBS_REPORT_HH
#define ZERODEV_OBS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/runner.hh"

namespace zerodev::obs
{

struct JsonValue;
class JsonWriter;

/** The commit identifier artifacts are stamped with: the value of the
 *  ZERODEV_COMMIT environment variable, or "" when unset. */
std::string buildCommit();

/**
 * Provenance stamp shared by every JSON artifact writer (run reports,
 * fuzz reports, compare verdicts, bench trajectories, telemetry events
 * and status): emits the "schema" and "commit" fields. Call immediately
 * after beginObject() so the stamp leads the document.
 */
void stampArtifact(JsonWriter &w, std::string_view schema);

/**
 * Resolve an output-directory environment variable (ZERODEV_REPORT_DIR,
 * ZERODEV_SNAPSHOT_DIR, ZERODEV_TELEMETRY_DIR): returns "" when the
 * variable is unset or empty; otherwise creates the directory
 * recursively and probes that it is writable, terminating the process
 * with exit code 2 and a clear stderr message when it is not — output
 * the user asked for is never silently dropped.
 */
std::string outputDirFromEnv(const char *var);

/**
 * Process-local override for outputDirFromEnv(): when set (non-empty),
 * @p var resolves to @p dir instead of the environment; an empty @p dir
 * removes the override. The service daemon points ZERODEV_REPORT_DIR /
 * ZERODEV_SNAPSHOT_DIR at per-job spool directories this way without
 * the races of setenv() in a threaded process.
 */
void setOutputDirOverride(const char *var, const std::string &dir);

/**
 * Canonical "key=value;" rendering of every SystemConfig field, in a
 * fixed order. Two configs produce the same string iff they describe
 * the same simulated machine.
 */
std::string configCanonicalString(const SystemConfig &cfg);

/** 64-bit FNV-1a hash of the canonical config string. */
std::uint64_t configFingerprint(const SystemConfig &cfg);

/** Emit @p cfg as a JSON object (including the fingerprint) into @p w. */
void configToJson(JsonWriter &w, const SystemConfig &cfg);

/** Render one complete run report document. */
std::string runReportJson(const SystemConfig &cfg, const RunResult &res);

/** Write runReportJson() to @p path; false (and a warning) on failure. */
bool writeRunReport(const std::string &path, const SystemConfig &cfg,
                    const RunResult &res);

/**
 * If the ZERODEV_REPORT_DIR environment variable is set, write the
 * report to "<dir>/<name>.json" (name sanitised to [A-Za-z0-9._-]) and
 * return true; otherwise do nothing and return false.
 */
bool maybeWriteRunReport(const std::string &name, const SystemConfig &cfg,
                         const RunResult &res);

/** Top-level keys every report (v1 and v2) must carry. */
const std::vector<std::string> &requiredReportKeys();

/**
 * Structural validation of a parsed report: schema identifier (v1 or
 * v2), required top-level keys, the numeric result fields, and — for v2
 * documents with completed transactions — that the latency_breakdown
 * component cycles sum to within 1% of its totalCycles. On failure
 * stores a reason in @p err (when non-null).
 */
bool validateRunReport(const JsonValue &doc, std::string *err = nullptr);

} // namespace zerodev::obs

#endif // ZERODEV_OBS_REPORT_HH
