/**
 * @file
 * Live telemetry: per-job progress/heartbeat streaming, a structured
 * JSONL event log, Prometheus snapshots, a periodically rewritten
 * status.json, and a stall watchdog.
 *
 * The flow has three actors:
 *
 *  - Workers (the simulation loops in sim/runner.cc, the Differ, the
 *    sweep engine) own a TelemetryJob each and call progress() every
 *    heartbeatEvery() accesses — two relaxed atomic stores plus one
 *    sharded counter add, no locks, nothing if telemetry is off.
 *
 *  - The TelemetrySink's publisher thread wakes every flush period,
 *    rewrites <dir>/status.json (atomically: temp file + rename) and
 *    <dir>/metrics.prom from the registry, and runs the watchdog: a
 *    running job whose progress counter has not moved for stallSeconds
 *    gets a `stall` event (with the job's full state dumped into it)
 *    and, when stallSnapshots is on, a snapshot-on-stall request the
 *    worker services at its next checkpoint-safe boundary.
 *
 *  - Consumers tail <dir>/events.jsonl (schema zerodev-events-v1) or
 *    poll status.json (schema zerodev-status-v1) — `telemetry_tool top`
 *    renders exactly these files, and a future zerodevd admin endpoint
 *    can serve status.json verbatim.
 *
 * Completed jobs republish their final RunResult-derived numbers
 * (completionOf), so the live view of a finished job and its v2 run
 * report are the same values from the same source.
 */

#ifndef ZERODEV_OBS_TELEMETRY_HH
#define ZERODEV_OBS_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hh"

namespace zerodev
{
struct RunResult;
} // namespace zerodev

namespace zerodev::obs
{

/** Sink configuration (fromEnv() fills it from ZERODEV_TELEMETRY_*). */
struct TelemetryOptions
{
    /** Output directory for status.json / metrics.prom / events.jsonl
     *  (must be set; fromEnv() creates it recursively). */
    std::string dir;

    /** Publisher period in seconds (ZERODEV_TELEMETRY_PERIOD). */
    double flushPeriodSeconds = 0.25;

    /** Watchdog window: a running job with no progress for this many
     *  seconds is declared stalled (ZERODEV_STALL_SECONDS; 0 disables
     *  the watchdog). */
    double stallSeconds = 30.0;

    /** Write a snapshot-on-stall checkpoint request for stalled jobs
     *  (ZERODEV_STALL_SNAPSHOT=0 turns it off). */
    bool stallSnapshots = true;

    /** Where stall checkpoints land (ZERODEV_SNAPSHOT_DIR — the same
     *  directory resumable benches checkpoint into); empty = `dir`. */
    std::string snapshotDir;

    /** Workers publish progress every this many accesses. */
    std::uint64_t heartbeatEvery = 512;
};

/** Final numbers of a finished job — copied verbatim from the run's
 *  RunResult (completionOf) so live status and the v2 run report agree
 *  exactly. Plain fields keep sim/runner.hh out of this header. */
struct JobCompletion
{
    std::string workload;
    std::uint64_t accesses = 0;
    std::uint64_t cycles = 0;
    double wallSeconds = 0.0;
    double maccessesPerSecond = 0.0;

    /** Per-component critical-path cycles (name, cycles), only the
     *  non-zero ones; empty when no profiler was attached. */
    std::vector<std::pair<std::string, std::uint64_t>> latencyCycles;

    bool failed = false;
    std::string error;
};

/** Build a JobCompletion from a RunResult. */
JobCompletion completionOf(const RunResult &res);

class TelemetrySink;

/**
 * One unit of tracked work. Created by TelemetrySink::beginJob and owned
 * by the sink (pointers stay valid until the sink is destroyed); the
 * worker thread calls progress()/complete(), everything else is for the
 * publisher.
 */
class TelemetryJob
{
  public:
    enum class State : std::uint8_t
    {
        Running,
        Completed,
        Failed,
    };

    const std::string &name() const { return name_; }
    const std::string &figure() const { return figure_; }
    const std::string &fingerprint() const { return fingerprint_; }
    std::uint64_t totalAccesses() const { return total_; }
    std::uint64_t heartbeatEvery() const { return heartbeatEvery_; }

    /** Worker heartbeat: @p done accesses executed so far, simulated
     *  time at @p cycle. Lock-free; call from the one thread running
     *  the job. */
    void
    progress(std::uint64_t done, std::uint64_t cycle)
    {
        done_.store(done, std::memory_order_relaxed);
        cycle_.store(cycle, std::memory_order_relaxed);
        ZDEV_METRIC_ADD(accessesTotal_, done - counted_);
        counted_ = done;
    }

    /** Worker completion (or failure, when @p c.failed). */
    void complete(const JobCompletion &c);

    /** True once the watchdog has requested a snapshot-on-stall. The
     *  worker polls this at heartbeat boundaries and, when set, claims
     *  the path and writes a checkpoint there. */
    bool
    stallSnapshotRequested() const
    {
        return snapshotRequested_.load(std::memory_order_acquire);
    }

    /** Consume the snapshot request; returns the checkpoint path (empty
     *  if there was no pending request). */
    std::string claimStallSnapshot();

    std::uint64_t
    accessesDone() const
    {
        return done_.load(std::memory_order_relaxed);
    }

    State
    state() const
    {
        return static_cast<State>(
            state_.load(std::memory_order_acquire));
    }

    /** Set by the watchdog; cleared when progress resumes. */
    bool
    stalled() const
    {
        return stalled_.load(std::memory_order_relaxed);
    }

  private:
    friend class TelemetrySink;
    TelemetryJob(std::string name, std::string figure,
                 std::string fingerprint, std::uint64_t total,
                 std::uint64_t heartbeatEvery, Counter *accessesTotal);

    const std::string name_;
    const std::string figure_;
    const std::string fingerprint_;
    const std::uint64_t total_;
    const std::uint64_t heartbeatEvery_;
    const std::chrono::steady_clock::time_point start_;

    std::atomic<std::uint64_t> done_{0};
    std::atomic<std::uint64_t> cycle_{0};
    std::atomic<std::uint8_t> state_{0};
    std::atomic<bool> stalled_{false};

    TelemetrySink *sink_ = nullptr;
    Counter *accessesTotal_;    //!< shared zerodev_accesses_total
    std::uint64_t counted_ = 0; //!< worker-thread-only add() baseline
    Gauge *progressGauge_ = nullptr;
    Gauge *rateGauge_ = nullptr;

    mutable std::mutex mu_; //!< completion_ and stall path
    JobCompletion completion_;
    std::string stallSnapshotPath_;
    std::atomic<bool> snapshotRequested_{false};

    // Publisher-thread-only watchdog bookkeeping.
    std::uint64_t watchLastDone_ = 0;
    std::chrono::steady_clock::time_point watchLastChange_;
    bool stallReported_ = false;
};

/**
 * The export layer: owns the jobs, the event log, and the publisher /
 * watchdog thread. Construct one per process (fromEnv) or per test.
 */
class TelemetrySink
{
  public:
    /** Starts the publisher thread; @p reg defaults to the process
     *  registry. The directory must already exist (fromEnv and the
     *  tests create it). */
    explicit TelemetrySink(TelemetryOptions opt,
                           MetricsRegistry *reg = nullptr);

    /** Finalizes (idempotent) and joins the publisher. */
    ~TelemetrySink();

    TelemetrySink(const TelemetrySink &) = delete;
    TelemetrySink &operator=(const TelemetrySink &) = delete;

    const TelemetryOptions &options() const { return opt_; }

    /** Register a job. @p name must be a filesystem-safe slug (it names
     *  the snapshot-on-stall file and Prometheus labels); @p total is
     *  the access count the job will execute (ETA denominator). */
    TelemetryJob *beginJob(const std::string &name,
                           const std::string &figure,
                           const std::string &fingerprint,
                           std::uint64_t total);

    /** Append one structured event line (schema zerodev-events-v1).
     *  @p fields is pre-rendered JSON members ("\"k\":v,...", may be
     *  empty) spliced into the line after the standard envelope. */
    void event(const std::string &kind, const std::string &job,
               const std::string &fields = "");

    /**
     * Terminal flush: writes the final status.json (state "completed"
     * when every job ended Completed, else "aborted"), a last
     * metrics.prom, and the sink_finalize event, then stops the
     * publisher. Idempotent; also run by the destructor.
     */
    void finalize();

    /** Render the current status document (what status.json holds). */
    std::string statusJson() const;

    /** Stall events emitted so far. */
    std::uint64_t
    stallsDetected() const
    {
        return stalls_.load(std::memory_order_relaxed);
    }

    /**
     * The process-wide sink configured by the environment: returns a
     * lazily constructed singleton when ZERODEV_TELEMETRY_DIR is set
     * (creating the directory, exit 2 if that fails), nullptr
     * otherwise. Finalized at process exit.
     */
    static TelemetrySink *fromEnv();

    /** Tests only: finalize and drop the fromEnv() singleton so the
     *  next call re-reads the environment. */
    static void resetGlobalForTesting();

  private:
    friend class TelemetryJob;

    /** Completion bookkeeping + job_complete event (worker thread). */
    void onJobComplete(TelemetryJob &job, const JobCompletion &c);

    void publisherLoop();

    /** One publisher beat: watchdog sweep, then rewrite status.json and
     *  metrics.prom. */
    void publish();

    /** Watchdog sweep over running jobs (publisher thread only). */
    void watchdog();

    void writeStatusFile(const std::string &json) const;

    TelemetryOptions opt_;
    MetricsRegistry *reg_;

    mutable std::mutex jobsMu_;
    std::vector<std::unique_ptr<TelemetryJob>> jobs_;

    std::mutex eventMu_;

    Counter *accessesTotal_;
    Counter *jobsTotal_;
    Counter *jobsCompleted_;
    Counter *jobsFailed_;
    Counter *stallsTotal_;
    HistogramMetric *wallSeconds_;

    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<bool> finalized_{false};

    std::mutex cvMu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread publisher_;
};

} // namespace zerodev::obs

#endif // ZERODEV_OBS_TELEMETRY_HH
