#include "obs/sampler.hh"

#include <sstream>

#include "common/log.hh"
#include "common/serialize.hh"
#include "obs/json.hh"
#include "obs/report.hh"

namespace zerodev::obs
{

IntervalSampler::IntervalSampler(Cycle interval, std::size_t max_samples)
    : interval_(interval), next_(interval), maxSamples_(max_samples)
{
    if (interval == 0)
        fatal("interval sampler with a zero-cycle interval");
}

void
IntervalSampler::addProbe(const std::string &name, ProbeKind kind,
                          std::function<double()> fn)
{
    if (!samples_.empty())
        panic("probe '%s' registered after sampling began", name.c_str());
    Probe p;
    p.name = name;
    p.kind = kind;
    p.fn = std::move(fn);
    p.prev = p.fn();
    probes_.push_back(std::move(p));
}

void
IntervalSampler::sampleAt(Cycle cycle)
{
    if (samples_.size() >= maxSamples_) {
        ++overflowed_;
        return;
    }
    Sample s;
    s.cycle = cycle;
    s.values.reserve(probes_.size());
    for (Probe &p : probes_) {
        const double raw = p.fn();
        if (p.kind == ProbeKind::Rate) {
            s.values.push_back(raw - p.prev);
            p.prev = raw;
        } else {
            s.values.push_back(raw);
        }
    }
    samples_.push_back(std::move(s));
}

void
IntervalSampler::tick(Cycle now)
{
    while (now >= next_) {
        sampleAt(next_);
        next_ += interval_;
    }
}

void
IntervalSampler::finish(Cycle now)
{
    tick(now);
    const Cycle last = samples_.empty() ? 0 : samples_.back().cycle;
    if (now > last)
        sampleAt(now);
}

std::vector<std::string>
IntervalSampler::names() const
{
    std::vector<std::string> out;
    out.reserve(probes_.size());
    for (const Probe &p : probes_)
        out.push_back(p.name);
    return out;
}

std::string
IntervalSampler::toCsv() const
{
    std::ostringstream os;
    os << "cycle";
    for (const Probe &p : probes_)
        os << ',' << p.name;
    os << '\n';
    for (const Sample &s : samples_) {
        os << s.cycle;
        for (double v : s.values)
            os << ',' << jsonNumber(v);
        os << '\n';
    }
    return os.str();
}

std::string
IntervalSampler::toJson() const
{
    JsonWriter w;
    w.beginObject();
    stampArtifact(w, "zerodev-interval-stats-v1");
    w.field("interval", interval_)
        .field("samples", static_cast<std::uint64_t>(samples_.size()))
        .field("overflowed", overflowed_);
    w.key("cycles").beginArray();
    for (const Sample &s : samples_)
        w.value(s.cycle);
    w.endArray();
    w.key("series").beginObject();
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        w.key(probes_[i].name).beginArray();
        for (const Sample &s : samples_)
            w.value(s.values[i]);
        w.endArray();
    }
    w.endObject().endObject();
    return w.str();
}

void
IntervalSampler::save(SerialOut &out) const
{
    out.u64(interval_);
    out.u64(next_);
    out.u32(static_cast<std::uint32_t>(probes_.size()));
    for (const Probe &p : probes_)
        out.f64(p.prev);
}

void
IntervalSampler::restore(SerialIn &in)
{
    if (!samples_.empty())
        panic("sampler restore after sampling began");
    if (!in.check(in.u64() == interval_,
                  "checkpoint sampler interval mismatch"))
        return;
    next_ = in.u64();
    if (!in.check(in.u32() == probes_.size(),
                  "checkpoint sampler probe count mismatch"))
        return;
    for (Probe &p : probes_)
        p.prev = in.f64();
}

bool
IntervalSampler::writeCsv(const std::string &path) const
{
    return writeTextFile(path, toCsv());
}

bool
IntervalSampler::writeJson(const std::string &path) const
{
    return writeTextFile(path, toJson());
}

} // namespace zerodev::obs
