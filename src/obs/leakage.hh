/**
 * @file
 * Information-theoretic leakage metrics over (secret, observable) trial
 * pairs, the measurement half of the side-channel lab
 * (docs/SIDECHANNEL.md).
 *
 * The channel is the map from a planted binary secret to the attacker's
 * observable (a probe-latency sum). From the empirical joint
 * distribution the estimator derives:
 *  - mutual information I(S;O) under the empirical secret prior,
 *  - channel capacity: max over binary priors of I(S;O) given the
 *    empirical conditionals P(O|S) — the worst-case bits/trial bound,
 *  - bit-error rate of the maximum-likelihood single-trial decoder.
 *
 * Finite-sample positive bias is tamed twice: observables are quantized
 * to at most maxBins bins before estimation, and the Miller-Madow
 * correction ((non-empty joint cells - rows - cols + 1) / (2 N ln 2))
 * is subtracted, clamped at zero. A truly independent observable
 * therefore reports ~0 bits instead of spurious leakage.
 */

#ifndef ZERODEV_OBS_LEAKAGE_HH
#define ZERODEV_OBS_LEAKAGE_HH

#include <cstdint>
#include <vector>

namespace zerodev::obs
{

/** Leakage metrics of one (secret, observable) sample set. */
struct LeakageEstimate
{
    /** Channel capacity in bits/trial (0 when only one secret value was
     *  sampled — the channel is unobservable then). */
    double capacityBits = 0.0;

    /** Mutual information under the empirical secret prior, bits. */
    double miBits = 0.0;

    /** Maximum-likelihood single-trial decoder bit-error rate; 0.5 when
     *  the observable carries nothing. */
    double ber = 0.5;

    /** Samples the estimate used. */
    std::uint64_t trials = 0;

    /** Observable bins after quantization. */
    std::uint32_t bins = 0;
};

/**
 * Estimate the leakage of binary @p secrets through @p observables
 * (same length, pairwise matched). @p maxBins caps the observable
 * alphabet: distinct values beyond it are quantized into equal-width
 * ranges. Passing mismatched or empty inputs is fatal.
 */
LeakageEstimate estimateLeakage(const std::vector<std::uint8_t> &secrets,
                                const std::vector<std::uint64_t>
                                    &observables,
                                std::uint32_t maxBins = 16);

} // namespace zerodev::obs

#endif // ZERODEV_OBS_LEAKAGE_HH
