#include "obs/trace.hh"

#include <cstdio>

#include "common/log.hh"
#include "obs/json.hh"

namespace zerodev::obs
{

const char *
toString(TraceComp c)
{
    switch (c) {
      case TraceComp::Core: return "core";
      case TraceComp::Directory: return "directory";
      case TraceComp::Llc: return "llc";
      case TraceComp::Mesh: return "mesh";
      case TraceComp::Memory: return "memory";
      case TraceComp::Protocol: return "protocol";
      case TraceComp::NumComps: break;
    }
    return "?";
}

const char *
toString(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::Request: return "request";
      case TraceEventKind::Complete: return "complete";
      case TraceEventKind::DirLookup: return "dir_lookup";
      case TraceEventKind::Spill: return "spill";
      case TraceEventKind::Fuse: return "fuse";
      case TraceEventKind::Unfuse: return "unfuse";
      case TraceEventKind::WbDe: return "wb_de";
      case TraceEventKind::GetDe: return "get_de";
      case TraceEventKind::DeExtract: return "de_extract";
      case TraceEventKind::Dev: return "dev";
      case TraceEventKind::Forward: return "forward";
      case TraceEventKind::MemRead: return "mem_read";
      case TraceEventKind::SocketMiss: return "socket_miss";
      case TraceEventKind::LlcVictim: return "llc_victim";
      case TraceEventKind::NumKinds: break;
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity)
    : buf_(capacity ? capacity : 1),
      compMask_((1u << static_cast<unsigned>(TraceComp::NumComps)) - 1)
{
    if (capacity == 0)
        panic("tracer with zero capacity");
}

void
Tracer::setComponentEnabled(TraceComp c, bool on)
{
    const std::uint32_t bit = 1u << static_cast<unsigned>(c);
    if (on)
        compMask_ |= bit;
    else
        compMask_ &= ~bit;
}

bool
Tracer::componentEnabled(TraceComp c) const
{
    return (compMask_ & (1u << static_cast<unsigned>(c))) != 0;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = accepted_ - n;
    for (std::uint64_t i = first; i < accepted_; ++i)
        out.push_back(buf_[i % buf_.size()]);
    return out;
}

namespace
{

std::string
blockHex(BlockAddr b)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(b));
    return buf;
}

void
appendEventObject(JsonWriter &w, const TraceEvent &e)
{
    w.beginObject()
        .field("seq", e.seq)
        .field("txn", e.txn)
        .field("cycle", e.cycle)
        .field("dur", e.dur)
        .field("kind", toString(e.kind))
        .field("comp", toString(e.comp))
        .field("socket", static_cast<std::uint64_t>(e.socket))
        .field("core", static_cast<std::uint64_t>(e.core))
        .field("block", blockHex(e.block))
        .field("arg", static_cast<std::uint64_t>(e.arg));
    // Provenance is optional so pre-provenance traces and new ones share
    // one schema: consumers treat an absent "prov" as "no inducer".
    if (e.prov != kTraceNoProv)
        w.field("prov", static_cast<std::uint64_t>(e.prov));
    w.endObject();
}

} // namespace

std::string
Tracer::toJsonl() const
{
    std::string out;
    const std::size_t n = size();
    const std::uint64_t first = accepted_ - n;
    for (std::uint64_t i = first; i < accepted_; ++i) {
        JsonWriter w;
        appendEventObject(w, buf_[i % buf_.size()]);
        out += w.str();
        out += '\n';
    }
    return out;
}

std::string
Tracer::toChromeJson() const
{
    JsonWriter w;
    w.beginObject().key("traceEvents").beginArray();
    const std::size_t n = size();
    const std::uint64_t first = accepted_ - n;
    for (std::uint64_t i = first; i < accepted_; ++i) {
        const TraceEvent &e = buf_[i % buf_.size()];
        w.beginObject()
            .field("name", toString(e.kind))
            .field("cat", toString(e.comp))
            .field("ph", "X")
            .field("ts", e.cycle)
            .field("dur", e.dur == 0 ? std::uint64_t(1) : e.dur)
            .field("pid", static_cast<std::uint64_t>(e.socket))
            .field("tid", static_cast<std::uint64_t>(e.core))
            .key("args")
            .beginObject()
            .field("txn", e.txn)
            .field("block", blockHex(e.block))
            .field("arg", static_cast<std::uint64_t>(e.arg))
            .field("seq", e.seq)
            .endObject()
            .endObject();
    }
    w.endArray()
        .field("displayTimeUnit", "ns")
        .key("metadata")
        .beginObject()
        .field("recorded", recorded())
        .field("dropped", dropped())
        .endObject()
        .endObject();
    return w.str();
}

bool
Tracer::writeJsonl(const std::string &path) const
{
    return writeTextFile(path, toJsonl());
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    return writeTextFile(path, toChromeJson());
}

} // namespace zerodev::obs
