#include "obs/leakage.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "common/log.hh"

namespace zerodev::obs
{

namespace
{

constexpr double kLn2 = 0.6931471805599453;

/**
 * Quantize observables to at most @p maxBins symbols. Few distinct
 * values map 1:1 (exact); beyond that, equal-width ranges over
 * [min, max] coarsen the alphabet, which both bounds the estimator's
 * bias and mirrors a realistic timer granularity.
 */
std::vector<std::uint32_t>
quantize(const std::vector<std::uint64_t> &observables,
         std::uint32_t maxBins, std::uint32_t *bins_out)
{
    std::map<std::uint64_t, std::uint32_t> distinct;
    for (std::uint64_t o : observables)
        distinct.emplace(o, 0);

    std::vector<std::uint32_t> out(observables.size());
    if (distinct.size() <= maxBins) {
        std::uint32_t next = 0;
        for (auto &[value, bin] : distinct) {
            (void)value;
            bin = next++;
        }
        for (std::size_t i = 0; i < observables.size(); ++i)
            out[i] = distinct.at(observables[i]);
        *bins_out = next;
        return out;
    }

    const std::uint64_t lo = distinct.begin()->first;
    const std::uint64_t hi = distinct.rbegin()->first;
    const double width =
        static_cast<double>(hi - lo) / static_cast<double>(maxBins);
    for (std::size_t i = 0; i < observables.size(); ++i) {
        auto bin = static_cast<std::uint32_t>(
            static_cast<double>(observables[i] - lo) / width);
        out[i] = std::min(bin, maxBins - 1);
    }
    *bins_out = maxBins;
    return out;
}

/** I(S;O) in bits for the binary prior (p, 1-p) over the empirical
 *  conditionals @p cond (cond[s][o] = P(o | S = s)). */
double
miForPrior(double p, const std::array<std::vector<double>, 2> &cond)
{
    const double prior[2] = {p, 1.0 - p};
    double mi = 0.0;
    for (std::size_t o = 0; o < cond[0].size(); ++o) {
        const double po =
            prior[0] * cond[0][o] + prior[1] * cond[1][o];
        if (po <= 0.0)
            continue;
        for (int s = 0; s < 2; ++s) {
            const double joint = prior[s] * cond[s][o];
            if (joint > 0.0)
                mi += joint * std::log2(cond[s][o] / po);
        }
    }
    return mi;
}

} // namespace

LeakageEstimate
estimateLeakage(const std::vector<std::uint8_t> &secrets,
                const std::vector<std::uint64_t> &observables,
                std::uint32_t maxBins)
{
    if (secrets.size() != observables.size() || secrets.empty())
        fatal("estimateLeakage: %zu secrets vs %zu observables",
              secrets.size(), observables.size());
    if (maxBins < 2)
        fatal("estimateLeakage: need at least 2 observable bins");

    LeakageEstimate est;
    est.trials = secrets.size();

    std::uint32_t bins = 0;
    const std::vector<std::uint32_t> sym =
        quantize(observables, maxBins, &bins);
    est.bins = bins;

    // Empirical joint counts n[s][o] and marginals.
    std::array<std::vector<std::uint64_t>, 2> n;
    n[0].assign(bins, 0);
    n[1].assign(bins, 0);
    std::uint64_t ns[2] = {0, 0};
    for (std::size_t i = 0; i < secrets.size(); ++i) {
        const int s = secrets[i] ? 1 : 0;
        ++n[s][sym[i]];
        ++ns[s];
    }

    // A single-class sample set cannot witness a channel.
    if (ns[0] == 0 || ns[1] == 0) {
        est.capacityBits = 0.0;
        est.miBits = 0.0;
        est.ber = 0.5;
        return est;
    }

    const double total = static_cast<double>(est.trials);

    // Miller-Madow first-order bias of a plug-in MI estimate:
    // (non-empty joint cells - non-empty rows - non-empty cols + 1)
    // / (2 N ln 2), clamped at 0.
    std::uint64_t k_joint = 0, k_obs = 0;
    for (std::uint32_t o = 0; o < bins; ++o) {
        if (n[0][o] + n[1][o] > 0)
            ++k_obs;
        k_joint += (n[0][o] > 0) + (n[1][o] > 0);
    }
    const double dof = static_cast<double>(k_joint) - 2.0 -
                       static_cast<double>(k_obs) + 1.0;
    const double bias =
        dof > 0.0 ? dof / (2.0 * total * kLn2) : 0.0;

    std::array<std::vector<double>, 2> cond;
    for (int s = 0; s < 2; ++s) {
        cond[s].assign(bins, 0.0);
        for (std::uint32_t o = 0; o < bins; ++o) {
            cond[s][o] = static_cast<double>(n[s][o]) /
                         static_cast<double>(ns[s]);
        }
    }

    // MI under the empirical secret prior.
    const double empirical_p = static_cast<double>(ns[0]) / total;
    est.miBits =
        std::max(0.0, miForPrior(empirical_p, cond) - bias);

    // Capacity: I(p) is concave in the binary prior, so a ternary
    // search converges to the maximum.
    double lo = 0.0, hi = 1.0;
    for (int it = 0; it < 100; ++it) {
        const double m1 = lo + (hi - lo) / 3.0;
        const double m2 = hi - (hi - lo) / 3.0;
        if (miForPrior(m1, cond) < miForPrior(m2, cond))
            lo = m1;
        else
            hi = m2;
    }
    est.capacityBits =
        std::max(0.0, miForPrior((lo + hi) / 2.0, cond) - bias);

    // Maximum-likelihood single-trial decoder: per observed symbol,
    // guess the majority secret; the minority counts are the errors.
    std::uint64_t errors = 0;
    for (std::uint32_t o = 0; o < bins; ++o)
        errors += std::min(n[0][o], n[1][o]);
    est.ber = static_cast<double>(errors) / total;

    return est;
}

} // namespace zerodev::obs
