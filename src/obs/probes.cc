#include "obs/probes.hh"

#include "core/cmp_system.hh"
#include "obs/sampler.hh"

namespace zerodev::obs
{

namespace
{

/** Sum fn(socket) over all sockets. */
template <typename Fn>
double
overSockets(const CmpSystem &sys, Fn &&fn)
{
    double total = 0.0;
    for (SocketId s = 0; s < sys.config().sockets; ++s)
        total += fn(s);
    return total;
}

double
liveDirEntries(const CmpSystem &sys)
{
    return overSockets(sys, [&](SocketId s) {
        if (sys.sparseDir(s))
            return static_cast<double>(sys.sparseDir(s)->liveEntries());
        if (sys.dirOrg(s))
            return static_cast<double>(sys.dirOrg(s)->liveEntries());
        return 0.0;
    });
}

double
dirCapacity(const CmpSystem &sys)
{
    return overSockets(sys, [&](SocketId s) {
        if (sys.sparseDir(s))
            return static_cast<double>(sys.sparseDir(s)->capacityEntries());
        if (sys.dirOrg(s))
            return static_cast<double>(sys.dirOrg(s)->capacityEntries());
        return 0.0;
    });
}

} // namespace

void
registerSystemProbes(IntervalSampler &sampler, const CmpSystem &sys)
{
    using PK = IntervalSampler::ProbeKind;
    const CmpSystem *p = &sys;

    sampler.addProbe("dir_live_entries", PK::Level,
                     [p] { return liveDirEntries(*p); });
    sampler.addProbe("dir_occupancy", PK::Level, [p] {
        const double cap = dirCapacity(*p);
        return cap > 0.0 ? liveDirEntries(*p) / cap : 0.0;
    });
    sampler.addProbe("llc_de_lines", PK::Level, [p] {
        return overSockets(*p, [&](SocketId s) {
            return static_cast<double>(p->llc(s).deLines());
        });
    });
    sampler.addProbe("llc_spilled_lines", PK::Level, [p] {
        return overSockets(*p, [&](SocketId s) {
            return static_cast<double>(p->llc(s).spilledLines());
        });
    });
    sampler.addProbe("llc_fused_lines", PK::Level, [p] {
        return overSockets(*p, [&](SocketId s) {
            return static_cast<double>(p->llc(s).fusedLines());
        });
    });
    sampler.addProbe("mem_corrupted_blocks", PK::Level, [p] {
        return overSockets(*p, [&](SocketId s) {
            return static_cast<double>(p->memStore(s).corruptedBlocks());
        });
    });

    sampler.addProbe("accesses", PK::Rate, [p] {
        return static_cast<double>(p->protoStats().accesses);
    });
    sampler.addProbe("l2_misses", PK::Rate, [p] {
        return static_cast<double>(p->protoStats().l2Misses);
    });
    sampler.addProbe("dev_invalidations", PK::Rate, [p] {
        return static_cast<double>(p->protoStats().devInvalidations);
    });
    sampler.addProbe("llc_de_evictions", PK::Rate, [p] {
        return overSockets(*p, [&](SocketId s) {
            return static_cast<double>(p->llc(s).stats().deEvictions);
        });
    });
    sampler.addProbe("traffic_bytes", PK::Rate, [p] {
        return static_cast<double>(p->totalTrafficBytes());
    });
    sampler.addProbe("mesh_hops", PK::Rate, [p] {
        return overSockets(*p, [&](SocketId s) {
            return static_cast<double>(p->mesh(s).stats().hops);
        });
    });
}

} // namespace zerodev::obs
