/**
 * @file
 * Live-telemetry metrics registry: counters, gauges and histograms with
 * per-thread sharded slots.
 *
 * The hot path (a worker thread bumping a counter) is lock-free: each
 * thread owns one of kMetricShards cache-line-padded atomic slots per
 * series and increments it with a relaxed fetch_add; aggregation across
 * shards happens only at scrape time, so a publisher thread rendering
 * the Prometheus exposition never blocks the simulation workers.
 *
 * Registration (MetricsRegistry::counter / gauge / histogram) is
 * mutex-protected and idempotent: asking for an existing (name, labels)
 * series returns the same handle, so components can "re-register" their
 * series without coordination. Handles stay valid for the registry's
 * lifetime (series storage never moves).
 *
 * The registry is runtime-switchable (setEnabled) and, like the
 * coherence trace hooks, compiles to nothing when the ZERODEV_METRICS
 * CMake option is OFF: every mutation method becomes an empty inline and
 * the ZDEV_METRIC_* macros expand to no-ops, so the 10x sim-rate push
 * is never taxed by instrumentation it does not want.
 */

#ifndef ZERODEV_OBS_METRICS_HH
#define ZERODEV_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef ZERODEV_METRICS
#define ZERODEV_METRICS 1
#endif

namespace zerodev::obs
{

/** Shard count per series; threads hash onto shards round-robin. */
constexpr std::size_t kMetricShards = 16;

/** This thread's shard slot, assigned round-robin on first use. */
std::size_t metricShardIndex();

/** One cache-line-padded atomic cell. */
struct alignas(64) MetricShard
{
    std::atomic<std::uint64_t> value{0};
};

class MetricsRegistry;

/** Base of every registered series: identity plus the enabled gate. */
class Metric
{
  public:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Histogram,
    };

    virtual ~Metric() = default;

    const std::string &name() const { return name_; }
    const std::string &labels() const { return labels_; }
    const std::string &help() const { return help_; }
    Kind kind() const { return kind_; }

  protected:
    Metric(Kind kind, std::string name, std::string labels,
           std::string help, const std::atomic<bool> *enabled)
        : kind_(kind), name_(std::move(name)), labels_(std::move(labels)),
          help_(std::move(help)), enabled_(enabled)
    {
    }

    bool
    live() const
    {
        return enabled_->load(std::memory_order_relaxed);
    }

  private:
    Kind kind_;
    std::string name_;
    std::string labels_;
    std::string help_;
    const std::atomic<bool> *enabled_;
};

/** Monotonic counter; add() is lock-free on a per-thread shard. */
class Counter : public Metric
{
  public:
    void
    add(std::uint64_t delta)
    {
#if ZERODEV_METRICS
        if (live()) {
            shards_[metricShardIndex()].value.fetch_add(
                delta, std::memory_order_relaxed);
        }
#else
        (void)delta;
#endif
    }

    void inc() { add(1); }

    /** Aggregate over all shards (scrape path). */
    std::uint64_t
    value() const
    {
        std::uint64_t sum = 0;
        for (const MetricShard &s : shards_)
            sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    friend class MetricsRegistry;
    Counter(std::string name, std::string labels, std::string help,
            const std::atomic<bool> *enabled)
        : Metric(Kind::Counter, std::move(name), std::move(labels),
                 std::move(help), enabled)
    {
    }

    MetricShard shards_[kMetricShards];
};

/** Last-write-wins instantaneous value (stored as IEEE-754 bits). */
class Gauge : public Metric
{
  public:
    void
    set(double v)
    {
#if ZERODEV_METRICS
        if (live()) {
            std::uint64_t bits;
            static_assert(sizeof bits == sizeof v);
            __builtin_memcpy(&bits, &v, sizeof bits);
            bits_.store(bits, std::memory_order_relaxed);
        }
#else
        (void)v;
#endif
    }

    double
    value() const
    {
        const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
        double v;
        __builtin_memcpy(&v, &bits, sizeof v);
        return v;
    }

  private:
    friend class MetricsRegistry;
    Gauge(std::string name, std::string labels, std::string help,
          const std::atomic<bool> *enabled)
        : Metric(Kind::Gauge, std::move(name), std::move(labels),
                 std::move(help), enabled)
    {
    }

    std::atomic<std::uint64_t> bits_{0};
};

/** Fixed-bound histogram (Prometheus classic buckets). observe() is
 *  lock-free: one shard-local bucket increment plus a CAS-add into the
 *  shard-local sum. */
class HistogramMetric : public Metric
{
  public:
    void observe(double v);

    struct Snapshot
    {
        std::vector<double> bounds;        //!< upper bounds, ascending
        std::vector<std::uint64_t> counts; //!< per bucket (non-cumulative,
                                           //!< one extra for +Inf)
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    Snapshot snapshot() const;

    const std::vector<double> &bounds() const { return bounds_; }

  private:
    friend class MetricsRegistry;
    HistogramMetric(std::string name, std::string labels, std::string help,
              std::vector<double> bounds,
              const std::atomic<bool> *enabled);

    struct alignas(64) Shard
    {
        std::vector<std::atomic<std::uint64_t>> buckets; //!< bounds+1
        std::atomic<std::uint64_t> sumBits{0};           //!< double bits
    };

    std::vector<double> bounds_;
    std::vector<Shard> shards_;
};

/**
 * The central registry. One process-wide instance (global()) backs the
 * telemetry sink; tests construct private registries freely.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry the telemetry sink scrapes. */
    static MetricsRegistry &global();

    /** Runtime master switch; mutations are dropped while disabled. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * Register (or look up) a series. @p labels is a pre-rendered
     * Prometheus label body such as `job="smoke_run0000"` (empty for an
     * unlabelled series); series with the same name share one HELP/TYPE
     * block in the exposition. Asking for an existing series with a
     * different kind is fatal.
     */
    Counter *counter(const std::string &name, const std::string &help,
                     const std::string &labels = "");
    Gauge *gauge(const std::string &name, const std::string &help,
                 const std::string &labels = "");
    HistogramMetric *histogram(const std::string &name,
                               const std::string &help,
                               std::vector<double> bounds,
                               const std::string &labels = "");

    /** Series count (tests). */
    std::size_t size() const;

    /**
     * Render the Prometheus text exposition (version 0.0.4): one
     * HELP/TYPE block per metric name in registration order, then one
     * sample line per series (histograms expand to _bucket/_sum/_count).
     */
    std::string prometheusText() const;

    /** Drop every series (tests only; outstanding handles dangle). */
    void resetForTesting();

  private:
    Metric *find(const std::string &name, const std::string &labels) const;

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Metric>> series_; //!< registration order
    std::atomic<bool> enabled_{true};
};

/**
 * Validate a Prometheus text exposition: HELP/TYPE comment syntax,
 * legal metric and label names, parseable sample values, TYPE blocks
 * declared at most once and before their samples, and no duplicate
 * (name, labels) series. On failure stores a reason in @p err.
 */
bool checkPrometheusText(const std::string &text,
                         std::string *err = nullptr);

// Hot-path instrumentation macros: compiled out entirely when the
// ZERODEV_METRICS CMake option is OFF. @p m is a Counter*/Gauge* that
// may be null (instrumentation point without a registered series).
#if ZERODEV_METRICS
#define ZDEV_METRIC_ADD(m, delta)                                       \
    do {                                                                \
        if (m)                                                          \
            (m)->add(delta);                                            \
    } while (0)
#define ZDEV_METRIC_SET(m, v)                                           \
    do {                                                                \
        if (m)                                                          \
            (m)->set(v);                                                \
    } while (0)
#else
#define ZDEV_METRIC_ADD(m, delta) ((void)0)
#define ZDEV_METRIC_SET(m, v) ((void)0)
#endif

} // namespace zerodev::obs

#endif // ZERODEV_OBS_METRICS_HH
