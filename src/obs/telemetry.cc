#include "obs/telemetry.hh"

#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "common/log.hh"
#include "obs/json.hh"
#include "obs/latency.hh"
#include "obs/report.hh"
#include "sim/runner.hh"

namespace zerodev::obs
{

namespace
{

/** Wall-clock milliseconds since the epoch (event timestamps). */
std::int64_t
wallMillis()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

double
secondsSince(std::chrono::steady_clock::time_point then,
             std::chrono::steady_clock::time_point now)
{
    return std::chrono::duration<double>(now - then).count();
}

/** Filesystem/label-safe slug of a job name. */
std::string
slugify(const std::string &name)
{
    std::string out;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        out += ok ? c : '_';
    }
    return out.empty() ? "job" : out;
}

const char *
stateName(TelemetryJob::State s, bool stalled)
{
    switch (s) {
      case TelemetryJob::State::Running:
        return stalled ? "stalled" : "running";
      case TelemetryJob::State::Completed:
        return "completed";
      case TelemetryJob::State::Failed:
        return "failed";
    }
    return "unknown";
}

double
envDouble(const char *var, double dflt)
{
    const char *v = std::getenv(var);
    if (!v || !*v)
        return dflt;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    return (end && *end == '\0' && parsed >= 0.0) ? parsed : dflt;
}

} // namespace

JobCompletion
completionOf(const RunResult &res)
{
    JobCompletion c;
    c.workload = res.workload;
    c.accesses = res.accesses;
    c.cycles = res.cycles;
    c.wallSeconds = res.wallSeconds;
    c.maccessesPerSecond = res.maccessesPerSecond();
    for (std::size_t i = 0; i < LatencyBreakdown::kNumComps; ++i) {
        const std::uint64_t cycles = res.latency.components[i].cycles;
        if (cycles) {
            c.latencyCycles.emplace_back(
                toString(static_cast<LatComp>(i)), cycles);
        }
    }
    return c;
}

TelemetryJob::TelemetryJob(std::string name, std::string figure,
                           std::string fingerprint, std::uint64_t total,
                           std::uint64_t heartbeatEvery,
                           Counter *accessesTotal)
    : name_(std::move(name)), figure_(std::move(figure)),
      fingerprint_(std::move(fingerprint)), total_(total),
      heartbeatEvery_(heartbeatEvery ? heartbeatEvery : 1),
      start_(std::chrono::steady_clock::now()),
      accessesTotal_(accessesTotal), watchLastChange_(start_)
{
}

void
TelemetryJob::complete(const JobCompletion &c)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        completion_ = c;
    }
    // Fold the tail of the run (accesses since the last heartbeat) into
    // the shared counter so zerodev_accesses_total ends exact.
    if (c.accesses > counted_) {
        ZDEV_METRIC_ADD(accessesTotal_, c.accesses - counted_);
        counted_ = c.accesses;
    }
    done_.store(c.accesses, std::memory_order_relaxed);
    state_.store(static_cast<std::uint8_t>(c.failed ? State::Failed
                                                    : State::Completed),
                 std::memory_order_release);
    stalled_.store(false, std::memory_order_relaxed);
    if (sink_)
        sink_->onJobComplete(*this, c);
}

std::string
TelemetryJob::claimStallSnapshot()
{
    if (!snapshotRequested_.exchange(false, std::memory_order_acq_rel))
        return {};
    std::lock_guard<std::mutex> lock(mu_);
    return stallSnapshotPath_;
}

TelemetrySink::TelemetrySink(TelemetryOptions opt, MetricsRegistry *reg)
    : opt_(std::move(opt)), reg_(reg ? reg : &MetricsRegistry::global())
{
    if (opt_.dir.empty())
        fatal("TelemetrySink needs an output directory");
    accessesTotal_ = reg_->counter(
        "zerodev_accesses_total",
        "Simulated memory accesses completed across all jobs");
    jobsTotal_ =
        reg_->counter("zerodev_jobs_total", "Jobs registered");
    jobsCompleted_ = reg_->counter("zerodev_jobs_completed_total",
                                   "Jobs finished successfully");
    jobsFailed_ =
        reg_->counter("zerodev_jobs_failed_total", "Jobs that failed");
    stallsTotal_ = reg_->counter("zerodev_stalls_total",
                                 "Watchdog stall events emitted");
    wallSeconds_ = reg_->histogram(
        "zerodev_job_wall_seconds", "Host wall-clock seconds per job",
        {0.01, 0.1, 1.0, 10.0, 60.0, 300.0});

    event("sink_start", "",
          "\"pid\":" + std::to_string(::getpid()) +
              ",\"stall_seconds\":" + jsonNumber(opt_.stallSeconds));
    publisher_ = std::thread([this] { publisherLoop(); });
}

TelemetrySink::~TelemetrySink()
{
    finalize();
}

TelemetryJob *
TelemetrySink::beginJob(const std::string &name,
                        const std::string &figure,
                        const std::string &fingerprint,
                        std::uint64_t total)
{
    const std::string slug = slugify(name);
    std::unique_ptr<TelemetryJob> job(
        new TelemetryJob(slug, figure, fingerprint, total,
                         opt_.heartbeatEvery, accessesTotal_));
    job->sink_ = this;
    job->progressGauge_ =
        reg_->gauge("zerodev_job_progress",
                    "Fraction of the job's accesses completed",
                    "job=\"" + slug + "\"");
    job->rateGauge_ = reg_->gauge(
        "zerodev_job_maccesses_per_second",
        "Host simulation rate of the job", "job=\"" + slug + "\"");
    jobsTotal_->inc();

    TelemetryJob *out = job.get();
    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        jobs_.push_back(std::move(job));
    }
    event("job_start", slug,
          "\"figure\":\"" + jsonEscape(figure) + "\",\"fingerprint\":\"" +
              jsonEscape(fingerprint) +
              "\",\"total_accesses\":" + std::to_string(total));
    return out;
}

void
TelemetrySink::event(const std::string &kind, const std::string &job,
                     const std::string &fields)
{
    std::string line = "{\"schema\":\"zerodev-events-v1\",\"commit\":\"" +
                       jsonEscape(buildCommit()) +
                       "\",\"ts_ms\":" + std::to_string(wallMillis()) +
                       ",\"kind\":\"" + jsonEscape(kind) + "\"";
    if (!job.empty())
        line += ",\"job\":\"" + jsonEscape(job) + "\"";
    if (!fields.empty())
        line += "," + fields;
    line += "}\n";
    std::lock_guard<std::mutex> lock(eventMu_);
    appendTextFile(opt_.dir + "/events.jsonl", line);
}

void
TelemetrySink::onJobComplete(TelemetryJob &job, const JobCompletion &c)
{
    if (c.failed)
        jobsFailed_->inc();
    else
        jobsCompleted_->inc();
    wallSeconds_->observe(c.wallSeconds);
    ZDEV_METRIC_SET(job.progressGauge_,
                    job.total_ ? static_cast<double>(c.accesses) /
                                     static_cast<double>(job.total_)
                               : 1.0);
    ZDEV_METRIC_SET(job.rateGauge_, c.maccessesPerSecond);
    std::string fields =
        "\"accesses\":" + std::to_string(c.accesses) +
        ",\"cycles\":" + std::to_string(c.cycles) +
        ",\"wall_seconds\":" + jsonNumber(c.wallSeconds) +
        ",\"maccesses_per_second\":" + jsonNumber(c.maccessesPerSecond);
    if (c.failed)
        fields += ",\"error\":\"" + jsonEscape(c.error) + "\"";
    event(c.failed ? "job_failed" : "job_complete", job.name_, fields);
}

void
TelemetrySink::publisherLoop()
{
    const auto period = std::chrono::duration<double>(
        opt_.flushPeriodSeconds > 0.0 ? opt_.flushPeriodSeconds : 0.25);
    while (true) {
        {
            std::unique_lock<std::mutex> lock(cvMu_);
            cv_.wait_for(lock, period, [this] { return stop_; });
            if (stop_)
                return; // finalize() writes the terminal files
        }
        publish();
    }
}

void
TelemetrySink::watchdog()
{
    if (opt_.stallSeconds <= 0.0)
        return;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(jobsMu_);
    for (const std::unique_ptr<TelemetryJob> &jp : jobs_) {
        TelemetryJob &j = *jp;
        if (j.state() != TelemetryJob::State::Running)
            continue;
        const std::uint64_t done = j.accessesDone();
        if (done != j.watchLastDone_) {
            j.watchLastDone_ = done;
            j.watchLastChange_ = now;
            j.stalled_.store(false, std::memory_order_relaxed);
            j.stallReported_ = false;
            continue;
        }
        const double idle = secondsSince(j.watchLastChange_, now);
        if (idle < opt_.stallSeconds || j.stallReported_)
            continue;

        // Declare the stall: sticky until progress resumes. The event
        // carries the job's full live state (the "dump"), and the
        // snapshot request is serviced by the worker at its next
        // checkpoint-safe boundary — a between-transactions point, the
        // only place runner state is snapshottable.
        j.stallReported_ = true;
        j.stalled_.store(true, std::memory_order_relaxed);
        stalls_.fetch_add(1, std::memory_order_relaxed);
        stallsTotal_->inc();
        std::string fields =
            "\"no_progress_seconds\":" + jsonNumber(idle) +
            ",\"accesses\":" + std::to_string(done) +
            ",\"total_accesses\":" + std::to_string(j.total_) +
            ",\"cycle\":" +
            std::to_string(j.cycle_.load(std::memory_order_relaxed)) +
            ",\"figure\":\"" + jsonEscape(j.figure_) +
            "\",\"fingerprint\":\"" + jsonEscape(j.fingerprint_) + "\"";
        if (opt_.stallSnapshots) {
            const std::string &ckptDir =
                opt_.snapshotDir.empty() ? opt_.dir : opt_.snapshotDir;
            const std::string path =
                ckptDir + "/stall-" + j.name_ + ".ckpt";
            {
                std::lock_guard<std::mutex> jlock(j.mu_);
                j.stallSnapshotPath_ = path;
            }
            j.snapshotRequested_.store(true, std::memory_order_release);
            fields += ",\"snapshot\":\"" + jsonEscape(path) + "\"";
        }
        event("stall", j.name_, fields);
    }
}

std::string
TelemetrySink::statusJson() const
{
    const auto now = std::chrono::steady_clock::now();
    JsonWriter w;
    w.beginObject();
    stampArtifact(w, "zerodev-status-v1");
    w.field("generated_ms", static_cast<std::int64_t>(wallMillis()));

    // Terminal state: "completed" only when every job ended well.
    std::lock_guard<std::mutex> lock(jobsMu_);
    const char *state = "running";
    if (finalized_.load(std::memory_order_acquire)) {
        state = "completed";
        for (const std::unique_ptr<TelemetryJob> &j : jobs_) {
            if (j->state() != TelemetryJob::State::Completed)
                state = "aborted";
        }
    }
    w.field("state", state);
    w.field("stalls", stalls_.load(std::memory_order_relaxed));
    w.field("stall_seconds", opt_.stallSeconds);

    w.key("jobs").beginArray();
    for (const std::unique_ptr<TelemetryJob> &jp : jobs_) {
        const TelemetryJob &j = *jp;
        const TelemetryJob::State js = j.state();
        w.beginObject();
        w.field("name", j.name_);
        w.field("figure", j.figure_);
        w.field("fingerprint", j.fingerprint_);
        w.field("state", stateName(js, j.stalled()));
        w.field("total_accesses", j.total_);
        if (js == TelemetryJob::State::Running) {
            const std::uint64_t done = j.accessesDone();
            const double elapsed = secondsSince(j.start_, now);
            const double rate =
                elapsed > 0.0 ? static_cast<double>(done) / elapsed
                              : 0.0;
            w.field("accesses", done);
            w.field("progress",
                    j.total_ ? static_cast<double>(done) /
                                   static_cast<double>(j.total_)
                             : 0.0);
            w.field("cycle",
                    j.cycle_.load(std::memory_order_relaxed));
            w.field("maccesses_per_second", rate / 1e6);
            w.field("eta_seconds",
                    (rate > 0.0 && j.total_ > done)
                        ? static_cast<double>(j.total_ - done) / rate
                        : 0.0);
        } else {
            // Finished: republish the RunResult-derived numbers
            // verbatim, so this view and the v2 run report agree
            // exactly (the single-source-of-truth contract).
            std::lock_guard<std::mutex> jlock(j.mu_);
            const JobCompletion &c = j.completion_;
            w.field("accesses", c.accesses);
            w.field("progress",
                    j.total_ ? static_cast<double>(c.accesses) /
                                   static_cast<double>(j.total_)
                             : 1.0);
            w.field("workload", c.workload);
            w.field("cycles", c.cycles);
            w.field("wall_seconds", c.wallSeconds);
            w.field("maccesses_per_second", c.maccessesPerSecond);
            w.field("eta_seconds", 0.0);
            if (!c.latencyCycles.empty()) {
                w.key("latency_cycles").beginObject();
                for (const auto &[comp, cycles] : c.latencyCycles)
                    w.field(comp, cycles);
                w.endObject();
            }
            if (c.failed)
                w.field("error", c.error);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
TelemetrySink::writeStatusFile(const std::string &json) const
{
    // Temp + rename: readers (telemetry_tool top, a future zerodevd
    // endpoint) never observe a torn document.
    const std::string tmp = opt_.dir + "/.status.json.tmp";
    if (writeTextFile(tmp, json + "\n"))
        std::rename(tmp.c_str(), (opt_.dir + "/status.json").c_str());
}

void
TelemetrySink::publish()
{
    watchdog();
    writeStatusFile(statusJson());
    const std::string tmp = opt_.dir + "/.metrics.prom.tmp";
    if (writeTextFile(tmp, reg_->prometheusText()))
        std::rename(tmp.c_str(), (opt_.dir + "/metrics.prom").c_str());
}

void
TelemetrySink::finalize()
{
    if (finalized_.exchange(true, std::memory_order_acq_rel))
        return;
    {
        std::lock_guard<std::mutex> lock(cvMu_);
        stop_ = true;
    }
    cv_.notify_all();
    if (publisher_.joinable())
        publisher_.join();
    // One last watchdog-free publish with the terminal state.
    writeStatusFile(statusJson());
    const std::string tmp = opt_.dir + "/.metrics.prom.tmp";
    if (writeTextFile(tmp, reg_->prometheusText()))
        std::rename(tmp.c_str(), (opt_.dir + "/metrics.prom").c_str());
    event("sink_finalize", "",
          "\"stalls\":" +
              std::to_string(stalls_.load(std::memory_order_relaxed)));
}

namespace
{

std::mutex gSinkMu;
std::unique_ptr<TelemetrySink> gSink;
bool gSinkInit = false;

} // namespace

TelemetrySink *
TelemetrySink::fromEnv()
{
    std::lock_guard<std::mutex> lock(gSinkMu);
    if (gSinkInit)
        return gSink.get();
    gSinkInit = true;
    const std::string dir = outputDirFromEnv("ZERODEV_TELEMETRY_DIR");
    if (dir.empty())
        return nullptr;
    TelemetryOptions opt;
    opt.dir = dir;
    opt.flushPeriodSeconds = envDouble("ZERODEV_TELEMETRY_PERIOD",
                                       opt.flushPeriodSeconds);
    opt.stallSeconds =
        envDouble("ZERODEV_STALL_SECONDS", opt.stallSeconds);
    if (const char *v = std::getenv("ZERODEV_STALL_SNAPSHOT"))
        opt.stallSnapshots = std::string(v) != "0";
    opt.snapshotDir = outputDirFromEnv("ZERODEV_SNAPSHOT_DIR");
    gSink.reset(new TelemetrySink(opt));
    std::atexit([] { TelemetrySink::resetGlobalForTesting(); });
    return gSink.get();
}

void
TelemetrySink::resetGlobalForTesting()
{
    std::lock_guard<std::mutex> lock(gSinkMu);
    gSink.reset(); // destructor finalizes
    gSinkInit = false;
}

} // namespace zerodev::obs
