/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * used by the tracer / sampler / report emitters, and a small
 * recursive-descent parser used by the trace inspector and the
 * report-validation tests (no external dependencies, no Python).
 *
 * The writer produces compact, valid JSON; the parser accepts the full
 * JSON grammar (objects, arrays, strings with escapes, numbers, bools,
 * null) and preserves object key order.
 */

#ifndef ZERODEV_OBS_JSON_HH
#define ZERODEV_OBS_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zerodev::obs
{

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/** Render a double the way the writer does: integral values without a
 *  fraction, everything else with enough digits to round-trip; NaN and
 *  infinities (not representable in JSON) render as null. */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer. Nesting and comma placement are handled
 * internally; the caller alternates key()/value() calls inside objects
 * and value() calls inside arrays.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key (must be inside an object). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &null();

    /** Splice a pre-rendered JSON document in value position (e.g. an
     *  artifact file embedded in an RPC response). The caller guarantees
     *  @p json is itself valid JSON. */
    JsonWriter &raw(std::string_view json);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** The document produced so far. */
    const std::string &str() const { return out_; }

  private:
    void comma();

    std::string out_;
    std::vector<bool> first_; //!< per nesting level: no element emitted yet
    bool pendingKey_ = false;
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Member lookup on an object; null when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** True iff this is an object with member @p key. */
    bool has(std::string_view key) const { return find(key) != nullptr; }

    /** Numeric member of an object, or @p dflt when absent/non-numeric. */
    double num(std::string_view key, double dflt = 0.0) const;

    /** String member of an object, or @p dflt when absent/non-string. */
    std::string str(std::string_view key, const std::string &dflt = "") const;
};

/**
 * Parse one JSON document. Trailing whitespace is allowed; any other
 * trailing content is an error. On failure returns nullopt and, when
 * @p err is non-null, stores a human-readable reason.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *err = nullptr);

/** Render a parsed node back to compact JSON (object key order
 *  preserved), so parse -> render -> parse round-trips — used to
 *  persist submitted job specs verbatim in the service spool. */
std::string renderJson(const JsonValue &v);

/** Write @p content to @p path; returns false (and warns) on I/O error. */
bool writeTextFile(const std::string &path, const std::string &content);

/** Append @p content to @p path (created if absent); false on error. */
bool appendTextFile(const std::string &path, const std::string &content);

/** Read the whole file; nullopt on I/O error. */
std::optional<std::string> readTextFile(const std::string &path);

} // namespace zerodev::obs

#endif // ZERODEV_OBS_JSON_HH
