#include "verify/shrink.hh"

#include <algorithm>

namespace zerodev::verify
{

namespace
{

/** @p trace minus the half-open chunk [begin, end). */
std::vector<TraceRecord>
without(const std::vector<TraceRecord> &trace, std::size_t begin,
        std::size_t end)
{
    std::vector<TraceRecord> out;
    out.reserve(trace.size() - (end - begin));
    out.insert(out.end(), trace.begin(), trace.begin() + begin);
    out.insert(out.end(), trace.begin() + end, trace.end());
    return out;
}

} // namespace

ShrinkResult
shrinkTrace(const Differ &differ, std::vector<TraceRecord> trace,
            const ShrinkOptions &opt)
{
    ShrinkResult res;
    res.originalSize = trace.size();

    auto diverges = [&](const std::vector<TraceRecord> &t,
                        Divergence *d) {
        ++res.candidatesTried;
        const DifferResult r = differ.run(t);
        if (r.divergence.found && d)
            *d = r.divergence;
        return r.divergence.found;
    };

    if (!diverges(trace, &res.divergence)) {
        res.trace = std::move(trace); // nothing to shrink
        return res;
    }

    // Zeller/Hildebrandt ddmin over records: try dropping ever-finer
    // chunks; whenever a candidate still diverges, restart from it with
    // coarser granularity.
    std::size_t n = 2;
    while (trace.size() >= 2 && n <= trace.size()) {
        if (res.candidatesTried >= opt.maxCandidates) {
            res.hitCandidateCap = true;
            break;
        }
        const std::size_t chunk = (trace.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t begin = 0; begin < trace.size();
             begin += chunk) {
            if (res.candidatesTried >= opt.maxCandidates) {
                res.hitCandidateCap = true;
                break;
            }
            const std::size_t end =
                std::min(begin + chunk, trace.size());
            std::vector<TraceRecord> candidate =
                without(trace, begin, end);
            Divergence d;
            if (!candidate.empty() && diverges(candidate, &d)) {
                trace = std::move(candidate);
                res.divergence = d;
                n = std::max<std::size_t>(n - 1, 2);
                reduced = true;
                break;
            }
        }
        if (res.hitCandidateCap)
            break;
        if (!reduced) {
            if (n >= trace.size())
                break; // 1-minimal: no single record can go
            n = std::min(n * 2, trace.size());
        }
    }

    res.trace = std::move(trace);
    return res;
}

} // namespace zerodev::verify
