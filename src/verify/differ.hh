/**
 * @file
 * Differential config-equivalence harness.
 *
 * ZeroDEV's central claim (PAPER.md Section III) is that relocating
 * directory entries into the LLC and memory is *architecturally
 * invisible*: every core observes exactly the values it would under an
 * unbounded directory, even though fused entries corrupt the low bits of
 * LLC data copies and WB_DE flows destroy memory data. The Differ turns
 * that claim into an executable oracle: it drives N CmpSystem instances
 * (unbounded, sparse, the ZeroDEV flavours, multi-socket splits) in
 * lockstep over ONE access stream and asserts, per access, that all of
 * them expose the same architectural values, with whole-system invariant
 * checks and strict core-cache-state comparisons interleaved on a
 * cadence.
 *
 * Because the simulator is metadata-only (no data bytes are modelled),
 * values are tracked by a shadow oracle: every store bumps a per-block
 * version, and a load "observes" that version unless the instance
 * demonstrably served the request from a destroyed memory copy without
 * executing one of the corrupted-block recovery flows — in which case the
 * block is poisoned for that instance and every subsequent comparison
 * diverges. Timing (latency, access class) is explicitly NOT compared:
 * it is allowed to differ between configurations; only value-visibility
 * must not.
 */

#ifndef ZERODEV_VERIFY_DIFFER_HH
#define ZERODEV_VERIFY_DIFFER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "workload/trace.hh"

namespace zerodev::verify
{

/** One system variant under differential test. */
struct Variant
{
    std::string name;
    SystemConfig cfg;
};

/**
 * Test-only fault plant: makes one instance mis-observe loads of one
 * block once the block has seen @c afterStores stores. Used to validate
 * the detection + shrinking pipeline end to end (a synthetic divergence
 * whose minimal repro is exactly `afterStores` stores plus one load).
 * Never enabled outside tests / the fuzz_tool --plant-fault flag.
 */
struct FaultHook
{
    bool enabled = false;
    std::size_t instance = 1;      //!< index of the misbehaving variant
    BlockAddr block = 0;           //!< loads of this block go wrong...
    std::uint64_t afterStores = 1; //!< ...once it saw this many stores
};

/** First difference found between the instances (or a per-instance
 *  property violation — both falsify architectural invisibility). */
struct Divergence
{
    bool found = false;
    std::string rule;     //!< load-value | response | destroyed-data |
                          //!< invariant | core-state | final-image
    std::string detail;
    std::string instance; //!< name of the offending variant
    std::uint64_t accessIndex = 0; //!< stream index at detection
};

/** Cadences and toggles of one differential run. */
struct DifferOptions
{
    /** Run checkInvariants() on every instance each N accesses
     *  (0 = only at the end of the stream). */
    std::uint64_t invariantCadence = 4096;

    /** Compare private-cache state across the strict equivalence
     *  classes each N accesses (0 = only at the end). */
    std::uint64_t coreStateCadence = 1024;

    /** Cross-check the final retrievable memory image. */
    bool finalImage = true;

    /** Capture an in-memory checkpoint of every instance each N
     *  accesses (0 = never). The last checkpoint taken before a
     *  divergence lands in DifferResult::checkpoint, so the repro can
     *  be fast-forwarded: Differ::resume() re-runs only the tail. */
    std::uint64_t snapshotCadence = 0;

    /** Live-telemetry hook: called with the executed-record count every
     *  progressCadence stream records (and once at the end of the
     *  stream). Runs on the thread driving run()/resume(). */
    std::function<void(std::uint64_t)> progress;
    std::uint64_t progressCadence = 2048;
};

/**
 * A lockstep checkpoint: every instance's serialized system image plus
 * the harness state (simulated time, poisoned blocks, the shadow
 * store-version oracle). Saved files use the zerodev-snapshot-v1
 * container (one "differ" section), so they share the magic/CRC/version
 * handling with run checkpoints.
 */
struct DifferCheckpoint
{
    bool valid = false;
    std::uint64_t accessIndex = 0; //!< stream records already executed

    struct InstanceState
    {
        std::vector<std::uint8_t> system; //!< CmpSystem::saveState bytes
        std::uint64_t now = 0;
        std::vector<BlockAddr> poisoned; //!< sorted
    };
    std::vector<InstanceState> instances;

    /** Shadow oracle: (block, store count), sorted by block. */
    std::vector<std::pair<BlockAddr, std::uint64_t>> versions;

    bool save(const std::string &path, std::string *err) const;
    bool load(const std::string &path, std::string *err);
};

/** Outcome of one differential run. */
struct DifferResult
{
    Divergence divergence;
    std::uint64_t accesses = 0; //!< stream records executed per instance
    std::uint64_t sweeps = 0;   //!< invariant/core-state sweeps performed

    /** Last checkpoint captured before the run ended (valid only when
     *  DifferOptions::snapshotCadence fired at least once). */
    DifferCheckpoint checkpoint;

    bool ok() const { return !divergence.found; }
};

/**
 * Drives every variant over one access stream in lockstep. run() is
 * const and re-entrant: each call constructs fresh CmpSystem instances,
 * which is exactly what the ddmin shrinker needs to re-validate
 * candidate traces.
 */
class Differ
{
  public:
    explicit Differ(std::vector<Variant> variants, DifferOptions opt = {});

    const std::vector<Variant> &variants() const { return variants_; }
    const DifferOptions &options() const { return opt_; }

    void setFaultHook(const FaultHook &hook) { hook_ = hook; }
    const FaultHook &faultHook() const { return hook_; }

    /** Execute @p stream on every variant; stops at the first
     *  divergence. Core ids in the stream must be < the variants'
     *  common total core count. */
    DifferResult run(const std::vector<TraceRecord> &stream) const;

    /** Fast-forward: restore every instance from @p from and execute
     *  only stream records [from.accessIndex, end). The checkpoint must
     *  come from a run of the same variant set over the same stream
     *  prefix (the per-instance config fingerprints are checked);
     *  sweeps and end-of-stream checks land exactly as in a full run,
     *  so the verdict is identical — only the work is smaller. */
    DifferResult resume(const DifferCheckpoint &from,
                        const std::vector<TraceRecord> &stream) const;

    /** Total cores every variant must agree on. */
    std::uint32_t cores() const { return cores_; }

    /**
     * The standard cross product of the paper's configurations over
     * small-cache geometry (conflicts and entry spills happen quickly):
     * unbounded, sparse 1x / 1-8x, ZeroDEV SpillAll / FPSS / FuseAll,
     * FPSS with a 1-8x directory, no-directory ZeroDEV (ratio 0),
     * inclusive and EPD flavours, and 2-socket splits of the unbounded
     * and FPSS variants. @p cores is the total core count.
     */
    static std::vector<Variant> standardVariants(std::uint32_t cores = 4);

    /** A cheaper subset (unbounded + one ZeroDEV flavour per policy)
     *  for quick CLI replays and unit tests. */
    static std::vector<Variant> quickVariants(std::uint32_t cores = 4);

  private:
    /** Stamp the executed-access count and return @p res. */
    static DifferResult finish(DifferResult &res, std::uint64_t accesses);

    /** Shared engine behind run() / resume(). */
    DifferResult runImpl(const std::vector<TraceRecord> &stream,
                         const DifferCheckpoint *from) const;

    std::vector<Variant> variants_;
    DifferOptions opt_;
    FaultHook hook_;
    std::uint32_t cores_ = 0;
    /** Strict-equivalence group of each variant (-1 = value-only).
     *  Members of one group must match the group head's private-cache
     *  contents exactly (the paper's core-cache-isolation claim). */
    std::vector<int> strictGroup_;
};

/**
 * Deterministic adversarial access stream for fuzzing: alternating
 * phases of same-set conflict storms, capacity churn and structured
 * application-profile traffic (the streams the paper's workloads
 * exercise), with no region discipline across phase boundaries.
 */
std::vector<TraceRecord> fuzzStream(std::uint64_t seed,
                                    std::uint32_t cores,
                                    std::uint64_t accesses);

} // namespace zerodev::verify

#endif // ZERODEV_VERIFY_DIFFER_HH
