/**
 * @file
 * The differential fuzz batch engine, factored out of the fuzz_tool CLI
 * so the same code path serves one-shot runs and service jobs: the
 * zerodevd daemon executes submitted fuzz batches through exactly this
 * engine, which is what makes the daemon's `zerodev-fuzz-report-v1`
 * documents byte-comparable with the direct tool's (the nightly
 * daemon-shard gate).
 *
 * A batch runs waves of seeds through the config cross product
 * (verify/differ.hh), ddmin-shrinks the first divergence to a minimal
 * repro, writes the divergence trace / checkpoint / shrunk trace next
 * to `fuzz-report.json` in the output directory, and reports through
 * the shared 0/1/4 slice of the tool exit contract.
 */

#ifndef ZERODEV_VERIFY_FUZZ_BATCH_HH
#define ZERODEV_VERIFY_FUZZ_BATCH_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "verify/differ.hh"

namespace zerodev::verify
{

/** One differential fuzz batch (the fuzz_tool `run` options). */
struct FuzzBatchOptions
{
    std::uint64_t seeds = 8;
    std::uint64_t minutes = 0; //!< 0 = fixed seed count
    unsigned jobs = 0;         //!< 0 = library default
    std::uint64_t accesses = 20000;
    std::uint32_t cores = 4;
    std::string outDir = ".";
    bool quick = false;
    FaultHook fault; //!< must name a valid variant when enabled
    std::uint64_t snapshotEvery = 0;

    /** Cooperative cancellation, polled between seed waves: when the
     *  flag flips true the batch stops issuing work, writes the report
     *  covering the seeds that did run, and returns cancelled. */
    const std::atomic<bool> *stop = nullptr;

    /** Prepended to the per-seed telemetry job names ("seed<N>"), so a
     *  daemon can namespace concurrent batches in status.json. */
    std::string telemetryPrefix;
};

/** Outcome of one batch. */
struct FuzzBatchResult
{
    /** 0 = no divergence, 1 = runtime (I/O) failure, 4 = divergence —
     *  the fuzz-relevant slice of the shared tool exit contract. */
    int exitCode = 0;

    bool divergence = false;
    bool cancelled = false; //!< stop flag fired before completion
    bool timedOut = false;  //!< minutes budget exhausted (normal stop)
    std::uint64_t seedsRun = 0;

    /** The zerodev-fuzz-report-v1 document (also written to
     *  reportPath), empty only on runtime failure before reporting. */
    std::string report;
    std::string reportPath; //!< "<outDir>/fuzz-report.json"
};

/**
 * Execute one batch: create outDir, fuzz seed waves in parallel
 * (zerodev::parallelMap), shrink + persist the first divergence, write
 * the stamped report. Per-seed live-telemetry jobs are registered when
 * ZERODEV_TELEMETRY_DIR is active. With ZERODEV_ZERO_WALL set, the
 * report's elapsed_seconds renders as 0 so two runs of the same batch
 * are byte-identical.
 */
FuzzBatchResult runFuzzBatch(const FuzzBatchOptions &opt);

} // namespace zerodev::verify

#endif // ZERODEV_VERIFY_FUZZ_BATCH_HH
