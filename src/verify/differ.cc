#include "verify/differ.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "core/cmp_system.hh"
#include "core/invariants.hh"
#include "sim/snapshot.hh"
#include "workload/app_profiles.hh"
#include "workload/workload.hh"

namespace zerodev::verify
{

namespace
{

std::string
hex(BlockAddr b)
{
    std::ostringstream os;
    os << std::hex << "0x" << b;
    return os.str();
}

/**
 * Small-cache geometry (the tests' tiny config): 2 KB L1s, 4 KB L2,
 * 64 KB LLC over 2 banks. Conflicts, entry spills and corrupted-memory
 * flows all happen within a few thousand accesses, which is what makes
 * differential fuzzing productive.
 */
SystemConfig
smallConfig(std::uint32_t cores, std::uint32_t sockets)
{
    SystemConfig cfg;
    cfg.name = "verify-small";
    cfg.sockets = sockets;
    cfg.coresPerSocket = cores / sockets;
    cfg.l1i = CacheConfig{2 * 1024, 8, 3};
    cfg.l1d = CacheConfig{2 * 1024, 8, 3};
    cfg.l2 = CacheConfig{4 * 1024, 8, 8};
    cfg.llcSizeBytes = 64 * 1024;
    cfg.llcBanks = 2;
    // A tiny socket-directory cache stresses the backing flows.
    cfg.socketDirCacheSets = 8;
    cfg.socketDirCacheWays = 2;
    return cfg;
}

Variant
zdevVariant(const std::string &name, std::uint32_t cores,
            std::uint32_t sockets, double ratio, DirCachePolicy policy,
            LlcReplPolicy repl, LlcFlavor flavor)
{
    SystemConfig cfg = smallConfig(cores, sockets);
    applyZeroDev(cfg, ratio);
    cfg.dirCachePolicy = policy;
    cfg.llcReplPolicy = repl;
    cfg.llcFlavor = flavor;
    cfg.socketDirZeroDev = sockets > 1;
    return {name, cfg};
}

Variant
baseVariant(const std::string &name, std::uint32_t cores,
            std::uint32_t sockets, DirOrg org, double ratio,
            LlcFlavor flavor = LlcFlavor::NonInclusive)
{
    SystemConfig cfg = smallConfig(cores, sockets);
    cfg.dirOrg = org;
    cfg.directory.sizeRatio = ratio;
    cfg.llcFlavor = flavor;
    return {name, cfg};
}

/** The load-value an instance reports when it demonstrably served a
 *  request from destroyed memory data. Folding the block address in
 *  keeps two poisoned blocks from accidentally comparing equal. */
std::uint64_t
poisonValue(BlockAddr block)
{
    return 0xdead0000'00000000ull ^ block;
}

/** Per-instance lockstep state. */
struct Instance
{
    const Variant *variant = nullptr;
    std::unique_ptr<CmpSystem> sys;
    Cycle now = 0;
    /** Blocks whose data this instance has demonstrably corrupted. */
    std::unordered_set<BlockAddr> poisoned;
};

using ClassCounts =
    std::array<std::uint64_t,
               static_cast<std::size_t>(AccessClass::NumClasses)>;

/** Sum of the corrupted-recovery flow counters (any of them moving
 *  during an access means the protocol noticed the destroyed copy). */
std::uint64_t
recoveryFlows(const ProtocolStats &p)
{
    return p.corruptedResponses + p.corruptedReadMisses +
           p.lastCopyRestores;
}

} // namespace

bool
DifferCheckpoint::save(const std::string &path, std::string *err) const
{
    Snapshot snap;
    SerialOut &out = snap.section("differ");
    out.u64(accessIndex);
    out.u32(static_cast<std::uint32_t>(instances.size()));
    for (const InstanceState &st : instances) {
        out.u64(st.system.size());
        out.raw(st.system.data(), st.system.size());
        out.u64(st.now);
        out.u64(st.poisoned.size());
        for (BlockAddr b : st.poisoned)
            out.u64(b);
    }
    out.u64(versions.size());
    for (const auto &[block, ver] : versions) {
        out.u64(block);
        out.u64(ver);
    }
    return snap.writeFile(path, err);
}

bool
DifferCheckpoint::load(const std::string &path, std::string *err)
{
    valid = false;
    instances.clear();
    versions.clear();

    Snapshot snap;
    if (!snap.readFile(path, err))
        return false;
    const std::vector<std::uint8_t> *bytes = snap.find("differ");
    if (!bytes) {
        if (err)
            *err = "snapshot has no differ section";
        return false;
    }
    SerialIn in(*bytes);
    accessIndex = in.u64();
    const std::uint32_t n = in.u32();
    for (std::uint32_t i = 0; i < n && in.ok(); ++i) {
        InstanceState st;
        const std::uint64_t size = in.u64();
        if (!in.check(in.remaining() >= size, "snapshot truncated"))
            break;
        st.system.resize(size);
        for (std::uint64_t b = 0; b < size; ++b)
            st.system[b] = in.u8();
        st.now = in.u64();
        const std::uint64_t poisoned = in.u64();
        for (std::uint64_t p = 0; p < poisoned && in.ok(); ++p)
            st.poisoned.push_back(in.u64());
        instances.push_back(std::move(st));
    }
    const std::uint64_t vn = in.u64();
    for (std::uint64_t v = 0; v < vn && in.ok(); ++v) {
        const BlockAddr block = in.u64();
        const std::uint64_t ver = in.u64();
        versions.emplace_back(block, ver);
    }
    if (!in.exhausted()) {
        if (err)
            *err = in.ok() ? "trailing bytes in differ section"
                           : in.error();
        return false;
    }
    valid = true;
    return true;
}

Differ::Differ(std::vector<Variant> variants, DifferOptions opt)
    : variants_(std::move(variants)), opt_(opt)
{
    if (variants_.empty())
        panic("Differ needs at least one variant");
    cores_ = variants_.front().cfg.sockets *
             variants_.front().cfg.coresPerSocket;
    for (const Variant &v : variants_) {
        if (v.cfg.sockets * v.cfg.coresPerSocket != cores_) {
            panic("variant '%s' disagrees on the total core count",
                  v.name.c_str());
        }
    }

    // Strict equivalence class: the paper claims ZeroDEV keeps the core
    // caches bit-identical to an unbounded directory. That holds for the
    // single-socket non-inclusive flavours (inclusive back-invalidations
    // and EPD deallocations legitimately change private contents;
    // sparse/SecDir/MgD baselines deliver DEVs). Multi-socket variants
    // are value-only: the socket-directory cache evicts on a schedule
    // that depends on LLC content, which ZeroDEV's in-LLC entries shift,
    // so remote copies are recalled at different points across variants.
    int group = -1;
    strictGroup_.assign(variants_.size(), -1);
    for (std::size_t i = 0; i < variants_.size(); ++i) {
        const SystemConfig &cfg = variants_[i].cfg;
        const bool strict = cfg.protocol == ProtocolKind::MesiZeroDev &&
                            cfg.sockets == 1 &&
                            cfg.llcFlavor == LlcFlavor::NonInclusive &&
                            (cfg.dirOrg == DirOrg::Unbounded ||
                             cfg.dirOrg == DirOrg::ZeroDev);
        if (!strict)
            continue;
        if (group < 0)
            group = 0;
        strictGroup_[i] = group;
    }
}

DifferResult
Differ::run(const std::vector<TraceRecord> &stream) const
{
    return runImpl(stream, nullptr);
}

DifferResult
Differ::resume(const DifferCheckpoint &from,
               const std::vector<TraceRecord> &stream) const
{
    return runImpl(stream, &from);
}

DifferResult
Differ::runImpl(const std::vector<TraceRecord> &stream,
                const DifferCheckpoint *from) const
{
    DifferResult res;
    std::vector<Instance> inst(variants_.size());
    for (std::size_t i = 0; i < variants_.size(); ++i) {
        inst[i].variant = &variants_[i];
        inst[i].sys = std::make_unique<CmpSystem>(variants_[i].cfg);
    }

    // Shadow value oracle: version[b] = number of stores to b so far.
    std::unordered_map<BlockAddr, std::uint64_t> version;

    std::uint64_t start = 0;
    if (from) {
        if (!from->valid)
            panic("resuming the Differ from an invalid checkpoint");
        if (from->instances.size() != inst.size()) {
            panic("checkpoint has %zu instances, differ has %zu",
                  from->instances.size(), inst.size());
        }
        if (from->accessIndex > stream.size()) {
            panic("checkpoint is %llu records in, stream has only %zu",
                  static_cast<unsigned long long>(from->accessIndex),
                  stream.size());
        }
        for (std::size_t i = 0; i < inst.size(); ++i) {
            const DifferCheckpoint::InstanceState &st =
                from->instances[i];
            SerialIn in(st.system);
            inst[i].sys->restoreState(in);
            if (!in.exhausted()) {
                panic("checkpoint instance '%s': %s",
                      variants_[i].name.c_str(),
                      in.ok() ? "trailing bytes" : in.error().c_str());
            }
            inst[i].now = st.now;
            inst[i].poisoned.insert(st.poisoned.begin(),
                                    st.poisoned.end());
        }
        for (const auto &[block, ver] : from->versions)
            version[block] = ver;
        start = from->accessIndex;
    }

    // Snapshot of every instance + the harness state, kept one cadence
    // behind the execution front so it is always pre-divergence.
    auto capture = [&](std::uint64_t done) {
        DifferCheckpoint &cp = res.checkpoint;
        cp.valid = true;
        cp.accessIndex = done;
        cp.instances.clear();
        cp.instances.reserve(inst.size());
        for (const Instance &in : inst) {
            DifferCheckpoint::InstanceState st;
            SerialOut out;
            in.sys->saveState(out);
            st.system = out.data();
            st.now = in.now;
            st.poisoned.assign(in.poisoned.begin(), in.poisoned.end());
            std::sort(st.poisoned.begin(), st.poisoned.end());
            cp.instances.push_back(std::move(st));
        }
        cp.versions.assign(version.begin(), version.end());
        std::sort(cp.versions.begin(), cp.versions.end());
    };

    auto diverge = [&](std::size_t i, std::uint64_t index,
                       const std::string &rule, const std::string &det) {
        res.divergence.found = true;
        res.divergence.rule = rule;
        res.divergence.detail = det;
        res.divergence.instance = variants_[i].name;
        res.divergence.accessIndex = index;
    };

    // One full consistency sweep: invariants on every instance, then the
    // strict-group private-cache comparison.
    auto sweep = [&](std::uint64_t index, bool invariants,
                     bool core_state) -> bool {
        ++res.sweeps;
        if (invariants) {
            for (std::size_t i = 0; i < inst.size(); ++i) {
                const auto violations = checkInvariants(*inst[i].sys);
                if (!violations.empty()) {
                    diverge(i, index, "invariant",
                            violations.front().rule + ": " +
                                violations.front().detail);
                    return false;
                }
            }
        }
        if (!core_state)
            return true;
        for (std::size_t i = 0; i < inst.size(); ++i) {
            const int g = strictGroup_[i];
            if (g < 0)
                continue;
            // Head of the group: the first variant with this group id.
            std::size_t head = i;
            for (std::size_t j = 0; j < i; ++j) {
                if (strictGroup_[j] == g) {
                    head = j;
                    break;
                }
            }
            if (head == i)
                continue;
            const SystemConfig &hc = variants_[head].cfg;
            const SystemConfig &ic = variants_[i].cfg;
            // E vs S grants can legitimately differ across socket
            // partitionings once forwarding is involved; within one
            // group the partitioning is identical, so exact MESI
            // equality is required.
            for (CoreId c = 0; c < cores_; ++c) {
                using BlockState = std::pair<BlockAddr, MesiState>;
                std::vector<BlockState> a, b;
                inst[head]
                    .sys->privateCache(c / hc.coresPerSocket,
                                       c % hc.coresPerSocket)
                    .forEachBlock([&](BlockAddr blk, MesiState st) {
                        a.emplace_back(blk, st);
                    });
                inst[i]
                    .sys->privateCache(c / ic.coresPerSocket,
                                       c % ic.coresPerSocket)
                    .forEachBlock([&](BlockAddr blk, MesiState st) {
                        b.emplace_back(blk, st);
                    });
                std::sort(a.begin(), a.end());
                std::sort(b.begin(), b.end());
                if (a == b)
                    continue;
                // Name the first differing block for the report.
                std::string det = "core " + std::to_string(c) +
                                  " diverges from " +
                                  variants_[head].name;
                for (std::size_t k = 0; k < std::max(a.size(), b.size());
                     ++k) {
                    if (k >= a.size() || k >= b.size() || a[k] != b[k]) {
                        const BlockState &d =
                            k < b.size() ? b[k]
                                         : a[std::min(k, a.size() - 1)];
                        det += " at block " + hex(d.first);
                        break;
                    }
                }
                diverge(i, index, "core-state", det);
                return false;
            }
        }
        return true;
    };

    for (std::uint64_t idx = start; idx < stream.size(); ++idx) {
        const TraceRecord &rec = stream[idx];
        const AccessType type = rec.access.type;
        const BlockAddr block = rec.access.block;
        const CoreId core = rec.core;
        if (core >= cores_) {
            panic("stream record %llu targets core %u of %u",
                  static_cast<unsigned long long>(idx), core, cores_);
        }

        if (type == AccessType::Store)
            ++version[block];
        const std::uint64_t expected = version[block];

        // Value every instance claims the access observed; compared
        // across the whole set below.
        std::vector<std::uint64_t> observed(inst.size(), expected);

        for (std::size_t i = 0; i < inst.size(); ++i) {
            Instance &in = inst[i];
            CmpSystem &sys = *in.sys;
            const SystemConfig &cfg = in.variant->cfg;
            const SocketId home = sys.homeSocket(block);
            const bool destroyedPre = sys.memStore(home).destroyed(block);
            const std::uint64_t recoveryPre =
                recoveryFlows(sys.protoStats());
            const ClassCounts classPre = sys.protoStats().classCount;

            in.now = sys.access(core, type, block,
                                in.now + rec.access.gap);

            // Which service class completed the transaction?
            const ClassCounts &classPost = sys.protoStats().classCount;
            AccessClass cls = AccessClass::NumClasses;
            for (std::size_t k = 0; k < classPre.size(); ++k) {
                if (classPost[k] != classPre[k]) {
                    cls = static_cast<AccessClass>(k);
                    break;
                }
            }

            // Per-access response contract: the requesting core must end
            // up with a copy, writable after a store.
            const MesiState st =
                sys.privateCache(core / cfg.coresPerSocket,
                                 core % cfg.coresPerSocket)
                    .state(block);
            if (st == MesiState::Invalid) {
                diverge(i, idx, "response",
                        "core " + std::to_string(core) +
                            " has no copy of " + hex(block) +
                            " after its own access");
                return finish(res, idx + 1);
            }
            if (type == AccessType::Store && st != MesiState::Modified) {
                diverge(i, idx, "response",
                        "store by core " + std::to_string(core) +
                            " left " + hex(block) + " in state " +
                            toString(st));
                return finish(res, idx + 1);
            }

            // Destroyed-data safety: a transaction that touched a block
            // whose memory image is destroyed must either hit a cached
            // copy or run one of the corrupted-recovery flows. Serving
            // it straight from DRAM returns directory-entry bits as
            // data.
            if (destroyedPre && cls == AccessClass::Memory &&
                recoveryFlows(sys.protoStats()) == recoveryPre) {
                in.poisoned.insert(block);
                diverge(i, idx, "destroyed-data",
                        "access to " + hex(block) +
                            " served from destroyed memory without a "
                            "recovery flow");
                return finish(res, idx + 1);
            }

            if (in.poisoned.count(block))
                observed[i] = poisonValue(block);
            if (hook_.enabled && i == hook_.instance &&
                type == AccessType::Load && block == hook_.block &&
                version[block] >= hook_.afterStores) {
                observed[i] = expected + 1;
            }
        }

        // The architectural-invisibility oracle: every instance observed
        // the same value for this access.
        for (std::size_t i = 1; i < inst.size(); ++i) {
            if (observed[i] != observed[0]) {
                diverge(i, idx, "load-value",
                        toString(type) + std::string(" of ") +
                            hex(block) + " by core " +
                            std::to_string(core) + " observed value " +
                            std::to_string(observed[i]) + ", " +
                            variants_[0].name + " observed " +
                            std::to_string(observed[0]));
                return finish(res, idx + 1);
            }
        }

        const std::uint64_t done = idx + 1;
        const bool inv = opt_.invariantCadence &&
                         done % opt_.invariantCadence == 0;
        const bool cst = opt_.coreStateCadence &&
                         done % opt_.coreStateCadence == 0;
        if ((inv || cst) && !sweep(idx, inv, cst))
            return finish(res, done);
        if (opt_.snapshotCadence && done % opt_.snapshotCadence == 0)
            capture(done);
        if (opt_.progress && opt_.progressCadence &&
            done % opt_.progressCadence == 0) {
            opt_.progress(done);
        }
    }
    if (opt_.progress)
        opt_.progress(stream.size());

    if (!sweep(stream.empty() ? 0 : stream.size() - 1, true, true))
        return finish(res, stream.size());

    // Final image: for every block the stream touched, each instance
    // must still be able to produce the last stored value — from a
    // private cache, an LLC data line, or an intact memory copy — and
    // none may have poisoned it.
    if (opt_.finalImage) {
        for (std::size_t i = 0; i < inst.size(); ++i) {
            const CmpSystem &sys = *inst[i].sys;
            const SystemConfig &cfg = inst[i].variant->cfg;
            std::unordered_set<BlockAddr> retrievable;
            for (SocketId s = 0; s < cfg.sockets; ++s) {
                for (CoreId c = 0; c < cfg.coresPerSocket; ++c) {
                    sys.privateCache(s, c).forEachBlock(
                        [&](BlockAddr b, MesiState) {
                            retrievable.insert(b);
                        });
                }
                sys.llc(s).forEach([&](const LlcLine &l) {
                    if (l.kind == LlcLineKind::Data)
                        retrievable.insert(l.block);
                });
            }
            for (const auto &[block, ver] : version) {
                (void)ver;
                if (inst[i].poisoned.count(block)) {
                    diverge(i, stream.size(), "final-image",
                            "block " + hex(block) +
                                " ends the run poisoned");
                    return finish(res, stream.size());
                }
                const SocketId home = sys.homeSocket(block);
                if (sys.memStore(home).destroyed(block) &&
                    !retrievable.count(block)) {
                    diverge(i, stream.size(), "final-image",
                            "block " + hex(block) +
                                " is destroyed in memory with no "
                                "cached copy left");
                    return finish(res, stream.size());
                }
            }
        }
    }

    return finish(res, stream.size());
}

DifferResult
Differ::finish(DifferResult &res, std::uint64_t accesses)
{
    res.accesses = accesses;
    return res;
}

std::vector<Variant>
Differ::standardVariants(std::uint32_t cores)
{
    using P = DirCachePolicy;
    using R = LlcReplPolicy;
    using F = LlcFlavor;
    std::vector<Variant> v;
    v.push_back(baseVariant("unbounded", cores, 1, DirOrg::Unbounded, 1.0));
    v.push_back(baseVariant("sparse-1x", cores, 1, DirOrg::SparseNru, 1.0));
    v.push_back(
        baseVariant("sparse-8th", cores, 1, DirOrg::SparseNru, 0.125));
    v.push_back(zdevVariant("zdev-spillall", cores, 1, 0.125, P::SpillAll,
                            R::SpLru, F::NonInclusive));
    v.push_back(zdevVariant("zdev-fpss", cores, 1, 0.125, P::Fpss,
                            R::DataLru, F::NonInclusive));
    v.push_back(zdevVariant("zdev-fpss-splru", cores, 1, 0.125, P::Fpss,
                            R::SpLru, F::NonInclusive));
    v.push_back(zdevVariant("zdev-fuseall", cores, 1, 0.125, P::FuseAll,
                            R::DataLru, F::NonInclusive));
    v.push_back(zdevVariant("zdev-nodir", cores, 1, 0.0, P::Fpss,
                            R::DataLru, F::NonInclusive));
    v.push_back(zdevVariant("zdev-fpss-incl", cores, 1, 0.125, P::Fpss,
                            R::DataLru, F::Inclusive));
    v.push_back(zdevVariant("zdev-fpss-epd", cores, 1, 0.125, P::Fpss,
                            R::DataLru, F::Epd));
    if (cores >= 2 && cores % 2 == 0) {
        v.push_back(
            baseVariant("unbounded-2s", cores, 2, DirOrg::Unbounded, 1.0));
        v.push_back(zdevVariant("zdev-fpss-2s", cores, 2, 0.125, P::Fpss,
                                R::DataLru, F::NonInclusive));
        v.push_back(zdevVariant("zdev-fuseall-2s", cores, 2, 0.0,
                                P::FuseAll, R::DataLru,
                                F::NonInclusive));
    }
    // Rival protocol backends, appended last so the pre-backend variant
    // indices (pinned by CI fault injection and checked-in repros) are
    // preserved. Both join value-only equivalence classes: neither can
    // match MESI private-cache states (DLS has no E state, phase-priority
    // evicts on a different schedule), but the value oracle holds.
    {
        SystemConfig cfg = smallConfig(cores, 1);
        cfg.protocol = ProtocolKind::Dls;
        cfg.directory.sizeRatio = 1.0; // ignored: no directory exists
        v.push_back({"dls", cfg});
    }
    {
        SystemConfig cfg = smallConfig(cores, 1);
        cfg.protocol = ProtocolKind::PhasePriority;
        cfg.dirOrg = DirOrg::SparseNru;
        cfg.directory.sizeRatio = 0.125; // bounded: DEVs are the point
        v.push_back({"phasepri", cfg});
    }
    return v;
}

std::vector<Variant>
Differ::quickVariants(std::uint32_t cores)
{
    using P = DirCachePolicy;
    using R = LlcReplPolicy;
    using F = LlcFlavor;
    std::vector<Variant> v;
    v.push_back(baseVariant("unbounded", cores, 1, DirOrg::Unbounded, 1.0));
    v.push_back(zdevVariant("zdev-fpss", cores, 1, 0.125, P::Fpss,
                            R::DataLru, F::NonInclusive));
    v.push_back(zdevVariant("zdev-fuseall", cores, 1, 0.0, P::FuseAll,
                            R::DataLru, F::NonInclusive));
    return v;
}

std::vector<TraceRecord>
fuzzStream(std::uint64_t seed, std::uint32_t cores,
           std::uint64_t accesses)
{
    Rng rng(seed);
    std::vector<TraceRecord> out;
    out.reserve(accesses);

    // Structured traffic: one application profile drives all cores the
    // way the paper's multi-threaded workloads do.
    static const char *const kApps[] = {"fluidanimate", "canneal", "fft",
                                        "mcf", "streamcluster"};
    const AppProfile app =
        profileByName(kApps[rng.below(std::size(kApps))]);
    const Workload w = Workload::multiThreaded(app, cores, seed | 1);
    std::vector<ThreadGenerator> gens;
    for (std::uint32_t c = 0; c < cores; ++c)
        gens.push_back(w.makeGenerator(c));

    auto randomAccess = [&](BlockAddr block) {
        TraceRecord rec;
        rec.core = static_cast<CoreId>(rng.below(cores));
        rec.access.block = block;
        rec.access.gap = static_cast<std::uint32_t>(rng.below(20));
        const double r = rng.uniform();
        rec.access.type = r < 0.3    ? AccessType::Store
                          : r < 0.37 ? AccessType::Ifetch
                                     : AccessType::Load;
        return rec;
    };

    while (out.size() < accesses) {
        const std::uint64_t phaseLen =
            std::min<std::uint64_t>(512 + rng.below(1024),
                                    accesses - out.size());
        const std::uint64_t phase = rng.below(4);
        if (phase == 0) {
            // Same-set conflict storm over a hot pool.
            for (std::uint64_t i = 0; i < phaseLen; ++i)
                out.push_back(randomAccess(rng.below(96)));
        } else if (phase == 1) {
            // Capacity churn.
            for (std::uint64_t i = 0; i < phaseLen; ++i)
                out.push_back(randomAccess(4096 + rng.below(4096)));
        } else if (phase == 2) {
            // Directory-set storm: one set, many tags.
            for (std::uint64_t i = 0; i < phaseLen; ++i)
                out.push_back(randomAccess(16 * (1 + rng.below(256))));
        } else {
            // Structured application phase, round-robin over the cores.
            for (std::uint64_t i = 0; i < phaseLen; ++i) {
                const auto c = static_cast<CoreId>(out.size() % cores);
                out.push_back({c, gens[c].next()});
            }
        }
    }
    return out;
}

} // namespace zerodev::verify
