/**
 * @file
 * Delta-debugging trace shrinker. Given an access stream on which the
 * differential harness reports a divergence (or an invariant violation),
 * ddmin reduces it to a 1-minimal subsequence that still diverges:
 * removing any single remaining record makes the failure disappear.
 * Every candidate subsequence is re-validated by a full Differ::run(),
 * so the shrunk trace is a true standalone repro — small enough to read,
 * replay and check into tests/corpus/ as a permanent regression test.
 */

#ifndef ZERODEV_VERIFY_SHRINK_HH
#define ZERODEV_VERIFY_SHRINK_HH

#include <cstdint>
#include <vector>

#include "verify/differ.hh"

namespace zerodev::verify
{

/** Shrink limits and accounting. */
struct ShrinkOptions
{
    /** Hard cap on candidate re-validations (a shrink is O(n^2) runs in
     *  the worst case; the cap bounds pathological inputs). */
    std::uint64_t maxCandidates = 10000;
};

/** Outcome of one shrink. */
struct ShrinkResult
{
    std::vector<TraceRecord> trace;   //!< the minimal diverging trace
    Divergence divergence;            //!< divergence of `trace`
    std::size_t originalSize = 0;
    std::uint64_t candidatesTried = 0; //!< differ runs spent shrinking
    bool hitCandidateCap = false;

    /** False iff the input trace did not diverge at all (nothing to
     *  shrink; `trace` echoes the input). */
    bool shrunk() const { return divergence.found; }
};

/**
 * Reduce @p trace to a 1-minimal subsequence on which @p differ still
 * reports a divergence. The divergence *rule* is allowed to change
 * while shrinking (any failure is kept — standard ddmin practice);
 * the divergence of the final trace is returned for inspection.
 */
ShrinkResult shrinkTrace(const Differ &differ,
                         std::vector<TraceRecord> trace,
                         const ShrinkOptions &opt = {});

} // namespace zerodev::verify

#endif // ZERODEV_VERIFY_SHRINK_HH
