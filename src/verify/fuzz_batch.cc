#include "verify/fuzz_batch.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "verify/shrink.hh"
#include "workload/trace.hh"

namespace zerodev::verify
{

namespace
{

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitDivergence = 4;

struct SeedOutcome
{
    std::uint64_t seed = 0;
    DifferResult result;
};

bool
writeTrace(const std::string &path, std::uint32_t cores,
           const std::vector<TraceRecord> &records)
{
    TraceWriter w(path, cores);
    for (const TraceRecord &rec : records)
        w.append(rec);
    w.close();
    return w.written() == records.size();
}

void
printDivergence(const std::string &label, const Divergence &d)
{
    std::printf("DIVERGENCE %s: rule=%s instance=%s access=%" PRIu64
                "\n  %s\n",
                label.c_str(), d.rule.c_str(), d.instance.c_str(),
                d.accessIndex, d.detail.c_str());
}

/** The machine-readable batch summary consumed by CI and the service
 *  result documents. */
std::string
fuzzReport(const FuzzBatchOptions &opt, const Differ &differ,
           std::uint64_t seedsRun, double elapsedSec,
           const SeedOutcome *bad, const ShrinkResult *shrunk,
           const std::string &tracePath, const std::string &minPath,
           const std::string &ckptPath)
{
    obs::JsonWriter w;
    w.beginObject();
    obs::stampArtifact(w, "zerodev-fuzz-report-v1");
    w.field("mode", opt.minutes ? "minutes" : "seeds");
    w.field("seeds_run", seedsRun);
    w.field("accesses_per_seed", opt.accesses);
    w.field("cores", static_cast<std::uint64_t>(opt.cores));
    w.field("elapsed_seconds", elapsedSec);
    w.field("fault_planted", opt.fault.enabled);
    w.key("variants").beginArray();
    for (const Variant &v : differ.variants())
        w.value(v.name);
    w.endArray();
    w.key("divergence");
    if (!bad) {
        w.null();
    } else {
        const Divergence &d = bad->result.divergence;
        w.beginObject();
        w.field("seed", bad->seed);
        w.field("rule", d.rule);
        w.field("instance", d.instance);
        w.field("access_index", d.accessIndex);
        w.field("detail", d.detail);
        w.field("trace", tracePath);
        if (!ckptPath.empty()) {
            w.field("checkpoint", ckptPath);
            w.field("checkpoint_access_index",
                    bad->result.checkpoint.accessIndex);
        }
        if (shrunk && shrunk->shrunk()) {
            w.field("shrunk_trace", minPath);
            w.field("original_accesses",
                    static_cast<std::uint64_t>(shrunk->originalSize));
            w.field("shrunk_accesses",
                    static_cast<std::uint64_t>(shrunk->trace.size()));
            w.field("shrink_candidates", shrunk->candidatesTried);
            w.field("shrink_hit_cap", shrunk->hitCandidateCap);
        }
        w.endObject();
    }
    w.endObject();
    return w.str();
}

} // namespace

FuzzBatchResult
runFuzzBatch(const FuzzBatchOptions &opt)
{
    FuzzBatchResult out;

    DifferOptions dopt;
    dopt.snapshotCadence = opt.snapshotEvery;
    Differ differ(opt.quick ? Differ::quickVariants(opt.cores)
                            : Differ::standardVariants(opt.cores),
                  dopt);
    if (opt.fault.enabled)
        differ.setFaultHook(opt.fault);

    std::error_code ec;
    std::filesystem::create_directories(opt.outDir, ec);
    if (ec) {
        std::fprintf(stderr, "fuzz: cannot create %s: %s\n",
                     opt.outDir.c_str(), ec.message().c_str());
        out.exitCode = kExitRuntime;
        return out;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
        const char *zero = std::getenv("ZERODEV_ZERO_WALL");
        if (zero && *zero)
            return 0.0;
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    const auto runSeed = [&](std::uint64_t seed) {
        SeedOutcome so;
        so.seed = seed;
        const auto stream =
            fuzzStream(seed, differ.cores(), opt.accesses);
        obs::TelemetrySink *sink = obs::TelemetrySink::fromEnv();
        if (!sink) {
            so.result = differ.run(stream);
            return so;
        }
        // Live telemetry: a per-seed Differ (same variants, same fault
        // hook) carries a progress hook feeding this seed's job.
        obs::TelemetryJob *tj = sink->beginJob(
            opt.telemetryPrefix + "seed" + std::to_string(seed), "fuzz",
            "", stream.size());
        DifferOptions sopt = differ.options();
        sopt.progress = [tj](std::uint64_t done) {
            tj->progress(done, 0);
        };
        Differ seedDiffer(differ.variants(), sopt);
        seedDiffer.setFaultHook(differ.faultHook());
        so.result = seedDiffer.run(stream);
        obs::JobCompletion c;
        c.workload = "fuzz";
        c.accesses = so.result.accesses;
        c.failed = !so.result.ok();
        if (c.failed)
            c.error = so.result.divergence.rule;
        tj->complete(c);
        return so;
    };

    std::printf("fuzz: %zu variants x %" PRIu64
                " accesses/seed, %u cores%s\n",
                differ.variants().size(), opt.accesses, opt.cores,
                opt.fault.enabled ? " [fault planted]" : "");

    std::vector<SeedOutcome> outcomes;
    std::uint64_t nextSeed = 1;
    while (true) {
        if (opt.stop && opt.stop->load(std::memory_order_relaxed)) {
            out.cancelled = true;
            break;
        }
        // Seed-count mode runs one exact batch; time-budget mode keeps
        // issuing waves of one-per-worker until the budget is spent.
        std::uint64_t wave;
        if (opt.minutes == 0) {
            wave = opt.seeds - (nextSeed - 1);
            if (wave == 0)
                break;
        } else {
            if (elapsed() >= static_cast<double>(opt.minutes) * 60.0) {
                out.timedOut = true;
                break;
            }
            wave = opt.jobs ? opt.jobs : defaultJobs();
        }
        const std::uint64_t base = nextSeed;
        auto batch = parallelMap(
            static_cast<std::size_t>(wave),
            [&](std::size_t i) { return runSeed(base + i); }, opt.jobs);
        nextSeed += wave;
        bool anyBad = false;
        for (auto &o : batch) {
            anyBad = anyBad || !o.result.ok();
            outcomes.push_back(std::move(o));
        }
        if (anyBad)
            break;
    }

    const SeedOutcome *bad = nullptr;
    for (const auto &o : outcomes) {
        if (!o.result.ok() && !bad)
            bad = &o;
    }

    std::string tracePath, minPath, ckptPath;
    ShrinkResult shrunk;
    bool haveShrunk = false;
    if (bad) {
        printDivergence("seed " + std::to_string(bad->seed),
                        bad->result.divergence);
        const auto stream =
            fuzzStream(bad->seed, differ.cores(), opt.accesses);
        tracePath = opt.outDir + "/divergence-seed" +
                    std::to_string(bad->seed) + ".trc";
        if (!writeTrace(tracePath, differ.cores(), stream)) {
            out.exitCode = kExitRuntime;
            return out;
        }
        if (bad->result.checkpoint.valid) {
            // The last lockstep state captured before the divergence:
            // `fuzz_tool replay --restore` fast-forwards to it and
            // re-runs only the tail.
            ckptPath = opt.outDir + "/divergence-seed" +
                       std::to_string(bad->seed) + ".ckpt";
            std::string err;
            if (!bad->result.checkpoint.save(ckptPath, &err)) {
                std::fprintf(stderr, "fuzz: %s\n", err.c_str());
                out.exitCode = kExitRuntime;
                return out;
            }
            std::printf("checkpoint at access %" PRIu64 ": %s\n",
                        bad->result.checkpoint.accessIndex,
                        ckptPath.c_str());
        }
        std::printf("wrote %s (%zu records); shrinking...\n",
                    tracePath.c_str(), stream.size());
        shrunk = shrinkTrace(differ, stream);
        haveShrunk = shrunk.shrunk();
        if (haveShrunk) {
            minPath = opt.outDir + "/divergence-seed" +
                      std::to_string(bad->seed) + ".min.trc";
            if (!writeTrace(minPath, differ.cores(), shrunk.trace)) {
                out.exitCode = kExitRuntime;
                return out;
            }
            std::printf("shrunk %zu -> %zu records (%" PRIu64
                        " candidates%s): %s\n",
                        shrunk.originalSize, shrunk.trace.size(),
                        shrunk.candidatesTried,
                        shrunk.hitCandidateCap ? ", hit cap" : "",
                        minPath.c_str());
        }
    }

    out.seedsRun = outcomes.size();
    out.report = fuzzReport(opt, differ, outcomes.size(), elapsed(), bad,
                            haveShrunk ? &shrunk : nullptr, tracePath,
                            minPath, ckptPath);
    out.reportPath = opt.outDir + "/fuzz-report.json";
    if (!obs::writeTextFile(out.reportPath, out.report + "\n")) {
        out.exitCode = kExitRuntime;
        return out;
    }

    std::printf("%" PRIu64 " seed(s) in %.1fs%s%s -> %s\n", out.seedsRun,
                elapsed(), out.timedOut ? " (time budget reached)" : "",
                out.cancelled ? " (cancelled)" : "",
                out.reportPath.c_str());
    out.divergence = bad != nullptr;
    out.exitCode = bad ? kExitDivergence : kExitOk;
    if (!bad)
        std::printf("no divergence\n");
    return out;
}

} // namespace zerodev::verify
