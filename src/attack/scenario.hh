/**
 * @file
 * Synthetic side-channel scenarios over the coherence substrate: the
 * measured half of the leakage lab (docs/SIDECHANNEL.md).
 *
 * Each scenario runs repeated independent trials. A trial constructs a
 * fresh CmpSystem, plants a per-trial secret bit, lets an attacker agent
 * prime shared directory state, lets a victim agent execute a
 * secret-dependent access pattern (plus an optional noise agent that is
 * independent of the secret), and finally records the attacker's probe
 * observable: the summed completion latency of re-touching its primed
 * blocks. Directory-eviction victims (DEVs) induced by the victim
 * invalidate the attacker's private copies and inflate the observable —
 * the channel the paper's Section I-A2 describes. The
 * (secret, observable) pairs feed obs/leakage.hh, which turns them into
 * a channel-capacity estimate.
 *
 * Everything is simulated-time deterministic: a scenario's result is a
 * pure function of (config, scenario options), independent of host
 * threading or wall clock.
 */

#ifndef ZERODEV_ATTACK_SCENARIO_HH
#define ZERODEV_ATTACK_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"

namespace zerodev::attack
{

/** The attacker's observation strategy. */
enum class ScenarioKind
{
    /** Prime one directory set of slice 0 to capacity, probe after the
     *  victim touched (secret=1) or avoided (secret=0) that set. */
    DirPrimeProbe,

    /** Occupancy flavour: prime every set of directory slice 0, while
     *  the victim hammers multiple blocks of slice 0 (secret=1) or
     *  slice 1 (secret=0) — the aggregate-occupancy counterpart of the
     *  single-set conflict. */
    DirOccupancy,
};

const char *toString(ScenarioKind kind);

/** Trial-count and determinism knobs of one scenario run. */
struct ScenarioOptions
{
    ScenarioKind kind = ScenarioKind::DirPrimeProbe;

    /** Independent trials (one secret bit each). */
    std::uint64_t trials = 64;

    /** Seed of the per-trial secret/noise streams. */
    std::uint64_t seed = 1;

    /** Noise-agent accesses per trial (0 disables the noise core; the
     *  noise stream is independent of the secret, so it dilutes the
     *  observable without creating a channel). */
    std::uint32_t noiseAccesses = 16;

    /** Run checkInvariants() on every trial's final system state; any
     *  violation (including provenance-conservation) is counted. */
    bool checkInvariants = true;
};

/** Everything one scenario run produced. */
struct ScenarioResult
{
    /** Planted secret bit per trial. */
    std::vector<std::uint8_t> secrets;

    /** Attacker probe observable per trial (summed probe latency in
     *  simulated cycles). */
    std::vector<std::uint64_t> observables;

    /** Eviction provenance, summed over all trials: invalidations
     *  attributed to each inducing global core. */
    std::vector<std::uint64_t> devByInducer;
    std::vector<std::uint64_t> inclusionByInducer;
    std::uint64_t devInvalidations = 0;
    std::uint64_t inclusionInvalidations = 0;

    /** Invariant violations across all trials (0 on a healthy run). */
    std::uint64_t invariantViolations = 0;

    /** Global core ids of the agents (introspection/reporting). */
    std::uint32_t attackerCore = 0;
    std::uint32_t victimCore = 1;
};

/**
 * Run @p opt.trials independent trials of the scenario on fresh systems
 * configured as @p cfg. @p progress (optional) is called after every
 * trial with the number of completed trials — the live-telemetry
 * heartbeat hook.
 */
ScenarioResult runScenario(const SystemConfig &cfg,
                           const ScenarioOptions &opt,
                           const std::function<void(std::uint64_t)>
                               &progress = {});

} // namespace zerodev::attack

#endif // ZERODEV_ATTACK_SCENARIO_HH
