#include "attack/scenario.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "core/cmp_system.hh"
#include "core/invariants.hh"

namespace zerodev::attack
{

namespace
{

/**
 * The address-decomposition facts a scenario plans around: how a block
 * maps onto directory slices/sets (mirroring SparseDirectory) and onto
 * LLC banks/sets (mirroring Llc). The directory conflict is aimed with
 * the slice/set mapping; the LLC mapping keeps the attacker's monitored
 * blocks out of the LLC sets the victim can touch, so inclusive-LLC
 * back-invalidations and ZeroDEV spills never alias into the probe.
 */
struct Geometry
{
    std::uint32_t slices = 1;
    std::uint64_t sets = 1;
    unsigned sliceShift = 0;
    unsigned tagShift = 0;
    unsigned llcBankBits = 0;
    std::uint64_t llcSets = 1;

    std::uint32_t dirSliceOf(BlockAddr b) const
    {
        return static_cast<std::uint32_t>(b & (slices - 1));
    }

    std::uint64_t dirSetOf(BlockAddr b) const
    {
        return (b >> sliceShift) & (sets - 1);
    }

    std::uint64_t llcSetOf(BlockAddr b) const
    {
        return (b >> llcBankBits) & (llcSets - 1);
    }
};

Geometry
geometryOf(const SystemConfig &cfg)
{
    Geometry g;
    g.slices = cfg.llcBanks;
    g.sliceShift = floorLog2(cfg.llcBanks);
    std::uint64_t sets = cfg.directory.sizeRatio > 0.0
                             ? floorPow2(cfg.dirSetsPerSlice())
                             : 0;
    if (sets == 0)
        sets = 1; // no (bounded) directory: any consistent mapping works
    g.sets = sets;
    g.tagShift = g.sliceShift + floorLog2(sets);
    g.llcBankBits = floorLog2(cfg.llcBanks);
    g.llcSets = cfg.llcSetsPerBank();
    return g;
}

/** LLC-set halves keeping attacker and victim footprints disjoint. */
enum class LlcHalf
{
    Lower,
    Upper,
    Any
};

/**
 * The first @p count distinct blocks mapping to directory (slice, set)
 * whose LLC set falls in @p half. When the geometry collapses the LLC
 * halves (every candidate lands in one half), the constraint is relaxed
 * rather than failing — the directory conflict is the load-bearing part.
 */
std::vector<BlockAddr>
blocksInDirSet(const Geometry &g, std::uint32_t slice, std::uint64_t set,
               LlcHalf half, std::size_t count)
{
    std::vector<BlockAddr> out;
    const std::uint64_t half_size = g.llcSets / 2;
    const auto matches = [&](BlockAddr b, LlcHalf h) {
        if (h == LlcHalf::Any || half_size == 0)
            return true;
        const bool upper = g.llcSetOf(b) >= half_size;
        return (h == LlcHalf::Upper) == upper;
    };
    for (int relax = 0; relax < 2 && out.size() < count; ++relax) {
        const LlcHalf h = relax ? LlcHalf::Any : half;
        for (std::uint64_t k = 1;
             out.size() < count && k < (1ull << 20); ++k) {
            const BlockAddr b = (k << g.tagShift) |
                                (set << g.sliceShift) | slice;
            if (matches(b, h) &&
                std::find(out.begin(), out.end(), b) == out.end()) {
                out.push_back(b);
            }
        }
    }
    if (out.size() < count)
        fatal("scenario geometry produced only %zu of %zu blocks",
              out.size(), count);
    return out;
}

/** One trial's fully planned access pattern. */
struct Plan
{
    std::vector<BlockAddr> prime;    //!< attacker's primed blocks
    std::vector<BlockAddr> victim1;  //!< victim pattern when secret = 1
    std::vector<BlockAddr> victim0;  //!< victim pattern when secret = 0
    std::vector<BlockAddr> noisePool;
};

Plan
planScenario(const SystemConfig &cfg, ScenarioKind kind)
{
    const Geometry g = geometryOf(cfg);
    const std::uint32_t ways = cfg.directory.ways;
    // With one slice the "other slice" escape hatch collapses; the
    // victim's secret=0 pattern then uses the farthest set instead.
    const std::uint32_t other_slice = g.slices > 1 ? 1 : 0;
    const std::uint64_t other_set =
        g.slices > 1 ? 0 : (g.sets > 1 ? g.sets / 2 : 0);

    Plan plan;
    switch (kind) {
      case ScenarioKind::DirPrimeProbe:
        plan.prime =
            blocksInDirSet(g, 0, 0, LlcHalf::Upper, ways);
        plan.victim1 = blocksInDirSet(g, 0, 0, LlcHalf::Lower, 1);
        plan.victim0 = blocksInDirSet(g, other_slice, other_set,
                                      LlcHalf::Lower, 1);
        break;
      case ScenarioKind::DirOccupancy: {
        const std::uint64_t covered = std::min<std::uint64_t>(g.sets, 2);
        for (std::uint64_t s = 0; s < covered; ++s) {
            for (BlockAddr b :
                 blocksInDirSet(g, 0, s, LlcHalf::Upper, ways))
                plan.prime.push_back(b);
            for (BlockAddr b :
                 blocksInDirSet(g, 0, s, LlcHalf::Lower, 2))
                plan.victim1.push_back(b);
            for (BlockAddr b :
                 blocksInDirSet(g, other_slice,
                                g.slices > 1 ? s : other_set,
                                LlcHalf::Lower, 2))
                plan.victim0.push_back(b);
        }
        break;
      }
    }

    // Noise pool: high-tag blocks in the other slice's set 0, away from
    // both the attacker's monitored blocks and the primed directory
    // sets. The noise stream perturbs shared timing state (DRAM rows,
    // replacement bits) without ever carrying the secret.
    for (std::uint64_t k = 0; k < 32; ++k) {
        plan.noisePool.push_back(((4096 + k) << g.tagShift) |
                                 other_slice);
    }
    return plan;
}

} // namespace

const char *
toString(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::DirPrimeProbe: return "dir-prime-probe";
      case ScenarioKind::DirOccupancy: return "dir-occupancy";
    }
    return "?";
}

ScenarioResult
runScenario(const SystemConfig &cfg, const ScenarioOptions &opt,
            const std::function<void(std::uint64_t)> &progress)
{
    const Plan plan = planScenario(cfg, opt.kind);
    constexpr Cycle kGap = 50; //!< issue spacing between agent accesses

    ScenarioResult res;
    res.secrets.reserve(opt.trials);
    res.observables.reserve(opt.trials);

    for (std::uint64_t trial = 0; trial < opt.trials; ++trial) {
        // Unrelated per-trial streams: splitmix in the Rng constructor
        // decorrelates consecutive trial seeds.
        Rng rng(opt.seed + trial * 0x9e3779b97f4a7c15ull);
        const bool secret = (rng.next() >> 17) & 1;

        CmpSystem sys(cfg);
        const std::uint32_t cores = sys.totalCores();
        const std::uint32_t noise_core = cores - 1;
        const bool noisy = opt.noiseAccesses > 0 && cores > 2;
        Cycle t = 0;

        const auto run_agent = [&](std::uint32_t core,
                                   const std::vector<BlockAddr> &blocks) {
            for (BlockAddr b : blocks)
                t = sys.access(core, AccessType::Load, b, t + kGap);
        };
        const auto run_noise = [&](std::uint32_t accesses) {
            if (!noisy)
                return;
            for (std::uint32_t i = 0; i < accesses; ++i) {
                const BlockAddr b =
                    plan.noisePool[rng.below(plan.noisePool.size())];
                t = sys.access(noise_core, AccessType::Load, b, t + kGap);
            }
        };

        // Prime -> (noise) -> victim -> (noise) -> probe.
        run_agent(res.attackerCore, plan.prime);
        run_noise(opt.noiseAccesses / 2);
        run_agent(res.victimCore, secret ? plan.victim1 : plan.victim0);
        run_noise(opt.noiseAccesses - opt.noiseAccesses / 2);

        std::uint64_t observable = 0;
        for (BlockAddr b : plan.prime) {
            const Cycle issue = t + kGap;
            t = sys.access(res.attackerCore, AccessType::Load, b, issue);
            observable += t - issue;
        }

        res.secrets.push_back(secret ? 1 : 0);
        res.observables.push_back(observable);

        const ProtocolStats &proto = sys.protoStats();
        res.devByInducer.resize(proto.devByInducer.size(), 0);
        res.inclusionByInducer.resize(proto.inclusionByInducer.size(), 0);
        for (std::size_t c = 0; c < proto.devByInducer.size(); ++c)
            res.devByInducer[c] += proto.devByInducer[c];
        for (std::size_t c = 0; c < proto.inclusionByInducer.size(); ++c)
            res.inclusionByInducer[c] += proto.inclusionByInducer[c];
        res.devInvalidations += proto.devInvalidations;
        res.inclusionInvalidations += proto.inclusionInvalidations;

        if (opt.checkInvariants)
            res.invariantViolations += checkInvariants(sys).size();

        if (progress)
            progress(trial + 1);
    }
    return res;
}

} // namespace zerodev::attack
