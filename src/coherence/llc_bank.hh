/**
 * @file
 * The banked shared LLC. Besides ordinary data blocks, a line can hold a
 * *spilled* directory entry (a whole block in state V=0,D=1) or a *fused*
 * directory entry (a data block whose low bits were overwritten by its
 * entry) — the ZeroDEV directory caching substrate of Section III-C.
 *
 * A set can legitimately contain two lines with the same tag: the data
 * block and its spilled directory entry; probe() returns both. Victim
 * selection implements the baseline LRU and the two Section III-D
 * extensions: spLRU (a spilled entry is re-touched right after its data
 * block, keeping it younger) and dataLRU (ordinary data blocks are
 * evicted before any spilled/fused entry in the set).
 */

#ifndef ZERODEV_COHERENCE_LLC_BANK_HH
#define ZERODEV_COHERENCE_LLC_BANK_HH

#include <cstdint>
#include <vector>

#include "cache/block_state.hh"
#include "cache/cache_array.hh"
#include "common/config.hh"
#include "common/types.hh"
#include "directory/dir_entry.hh"

namespace zerodev
{

/** One LLC line (payload fields; tag/LRU live in the CacheArray). */
struct LlcLine
{
    LlcLineKind kind = LlcLineKind::Invalid;
    bool dirty = false; //!< data dirty bit (preserved across fusion)
    /** Multi-socket: other sockets may also hold copies, so a local
     *  store must consult the home socket first. */
    bool globalShared = false;
    BlockAddr block = 0;
    DirEntry de; //!< payload when kind is SpilledDe/FusedDe

    bool occupied() const { return kind != LlcLineKind::Invalid; }

    bool holdsDe() const { return holdsDirEntry(kind); }

    void
    reset()
    {
        kind = LlcLineKind::Invalid;
        dirty = false;
        globalShared = false;
        de.clear();
    }
};

/** Result of a probe: the data-bearing line and/or the spilled entry. */
struct LlcProbe
{
    LlcLine *data = nullptr;    //!< kind Data or FusedDe
    LlcLine *spilled = nullptr; //!< kind SpilledDe
    std::size_t set = 0;
    std::uint32_t dataWay = 0;
    std::uint32_t spilledWay = 0;
};

/** Description of a line displaced by an allocation. */
struct LlcVictim
{
    bool valid = false;
    LlcLineKind kind = LlcLineKind::Invalid;
    BlockAddr block = 0;
    bool dirty = false;
    DirEntry de;
};

/** LLC statistics. */
struct LlcStats
{
    std::uint64_t lookups = 0;
    std::uint64_t dataHits = 0;
    std::uint64_t dataMisses = 0;
    std::uint64_t dataEvictions = 0;
    std::uint64_t dirtyWritebacks = 0;
    std::uint64_t spillAllocs = 0;
    std::uint64_t fuseOps = 0;
    std::uint64_t unfuseOps = 0;
    std::uint64_t deEvictions = 0;  //!< spilled/fused entries evicted
    std::uint64_t deUpdates = 0;    //!< extra data-array writes to DEs
    std::uint64_t peakDeLines = 0;  //!< high-water mark of DE-bearing lines
    std::uint64_t dataArrayReads = 0; //!< data-array reads on request
                                      //!< critical paths (latency probes)
};

class Llc
{
  public:
    explicit Llc(const SystemConfig &cfg);

    /** Locate @p block's lines in its home bank. */
    LlcProbe probe(BlockAddr block);

    /** Home bank of @p block. */
    std::uint32_t bankOfBlock(BlockAddr block) const;

    /** Mark the data line of @p probe recently used, applying the spLRU
     *  shadow-touch of the spilled entry when configured. */
    void touchData(const LlcProbe &p);

    /** Mark the spilled line recently used. */
    void touchSpilled(const LlcProbe &p);

    /**
     * Allocate a line for @p block with the given kind, choosing a victim
     * per the configured replacement policy. @p exclude_way, if >= 0,
     * protects a way in the target set (used when converting a line in
     * the same set during the allocation).
     * @return the displaced line, if one was valid.
     */
    LlcVictim allocate(BlockAddr block, LlcLineKind kind, bool dirty,
                       const DirEntry &de, std::int32_t exclude_way = -1);

    /** Convert a Data line into a FusedDe line (Section III-C2/3). */
    void fuse(LlcLine &line, const DirEntry &de);

    /** Convert a FusedDe line back into a Data line (reconstruction). */
    void unfuse(LlcLine &line);

    /** Record an in-place update of an LLC-resident directory entry. */
    void noteDeUpdate() { ++stats_.deUpdates; }

    /** Record a block-serving hit/miss outcome (kept by the protocol
     *  engine, which knows the request intent). */
    void noteDataHit() { ++stats_.dataHits; }
    void noteDataMiss() { ++stats_.dataMisses; }

    /** Record a data-array read charged to a request's critical path
     *  (block reads, spilled/fused entry reads). */
    void noteDataRead() { ++stats_.dataArrayReads; }

    /** Free one line. */
    void invalidateLine(LlcLine &line);

    /** Count of lines holding directory entries right now. */
    std::uint64_t deLines() const { return deLines_; }

    /** Of which: whole lines holding a spilled entry. */
    std::uint64_t spilledLines() const { return spilledLines_; }

    /** Of which: data lines with a fused entry. */
    std::uint64_t fusedLines() const { return fusedLines_; }

    /** Count of valid data-bearing lines (Data + FusedDe). */
    std::uint64_t dataLines() const;

    std::uint32_t tagCycles() const { return tagCycles_; }
    std::uint32_t dataCycles() const { return dataCycles_; }

    const LlcStats &stats() const { return stats_; }
    void clearStats() { stats_ = LlcStats{}; }

    std::uint64_t totalBlocks() const { return totalBlocks_; }

    /** Snapshot every bank including spilled/fused directory-entry
     *  lines, the DE-line occupancy counters and the statistics. */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

    /** Visit every occupied line: fn(line). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &bank : banks_) {
            bank.forEach([&](std::size_t, std::uint32_t, const LlcLine &l) {
                fn(l);
            });
        }
    }

  private:
    /** Replacement class of a line under the configured policy. */
    int replClass(const LlcLine &l) const;

    void bumpDeLines(LlcLineKind kind, std::int64_t delta);

    /** Set index of @p block within its bank (precomputed mask/shift
     *  form of bankSetIndex()). */
    std::size_t
    setOfBlock(BlockAddr block) const
    {
        return static_cast<std::size_t>((block >> bankShift_) &
                                        setMask_);
    }

    /** Tag of @p block within its bank (bankTag(), division strength-
     *  reduced to a shift for power-of-two sets-per-bank and to a
     *  multiply-shift reciprocal otherwise). */
    std::uint64_t
    tagOfBlock(BlockAddr block) const
    {
        return setsPow2_ ? (block >> tagShift_)
                         : setDiv_(block >> bankShift_);
    }

    std::uint32_t numBanks_;
    std::uint64_t setsPerBank_;
    unsigned bankShift_ = 0;
    std::uint64_t bankMask_ = 0;
    std::uint64_t setMask_ = 0;
    bool setsPow2_ = false;
    unsigned tagShift_ = 0;
    MulShiftDiv setDiv_;
    std::uint32_t ways_;
    std::uint32_t tagCycles_;
    std::uint32_t dataCycles_;
    std::uint64_t totalBlocks_;
    LlcReplPolicy policy_;
    std::vector<CacheArray<LlcLine>> banks_;
    std::uint64_t deLines_ = 0;
    std::uint64_t spilledLines_ = 0;
    std::uint64_t fusedLines_ = 0;
    LlcStats stats_;
};

} // namespace zerodev

#endif // ZERODEV_COHERENCE_LLC_BANK_HH
