/**
 * @file
 * Coherence protocol backends: the pluggable request-handling layer of
 * the CMP system.
 *
 * CmpSystem owns the substrate — private caches, LLC banks, directory
 * structures, mesh, DRAM, memory store — and the three request entry
 * points (core miss, upgrade, private eviction) are dispatched through a
 * ProtocolBackend chosen by SystemConfig::protocol:
 *
 *  - MesiZeroDevBackend: the original MESI directory family (every
 *    DirOrg, including the ZeroDEV LLC-caching flavours). It delegates
 *    verbatim to the CmpSystem request machinery, so the refactor is
 *    cycle-identical for every pre-backend configuration.
 *  - DlsBackend: a directoryless shared-LLC protocol. The home LLC bank
 *    is the serialization point; holders are found by probing the cores
 *    (the transaction-level model makes the broadcast atomic), so there
 *    is no directory structure at all and therefore no directory
 *    eviction victims — the rival "other way to zero directory cost".
 *  - PhasePriorityBackend: keeps the MESI directory flows but orders
 *    requests at each bank by access-phase priority (stores > loads >
 *    ifetches) through per-bank phase queues, and runs a bounded
 *    directory (PhasePriorityOrg) whose victim selection prefers entries
 *    last touched by low-priority phases.
 *
 * Backends may carry their own architectural state (the phase queues);
 * it is serialized behind hasState() as an extension of the system
 * snapshot stream, so stateless backends leave every existing snapshot
 * byte — including the checked-in golden corpus — untouched.
 */

#ifndef ZERODEV_COHERENCE_BACKEND_HH
#define ZERODEV_COHERENCE_BACKEND_HH

#include <array>
#include <memory>
#include <vector>

#include "core/cmp_system.hh"

namespace zerodev
{

class ProtocolBackend
{
  public:
    explicit ProtocolBackend(CmpSystem &sys) : sys_(sys) {}
    virtual ~ProtocolBackend() = default;

    ProtocolBackend(const ProtocolBackend &) = delete;
    ProtocolBackend &operator=(const ProtocolBackend &) = delete;

    virtual const char *name() const = 0;

    /** Serve a core cache miss; returns the completion cycle. The
     *  backend classifies Memory/Corrupted flows itself (finishAccess);
     *  the caller classifies the remainder from the hop counters. */
    virtual Cycle miss(SocketId s, CoreId c, AccessType type,
                       BlockAddr block, Cycle now) = 0;

    /** Serve an S->M upgrade of a block the core already holds. */
    virtual Cycle upgrade(SocketId s, CoreId c, BlockAddr block,
                          Cycle now) = 0;

    /** Handle a private-cache victim produced by a core fill. */
    virtual void privateEviction(SocketId s, CoreId c,
                                 const PrivateEviction &ev, Cycle now) = 0;

    /** True when the backend carries architectural state of its own;
     *  save()/restore() then extend the system snapshot stream. */
    virtual bool hasState() const { return false; }
    virtual void save(SerialOut &out) const { (void)out; }
    virtual void restore(SerialIn &in) { (void)in; }

    /** Append backend-specific statistics to the system report. */
    virtual void reportStats(StatDump &d) const { (void)d; }

  protected:
    CmpSystem &sys_;
};

/** The original MESI + ZeroDEV family behind the backend interface. */
class MesiZeroDevBackend final : public ProtocolBackend
{
  public:
    explicit MesiZeroDevBackend(CmpSystem &sys) : ProtocolBackend(sys) {}

    const char *name() const override { return "mesi-zerodev"; }
    Cycle miss(SocketId s, CoreId c, AccessType type, BlockAddr block,
               Cycle now) override;
    Cycle upgrade(SocketId s, CoreId c, BlockAddr block,
                  Cycle now) override;
    void privateEviction(SocketId s, CoreId c, const PrivateEviction &ev,
                         Cycle now) override;
};

/** Directoryless shared-LLC protocol (DLS): no directory structure. */
class DlsBackend final : public ProtocolBackend
{
  public:
    explicit DlsBackend(CmpSystem &sys) : ProtocolBackend(sys) {}

    const char *name() const override { return "DLS"; }
    Cycle miss(SocketId s, CoreId c, AccessType type, BlockAddr block,
               Cycle now) override;
    Cycle upgrade(SocketId s, CoreId c, BlockAddr block,
                  Cycle now) override;
    void privateEviction(SocketId s, CoreId c, const PrivateEviction &ev,
                         Cycle now) override;

    bool hasState() const override { return true; }
    void save(SerialOut &out) const override;
    void restore(SerialIn &in) override;
    void reportStats(StatDump &d) const override;

  private:
    /** Find another core holding @p block; prefers the M/E owner.
     *  Returns kInvalidCore when no other core caches it. */
    CoreId findHolder(CmpSystem::Socket &s, CoreId except, BlockAddr block,
                      bool *owned) const;

    /** Invalidate every other holder of @p block (exclusivity for a
     *  store/upgrade); returns when the last InvAck arrives at @p c. */
    Cycle invalidateOthers(CmpSystem::Socket &s, CoreId c, BlockAddr block,
                           Cycle base);

    std::uint64_t broadcastProbes_ = 0; //!< core scans on the miss path
    std::uint64_t snoopSupplies_ = 0;   //!< misses served core-to-core
};

/** MESI flows behind per-bank phase-priority queues and a directory
 *  whose victims are chosen by request-phase priority. */
class PhasePriorityBackend final : public ProtocolBackend
{
  public:
    /** Request phases, highest priority first. */
    static constexpr std::size_t kNumPhases = 3;

    explicit PhasePriorityBackend(CmpSystem &sys);

    const char *name() const override { return "phase-priority"; }
    Cycle miss(SocketId s, CoreId c, AccessType type, BlockAddr block,
               Cycle now) override;
    Cycle upgrade(SocketId s, CoreId c, BlockAddr block,
                  Cycle now) override;
    void privateEviction(SocketId s, CoreId c, const PrivateEviction &ev,
                         Cycle now) override;

    bool hasState() const override { return true; }
    void save(SerialOut &out) const override;
    void restore(SerialIn &in) override;
    void reportStats(StatDump &d) const override;

    /** Phase of an access: 0 = store/upgrade, 1 = load, 2 = ifetch. */
    static std::uint8_t phaseOf(AccessType type);

  private:
    /**
     * Admit a request of @p phase to @p bank's queue at @p t: it may not
     * start before every same-or-higher-priority request previously
     * admitted to the bank has completed (lower-priority requests are
     * overtaken). Returns the start time.
     */
    Cycle admit(std::uint32_t bank, std::uint8_t phase, Cycle t);

    /** Record the completion of the admitted request. */
    void complete(std::uint32_t bank, std::uint8_t phase, Cycle done);

    /** Stamp the request phase on every socket's directory. */
    void notePhase(std::uint8_t phase);

    /** The priority-victim directories, one per socket (cached from the
     *  sockets' DirOrg slots at construction). */
    std::vector<PhasePriorityOrg *> orgs_;

    /** Per-bank completion time of the last request of each phase. */
    std::vector<std::array<Cycle, kNumPhases>> lastDone_;
    std::uint64_t queuedRequests_ = 0;   //!< requests that were delayed
    std::uint64_t queueDelayCycles_ = 0; //!< total admission delay
};

/** Build the backend selected by @p sys's config. */
std::unique_ptr<ProtocolBackend> makeProtocolBackend(CmpSystem &sys);

} // namespace zerodev

#endif // ZERODEV_COHERENCE_BACKEND_HH
