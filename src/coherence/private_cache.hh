/**
 * @file
 * The private cache hierarchy of one core: L1I + L1D backed by a unified
 * L2 that is inclusive of both L1s (Table I geometry). Coherence is
 * tracked at the L2: the directory sees one sharer per core, and an L2
 * eviction (which back-invalidates the L1s) emits the eviction notice the
 * baseline protocol relies on to keep the directory precise [24].
 */

#ifndef ZERODEV_COHERENCE_PRIVATE_CACHE_HH
#define ZERODEV_COHERENCE_PRIVATE_CACHE_HH

#include <cstdint>
#include <optional>

#include "cache/cache_array.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace zerodev
{

/** Where a core access was satisfied, or what it needs from the uncore. */
enum class CoreLookup : std::uint8_t
{
    L1Hit,       //!< served by the L1 (includes silent E->M upgrades)
    L2Hit,       //!< served by the L2, filled into the L1
    NeedUpgrade, //!< block held in S, store needs M permission
    Miss,        //!< not present: issue GetS/GetX to the home bank
};

/** An L2 eviction emitted while filling a new block. */
struct PrivateEviction
{
    BlockAddr block = 0;
    MesiState state = MesiState::Invalid; //!< state at eviction
    bool valid = false;
};

/** Statistics of one core's private hierarchy. */
struct PrivateCacheStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidationsReceived = 0; //!< all external invs
    std::uint64_t devInvalidations = 0;      //!< of which DEVs
};

class PrivateCache
{
  public:
    PrivateCache(const SystemConfig &cfg, CoreId core);

    /**
     * Look up @p block for an access of @p type, updating L1/L2 recency
     * and performing silent E->M upgrades on stores. Does not fill.
     */
    CoreLookup access(AccessType type, BlockAddr block);

    /**
     * Fill @p block into L2 (and the L1 selected by @p type) in @p state.
     * Returns the L2 victim eviction, if a valid block was displaced.
     */
    PrivateEviction fill(AccessType type, BlockAddr block, MesiState state);

    /** Current L2 state of @p block (Invalid if absent). */
    MesiState state(BlockAddr block) const;

    /** True iff the L2 holds @p block in any valid state. */
    bool holds(BlockAddr block) const { return state(block) != MesiState::Invalid; }

    /**
     * Invalidate @p block (external request). Returns the state the
     * block was in (so the caller can collect dirty data).
     * @param dev true when the invalidation stems from a directory
     *        entry eviction (DEV accounting).
     */
    MesiState invalidate(BlockAddr block, bool dev);

    /** Downgrade @p block M/E -> S; returns the previous state. */
    MesiState downgrade(BlockAddr block);

    /** Grant M permission after an upgrade response. */
    void upgradeToModified(BlockAddr block);

    /** Total L2 lookup latency for a fill path (L1 + L2). */
    std::uint32_t l1Cycles() const { return l1Cycles_; }
    std::uint32_t l2Cycles() const { return l2Cycles_; }

    const PrivateCacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = PrivateCacheStats{}; }

    /** Number of valid L2 blocks (invariant checks). */
    std::uint64_t validBlocks() const;

    /** Snapshot the full hierarchy state (L1I/L1D/L2 + counters). */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

    /** Visit every valid L2 block: fn(block, state). */
    template <typename Fn>
    void
    forEachBlock(Fn &&fn) const
    {
        l2_.forEach([&](std::size_t, std::uint32_t, const L2Line &l) {
            fn(l.block, l.state);
        });
    }

  private:
    /** L1 lines carry no payload beyond the array's own tag/LRU state. */
    struct L1Line
    {
        void reset() {}
    };

    struct L2Line
    {
        MesiState state = MesiState::Invalid;
        BlockAddr block = 0;

        void reset() { state = MesiState::Invalid; }
    };

    CacheArray<L1Line> &l1For(AccessType type)
    {
        return type == AccessType::Ifetch ? l1i_ : l1d_;
    }

    /** Remove @p block from both L1s (inclusion on L2 eviction). */
    void dropFromL1s(BlockAddr block);

    /** Fill @p block into the L1 used by @p type. */
    void fillL1(AccessType type, BlockAddr block);

    CoreId core_;
    std::uint32_t l1Cycles_;
    std::uint32_t l2Cycles_;
    CacheArray<L1Line> l1i_;
    CacheArray<L1Line> l1d_;
    CacheArray<L2Line> l2_;
    PrivateCacheStats stats_;
};

} // namespace zerodev

#endif // ZERODEV_COHERENCE_PRIVATE_CACHE_HH
