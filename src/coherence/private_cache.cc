#include "coherence/private_cache.hh"

#include "common/log.hh"

namespace zerodev
{

PrivateCache::PrivateCache(const SystemConfig &cfg, CoreId core)
    : core_(core),
      l1Cycles_(cfg.l1d.lookupCycles),
      l2Cycles_(cfg.l2.lookupCycles),
      l1i_(cfg.l1i.sets(cfg.blockBytes), cfg.l1i.ways),
      l1d_(cfg.l1d.sets(cfg.blockBytes), cfg.l1d.ways),
      l2_(cfg.l2.sets(cfg.blockBytes), cfg.l2.ways)
{
    (void)core_;
}

CoreLookup
PrivateCache::access(AccessType type, BlockAddr block)
{
    switch (type) {
      case AccessType::Load: ++stats_.loads; break;
      case AccessType::Store: ++stats_.stores; break;
      case AccessType::Ifetch: ++stats_.ifetches; break;
    }

    const std::size_t l2set = l2_.setOfAddr(block);
    const std::uint64_t l2tag = l2_.tagOfAddr(block);
    const WayRef l2ref = l2_.find(l2set, l2tag);
    if (!l2ref.found) {
        ++stats_.misses;
        return CoreLookup::Miss;
    }
    L2Line &l2line = l2_.line(l2set, l2ref.way);

    if (type == AccessType::Store) {
        if (l2line.state == MesiState::Shared) {
            ++stats_.upgrades;
            return CoreLookup::NeedUpgrade;
        }
        // Silent E->M upgrade; the directory cannot distinguish [22].
        l2line.state = MesiState::Modified;
    }

    l2_.touch(l2set, l2ref.way);

    auto &l1 = l1For(type);
    const std::size_t l1set = l1.setOfAddr(block);
    const std::uint64_t l1tag = l1.tagOfAddr(block);
    const WayRef l1ref = l1.find(l1set, l1tag);
    if (l1ref.found) {
        l1.touch(l1set, l1ref.way);
        ++stats_.l1Hits;
        return CoreLookup::L1Hit;
    }
    fillL1(type, block);
    ++stats_.l2Hits;
    return CoreLookup::L2Hit;
}

void
PrivateCache::fillL1(AccessType type, BlockAddr block)
{
    auto &l1 = l1For(type);
    const std::size_t set = l1.setOfAddr(block);
    const std::uint32_t way = l1.victimLru(set);
    l1.occupy(set, way, l1.tagOfAddr(block));
    l1.touch(set, way);
    // L1 evictions are silent: the L2 is inclusive and already tracks
    // the block in the right state.
}

PrivateEviction
PrivateCache::fill(AccessType type, BlockAddr block, MesiState state)
{
    if (state == MesiState::Invalid)
        panic("filling a block in Invalid state");

    PrivateEviction ev;
    const std::size_t set = l2_.setOfAddr(block);
    const std::uint64_t tag = l2_.tagOfAddr(block);
    WayRef ref = l2_.find(set, tag);
    if (!ref.found) {
        const std::uint32_t way = l2_.victimLru(set);
        if (l2_.occupiedAt(set, way)) {
            const L2Line &vline = l2_.line(set, way);
            ev.block = vline.block;
            ev.state = vline.state;
            ev.valid = true;
            ++stats_.evictions;
            dropFromL1s(vline.block);
            l2_.release(set, way);
        }
        l2_.occupy(set, way, tag);
        ref = {set, way, true};
    }
    L2Line &line = l2_.line(set, ref.way);
    line.state = state;
    line.block = block;
    l2_.touch(set, ref.way);
    fillL1(type, block);
    return ev;
}

MesiState
PrivateCache::state(BlockAddr block) const
{
    const std::size_t set = l2_.setOfAddr(block);
    const WayRef ref = l2_.find(set, l2_.tagOfAddr(block));
    if (!ref.found)
        return MesiState::Invalid;
    return l2_.line(set, ref.way).state;
}

MesiState
PrivateCache::invalidate(BlockAddr block, bool dev)
{
    const std::size_t set = l2_.setOfAddr(block);
    const WayRef ref = l2_.find(set, l2_.tagOfAddr(block));
    if (!ref.found)
        return MesiState::Invalid;
    const MesiState prev = l2_.line(set, ref.way).state;
    l2_.release(set, ref.way);
    dropFromL1s(block);
    ++stats_.invalidationsReceived;
    if (dev)
        ++stats_.devInvalidations;
    return prev;
}

MesiState
PrivateCache::downgrade(BlockAddr block)
{
    const std::size_t set = l2_.setOfAddr(block);
    const WayRef ref = l2_.find(set, l2_.tagOfAddr(block));
    if (!ref.found)
        panic("downgrade of absent block");
    L2Line &line = l2_.line(set, ref.way);
    const MesiState prev = line.state;
    if (prev != MesiState::Modified && prev != MesiState::Exclusive)
        panic("downgrade of a %s block", toString(prev));
    line.state = MesiState::Shared;
    return prev;
}

void
PrivateCache::upgradeToModified(BlockAddr block)
{
    const std::size_t set = l2_.setOfAddr(block);
    const WayRef ref = l2_.find(set, l2_.tagOfAddr(block));
    if (!ref.found)
        panic("upgrade of absent block");
    l2_.line(set, ref.way).state = MesiState::Modified;
}

void
PrivateCache::dropFromL1s(BlockAddr block)
{
    for (CacheArray<L1Line> *l1 : {&l1i_, &l1d_}) {
        const std::size_t set = l1->setOfAddr(block);
        const WayRef ref = l1->find(set, l1->tagOfAddr(block));
        if (ref.found)
            l1->release(set, ref.way);
    }
}

std::uint64_t
PrivateCache::validBlocks() const
{
    return l2_.occupiedCount();
}

void
PrivateCache::save(SerialOut &out) const
{
    const auto l1Line = [](SerialOut &, const L1Line &) {
        // Occupancy is the only L1 payload; it is implied by presence.
    };
    l1i_.save(out, l1Line);
    l1d_.save(out, l1Line);
    l2_.save(out, [](SerialOut &o, const L2Line &l) {
        o.u8(static_cast<std::uint8_t>(l.state));
        o.u64(l.block);
    });
    out.u64(stats_.loads);
    out.u64(stats_.stores);
    out.u64(stats_.ifetches);
    out.u64(stats_.l1Hits);
    out.u64(stats_.l2Hits);
    out.u64(stats_.upgrades);
    out.u64(stats_.misses);
    out.u64(stats_.evictions);
    out.u64(stats_.invalidationsReceived);
    out.u64(stats_.devInvalidations);
}

void
PrivateCache::restore(SerialIn &in)
{
    const auto l1Line = [](SerialIn &, L1Line &) {};
    l1i_.restore(in, l1Line);
    l1d_.restore(in, l1Line);
    l2_.restore(in, [](SerialIn &i, L2Line &l) {
        l.state = static_cast<MesiState>(i.u8());
        l.block = i.u64();
        i.check(l.state != MesiState::Invalid &&
                    l.state <= MesiState::Modified,
                "bad L2 MESI state");
    });
    stats_.loads = in.u64();
    stats_.stores = in.u64();
    stats_.ifetches = in.u64();
    stats_.l1Hits = in.u64();
    stats_.l2Hits = in.u64();
    stats_.upgrades = in.u64();
    stats_.misses = in.u64();
    stats_.evictions = in.u64();
    stats_.invalidationsReceived = in.u64();
    stats_.devInvalidations = in.u64();
}

} // namespace zerodev
