#include "coherence/llc_bank.hh"

#include <bit>

#include "common/log.hh"

namespace zerodev
{

Llc::Llc(const SystemConfig &cfg)
    : numBanks_(cfg.llcBanks),
      setsPerBank_(cfg.llcSetsPerBank()),
      ways_(cfg.llcWays),
      tagCycles_(cfg.llcTagCycles),
      dataCycles_(cfg.llcDataCycles),
      totalBlocks_(cfg.llcBlocks()),
      policy_(cfg.llcReplPolicy)
{
    // Precompute the bank/set/tag decomposition: probe() runs on every
    // uncore access and the per-call floorLog2 + division dominated it.
    bankShift_ = floorLog2(numBanks_);
    bankMask_ = numBanks_ - 1;
    setMask_ = setsPerBank_ - 1;
    setsPow2_ = isPowerOfTwo(setsPerBank_);
    tagShift_ = setsPow2_ ? bankShift_ + floorLog2(setsPerBank_) : 0;
    setDiv_ = MulShiftDiv(setsPerBank_);

    banks_.reserve(numBanks_);
    for (std::uint32_t b = 0; b < numBanks_; ++b)
        banks_.emplace_back(setsPerBank_, ways_);
}

std::uint32_t
Llc::bankOfBlock(BlockAddr block) const
{
    return static_cast<std::uint32_t>(block & bankMask_);
}

LlcProbe
Llc::probe(BlockAddr block)
{
    ++stats_.lookups;
    LlcProbe p;
    auto &bank = banks_[bankOfBlock(block)];
    p.set = setOfBlock(block);
    const std::uint64_t tag = tagOfBlock(block);
    for (std::uint64_t m = bank.matchMask(p.set, tag); m != 0; m &= m - 1) {
        const auto w = static_cast<std::uint32_t>(std::countr_zero(m));
        LlcLine &l = bank.line(p.set, w);
        if (l.kind == LlcLineKind::SpilledDe) {
            p.spilled = &l;
            p.spilledWay = w;
        } else {
            p.data = &l;
            p.dataWay = w;
        }
    }
    return p;
}

void
Llc::touchData(const LlcProbe &p)
{
    if (!p.data)
        panic("touchData without a data line");
    auto &bank = banks_[bankOfBlock(p.data->block)];
    bank.touch(p.set, p.dataWay);
    if (policy_ == LlcReplPolicy::SpLru && p.spilled) {
        // spLRU: the spilled entry shadows its block at the MRU position,
        // guaranteeing the block is evicted first (Section III-D1).
        bank.touch(p.set, p.spilledWay);
    }
}

void
Llc::touchSpilled(const LlcProbe &p)
{
    if (!p.spilled)
        panic("touchSpilled without a spilled line");
    auto &bank = banks_[bankOfBlock(p.spilled->block)];
    bank.touch(p.set, p.spilledWay);
}

int
Llc::replClass(const LlcLine &l) const
{
    if (policy_ == LlcReplPolicy::DataLru && l.holdsDe()) {
        // dataLRU: evict every ordinary data block in the set before any
        // spilled or fused entry (Section III-D1).
        return 1;
    }
    return 0;
}

LlcVictim
Llc::allocate(BlockAddr block, LlcLineKind kind, bool dirty,
              const DirEntry &de, std::int32_t exclude_way)
{
    if (kind == LlcLineKind::Invalid)
        panic("allocating an Invalid LLC line");
    auto &bank = banks_[bankOfBlock(block)];
    const std::size_t set = setOfBlock(block);
    const std::uint64_t tag = tagOfBlock(block);

    const std::uint32_t way = bank.victim(
        set, [this](const LlcLine &l) { return replClass(l); },
        exclude_way);

    LlcLine &line = bank.line(set, way);
    LlcVictim victim;
    if (bank.occupiedAt(set, way)) {
        victim.valid = true;
        victim.kind = line.kind;
        victim.block = line.block;
        victim.dirty = line.dirty;
        victim.de = line.de;
        if (line.holdsDe()) {
            ++stats_.deEvictions;
            bumpDeLines(line.kind, -1);
        } else {
            ++stats_.dataEvictions;
            if (line.dirty)
                ++stats_.dirtyWritebacks;
        }
        bank.release(set, way);
    }
    bank.occupy(set, way, tag);

    line.kind = kind;
    line.block = block;
    line.dirty = dirty;
    line.de = de;
    bank.touch(set, way);
    if (holdsDirEntry(kind)) {
        bumpDeLines(kind, +1);
        if (kind == LlcLineKind::SpilledDe)
            ++stats_.spillAllocs;
    }
    return victim;
}

void
Llc::fuse(LlcLine &line, const DirEntry &de)
{
    if (line.kind != LlcLineKind::Data)
        panic("fusing a %s line", toString(line.kind));
    line.kind = LlcLineKind::FusedDe;
    line.de = de;
    ++stats_.fuseOps;
    bumpDeLines(LlcLineKind::FusedDe, +1);
}

void
Llc::unfuse(LlcLine &line)
{
    if (line.kind != LlcLineKind::FusedDe)
        panic("unfusing a %s line", toString(line.kind));
    line.kind = LlcLineKind::Data;
    line.de.clear();
    ++stats_.unfuseOps;
    bumpDeLines(LlcLineKind::FusedDe, -1);
}

void
Llc::invalidateLine(LlcLine &line)
{
    if (!line.occupied())
        return;
    if (line.holdsDe())
        bumpDeLines(line.kind, -1);
    auto &bank = banks_[bankOfBlock(line.block)];
    const WayRef r = bank.refOf(&line);
    bank.release(r.set, r.way);
}

void
Llc::bumpDeLines(LlcLineKind kind, std::int64_t delta)
{
    deLines_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(deLines_) + delta);
    auto &split =
        kind == LlcLineKind::SpilledDe ? spilledLines_ : fusedLines_;
    split = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(split) + delta);
    stats_.peakDeLines = std::max(stats_.peakDeLines, deLines_);
}

void
Llc::save(SerialOut &out) const
{
    out.u32(numBanks_);
    for (const auto &bank : banks_) {
        bank.save(out, [](SerialOut &o, const LlcLine &l) {
            o.u8(static_cast<std::uint8_t>(l.kind));
            o.b(l.dirty);
            o.b(l.globalShared);
            o.u64(l.block);
            saveEntry(o, l.de);
        });
    }
    out.u64(deLines_);
    out.u64(spilledLines_);
    out.u64(fusedLines_);
    out.u64(stats_.lookups);
    out.u64(stats_.dataHits);
    out.u64(stats_.dataMisses);
    out.u64(stats_.dataEvictions);
    out.u64(stats_.dirtyWritebacks);
    out.u64(stats_.spillAllocs);
    out.u64(stats_.fuseOps);
    out.u64(stats_.unfuseOps);
    out.u64(stats_.deEvictions);
    out.u64(stats_.deUpdates);
    out.u64(stats_.peakDeLines);
    out.u64(stats_.dataArrayReads);
}

void
Llc::restore(SerialIn &in)
{
    if (!in.check(in.u32() == numBanks_, "LLC bank count mismatch"))
        return;
    for (auto &bank : banks_) {
        bank.restore(in, [](SerialIn &i, LlcLine &l) {
            l.kind = static_cast<LlcLineKind>(i.u8());
            l.dirty = i.b();
            l.globalShared = i.b();
            l.block = i.u64();
            l.de = loadEntry(i);
            i.check(l.kind != LlcLineKind::Invalid &&
                        l.kind <= LlcLineKind::FusedDe,
                    "bad LLC line kind");
        });
    }
    deLines_ = in.u64();
    spilledLines_ = in.u64();
    fusedLines_ = in.u64();
    stats_.lookups = in.u64();
    stats_.dataHits = in.u64();
    stats_.dataMisses = in.u64();
    stats_.dataEvictions = in.u64();
    stats_.dirtyWritebacks = in.u64();
    stats_.spillAllocs = in.u64();
    stats_.fuseOps = in.u64();
    stats_.unfuseOps = in.u64();
    stats_.deEvictions = in.u64();
    stats_.deUpdates = in.u64();
    stats_.peakDeLines = in.u64();
    stats_.dataArrayReads = in.u64();
}

std::uint64_t
Llc::dataLines() const
{
    std::uint64_t n = 0;
    for (const auto &bank : banks_) {
        n += bank.count([](const LlcLine &l) {
            return l.kind == LlcLineKind::Data ||
                   l.kind == LlcLineKind::FusedDe;
        });
    }
    return n;
}

} // namespace zerodev
