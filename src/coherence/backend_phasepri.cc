/**
 * @file
 * Phase-priority backend: the MESI directory flows behind per-bank
 * phase-priority queues, over a bounded directory whose victim selection
 * follows request-phase priority.
 *
 * Requests are split into three phases — stores/upgrades (phase 0),
 * loads (phase 1), ifetches (phase 2) — and each LLC bank serves them in
 * priority order: a request may not start before every same-or-higher-
 * priority request previously admitted to its bank has completed, but it
 * overtakes queued lower-priority work. The functional protocol is the
 * unmodified MESI machinery (delegation, shifted by the admission
 * delay), so the value oracle holds by construction; only timing and the
 * directory victim choice differ.
 *
 * The directory is a PhasePriorityOrg: bounded and replacement-managed,
 * with victims chosen among the entries last touched by the lowest-
 * priority phase. Forced invalidations flow through the ordinary DEV
 * path, so — unlike DLS and ZeroDEV — this rival leaks through the
 * directory eviction channel, and the side-channel lab measures it.
 */

#include "coherence/backend.hh"

#include <algorithm>

#include "common/log.hh"

namespace zerodev
{

PhasePriorityBackend::PhasePriorityBackend(CmpSystem &sys)
    : ProtocolBackend(sys)
{
    const SystemConfig &cfg = sys.config();
    lastDone_.resize(static_cast<std::size_t>(cfg.sockets) * cfg.llcBanks);
    for (auto &bank : lastDone_)
        bank.fill(0);
    for (auto &s : sys.sockets_)
        orgs_.push_back(static_cast<PhasePriorityOrg *>(s->dirOrg.get()));
}

std::uint8_t
PhasePriorityBackend::phaseOf(AccessType type)
{
    switch (type) {
      case AccessType::Store: return 0;
      case AccessType::Load: return 1;
      case AccessType::Ifetch: return 2;
    }
    return 2;
}

Cycle
PhasePriorityBackend::admit(std::uint32_t bank, std::uint8_t phase,
                            Cycle t)
{
    Cycle start = t;
    for (std::uint8_t q = 0; q <= phase; ++q)
        start = std::max(start, lastDone_[bank][q]);
    if (start > t) {
        ++queuedRequests_;
        queueDelayCycles_ += start - t;
    }
    return start;
}

void
PhasePriorityBackend::complete(std::uint32_t bank, std::uint8_t phase,
                               Cycle done)
{
    lastDone_[bank][phase] = std::max(lastDone_[bank][phase], done);
}

void
PhasePriorityBackend::notePhase(std::uint8_t phase)
{
    for (PhasePriorityOrg *org : orgs_)
        org->notePhase(phase);
}

Cycle
PhasePriorityBackend::miss(SocketId sid, CoreId c, AccessType type,
                           BlockAddr block, Cycle now)
{
    CmpSystem::Socket &s = *sys_.sockets_[sid];
    const std::uint8_t phase = phaseOf(type);
    notePhase(phase);
    const std::uint32_t bank =
        sid * sys_.cfg_.llcBanks + s.llc.bankOfBlock(block);
    const Cycle start = admit(bank, phase, now);
    const Cycle done = sys_.handleMiss(s, c, type, block, start);
    complete(bank, phase, done);
    return done;
}

Cycle
PhasePriorityBackend::upgrade(SocketId sid, CoreId c, BlockAddr block,
                              Cycle now)
{
    CmpSystem::Socket &s = *sys_.sockets_[sid];
    notePhase(0); // upgrades are stores
    const std::uint32_t bank =
        sid * sys_.cfg_.llcBanks + s.llc.bankOfBlock(block);
    const Cycle start = admit(bank, 0, now);
    const Cycle done = sys_.handleUpgrade(s, c, block, start);
    complete(bank, 0, done);
    return done;
}

void
PhasePriorityBackend::privateEviction(SocketId sid, CoreId c,
                                      const PrivateEviction &ev, Cycle now)
{
    // Evictions are background traffic: they bypass the request queues
    // (their directory updates still run under the current phase stamp).
    sys_.handlePrivateEviction(*sys_.sockets_[sid], c, ev, now);
}

void
PhasePriorityBackend::save(SerialOut &out) const
{
    out.u64(lastDone_.size());
    for (const auto &bank : lastDone_) {
        for (Cycle t : bank)
            out.u64(t);
    }
    out.u64(queuedRequests_);
    out.u64(queueDelayCycles_);
}

void
PhasePriorityBackend::restore(SerialIn &in)
{
    const std::uint64_t n = in.u64();
    if (n != lastDone_.size())
        panic("phase-priority backend: queue geometry mismatch on restore");
    for (auto &bank : lastDone_) {
        for (Cycle &t : bank)
            t = in.u64();
    }
    queuedRequests_ = in.u64();
    queueDelayCycles_ = in.u64();
}

void
PhasePriorityBackend::reportStats(StatDump &d) const
{
    d.add("backend.queued_requests",
          static_cast<double>(queuedRequests_));
    d.add("backend.queue_delay_cycles",
          static_cast<double>(queueDelayCycles_));
}

} // namespace zerodev
