/**
 * @file
 * Backend factory and the MESI+ZeroDEV backend: a verbatim delegation to
 * the CmpSystem request machinery, so every pre-backend configuration is
 * cycle-identical through the interface (the smoke-bench compare gate
 * pins this at +0.00%).
 */

#include "coherence/backend.hh"

#include "common/log.hh"

namespace zerodev
{

Cycle
MesiZeroDevBackend::miss(SocketId s, CoreId c, AccessType type,
                         BlockAddr block, Cycle now)
{
    return sys_.handleMiss(*sys_.sockets_[s], c, type, block, now);
}

Cycle
MesiZeroDevBackend::upgrade(SocketId s, CoreId c, BlockAddr block,
                            Cycle now)
{
    return sys_.handleUpgrade(*sys_.sockets_[s], c, block, now);
}

void
MesiZeroDevBackend::privateEviction(SocketId s, CoreId c,
                                    const PrivateEviction &ev, Cycle now)
{
    sys_.handlePrivateEviction(*sys_.sockets_[s], c, ev, now);
}

std::unique_ptr<ProtocolBackend>
makeProtocolBackend(CmpSystem &sys)
{
    switch (sys.config().protocol) {
      case ProtocolKind::MesiZeroDev:
        return std::make_unique<MesiZeroDevBackend>(sys);
      case ProtocolKind::Dls:
        return std::make_unique<DlsBackend>(sys);
      case ProtocolKind::PhasePriority:
        return std::make_unique<PhasePriorityBackend>(sys);
    }
    panic("unknown protocol backend");
}

} // namespace zerodev
