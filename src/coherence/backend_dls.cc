/**
 * @file
 * DLS backend: a directoryless shared-LLC coherence protocol.
 *
 * There is no directory structure of any kind — the home LLC bank is the
 * serialization point, and on a bank miss the holders are found by
 * probing the private caches (the transaction-level model makes the
 * broadcast atomic, so the probe is a core scan). Because nothing ever
 * tracks sharers, there are no directory eviction victims, no entry
 * spill/fuse machinery and no entry-in-memory flows: memory data is
 * never destroyed, which is exactly why the differential farm can hold
 * DLS to the shadow value oracle against every MESI-family variant.
 *
 * Protocol rules (MSI over the shared LLC):
 *  - Loads and ifetches fill Shared. An LLC data hit is a 2-hop fill; a
 *    hit in another core is a 3-hop forward (an M owner downgrades and
 *    its dirty data refills the LLC); otherwise memory supplies the data
 *    and the LLC allocates a clean copy.
 *  - A store (miss or upgrade) invalidates every other holder through
 *    the serializing bank and removes the LLC data line: the writer
 *    takes system-wide exclusivity, so an LLC data line implies no M/E
 *    holder exists (checked by the DLS invariant rules).
 *  - M victims write back into the LLC; S victims are silent.
 */

#include "coherence/backend.hh"

#include <algorithm>

namespace zerodev
{

CoreId
DlsBackend::findHolder(CmpSystem::Socket &s, CoreId except, BlockAddr block,
                       bool *owned) const
{
    CoreId sharer = kInvalidCore;
    for (CoreId x = 0; x < sys_.cfg_.coresPerSocket; ++x) {
        if (x == except)
            continue;
        const MesiState st = s.cores[x].state(block);
        if (st == MesiState::Modified || st == MesiState::Exclusive) {
            *owned = true;
            return x;
        }
        if (st == MesiState::Shared && sharer == kInvalidCore)
            sharer = x;
    }
    *owned = false;
    return sharer;
}

Cycle
DlsBackend::invalidateOthers(CmpSystem::Socket &s, CoreId c,
                             BlockAddr block, Cycle base)
{
    Cycle done = base;
    for (CoreId x = 0; x < sys_.cfg_.coresPerSocket; ++x) {
        if (x == c)
            continue;
        // Not the DEV path: there is no directory to evict from, the
        // writer itself demands the exclusivity.
        const MesiState prev = s.cores[x].invalidate(block, false);
        if (prev == MesiState::Invalid)
            continue;
        CmpSystem::send(s, MsgType::Inv, block);
        CmpSystem::send(s, MsgType::InvAck, block);
        const Cycle ack = base + sys_.meshBankToCore(s, block, x) +
                          sys_.meshCoreToCore(s, x, c);
        done = std::max(done, ack);
    }
    return done;
}

Cycle
DlsBackend::miss(SocketId sid, CoreId c, AccessType type, BlockAddr block,
                 Cycle now)
{
    CmpSystem::Socket &s = *sys_.sockets_[sid];
    PrivateCache &pc = s.cores[c];
    const Cycle lookup = pc.l1Cycles() + pc.l2Cycles();
    const Cycle to_bank = sys_.meshCoreToBank(s, c, block);
    Cycle base = now + lookup + to_bank;
    CmpSystem::send(s, type == AccessType::Store ? MsgType::GetX
                                                 : MsgType::GetS,
                    block);
    base += s.llc.tagCycles();

    LlcProbe probe = s.llc.probe(block);
    LlcLine *data = probe.data && probe.data->kind == LlcLineKind::Data
                        ? probe.data
                        : nullptr;

    if (type != AccessType::Store) {
        if (data) {
            // 2-hop: the serializing bank has the data; any private
            // copies are Shared (the writer removed this line).
            s.llc.noteDataHit();
            s.llc.noteDataRead();
            s.llc.touchData(probe);
            ++sys_.proto_.twoHopReads;
            CmpSystem::send(s, MsgType::DataResp, block);
            const Cycle lat =
                base + s.llc.dataCycles() + sys_.meshBankToCore(s, block, c);
            sys_.fillCore(s, c, type, block, MesiState::Shared, now);
            return lat;
        }
        s.llc.noteDataMiss();
        ++broadcastProbes_;
        bool owned = false;
        const CoreId holder = findHolder(s, c, block, &owned);
        if (holder != kInvalidCore) {
            // 3-hop: the bank forwards to a holder, which supplies the
            // requester directly; an M owner downgrades and its dirty
            // data refills the LLC.
            ++sys_.proto_.threeHopReads;
            ++snoopSupplies_;
            CmpSystem::send(s, MsgType::FwdGetS, block);
            CmpSystem::send(s, MsgType::DataResp, block);
            const Cycle lat = base + sys_.meshBankToCore(s, block, holder) +
                              s.cores[holder].l2Cycles() +
                              sys_.meshCoreToCore(s, holder, c);
            if (owned) {
                const MesiState prev = s.cores[holder].downgrade(block);
                sys_.llcWritebackData(s, block,
                                      prev == MesiState::Modified, now);
            }
            sys_.fillCore(s, c, type, block, MesiState::Shared, now);
            return lat;
        }
        // Memory fill; nothing on chip holds the block.
        ++sys_.proto_.socketMisses;
        CmpSystem::send(s, MsgType::MemRead, block);
        CmpSystem::send(s, MsgType::MemReadResp, block);
        const Cycle mem_done = s.dram.read(block, base, false);
        const Cycle lat = mem_done + sys_.meshBankToCore(s, block, c);
        sys_.llcAllocData(s, block, false, now, true);
        sys_.fillCore(s, c, type, block, MesiState::Shared, now);
        return sys_.finishAccess(AccessClass::Memory, now, lat);
    }

    // Store miss: the serializing bank invalidates every holder and the
    // writer takes exclusivity (the LLC data line leaves with it).
    ++broadcastProbes_;
    bool owned = false;
    const CoreId holder = findHolder(s, c, block, &owned);
    const Cycle inv_done = invalidateOthers(s, c, block, base);

    bool memory_fill = false;
    Cycle data_ready;
    if (data) {
        s.llc.noteDataHit();
        s.llc.noteDataRead();
        CmpSystem::send(s, MsgType::DataResp, block);
        data_ready =
            base + s.llc.dataCycles() + sys_.meshBankToCore(s, block, c);
        s.llc.invalidateLine(*data);
    } else if (holder != kInvalidCore) {
        s.llc.noteDataMiss();
        ++sys_.proto_.threeHopReads;
        ++snoopSupplies_;
        CmpSystem::send(s, MsgType::FwdGetX, block);
        CmpSystem::send(s, MsgType::DataResp, block);
        // The holder's data rides with its acknowledgment.
        data_ready = base + sys_.meshBankToCore(s, block, holder) +
                     s.cores[holder].l2Cycles() +
                     sys_.meshCoreToCore(s, holder, c);
    } else {
        s.llc.noteDataMiss();
        ++sys_.proto_.socketMisses;
        memory_fill = true;
        CmpSystem::send(s, MsgType::MemRead, block);
        CmpSystem::send(s, MsgType::MemReadResp, block);
        const Cycle mem_done = s.dram.read(block, base, false);
        data_ready = mem_done + sys_.meshBankToCore(s, block, c);
    }

    const Cycle lat = std::max(data_ready, inv_done);
    sys_.fillCore(s, c, type, block, MesiState::Modified, now);
    if (memory_fill)
        return sys_.finishAccess(AccessClass::Memory, now, lat);
    return lat;
}

Cycle
DlsBackend::upgrade(SocketId sid, CoreId c, BlockAddr block, Cycle now)
{
    CmpSystem::Socket &s = *sys_.sockets_[sid];
    PrivateCache &pc = s.cores[c];
    const Cycle lookup = pc.l1Cycles() + pc.l2Cycles();
    const Cycle to_bank = sys_.meshCoreToBank(s, c, block);
    Cycle base = now + lookup + to_bank + s.llc.tagCycles();
    CmpSystem::send(s, MsgType::Upgrade, block);

    const Cycle inv_done = invalidateOthers(s, c, block, base);

    // The writer takes exclusivity: the LLC data line leaves with it.
    LlcProbe probe = s.llc.probe(block);
    if (probe.data && probe.data->kind == LlcLineKind::Data)
        s.llc.invalidateLine(*probe.data);

    CmpSystem::send(s, MsgType::AckResp, block);
    const Cycle lat =
        std::max(base + sys_.meshBankToCore(s, block, c), inv_done);
    pc.upgradeToModified(block);
    return lat;
}

void
DlsBackend::privateEviction(SocketId sid, CoreId c,
                            const PrivateEviction &ev, Cycle now)
{
    CmpSystem::Socket &s = *sys_.sockets_[sid];
    (void)c;
    switch (ev.state) {
      case MesiState::Modified:
        CmpSystem::send(s, MsgType::PutM, ev.block);
        sys_.llcWritebackData(s, ev.block, true, now);
        break;
      case MesiState::Exclusive:
        // Defensive: DLS fills only S and M, but a clean owner victim
        // still lands in the LLC.
        CmpSystem::send(s, MsgType::PutE, ev.block);
        sys_.llcWritebackData(s, ev.block, false, now);
        break;
      default:
        // Shared victims are silent: nothing tracks them.
        break;
    }
}

void
DlsBackend::save(SerialOut &out) const
{
    out.u64(broadcastProbes_);
    out.u64(snoopSupplies_);
}

void
DlsBackend::restore(SerialIn &in)
{
    broadcastProbes_ = in.u64();
    snoopSupplies_ = in.u64();
}

void
DlsBackend::reportStats(StatDump &d) const
{
    d.add("backend.broadcast_probes",
          static_cast<double>(broadcastProbes_));
    d.add("backend.snoop_supplies", static_cast<double>(snoopSupplies_));
}

} // namespace zerodev
