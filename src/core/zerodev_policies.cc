/**
 * @file
 * ZeroDEV tracking-state management: locating a block's directory entry
 * (sparse directory -> LLC spilled/fused -> home memory), writing updated
 * entries back while maintaining the FusePrivateSpillShared invariants
 * (fused => M/E when co-resident with the block; spilled otherwise), the
 * replacement-disabled allocation path, and the WB_DE flow that houses an
 * LLC-evicted entry inside the (stale) home memory block (Sections III-C
 * and III-D of the paper).
 */

#include "core/cmp_system.hh"

#include "common/log.hh"
#include "obs/latency.hh"
#include "obs/trace.hh"

namespace zerodev
{

Tracking
CmpSystem::findTracking(Socket &s, BlockAddr block)
{
    Tracking trk;
    if (s.dirOrg) {
        auto e = s.dirOrg->lookup(block);
        if (e) {
            trk.where = TrackWhere::Org;
            trk.entry = *e;
        }
        return trk;
    }
    if (s.sparseDir) {
        if (DirEntry *e = s.sparseDir->find(block)) {
            trk.where = TrackWhere::SparseDir;
            trk.entry = *e;
            return trk;
        }
    }
    LlcProbe p = s.llc.probe(block);
    if (p.spilled) {
        trk.where = TrackWhere::LlcSpilled;
        trk.entry = p.spilled->de;
        s.llc.touchSpilled(p);
    } else if (p.data && p.data->kind == LlcLineKind::FusedDe) {
        trk.where = TrackWhere::LlcFused;
        trk.entry = p.data->de;
        s.llc.touchData(p);
    }
    return trk;
}

void
CmpSystem::applyOrgSet(Socket &s, BlockAddr block, const DirEntry &entry,
                       Cycle now)
{
    // Borrow the member scratch instead of allocating a vector on every
    // set() — this runs once per access in the baseline organisations.
    // Borrow-by-move (not a reference) because applyInvalidation() can
    // re-enter this function via LLC victim handling; a nested call then
    // simply starts from an empty buffer.
    std::vector<Invalidation> invs = std::move(invScratch_);
    invs.clear();
    s.dirOrg->set(block, entry, invs, localCore(txnCore_));
    for (const Invalidation &inv : invs)
        applyInvalidation(s, inv, now);
    invScratch_ = std::move(invs);
}

void
CmpSystem::writeTracking(Socket &s, BlockAddr block, TrackWhere where,
                         const DirEntry &entry, Cycle now)
{
    if (s.dirOrg) {
        applyOrgSet(s, block, entry, now);
        return;
    }

    switch (where) {
      case TrackWhere::Org:
        panic("Org tracking without a directory organisation");

      case TrackWhere::None:
        if (entry.live())
            installNewTracking(s, block, entry, now);
        return;

      case TrackWhere::SparseDir: {
        DirEntry *e = s.sparseDir->find(block);
        if (!e)
            panic("sparse directory lost a tracked entry");
        if (entry.live())
            *e = entry;
        else
            s.sparseDir->free(block);
        return;
      }

      case TrackWhere::LlcSpilled: {
        LlcProbe p = s.llc.probe(block);
        if (!p.spilled) {
            // An LLC allocation earlier in this transaction displaced
            // the entry to home memory; pull it back and reinstall.
            if (!extractEntryFromMemory(s, block, now))
                panic("spilled entry vanished during a transaction");
            writeTracking(s, block, TrackWhere::None, entry, now);
            return;
        }
        if (!entry.live()) {
            s.llc.invalidateLine(*p.spilled);
            return;
        }
        if (cfg_.dirCachePolicy == DirCachePolicy::Fpss &&
            entry.state == DirState::Owned && p.data &&
            p.data->kind == LlcLineKind::Data) {
            // S -> M/E with the block resident: free the spilled entry
            // and fuse it into the block (FPSS invariant, Sec. III-C2).
            s.llc.invalidateLine(*p.spilled);
            s.llc.fuse(*p.data, entry);
            ZDEV_TRACE(trc_, obs::TraceEventKind::Fuse,
                       obs::TraceComp::Llc, s.id, 0, block, now, 0, 0,
                       txn_);
            return;
        }
        p.spilled->de = entry;
        s.llc.noteDeUpdate();
        s.llc.touchSpilled(p);
        return;
      }

      case TrackWhere::LlcFused: {
        LlcProbe p = s.llc.probe(block);
        if (!p.data || p.data->kind != LlcLineKind::FusedDe) {
            if (!extractEntryFromMemory(s, block, now))
                panic("fused entry vanished during a transaction");
            writeTracking(s, block, TrackWhere::None, entry, now);
            return;
        }
        if (!entry.live()) {
            // The last private copy is gone; the eviction notice carried
            // the reconstruction bits, so the block returns to a plain
            // valid line with its preserved dirty state.
            s.llc.unfuse(*p.data);
            ZDEV_TRACE(trc_, obs::TraceEventKind::Unfuse,
                       obs::TraceComp::Llc, s.id, 0, block, now, 0, 0,
                       txn_);
            return;
        }
        if (cfg_.dirCachePolicy == DirCachePolicy::Fpss &&
            entry.state == DirState::Shared) {
            // M/E -> S: the owner's busy-clear message carried the low
            // bits; reconstruct the block and spill the entry into the
            // same set (Section III-C2).
            s.llc.unfuse(*p.data);
            ZDEV_TRACE(trc_, obs::TraceEventKind::Unfuse,
                       obs::TraceComp::Llc, s.id, 0, block, now, 0, 0,
                       txn_);
            const LlcVictim victim = s.llc.allocate(
                block, LlcLineKind::SpilledDe, false, entry,
                static_cast<std::int32_t>(p.dataWay));
            handleLlcVictim(s, victim, now);
            return;
        }
        p.data->de = entry;
        s.llc.noteDeUpdate();
        return;
      }
    }
    panic("unreachable tracking location");
}

void
CmpSystem::installNewTracking(Socket &s, BlockAddr block,
                              const DirEntry &entry, Cycle now)
{
    if (s.dirOrg) {
        applyOrgSet(s, block, entry, now);
        return;
    }
    if (s.sparseDir) {
        // Replacement-disabled sparse directory (Section III-C4): use a
        // free way if one exists, otherwise go straight to the LLC.
        DirAllocResult res = s.sparseDir->alloc(block);
        if (res.evictedVictim)
            panic("replacement-disabled sparse directory evicted");
        if (res.entry) {
            *res.entry = entry;
            return;
        }
    }
    cacheEntryInLlc(s, block, entry, now);
}

void
CmpSystem::cacheEntryInLlc(Socket &s, BlockAddr block,
                           const DirEntry &entry, Cycle now)
{
    LlcProbe p = s.llc.probe(block);
    const bool block_resident =
        p.data && p.data->kind == LlcLineKind::Data;

    switch (cfg_.dirCachePolicy) {
      case DirCachePolicy::None:
        panic("ZeroDEV without a directory-entry caching policy");

      case DirCachePolicy::SpillAll: {
        const LlcVictim victim = s.llc.allocate(
            block, LlcLineKind::SpilledDe, false, entry,
            block_resident ? static_cast<std::int32_t>(p.dataWay) : -1);
        ZDEV_TRACE(trc_, obs::TraceEventKind::Spill, obs::TraceComp::Llc,
                   s.id, 0, block, now, 0, 0, txn_);
        handleLlcVictim(s, victim, now);
        return;
      }

      case DirCachePolicy::Fpss:
        if (block_resident && entry.state == DirState::Owned) {
            s.llc.fuse(*p.data, entry);
            ZDEV_TRACE(trc_, obs::TraceEventKind::Fuse,
                       obs::TraceComp::Llc, s.id, 0, block, now, 0, 0,
                       txn_);
            return;
        }
        break;

      case DirCachePolicy::FuseAll:
        if (block_resident) {
            s.llc.fuse(*p.data, entry);
            ZDEV_TRACE(trc_, obs::TraceEventKind::Fuse,
                       obs::TraceComp::Llc, s.id, 0, block, now, 0, 0,
                       txn_);
            return;
        }
        break;
    }

    // Spill: for FPSS this is the S-state (or block-absent, e.g. EPD)
    // case; for FuseAll the block-absent case. A co-resident data line
    // is excluded from victim selection (as in the SpillAll path above):
    // victimising the very block being tracked would, under an inclusive
    // LLC, invalidate the copies this entry is about to record.
    const LlcVictim victim = s.llc.allocate(
        block, LlcLineKind::SpilledDe, false, entry,
        block_resident ? static_cast<std::int32_t>(p.dataWay) : -1);
    ZDEV_TRACE(trc_, obs::TraceEventKind::Spill, obs::TraceComp::Llc,
               s.id, 0, block, now, 0, 0, txn_);
    handleLlcVictim(s, victim, now);
}

void
CmpSystem::writebackEntryToMemory(Socket &s, BlockAddr block,
                                  const DirEntry &entry, Cycle now)
{
    ++proto_.llcDeEvictWbs;
    ZDEV_TRACE(trc_, obs::TraceEventKind::WbDe, obs::TraceComp::Memory,
               s.id, 0, block, now, 0,
               static_cast<std::uint32_t>(entry.count()), txn_);
    Socket &h = home(block);
    send(s, MsgType::WbDe, block);
    Cycle t = now;
    if (h.id != s.id)
        t += cfg_.interSocketCycles;

    // Figure 14: if another socket's entry is already housed in the
    // block, the home must read-modify-write; otherwise the prepared
    // 64-byte image is written directly.
    bool other_segment = false;
    for (SocketId g = 0; g < cfg_.sockets; ++g) {
        if (g != s.id && h.memStore.hasSegment(block, g)) {
            other_segment = true;
            break;
        }
    }
    if (other_segment) {
        const Cycle de_start = t;
        t = h.dram.read(block, t, true);
        // WB_DE is posted: the read-modify-write delays no requester.
        ZDEV_LAT_OFFPATH(lat_, obs::LatComp::DeMemory, t - de_start);
        send(h, MsgType::MemRead, block);
    }
    h.dram.write(block, t, true);
    send(h, MsgType::MemWrite, block);
    h.memStore.storeSegment(block, s.id, entry);

    if (cfg_.sockets > 1) {
        // The socket-level entry switches to the corrupted state with
        // the sharer vector unchanged.
        SocketDirEntry &se = socketEntry(block);
        se.state = SocketDirState::Corrupted;
        se.sharers.set(s.id);
    }
}

std::optional<DirEntry>
CmpSystem::extractEntryFromMemory(Socket &s, BlockAddr block, Cycle now)
{
    Socket &h = home(block);
    auto entry = h.memStore.loadSegment(block, s.id);
    if (!entry)
        return std::nullopt;
    h.memStore.clearSegment(block, s.id);
    ZDEV_TRACE(trc_, obs::TraceEventKind::DeExtract,
               obs::TraceComp::Memory, h.id, 0, block, now, 0,
               static_cast<std::uint32_t>(entry->count()), txn_);
    (void)now;
    return entry;
}

} // namespace zerodev
