/**
 * @file
 * Whole-system invariant checker used by the property-based tests and the
 * debug builds of the examples. It walks every private cache, LLC line,
 * directory structure and memory segment and cross-validates them against
 * the invariants listed in DESIGN.md section 7 (tracking completeness,
 * the FPSS fuse/spill rules, inclusion/EPD properties, the dataLRU
 * guarantee and memory-corruption safety).
 */

#ifndef ZERODEV_CORE_INVARIANTS_HH
#define ZERODEV_CORE_INVARIANTS_HH

#include <string>
#include <vector>

#include "core/cmp_system.hh"

namespace zerodev
{

/** One violated invariant. */
struct Violation
{
    std::string rule;
    std::string detail;
};

/** Run every invariant check; returns the violations found (empty means
 *  the system state is consistent). */
std::vector<Violation> checkInvariants(const CmpSystem &sys);

/** Convenience: panic with the first violation if any exist. */
void assertInvariants(const CmpSystem &sys);

} // namespace zerodev

#endif // ZERODEV_CORE_INVARIANTS_HH
