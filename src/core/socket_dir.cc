#include "core/socket_dir.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace zerodev
{

SocketDirectory::SocketDirectory(Backing backing, std::uint64_t sets,
                                 std::uint32_t ways, MemoryStore &ms)
    : backing_(backing), tags_(sets, ways), ms_(ms)
{
}

void
SocketDirectory::install(BlockAddr block)
{
    const std::size_t set = setIndex(block, tags_.numSets());
    const std::uint64_t tag = tagOf(block, tags_.numSets());
    WayRef free_way = tags_.findFree(set);
    if (!free_way.found) {
        // Owned entries get the higher replacement priority (Section
        // III-D5): evicting them never corrupts a *shared* block's read
        // path.
        const std::uint32_t vway = tags_.victim(set, [&](const TagLine &l) {
            auto it = store_.find(l.block);
            const SocketDirState st = it == store_.end()
                                          ? SocketDirState::Invalid
                                          : it->second.state;
            switch (st) {
              case SocketDirState::Invalid: return 0;
              case SocketDirState::Owned: return 1;
              case SocketDirState::Shared: return 2;
              case SocketDirState::Corrupted: return 3;
            }
            return 2;
        });
        const TagLine &vline = tags_.line(set, vway);
        auto it = store_.find(vline.block);
        if (it != store_.end() && it->second.live()) {
            ++stats_.evictions;
            if (backing_ == Backing::DirEvictBit) {
                // House the entry in its own memory block and set the
                // block's DirEvict bit; the store keeps the payload (it
                // models both locations — the housed copy is
                // authoritative until re-fetched).
                ms_.storeSocketEntry(vline.block, it->second);
            }
            // MemoryBackup: the backup region always holds the entry;
            // nothing to write functionally.
        } else if (it != store_.end()) {
            store_.erase(it); // dead entries just vanish
        }
        tags_.release(set, vway);
        free_way = {set, vway, true};
    }
    tags_.occupy(set, free_way.way, tag);
    tags_.line(set, free_way.way).block = block;
    tags_.touch(set, free_way.way);
}

SocketDirectory::Access
SocketDirectory::access(BlockAddr block)
{
    ++stats_.lookups;
    const std::size_t set = setIndex(block, tags_.numSets());
    const std::uint64_t tag = tagOf(block, tags_.numSets());
    const WayRef ref = tags_.find(set, tag, [&](const TagLine &l) {
        return l.block == block;
    });

    bool miss = !ref.found;
    bool housed = false;
    if (ref.found) {
        tags_.touch(set, ref.way);
    } else {
        ++stats_.misses;
        if (backing_ == Backing::DirEvictBit &&
            ms_.dirEvictBit(block)) {
            // Extract the housed entry back into the cache.
            auto entry = ms_.loadSocketEntry(block);
            ms_.clearSocketEntry(block);
            store_[block] = *entry;
            housed = true;
            ++stats_.housedFetches;
        } else if (backing_ == Backing::MemoryBackup &&
                   store_.count(block)) {
            ++stats_.backupFetches;
        }
        install(block);
    }
    return {store_[block], miss, housed};
}

SocketDirEntry
SocketDirectory::peek(BlockAddr block) const
{
    auto it = store_.find(block);
    if (it != store_.end())
        return it->second;
    if (backing_ == Backing::DirEvictBit) {
        auto housed = ms_.loadSocketEntry(block);
        if (housed)
            return *housed;
    }
    return SocketDirEntry{};
}

std::uint64_t
SocketDirectory::liveEntries() const
{
    std::uint64_t n = 0;
    for (const auto &[block, e] : store_) {
        if (e.live())
            ++n;
    }
    return n;
}


void
SocketDirectory::save(SerialOut &out) const
{
    out.u8(backing_ == Backing::DirEvictBit ? 1 : 0);
    tags_.save(out, [](SerialOut &o, const TagLine &l) {
        o.u64(l.block);
    });
    std::vector<BlockAddr> keys;
    keys.reserve(store_.size());
    for (const auto &[block, e] : store_) {
        (void)e;
        keys.push_back(block);
    }
    std::sort(keys.begin(), keys.end());
    out.u64(keys.size());
    for (BlockAddr block : keys) {
        out.u64(block);
        saveEntry(out, store_.at(block));
    }
    out.u64(stats_.lookups);
    out.u64(stats_.misses);
    out.u64(stats_.evictions);
    out.u64(stats_.housedFetches);
    out.u64(stats_.backupFetches);
}

void
SocketDirectory::restore(SerialIn &in)
{
    const bool devBit = in.u8() != 0;
    if (!in.check(devBit == (backing_ == Backing::DirEvictBit),
                  "socket directory backing mismatch"))
        return;
    tags_.restore(in, [](SerialIn &i, TagLine &l) {
        l.block = i.u64();
    });
    store_.clear();
    const std::uint64_t n = in.u64();
    for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
        const BlockAddr block = in.u64();
        store_[block] = zerodev::loadSocketEntry(in);
    }
    stats_.lookups = in.u64();
    stats_.misses = in.u64();
    stats_.evictions = in.u64();
    stats_.housedFetches = in.u64();
    stats_.backupFetches = in.u64();
}

} // namespace zerodev
