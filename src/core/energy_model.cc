#include "core/energy_model.hh"

#include <cmath>

namespace zerodev
{

StructureEnergy
estimateSram(std::uint64_t bytes, std::uint32_t ways)
{
    // CACTI-flavoured scaling at a 22 nm-class node: dynamic energy per
    // access grows with the square root of capacity (wordline/bitline
    // length) and weakly with associativity (parallel way reads);
    // leakage and area grow linearly with capacity.
    const double kb = static_cast<double>(bytes) / 1024.0;
    StructureEnergy e;
    e.readNj = 0.010 + 0.016 * std::sqrt(kb) *
                           (1.0 + 0.03 * static_cast<double>(ways));
    e.writeNj = e.readNj * 1.15;
    e.leakageMw = 0.45 * kb;
    e.areaMm2 = 0.0011 * kb;
    return e;
}

StructureEnergy
estimateDirectory(std::uint64_t entries, std::uint32_t cores,
                  std::uint32_t ways)
{
    // Peripheral overhead of a small highly-associative search array.
    const double overhead = 1.0 + 0.08 * static_cast<double>(ways);
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        static_cast<double>(entries * dirEntryBytes(cores)) * overhead);
    StructureEnergy e = estimateSram(bytes, ways);
    // Every lookup reads and compares all ways in parallel.
    e.readNj *= 1.0 + 0.12 * static_cast<double>(ways);
    e.writeNj = e.readNj * 1.15;
    return e;
}

std::uint64_t
dirEntryBytes(std::uint32_t cores)
{
    // ~26 tag bits + 2 state bits + busy + N-bit sharer vector.
    const std::uint32_t bits = 26 + 2 + 1 + cores;
    return (bits + 7) / 8;
}

EnergyReport
energyOfRun(const SystemConfig &cfg, const EnergyActivity &activity)
{
    EnergyReport rep;
    const double seconds =
        static_cast<double>(activity.cycles) / 4.0e9; // 4 GHz clock

    // Sparse directory structure (absent when sizeRatio == 0).
    if (cfg.directory.sizeRatio > 0.0) {
        const StructureEnergy dir = estimateDirectory(
            cfg.dirEntries(), cfg.coresPerSocket, cfg.directory.ways);
        rep.dirDynamicMj =
            (static_cast<double>(activity.dirLookups) * dir.readNj +
             static_cast<double>(activity.dirWrites) * dir.writeNj) *
            1e-6;
        rep.dirLeakageMj = dir.leakageMw * seconds;
    }

    // LLC: the tag array is accessed on every lookup; the data array on
    // block reads/writes and on the ZeroDEV directory-entry accesses.
    const std::uint64_t tag_bytes = cfg.llcBlocks() * 6; // ~48-bit tags
    const StructureEnergy tag = estimateSram(tag_bytes, cfg.llcWays);
    const StructureEnergy data = estimateSram(cfg.llcSizeBytes, 1);
    // Directory-entry accesses in the LLC are masked writes of a few
    // bits in one subarray (a fused entry overwrites 3+log2(N)+1 bits),
    // far below a full 64-byte data-array write.
    rep.llcDynamicMj =
        (static_cast<double>(activity.llcTagLookups) * tag.readNj +
         static_cast<double>(activity.llcDataReads) * data.readNj +
         static_cast<double>(activity.llcDataWrites) * data.writeNj +
         static_cast<double>(activity.llcDeAccesses) * data.writeNj *
             0.25) *
        1e-6;
    rep.llcLeakageMj = (tag.leakageMw + data.leakageMw) * seconds;
    return rep;
}

} // namespace zerodev
