/**
 * @file
 * The socket-level directory of Section III-D5: a bounded directory
 * cache (SRAM [21] or DRAM-cache [5,18] class) in front of one of the
 * two backing schemes the paper describes:
 *
 *  - MemoryBackup (solution 1): every entry is backed up in a reserved
 *    home-memory region (1.2% DRAM overhead at 4 sockets). A cache miss
 *    costs a home-memory read; entries are never lost. This is the
 *    scheme the paper's four-socket evaluation uses.
 *  - DirEvictBit (solution 2): an evicted entry is housed in a reserved
 *    partition of its own memory block, recorded by a per-block
 *    DirEvict bit (constant 0.2% DRAM overhead regardless of socket
 *    count). A miss consults the DirEvict bit and extracts the entry
 *    from the block. Owned entries get higher replacement priority so
 *    that corrupted *shared* blocks stay rare.
 *
 * The entry payloads live in a stable store (references returned by
 * access() remain valid across later accesses); the cache structure
 * tracks residency for replacement, statistics and miss costs.
 */

#ifndef ZERODEV_CORE_SOCKET_DIR_HH
#define ZERODEV_CORE_SOCKET_DIR_HH

#include <cstdint>
#include <unordered_map>

#include "cache/cache_array.hh"
#include "common/types.hh"
#include "directory/dir_entry.hh"
#include "mem/memory_store.hh"

namespace zerodev
{

/** Socket-directory statistics. */
struct SocketDirStats
{
    std::uint64_t lookups = 0;
    std::uint64_t misses = 0;        //!< directory-cache misses
    std::uint64_t evictions = 0;     //!< entries displaced from the cache
    std::uint64_t housedFetches = 0; //!< entries pulled from DirEvict blocks
    std::uint64_t backupFetches = 0; //!< entries pulled from memory backup
};

class SocketDirectory
{
  public:
    enum class Backing
    {
        MemoryBackup, //!< solution 1: full backup in home memory
        DirEvictBit,  //!< solution 2: housed in the block + DirEvict bit
    };

    /** Result of an access. */
    struct Access
    {
        SocketDirEntry &entry;
        bool cacheMiss;
        bool fromHousedBlock; //!< solution 2 extraction happened
    };

    /**
     * @param backing which Section III-D5 solution backs the cache
     * @param sets / @p ways directory-cache geometry
     * @param ms the home's memory store (DirEvict bits / housed entries)
     */
    SocketDirectory(Backing backing, std::uint64_t sets,
                    std::uint32_t ways, MemoryStore &ms);

    /** Look up (or create) the entry for @p block, installing it in the
     *  cache; may evict another entry to its backing location. */
    Access access(BlockAddr block);

    /** Side-effect-free lookup for invariant checks. */
    SocketDirEntry peek(BlockAddr block) const;

    Backing backing() const { return backing_; }
    const SocketDirStats &stats() const { return stats_; }

    /** Live (non-Invalid) entries across cache and backing. */
    std::uint64_t liveEntries() const;

    /** Snapshot the cache tags, the stable entry store (sorted) and the
     *  counters. The MemoryStore reference is serialized by its owner. */
    void save(SerialOut &out) const;
    void restore(SerialIn &in);

  private:
    struct TagLine
    {
        BlockAddr block = 0;

        void reset() {}
    };

    /** Make room for @p block in the cache, evicting if needed. */
    void install(BlockAddr block);

    Backing backing_;
    CacheArray<TagLine> tags_;
    std::unordered_map<BlockAddr, SocketDirEntry> store_;
    MemoryStore &ms_;
    SocketDirStats stats_;
};

} // namespace zerodev

#endif // ZERODEV_CORE_SOCKET_DIR_HH
