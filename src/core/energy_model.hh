/**
 * @file
 * CACTI-lite analytical energy/area model for the sparse directory and
 * the LLC (the two structures the paper's energy claim covers). Only
 * *relative* energy between configurations is meaningful, mirroring how
 * the paper uses CACTI: ZeroDEV without a sparse directory saves the
 * directory's leakage and lookup energy but pays extra LLC data-array
 * reads/writes for the cached directory entries.
 */

#ifndef ZERODEV_CORE_ENERGY_MODEL_HH
#define ZERODEV_CORE_ENERGY_MODEL_HH

#include <cstdint>

#include "common/config.hh"

namespace zerodev
{

/** Per-structure estimates (22 nm-class constants). */
struct StructureEnergy
{
    double readNj = 0.0;     //!< energy per read access, nJ
    double writeNj = 0.0;    //!< energy per write access, nJ
    double leakageMw = 0.0;  //!< static power, mW
    double areaMm2 = 0.0;    //!< area, mm^2
};

/** Analytical SRAM model: energy/area scale with capacity and ways. */
StructureEnergy estimateSram(std::uint64_t bytes, std::uint32_t ways);

/**
 * Sparse-directory model: a small, highly associative search structure.
 * All @p ways are read and compared in parallel on every lookup, and
 * the peripheral circuitry (comparators, per-way drivers, ECC) of such
 * arrays is proportionally much larger than a plain data array's —
 * CACTI reports 1.5-2x cell-area overheads for these organisations.
 */
StructureEnergy estimateDirectory(std::uint64_t entries,
                                  std::uint32_t cores,
                                  std::uint32_t ways);

/** Activity counts feeding the energy integration. */
struct EnergyActivity
{
    std::uint64_t dirLookups = 0;
    std::uint64_t dirWrites = 0;
    std::uint64_t llcTagLookups = 0;
    std::uint64_t llcDataReads = 0;
    std::uint64_t llcDataWrites = 0;
    std::uint64_t llcDeAccesses = 0; //!< extra DE reads/writes in the LLC
    Cycle cycles = 0;                //!< execution time (4 GHz clock)
};

/** Breakdown of the (directory + LLC) energy of one run. */
struct EnergyReport
{
    double dirDynamicMj = 0.0;
    double dirLeakageMj = 0.0;
    double llcDynamicMj = 0.0;
    double llcLeakageMj = 0.0;

    double totalMj() const
    {
        return dirDynamicMj + dirLeakageMj + llcDynamicMj + llcLeakageMj;
    }
};

/** Integrate the energy of one run under configuration @p cfg. */
EnergyReport energyOfRun(const SystemConfig &cfg,
                         const EnergyActivity &activity);

/** Size in bytes of one sparse directory entry for @p cores cores
 *  (tag + state + busy + full-map sharer vector), rounded up. */
std::uint64_t dirEntryBytes(std::uint32_t cores);

} // namespace zerodev

#endif // ZERODEV_CORE_ENERGY_MODEL_HH
