/**
 * @file
 * Eviction-side protocol flows: private-cache eviction notices (which keep
 * the directory precise), the Figure 16 GET_DE flow for evictions whose
 * directory entry migrated to home memory, LLC victim handling (data
 * writebacks, inclusive back-invalidations, and the WB_DE flow for
 * spilled/fused entries), and the Section III-D4 last-copy restoration of
 * destroyed memory blocks.
 */

#include "core/cmp_system.hh"

#include "common/log.hh"
#include "obs/latency.hh"
#include "obs/trace.hh"

namespace zerodev
{

void
CmpSystem::handlePrivateEviction(Socket &s, CoreId c,
                                 const PrivateEviction &ev, Cycle now)
{
    const BlockAddr block = ev.block;
    const MesiState st = ev.state;

    Tracking trk = findTracking(s, block);
    if (!trk.found()) {
        evictionWithoutEntry(s, c, block, st, now);
        return;
    }

    DirEntry entry = trk.entry;
    if (!entry.isSharer(c))
        panic("eviction notice from an untracked core");
    entry.removeSharer(c);

    // Record the notice on the wire. E-state notices carry the
    // reconstruction bits when the entry is fused (Section III-C2);
    // FuseAll retrieves the low bits from the last sharer with a special
    // acknowledgment (Section III-C3).
    if (st == MesiState::Modified) {
        send(s, MsgType::PutM, block);
    } else if (st == MesiState::Exclusive) {
        send(s, trk.where == TrackWhere::LlcFused
                             ? MsgType::PutEBits
                             : MsgType::PutE, block);
        send(s, MsgType::EvictAck, block);
    } else {
        send(s, MsgType::PutS, block);
        if (!entry.live() && trk.where == TrackWhere::LlcFused &&
            cfg_.dirCachePolicy == DirCachePolicy::FuseAll) {
            send(s, MsgType::EvictAckFetchBits, block);
        } else {
            send(s, MsgType::EvictAck, block);
        }
    }

    writeTracking(s, block, trk.where, entry, now);

    if (st == MesiState::Modified) {
        // Dirty writeback: the data lands in the LLC (all flavours: EPD
        // explicitly allocates owner-eviction victims, Section III-E).
        llcWritebackData(s, block, true, now);
    } else if (st == MesiState::Exclusive &&
               cfg_.llcFlavor == LlcFlavor::Epd) {
        // EPD allocates the clean owner-eviction victim too.
        llcWritebackData(s, block, false, now);
    }

    if (!entry.live()) {
        const bool wrote_data = st == MesiState::Modified;
        lastCopyInSocketGone(s, block, st, wrote_data, now);
    }
}

void
CmpSystem::evictionWithoutEntry(Socket &s, CoreId c, BlockAddr block,
                                MesiState st, Cycle now)
{
    Socket &h = home(block);
    Cycle t = now;
    if (h.id != s.id)
        t += cfg_.interSocketCycles;

    if (st == MesiState::Modified) {
        // Figure 16, step 2: a full-block writeback that finds no entry
        // in the socket must come from the system-wide owner; execute
        // the baseline writeback-to-home flow. The full-block write also
        // restores the destroyed memory data.
        send(s, MsgType::PutM, block);
        h.dram.write(block, t, false);
        send(h, MsgType::MemWrite, block);
        h.memStore.clearSegment(block, s.id);
        if (h.memStore.destroyed(block)) {
            h.memStore.restoreData(block);
            ++proto_.lastCopyRestores;
        }
        if (cfg_.sockets > 1)
            socketEvictionNotice(s.id, block, false, now);
        return;
    }

    // Figure 16, steps 3-6: fetch the directory entry from the home
    // memory block (GET_DE), update it, and send it back.
    ++proto_.getDeFlows;
    ZDEV_TRACE(trc_, obs::TraceEventKind::GetDe, obs::TraceComp::Memory,
               s.id, c, block, t, 0, 0, txn_);
    send(s, MsgType::GetDe, block);
    auto entry = extractEntryFromMemory(s, block, t);
    if (!entry) {
        panic("eviction notice for block %#llx found no directory entry "
              "anywhere", static_cast<unsigned long long>(block));
    }
    const Cycle de_start = t;
    t = h.dram.read(block, t, true);
    // GET_DE runs behind the eviction notice, off the requester's
    // critical path: account it as background entry-memory work.
    ZDEV_LAT_OFFPATH(lat_, obs::LatComp::DeMemory, t - de_start);
    send(h, MsgType::DeResp, block);
    if (!entry->isSharer(c))
        panic("GET_DE entry does not track the evicting core");
    entry->removeSharer(c);

    if (entry->live()) {
        // Other cores in this socket still cache the block: write the
        // updated entry back into the memory segment.
        send(s, MsgType::PutDe, block);
        h.dram.write(block, t, true);
        send(h, MsgType::MemWrite, block);
        h.memStore.storeSegment(block, s.id, *entry);
        return;
    }

    // The socket's last copy left. If the memory data was destroyed and
    // no other socket holds a copy, the block is retrieved from the
    // evicting core and written back (Section III-D4).
    lastCopyInSocketGone(s, block, st, false, now);
}

void
CmpSystem::lastCopyInSocketGone(Socket &s, BlockAddr block, MesiState st,
                                bool data_written_back, Cycle now)
{
    (void)st;
    Socket &h = home(block);

    if (cfg_.sockets == 1) {
        // If the LLC still holds a data copy, the socket hasn't lost the
        // block (non-inclusive flavours).
        LlcProbe probe = s.llc.probe(block);
        if (probe.data)
            return;
        if (h.memStore.destroyed(block) && !data_written_back) {
            // System-wide last copy of a destroyed block: the block is
            // retrieved from the evicting core and overwrites the
            // corrupted memory block (Section III-D4).
            send(s, MsgType::DataResp, block);
            h.dram.write(block, now, true);
            send(h, MsgType::MemWrite, block);
            h.memStore.clearBlock(block);
            h.memStore.restoreData(block);
            ++proto_.lastCopyRestores;
        }
        return;
    }

    LlcProbe probe = s.llc.probe(block);
    if (probe.data)
        return; // the socket still holds the block in its LLC
    socketEvictionNotice(s.id, block, !data_written_back, now);
}

void
CmpSystem::handleLlcVictim(Socket &s, const LlcVictim &victim, Cycle now)
{
    if (!victim.valid)
        return;
    const BlockAddr block = victim.block;
    Socket &h = home(block);
    ZDEV_TRACE(trc_, obs::TraceEventKind::LlcVictim, obs::TraceComp::Llc,
               s.id, 0, block, now, 0,
               static_cast<std::uint32_t>(victim.kind), txn_, txnCore_);

    if (victim.kind == LlcLineKind::Data) {
        if (cfg_.llcFlavor == LlcFlavor::Inclusive)
            inclusionInvalidate(s, block, now);
        if (victim.dirty) {
            Cycle t = now;
            if (h.id != s.id) {
                t += cfg_.interSocketCycles;
                send(s, MsgType::MemWrite, block);
            }
            h.dram.write(block, t, false);
            send(h, MsgType::MemWrite, block);
            if (h.memStore.destroyed(block)) {
                h.memStore.clearBlock(block);
                h.memStore.restoreData(block);
                ++proto_.lastCopyRestores;
            }
        }
        if (cfg_.sockets > 1) {
            // The socket keeps the block only if cores still cache it
            // (the entry may live in-socket or in a home memory segment).
            Tracking trk = peekTracking(s.id, block);
            if (!trk.found() && !h.memStore.hasSegment(block, s.id))
                socketEvictionNotice(s.id, block, !victim.dirty, now);
        } else if (!victim.dirty && h.memStore.destroyed(block)) {
            // A clean LLC copy can still be the system-wide last copy of
            // a destroyed memory block; write it back before it is lost.
            Tracking trk = peekTracking(s.id, block);
            if (!trk.found() && !h.memStore.hasSegment(block, s.id)) {
                h.dram.write(block, now, true);
                send(h, MsgType::MemWrite, block);
                h.memStore.clearBlock(block);
                h.memStore.restoreData(block);
                ++proto_.lastCopyRestores;
            }
        }
        return;
    }

    // A spilled or fused directory entry left the LLC.
    if (!victim.de.live())
        panic("LLC evicted a dead directory entry");

    if (cfg_.llcFlavor == LlcFlavor::Inclusive) {
        // Inclusive LLCs never write entries to memory: evicting the
        // line invalidates the tracked copies (inclusion property), so
        // the entry simply dies (Section III-F).
        for (CoreId x = 0; x < cfg_.coresPerSocket; ++x) {
            if (!victim.de.isSharer(x))
                continue;
            const MesiState prev = s.cores[x].invalidate(block, false);
            if (prev != MesiState::Invalid) {
                noteInclusionInvalidation();
                send(s, MsgType::Inv, block);
                send(s, MsgType::InvAck, block);
                if (prev == MesiState::Modified) {
                    h.dram.write(block, now, false);
                    send(h, MsgType::MemWrite, block);
                    h.memStore.restoreData(block);
                }
            }
        }
        if (cfg_.sockets > 1)
            socketEvictionNotice(s.id, block, false, now);
        return;
    }

    // Evict-together rule: if the victim was a spilled entry whose data
    // block is still resident (possible under plain LRU), the data block
    // leaves with it, so "block in LLC but entry in memory" can never be
    // observed (Section III-D2).
    if (victim.kind == LlcLineKind::SpilledDe) {
        LlcProbe probe = s.llc.probe(block);
        if (probe.data && probe.data->kind == LlcLineKind::Data) {
            const bool dirty = probe.data->dirty;
            s.llc.invalidateLine(*probe.data);
            if (dirty) {
                h.dram.write(block, now, false);
                send(h, MsgType::MemWrite, block);
                h.memStore.restoreData(block);
            }
        }
    }

    writebackEntryToMemory(s, block, victim.de, now);
}

void
CmpSystem::inclusionInvalidate(Socket &s, BlockAddr block, Cycle now)
{
    Tracking trk = findTracking(s, block);
    if (!trk.found())
        return;
    bool dirty = false;
    for (CoreId x = 0; x < cfg_.coresPerSocket; ++x) {
        if (!trk.entry.isSharer(x))
            continue;
        const MesiState prev = s.cores[x].invalidate(block, false);
        if (prev != MesiState::Invalid) {
            noteInclusionInvalidation();
            send(s, MsgType::Inv, block);
            send(s, MsgType::InvAck, block);
            if (prev == MesiState::Modified)
                dirty = true;
        }
    }
    if (dirty) {
        Socket &h = home(block);
        h.dram.write(block, now, false);
        send(h, MsgType::MemWrite, block);
        h.memStore.restoreData(block);
    }
    DirEntry dead;
    writeTracking(s, block, trk.where, dead, now);
}

} // namespace zerodev
