/**
 * @file
 * Inter-socket protocol flows (Sections III-D3/D4/D5, Figure 15): the
 * socket-level directory at each home (memory-backed, the solution the
 * paper's four-socket evaluation uses), socket-miss service including the
 * corrupted-block forwards, the DENF_NACK racing-entry flow, and
 * socket-level eviction notices with last-copy memory restoration.
 */

#include "core/cmp_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/latency.hh"

namespace zerodev
{

SocketDirEntry &
CmpSystem::socketEntry(BlockAddr block)
{
    Socket &h = home(block);
    if (!h.socketDir)
        panic("socket-level directory access in a single-socket system");
    return h.socketDir->access(block).entry;
}

void
CmpSystem::socketEvictionNotice(SocketId sid, BlockAddr block,
                                bool restore_data, Cycle now)
{
    Socket &h = home(block);
    send(*sockets_[sid], MsgType::PutS, block);
    SocketDirEntry &se = socketEntry(block);
    se.sharers.reset(sid);
    h.memStore.clearSegment(block, sid);

    if (se.sharers.any())
        return;

    if (h.memStore.destroyed(block)) {
        if (restore_data) {
            // System-wide last copy of a destroyed block: retrieve it
            // from the evicting cache and overwrite the corrupted
            // memory block (Section III-D4).
            send(*sockets_[sid], MsgType::DataResp, block);
            h.dram.write(block, now, true);
            send(h, MsgType::MemWrite, block);
            h.memStore.clearBlock(block);
            h.memStore.restoreData(block);
            ++proto_.lastCopyRestores;
        }
        // When restore_data is false the data reached home through a
        // full-block writeback in the same flow.
    }
    se.clear();
}

Cycle
CmpSystem::invalidateRemoteSharers(Socket &s, BlockAddr block, Cycle now)
{
    SocketDirEntry &se = socketEntry(block);
    Cycle added = 0;
    bool any = false;
    for (SocketId g = 0; g < cfg_.sockets; ++g) {
        if (g == s.id || !se.sharers.test(g))
            continue;
        any = true;
        Socket &gs = *sockets_[g];
        Tracking trk = findTracking(gs, block);
        if (trk.found()) {
            for (CoreId x = 0; x < cfg_.coresPerSocket; ++x) {
                if (trk.entry.isSharer(x))
                    gs.cores[x].invalidate(block, false);
            }
            DirEntry dead;
            writeTracking(gs, block, trk.where, dead, now);
        } else {
            home(block).memStore.clearSegment(block, g);
        }
        LlcProbe probe = gs.llc.probe(block);
        if (probe.data)
            gs.llc.invalidateLine(*probe.data);
        if (probe.spilled)
            gs.llc.invalidateLine(*probe.spilled);
        send(s, MsgType::Inv, block);
        send(gs, MsgType::InvAck, block);
        se.sharers.reset(g);
    }
    if (any) {
        // Request to home, invalidations fanned out, acks collected:
        // roughly three inter-socket crossings on the critical path.
        added = 3ull * cfg_.interSocketCycles;
        se.sharers.set(s.id);
        if (se.state != SocketDirState::Corrupted)
            se.state = SocketDirState::Owned;
    }
    return added;
}

Cycle
CmpSystem::supplyFromSocket(Socket &f, AccessType type, BlockAddr block,
                            Cycle now, bool invalidate_all)
{
    (void)type;
    Tracking trk = findTracking(f, block);
    Socket &h = home(block);
    if (!trk.found()) {
        // The socket may hold the block only in its LLC (every core
        // evicted its copy, freeing the entry, while the LLC line
        // survived): serve straight from the LLC.
        LlcProbe probe = f.llc.probe(block);
        if (probe.data && probe.data->kind == LlcLineKind::Data) {
            const Cycle internal =
                f.llc.tagCycles() + f.llc.dataCycles();
            f.llc.noteDataRead();
            ZDEV_LAT(lat_, obs::LatComp::DirLookup, f.llc.tagCycles());
            ZDEV_LAT(lat_, obs::LatComp::LlcData, f.llc.dataCycles());
            if (invalidate_all) {
                f.llc.invalidateLine(*probe.data);
                if (probe.spilled)
                    f.llc.invalidateLine(*probe.spilled);
                socketEntry(block).sharers.reset(f.id);
            } else {
                probe.data->globalShared = true;
                f.llc.touchData(probe);
            }
            send(f, MsgType::DataResp, block);
            return now + internal;
        }
        panic("supplyFromSocket: socket %u has neither entry nor LLC "
              "copy of block %#llx", f.id,
              static_cast<unsigned long long>(block));
    }
    DirEntry entry = trk.entry;

    const CoreId x = entry.state == DirState::Owned ? entry.owner()
                                                    : entry.anySharer();
    const Cycle fwd_hop = meshBankToCore(f, block, x);
    Cycle internal = f.llc.tagCycles() + fwd_hop + f.cores[x].l2Cycles();
    ZDEV_LAT(lat_, obs::LatComp::DirLookup, f.llc.tagCycles());
    ZDEV_LAT(lat_, obs::LatComp::Mesh, fwd_hop);
    ZDEV_LAT(lat_, obs::LatComp::CoreLookup, f.cores[x].l2Cycles());

    if (invalidate_all) {
        for (CoreId y = 0; y < cfg_.coresPerSocket; ++y) {
            if (entry.isSharer(y))
                f.cores[y].invalidate(block, false);
        }
        // Erase the tracking first (it may live in an LLC line), then
        // drop whatever data line remains.
        DirEntry dead;
        writeTracking(f, block, trk.where, dead, now);
        LlcProbe probe = f.llc.probe(block);
        if (probe.data)
            f.llc.invalidateLine(*probe.data);
        if (probe.spilled)
            f.llc.invalidateLine(*probe.spilled);
        socketEntry(block).sharers.reset(f.id);
    } else {
        if (entry.state == DirState::Owned) {
            const MesiState prev = f.cores[x].downgrade(block);
            entry.state = DirState::Shared;
            if (prev == MesiState::Modified &&
                !h.memStore.destroyed(block)) {
                // The downgrade writes the dirty data back to home
                // memory (baseline inter-socket sharing writeback).
                h.dram.write(block, now, false);
                send(h, MsgType::MemWrite, block);
            }
        }
        LlcProbe probe = f.llc.probe(block);
        if (probe.data)
            probe.data->globalShared = true;
        writeTracking(f, block, trk.where, entry, now);
    }
    send(f, MsgType::DataResp, block);
    return now + internal;
}

Cycle
CmpSystem::forwardToSharerSocket(Socket &s, CoreId c, AccessType type,
                                 BlockAddr block, Cycle now,
                                 SocketDirEntry &sentry)
{
    (void)c;
    Socket &h = home(block);
    const SocketId fid = sentry.anySharerExcept(s.id);
    if (fid == static_cast<SocketId>(~0u))
        panic("forward with no sharer socket");
    Socket &f = *sockets_[fid];

    send(h, type == AccessType::Store ? MsgType::FwdGetX
                                               : MsgType::FwdGetS, block);
    Cycle t = now + cfg_.interSocketCycles; // home -> F
    ZDEV_LAT(lat_, obs::LatComp::InterSocket, cfg_.interSocketCycles);

    Tracking trk = findTracking(f, block);
    bool llc_copy = false;
    {
        LlcProbe fp = f.llc.probe(block);
        llc_copy = fp.data && fp.data->kind == LlcLineKind::Data;
    }
    if (!trk.found() && !llc_copy) {
        // F's intra-socket entry was evicted and written back to home
        // memory: DENF_NACK, home extracts F's entry and re-forwards it
        // with the request (Figure 15, steps 7-11).
        ++proto_.denfNacks;
        send(f, MsgType::DenfNack, block);
        t += cfg_.interSocketCycles;            // F -> home NACK
        ZDEV_LAT(lat_, obs::LatComp::InterSocket, cfg_.interSocketCycles);
        auto fentry = h.memStore.loadSegment(block, fid);
        if (!fentry)
            panic("DENF_NACK but no segment for the forwarded socket");
        const Cycle de_start = t;
        t = h.dram.read(block, t, true);        // read corrupted block
        ZDEV_LAT(lat_, obs::LatComp::DeMemory, t - de_start);
        send(h, MsgType::FwdWithDe, block);
        t += cfg_.interSocketCycles;            // home -> F resend
        ZDEV_LAT(lat_, obs::LatComp::InterSocket, cfg_.interSocketCycles);
        h.memStore.clearSegment(block, fid);

        // F concludes the request using the carried entry.
        DirEntry entry = *fentry;
        const CoreId x = entry.state == DirState::Owned
                             ? entry.owner()
                             : entry.anySharer();
        const Cycle fwd_hop = meshBankToCore(f, block, x);
        t += f.llc.tagCycles() + fwd_hop + f.cores[x].l2Cycles();
        ZDEV_LAT(lat_, obs::LatComp::DirLookup, f.llc.tagCycles());
        ZDEV_LAT(lat_, obs::LatComp::Mesh, fwd_hop);
        ZDEV_LAT(lat_, obs::LatComp::CoreLookup, f.cores[x].l2Cycles());
        if (type == AccessType::Store) {
            for (CoreId y = 0; y < cfg_.coresPerSocket; ++y) {
                if (entry.isSharer(y))
                    f.cores[y].invalidate(block, false);
            }
            sentry.sharers.reset(fid);
        } else {
            if (entry.state == DirState::Owned) {
                f.cores[x].downgrade(block);
                entry.state = DirState::Shared;
            }
            // The updated entry returns to its home memory segment.
            send(f, MsgType::PutDe, block);
            h.dram.write(block, t, true);
            send(h, MsgType::MemWrite, block);
            h.memStore.storeSegment(block, fid, entry);
        }
        send(f, MsgType::DataResp, block);
        t += cfg_.interSocketCycles; // F -> requester data
        ZDEV_LAT(lat_, obs::LatComp::InterSocket, cfg_.interSocketCycles);
        return t;
    }

    t = supplyFromSocket(f, type, block, t, type == AccessType::Store);
    t += cfg_.interSocketCycles; // F -> requester data
    ZDEV_LAT(lat_, obs::LatComp::InterSocket, cfg_.interSocketCycles);
    return t;
}

Cycle
CmpSystem::serveSocketMissMulti(Socket &s, CoreId c, AccessType type,
                                BlockAddr block, Cycle now, Cycle base)
{
    Socket &h = home(block);
    Cycle t = base;
    if (h.id != s.id) {
        t += cfg_.interSocketCycles;
        ZDEV_LAT(lat_, obs::LatComp::InterSocket, cfg_.interSocketCycles);
        send(s, type == AccessType::Store ? MsgType::GetX
                                                   : MsgType::GetS, block);
    }
    t += 2; // socket-level directory cache lookup
    ZDEV_LAT(lat_, obs::LatComp::DirLookup, 2);

    SocketDirectory::Access acc = h.socketDir->access(block);
    if (acc.cacheMiss && acc.entry.live()) {
        // Directory-cache miss: the entry comes from home memory — a
        // backup read (solution 1) or a DirEvict-bit extraction from
        // the block itself (solution 2).
        const Cycle de_start = t;
        t = h.dram.read(block, t, true);
        ZDEV_LAT(lat_, obs::LatComp::DeMemory, t - de_start);
        send(h, MsgType::MemRead, block);
    }
    SocketDirEntry &se = acc.entry;

    const bool is_store = type == AccessType::Store;
    MesiState fill = is_store ? MesiState::Modified
                   : type == AccessType::Ifetch ? MesiState::Shared
                                                : MesiState::Exclusive;

    auto finish = [&](Cycle done, bool llc_dirty, bool global_shared,
                      MesiState st) -> Cycle {
        if (st == MesiState::Shared || st == MesiState::Exclusive ||
            st == MesiState::Modified) {
            if (cfg_.llcFlavor != LlcFlavor::Epd ||
                st == MesiState::Shared) {
                llcAllocData(s, block, llc_dirty, now, !global_shared);
            }
        }
        DirEntry entry;
        if (st == MesiState::Shared)
            entry.addSharer(c);
        else
            entry.makeOwned(c);
        writeTracking(s, block, TrackWhere::None, entry, now);
        fillCore(s, c, type, block, st, now);
        return done;
    };

    switch (se.state) {
      case SocketDirState::Invalid: {
        const Cycle mem = h.dram.read(block, t, false);
        ZDEV_LAT(lat_, obs::LatComp::Dram, mem - t);
        send(h, MsgType::MemRead, block);
        send(h, MsgType::MemReadResp, block);
        const Cycle back = meshBankToCore(s, block, c);
        ZDEV_LAT(lat_, obs::LatComp::Mesh, back);
        Cycle done = mem + back;
        if (h.id != s.id) {
            done += cfg_.interSocketCycles;
            ZDEV_LAT(lat_, obs::LatComp::InterSocket,
                     cfg_.interSocketCycles);
        }
        if (fill == MesiState::Shared) {
            se.state = SocketDirState::Shared;
        } else {
            se.state = SocketDirState::Owned;
        }
        se.sharers.set(s.id);
        return finishAccess(AccessClass::Memory, now,
                            finish(done, false, false, fill));
      }

      case SocketDirState::Shared: {
        Cycle done;
        if (is_store) {
            // Invalidate the sharer sockets; data comes from memory.
            for (SocketId g = 0; g < cfg_.sockets; ++g) {
                if (g == s.id || !se.sharers.test(g))
                    continue;
                Socket &gs = *sockets_[g];
                Tracking trk = findTracking(gs, block);
                if (trk.found()) {
                    for (CoreId y = 0; y < cfg_.coresPerSocket; ++y) {
                        if (trk.entry.isSharer(y))
                            gs.cores[y].invalidate(block, false);
                    }
                    DirEntry dead;
                    writeTracking(gs, block, trk.where, dead, now);
                } else {
                    h.memStore.clearSegment(block, g);
                }
                LlcProbe probe = gs.llc.probe(block);
                if (probe.data)
                    gs.llc.invalidateLine(*probe.data);
                if (probe.spilled)
                    gs.llc.invalidateLine(*probe.spilled);
                send(h, MsgType::Inv, block);
                send(gs, MsgType::InvAck, block);
                se.sharers.reset(g);
            }
            const Cycle mem = h.dram.read(block, t, false);
            ZDEV_LAT(lat_, obs::LatComp::Dram, mem - t);
            done = std::max<Cycle>(mem, t + 2ull * cfg_.interSocketCycles);
            ZDEV_LAT(lat_, obs::LatComp::InvStall, done - mem);
            se.state = SocketDirState::Owned;
            se.sharers.set(s.id);
        } else {
            const Cycle mem = h.dram.read(block, t, false);
            ZDEV_LAT(lat_, obs::LatComp::Dram, mem - t);
            done = mem;
            se.sharers.set(s.id);
            fill = MesiState::Shared;
        }
        send(h, MsgType::MemRead, block);
        send(h, MsgType::MemReadResp, block);
        const Cycle back = meshBankToCore(s, block, c);
        ZDEV_LAT(lat_, obs::LatComp::Mesh, back);
        done += back;
        if (h.id != s.id) {
            done += cfg_.interSocketCycles;
            ZDEV_LAT(lat_, obs::LatComp::InterSocket,
                     cfg_.interSocketCycles);
        }
        return finishAccess(AccessClass::Memory, now,
                            finish(done, false, !is_store, fill));
      }

      case SocketDirState::Owned: {
        const SocketId fid = se.anySharerExcept(s.id);
        if (fid == static_cast<SocketId>(~0u))
            panic("socket-level Owned entry with no owner socket");
        send(h, is_store ? MsgType::FwdGetX : MsgType::FwdGetS, block);
        ZDEV_LAT(lat_, obs::LatComp::InterSocket,
                 2ull * cfg_.interSocketCycles);
        Cycle done = supplyFromSocket(*sockets_[fid], type, block,
                                      t + cfg_.interSocketCycles,
                                      is_store);
        done += cfg_.interSocketCycles; // F -> requester
        if (is_store) {
            se.sharers.reset(fid);
            se.sharers.set(s.id);
            se.state = SocketDirState::Owned;
            fill = MesiState::Modified;
        } else {
            se.sharers.set(s.id);
            se.state = SocketDirState::Shared;
            fill = MesiState::Shared;
        }
        return finish(done, false, !is_store, fill);
      }

      case SocketDirState::Corrupted: {
        if (se.isSharer(s.id)) {
            // The requesting socket lost its entry to home memory but
            // still has cached copies: the home returns the corrupted
            // block; the socket extracts its entry (one extra cycle) and
            // concludes within the socket (Figure 15, step 3).
            if (!is_store)
                ++proto_.corruptedReadMisses;
            ++proto_.corruptedResponses;
            auto entry = extractEntryFromMemory(s, block, t);
            if (!entry)
                panic("corrupted entry lists socket %u but no segment",
                      s.id);
            Cycle done = h.dram.read(block, t, true) + 1;
            ZDEV_LAT(lat_, obs::LatComp::DeMemory, done - t);
            send(h, MsgType::MemRead, block);
            send(h, MsgType::DataRespCorrupted, block);
            if (h.id != s.id) {
                done += cfg_.interSocketCycles;
                ZDEV_LAT(lat_, obs::LatComp::InterSocket,
                         cfg_.interSocketCycles);
            }
            Tracking trk;
            trk.where = TrackWhere::None;
            trk.entry = *entry;
            LlcProbe probe = s.llc.probe(block);
            return finishAccess(
                AccessClass::Corrupted, now,
                serveTracked(s, c, type, block, now, trk, probe, done));
        }

        if (!is_store)
            ++proto_.corruptedReadMisses;
        Cycle done = forwardToSharerSocket(s, c, type, block, t, se);
        if (is_store) {
            // Every other socket's copies die; memory stays destroyed
            // until a full-block write restores it.
            for (SocketId g = 0; g < cfg_.sockets; ++g) {
                if (g == s.id || !se.sharers.test(g))
                    continue;
                Socket &gs = *sockets_[g];
                Tracking trk = findTracking(gs, block);
                if (trk.found()) {
                    for (CoreId y = 0; y < cfg_.coresPerSocket; ++y) {
                        if (trk.entry.isSharer(y))
                            gs.cores[y].invalidate(block, false);
                    }
                    DirEntry dead;
                    writeTracking(gs, block, trk.where, dead, now);
                } else {
                    h.memStore.clearSegment(block, g);
                }
                LlcProbe probe = gs.llc.probe(block);
                if (probe.data)
                    gs.llc.invalidateLine(*probe.data);
                if (probe.spilled)
                    gs.llc.invalidateLine(*probe.spilled);
                se.sharers.reset(g);
            }
            se.sharers.set(s.id);
            fill = MesiState::Modified;
            return finish(done, false, false, fill);
        }
        se.sharers.set(s.id);
        fill = MesiState::Shared;
        // The forwarded data may be dirtier than (destroyed) memory;
        // keep the socket's LLC copy dirty so it eventually writes back
        // and restores the home block.
        return finishAccess(AccessClass::Corrupted, now,
                            finish(done, true, true, fill));
      }
    }
    panic("unreachable socket-directory state");
}

} // namespace zerodev
