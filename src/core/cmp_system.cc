#include "core/cmp_system.hh"

#include <algorithm>

#include "coherence/backend.hh"
#include "common/bitops.hh"
#include "common/log.hh"
#include "directory/mgd.hh"
#include "directory/secdir.hh"
#include "obs/latency.hh"
#include "obs/trace.hh"

namespace zerodev
{

CmpSystem::Socket::Socket(const SystemConfig &cfg, SocketId sid)
    : id(sid),
      llc(cfg),
      dram(cfg.dram, cfg.blockBytes),
      mesh(std::max(cfg.coresPerSocket, cfg.llcBanks), cfg.meshHopCycles),
      traffic(cfg.coresPerSocket)
{
    cores.reserve(cfg.coresPerSocket);
    for (CoreId c = 0; c < cfg.coresPerSocket; ++c)
        cores.emplace_back(cfg, c);
}

CmpSystem::~CmpSystem() = default;

CmpSystem::CmpSystem(const SystemConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    sockets_.reserve(cfg_.sockets);
    for (SocketId s = 0; s < cfg_.sockets; ++s) {
        auto sock = std::make_unique<Socket>(cfg_, s);
        sock->sparseDir = buildSparseDir();
        sock->dirOrg = buildDirOrg();
        if (cfg_.sockets > 1) {
            sock->socketDir = std::make_unique<SocketDirectory>(
                cfg_.socketDirZeroDev
                    ? SocketDirectory::Backing::DirEvictBit
                    : SocketDirectory::Backing::MemoryBackup,
                cfg_.socketDirCacheSets, cfg_.socketDirCacheWays,
                sock->memStore);
        }
        sockets_.push_back(std::move(sock));
    }

    // After the sockets: the backend may cache per-socket pointers.
    backend_ = makeProtocolBackend(*this);

    // Eviction provenance: one attribution slot (and one process-wide
    // Prometheus series) per possible inducing core. Registration is
    // idempotent, so concurrently constructed systems share the series.
    const std::uint32_t cores = totalCores();
    proto_.devByInducer.assign(cores, 0);
    proto_.inclusionByInducer.assign(cores, 0);
    devInducerMetrics_.resize(cores, nullptr);
    inclInducerMetrics_.resize(cores, nullptr);
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    for (std::uint32_t c = 0; c < cores; ++c) {
        const std::string label =
            "inducing_core=\"" + std::to_string(c) + "\"";
        devInducerMetrics_[c] = reg.counter(
            "zerodev_dev_invalidations_total",
            "Directory-eviction-victim invalidations attributed to the "
            "inducing core",
            label);
        inclInducerMetrics_[c] = reg.counter(
            "zerodev_inclusion_invalidations_total",
            "Inclusion back-invalidations attributed to the inducing core",
            label);
    }
}

void
CmpSystem::noteDevInvalidation()
{
    ++proto_.devInvalidations;
    ++proto_.devByInducer[txnCore_];
    ZDEV_METRIC_ADD(devInducerMetrics_[txnCore_], 1);
}

void
CmpSystem::noteInclusionInvalidation()
{
    ++proto_.inclusionInvalidations;
    ++proto_.inclusionByInducer[txnCore_];
    ZDEV_METRIC_ADD(inclInducerMetrics_[txnCore_], 1);
}

std::unique_ptr<SparseDirectory>
CmpSystem::buildSparseDir() const
{
    if (cfg_.protocol == ProtocolKind::Dls)
        return nullptr; // DLS has no directory structure at all
    if (cfg_.dirOrg != DirOrg::ZeroDev)
        return nullptr;
    if (cfg_.directory.sizeRatio <= 0.0)
        return nullptr; // ZeroDEV with no sparse directory at all
    const std::uint64_t sets = floorPow2(cfg_.dirSetsPerSlice());
    return std::make_unique<SparseDirectory>(
        cfg_.llcBanks, sets, cfg_.directory.ways,
        /*replacement_disabled=*/true);
}

std::unique_ptr<DirOrgBase>
CmpSystem::buildDirOrg() const
{
    const std::uint64_t sets = floorPow2(cfg_.dirSetsPerSlice());
    if (cfg_.protocol == ProtocolKind::Dls)
        return nullptr; // DLS has no directory structure at all
    if (cfg_.protocol == ProtocolKind::PhasePriority) {
        // Same geometry as the sparse directory it replaces, but victim
        // selection follows request-phase priority.
        return std::make_unique<PhasePriorityOrg>(cfg_.llcBanks, sets,
                                                  cfg_.directory.ways);
    }
    switch (cfg_.dirOrg) {
      case DirOrg::ZeroDev:
        return nullptr;
      case DirOrg::SparseNru:
        return std::make_unique<SparseOrg>(SparseDirectory(
            cfg_.llcBanks, sets, cfg_.directory.ways, false,
            cfg_.directory.tagPartitions));
      case DirOrg::Unbounded:
        return std::make_unique<SparseOrg>(
            SparseDirectory::makeUnbounded(cfg_.llcBanks));
      case DirOrg::SecDir:
        return std::make_unique<SecDir>(
            cfg_.coresPerSocket, cfg_.llcBanks,
            SecDirGeometry::forConfig(cfg_.coresPerSocket, sets,
                                      cfg_.directory.ways));
      case DirOrg::MultiGrain:
        return std::make_unique<MultiGrainDirectory>(
            cfg_.coresPerSocket, cfg_.llcBanks, sets, cfg_.directory.ways,
            cfg_.mgd.regionBytes / cfg_.blockBytes);
    }
    panic("unknown directory organisation");
}

SocketId
CmpSystem::homeSocket(BlockAddr block) const
{
    if (cfg_.sockets == 1)
        return 0;
    // 4 KB-granular home interleave (64 blocks): decorrelates the home
    // socket from the LLC bank index bits.
    return static_cast<SocketId>((block >> 6) & (cfg_.sockets - 1));
}

Cycle
CmpSystem::meshCoreToBank(Socket &s, CoreId c, BlockAddr block) const
{
    return s.mesh.latency(s.mesh.tileOfCore(c),
                          s.mesh.tileOfBank(s.llc.bankOfBlock(block)));
}

Cycle
CmpSystem::meshBankToCore(Socket &s, BlockAddr block, CoreId c) const
{
    return meshCoreToBank(s, c, block);
}

Cycle
CmpSystem::meshCoreToCore(Socket &s, CoreId a, CoreId b) const
{
    return s.mesh.latency(s.mesh.tileOfCore(a), s.mesh.tileOfCore(b));
}

Cycle
CmpSystem::access(CoreId gcore, AccessType type, BlockAddr block,
                  Cycle now)
{
    Socket &s = *sockets_[socketOfCore(gcore)];
    const CoreId c = localCore(gcore);
    PrivateCache &pc = s.cores[c];
    ++proto_.accesses;
    txn_ = proto_.accesses;
    txnCore_ = gcore;
    txnBlock_ = block;
    ZDEV_TRACE(trc_, obs::TraceEventKind::Request, obs::TraceComp::Core,
               s.id, gcore, block, now, 0,
               static_cast<std::uint32_t>(type), txn_);
    ZDEV_LAT_BEGIN(lat_);

    switch (pc.access(type, block)) {
      case CoreLookup::L1Hit:
        ZDEV_LAT(lat_, obs::LatComp::CoreLookup, pc.l1Cycles());
        return finishAccess(AccessClass::L1Hit, now,
                            now + pc.l1Cycles());
      case CoreLookup::L2Hit:
        ZDEV_LAT(lat_, obs::LatComp::CoreLookup,
                 pc.l1Cycles() + pc.l2Cycles());
        return finishAccess(AccessClass::L2Hit, now,
                            now + pc.l1Cycles() + pc.l2Cycles());
      case CoreLookup::NeedUpgrade:
        return finishAccess(AccessClass::Upgrade, now,
                            backend_->upgrade(s.id, c, block, now));
      case CoreLookup::Miss: {
        ++proto_.l2Misses;
        const std::uint64_t mem_before =
            proto_.classCount[static_cast<std::size_t>(
                AccessClass::Memory)];
        const std::uint64_t cor_before =
            proto_.classCount[static_cast<std::size_t>(
                AccessClass::Corrupted)];
        const std::uint64_t three_before = proto_.threeHopReads;
        const Cycle done = backend_->miss(s.id, c, type, block, now);
        // The flows tag Memory/Corrupted classes themselves; everything
        // else is a 2-hop or 3-hop uncore transaction.
        const bool tagged =
            proto_.classCount[static_cast<std::size_t>(
                AccessClass::Memory)] != mem_before ||
            proto_.classCount[static_cast<std::size_t>(
                AccessClass::Corrupted)] != cor_before;
        if (tagged)
            return done;
        return finishAccess(proto_.threeHopReads != three_before
                                ? AccessClass::ThreeHop
                                : AccessClass::TwoHop,
                            now, done);
      }
    }
    panic("unreachable");
}

Tracking
CmpSystem::peekTracking(SocketId sid, BlockAddr block) const
{
    const Socket &s = *sockets_[sid];
    Tracking trk;
    if (s.dirOrg) {
        auto e = s.dirOrg->peek(block);
        if (e) {
            trk.where = TrackWhere::Org;
            trk.entry = *e;
        }
        return trk;
    }
    if (s.sparseDir) {
        if (const DirEntry *e = s.sparseDir->peek(block)) {
            trk.where = TrackWhere::SparseDir;
            trk.entry = *e;
            return trk;
        }
    }
    LlcProbe p = const_cast<Llc &>(s.llc).probe(block);
    if (p.spilled) {
        trk.where = TrackWhere::LlcSpilled;
        trk.entry = p.spilled->de;
    } else if (p.data && p.data->kind == LlcLineKind::FusedDe) {
        trk.where = TrackWhere::LlcFused;
        trk.entry = p.data->de;
    }
    return trk;
}

SocketDirEntry
CmpSystem::peekSocketEntry(BlockAddr block) const
{
    const Socket &h = *sockets_[homeSocket(block)];
    if (!h.socketDir)
        return SocketDirEntry{};
    return h.socketDir->peek(block);
}

std::uint64_t
CmpSystem::totalTrafficBytes() const
{
    std::uint64_t n = 0;
    for (const auto &s : sockets_)
        n += s->traffic.totalBytes();
    return n;
}

DramStats
CmpSystem::totalDramStats() const
{
    DramStats agg;
    for (const auto &s : sockets_) {
        const DramStats &d = s->dram.stats();
        agg.reads += d.reads;
        agg.writes += d.writes;
        agg.rowHits += d.rowHits;
        agg.rowMisses += d.rowMisses;
        agg.rowConflicts += d.rowConflicts;
        agg.deReads += d.deReads;
        agg.deWrites += d.deWrites;
    }
    return agg;
}

Cycle
CmpSystem::finishAccess(AccessClass cls, Cycle start, Cycle done)
{
    const auto i = static_cast<std::size_t>(cls);
    ++proto_.classCount[i];
    proto_.classCycles[i] += done - start;
    ZDEV_LAT_END(lat_, static_cast<std::uint32_t>(cls), done - start);
    ZDEV_TRACE(trc_, obs::TraceEventKind::Complete,
               obs::TraceComp::Protocol, socketOfCore(txnCore_), txnCore_,
               txnBlock_, start, done - start,
               static_cast<std::uint32_t>(cls), txn_);
    return done;
}

const char *
toString(AccessClass c)
{
    switch (c) {
      case AccessClass::L1Hit: return "l1_hit";
      case AccessClass::L2Hit: return "l2_hit";
      case AccessClass::Upgrade: return "upgrade";
      case AccessClass::TwoHop: return "two_hop";
      case AccessClass::ThreeHop: return "three_hop";
      case AccessClass::Memory: return "memory";
      case AccessClass::Corrupted: return "corrupted";
      case AccessClass::NumClasses: break;
    }
    return "?";
}

StatDump
CmpSystem::report() const
{
    StatDump d;
    d.add("accesses", static_cast<double>(proto_.accesses));
    d.add("l2_misses", static_cast<double>(proto_.l2Misses));
    d.add("dev_invalidations",
          static_cast<double>(proto_.devInvalidations));
    d.add("dev_owned_invalidations",
          static_cast<double>(proto_.devOwnedInvalidations));
    d.add("inclusion_invalidations",
          static_cast<double>(proto_.inclusionInvalidations));
    for (std::size_t c = 0; c < proto_.devByInducer.size(); ++c) {
        d.add("prov.dev_by_core." + std::to_string(c),
              static_cast<double>(proto_.devByInducer[c]));
    }
    for (std::size_t c = 0; c < proto_.inclusionByInducer.size(); ++c) {
        d.add("prov.incl_by_core." + std::to_string(c),
              static_cast<double>(proto_.inclusionByInducer[c]));
    }
    d.add("two_hop_reads", static_cast<double>(proto_.twoHopReads));
    d.add("three_hop_reads", static_cast<double>(proto_.threeHopReads));
    d.add("llc_de_evict_wbs", static_cast<double>(proto_.llcDeEvictWbs));
    d.add("get_de_flows", static_cast<double>(proto_.getDeFlows));
    d.add("denf_nacks", static_cast<double>(proto_.denfNacks));
    d.add("corrupted_read_misses",
          static_cast<double>(proto_.corruptedReadMisses));
    d.add("corrupted_responses",
          static_cast<double>(proto_.corruptedResponses));
    d.add("socket_misses", static_cast<double>(proto_.socketMisses));
    d.add("last_copy_restores",
          static_cast<double>(proto_.lastCopyRestores));
    d.add("traffic_bytes", static_cast<double>(totalTrafficBytes()));

    const DramStats dram = totalDramStats();
    d.add("dram.reads", static_cast<double>(dram.reads));
    d.add("dram.writes", static_cast<double>(dram.writes));
    d.add("dram.de_reads", static_cast<double>(dram.deReads));
    d.add("dram.de_writes", static_cast<double>(dram.deWrites));

    for (SocketId s = 0; s < cfg_.sockets; ++s) {
        const std::string p = "s" + std::to_string(s) + ".";
        const LlcStats &l = sockets_[s]->llc.stats();
        d.add(p + "llc.data_evictions",
              static_cast<double>(l.dataEvictions));
        d.add(p + "llc.de_evictions", static_cast<double>(l.deEvictions));
        d.add(p + "llc.spill_allocs", static_cast<double>(l.spillAllocs));
        d.add(p + "llc.fuse_ops", static_cast<double>(l.fuseOps));
        d.add(p + "llc.peak_de_lines",
              static_cast<double>(l.peakDeLines));
        d.add(p + "llc.data_array_reads",
              static_cast<double>(l.dataArrayReads));
        d.add(p + "llc.de_lines",
              static_cast<double>(sockets_[s]->llc.deLines()));
        const Mesh &m = sockets_[s]->mesh;
        d.add(p + "mesh.traversals",
              static_cast<double>(m.stats().traversals));
        d.add(p + "mesh.total_hops", static_cast<double>(m.stats().hops));
        m.hopHist().addTo(d, p + "mesh.hops");
        if (sockets_[s]->sparseDir) {
            d.add(p + "dir.live",
                  static_cast<double>(sockets_[s]->sparseDir->liveEntries()));
            d.add(p + "dir.refusals",
                  static_cast<double>(
                      sockets_[s]->sparseDir->stats().refusals));
        }
        if (sockets_[s]->dirOrg) {
            d.add(p + "dir.live",
                  static_cast<double>(sockets_[s]->dirOrg->liveEntries()));
            d.add(p + "dir.forced_invs",
                  static_cast<double>(
                      sockets_[s]->dirOrg->orgStats().forcedInvalidations));
        }
        d.add(p + "mem.corrupted_blocks",
              static_cast<double>(sockets_[s]->memStore.corruptedBlocks()));
    }
    sharingDegree_.addTo(d, "sharing_degree");
    devSize_.addTo(d, "dev_size");
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(AccessClass::NumClasses); ++i) {
        const auto cls = static_cast<AccessClass>(i);
        if (proto_.classCount[i] == 0)
            continue;
        const std::string p = std::string("latency.") + toString(cls);
        d.add(p + ".count", static_cast<double>(proto_.classCount[i]));
        d.add(p + ".mean", proto_.meanLatency(cls));
    }
    // Backend-specific series: empty for the MESI+ZeroDev family, so
    // every pre-backend report stays byte-identical.
    backend_->reportStats(d);
    return d;
}

} // namespace zerodev
