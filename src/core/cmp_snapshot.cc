/**
 * @file
 * CmpSystem state serialization: the "System" payload of a
 * zerodev-snapshot-v1 container (sim/snapshot.hh). The stream is guarded
 * by the config fingerprint — geometry is never serialized redundantly;
 * a restore target must be constructed from the identical SystemConfig,
 * and every component then checks its own derived geometry as a backstop.
 */

#include <cstddef>

#include "coherence/backend.hh"
#include "common/serialize.hh"
#include "core/cmp_system.hh"
#include "obs/report.hh"

namespace zerodev
{

namespace
{

constexpr std::size_t kNumClasses =
    static_cast<std::size_t>(AccessClass::NumClasses);

void
saveProtoStats(SerialOut &out, const ProtocolStats &p)
{
    // Eviction-provenance attribution vectors (sized by core count,
    // which the config fingerprint already pins).
    out.u64(p.devByInducer.size());
    for (std::uint64_t v : p.devByInducer)
        out.u64(v);
    for (std::uint64_t v : p.inclusionByInducer)
        out.u64(v);
    out.u64(p.accesses);
    out.u64(p.l2Misses);
    out.u64(p.devInvalidations);
    out.u64(p.devOwnedInvalidations);
    out.u64(p.inclusionInvalidations);
    out.u64(p.threeHopReads);
    out.u64(p.twoHopReads);
    out.u64(p.llcDeEvictWbs);
    out.u64(p.getDeFlows);
    out.u64(p.denfNacks);
    out.u64(p.corruptedReadMisses);
    out.u64(p.corruptedResponses);
    out.u64(p.socketMisses);
    out.u64(p.lastCopyRestores);
    for (std::size_t i = 0; i < kNumClasses; ++i) {
        out.u64(p.classCount[i]);
        out.u64(p.classCycles[i]);
    }
}

void
restoreProtoStats(SerialIn &in, ProtocolStats &p)
{
    if (!in.check(in.u64() == p.devByInducer.size(),
                  "provenance vector size mismatch"))
        return;
    for (std::uint64_t &v : p.devByInducer)
        v = in.u64();
    for (std::uint64_t &v : p.inclusionByInducer)
        v = in.u64();
    p.accesses = in.u64();
    p.l2Misses = in.u64();
    p.devInvalidations = in.u64();
    p.devOwnedInvalidations = in.u64();
    p.inclusionInvalidations = in.u64();
    p.threeHopReads = in.u64();
    p.twoHopReads = in.u64();
    p.llcDeEvictWbs = in.u64();
    p.getDeFlows = in.u64();
    p.denfNacks = in.u64();
    p.corruptedReadMisses = in.u64();
    p.corruptedResponses = in.u64();
    p.socketMisses = in.u64();
    p.lastCopyRestores = in.u64();
    for (std::size_t i = 0; i < kNumClasses; ++i) {
        p.classCount[i] = in.u64();
        p.classCycles[i] = in.u64();
    }
}

} // namespace

void
CmpSystem::saveState(SerialOut &out) const
{
    out.u64(obs::configFingerprint(cfg_));
    for (const auto &sock : sockets_) {
        for (const PrivateCache &core : sock->cores)
            core.save(out);
        sock->llc.save(out);
        out.b(sock->sparseDir != nullptr);
        if (sock->sparseDir)
            sock->sparseDir->save(out);
        out.b(sock->dirOrg != nullptr);
        if (sock->dirOrg)
            sock->dirOrg->save(out);
        sock->dram.save(out);
        sock->memStore.save(out);
        out.b(sock->socketDir != nullptr);
        if (sock->socketDir)
            sock->socketDir->save(out);
        sock->mesh.save(out);
        sock->traffic.save(out);
    }
    saveProtoStats(out, proto_);
    sharingDegree_.save(out);
    devSize_.save(out);
    out.u64(txn_);
    out.u32(txnCore_);
    out.u64(txnBlock_);
    // Backend extension: appended after everything else and only for
    // backends that carry state, so stateless backends (the whole
    // MESI+ZeroDEV family) leave every pre-backend stream — including
    // the checked-in golden corpus — byte-identical.
    if (backend_->hasState())
        backend_->save(out);
}

void
CmpSystem::restoreState(SerialIn &in)
{
    if (!in.check(in.u64() == obs::configFingerprint(cfg_),
                  "config fingerprint mismatch"))
        return;
    for (auto &sock : sockets_) {
        for (PrivateCache &core : sock->cores)
            core.restore(in);
        sock->llc.restore(in);
        if (!in.check(in.b() == (sock->sparseDir != nullptr),
                      "sparse directory presence mismatch"))
            return;
        if (sock->sparseDir)
            sock->sparseDir->restore(in);
        if (!in.check(in.b() == (sock->dirOrg != nullptr),
                      "directory organisation presence mismatch"))
            return;
        if (sock->dirOrg)
            sock->dirOrg->restore(in);
        sock->dram.restore(in);
        sock->memStore.restore(in);
        if (!in.check(in.b() == (sock->socketDir != nullptr),
                      "socket directory presence mismatch"))
            return;
        if (sock->socketDir)
            sock->socketDir->restore(in);
        sock->mesh.restore(in);
        sock->traffic.restore(in);
    }
    restoreProtoStats(in, proto_);
    sharingDegree_.restore(in);
    devSize_.restore(in);
    txn_ = in.u64();
    txnCore_ = in.u32();
    txnBlock_ = in.u64();
    if (backend_->hasState())
        backend_->restore(in);
}

} // namespace zerodev
