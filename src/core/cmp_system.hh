/**
 * @file
 * The full CMP system model: per-core private hierarchies, banked shared
 * LLC, coherence directory (in any of the paper's organisations), 2D mesh,
 * DRAM, and — when configured — the complete ZeroDEV protocol with its
 * directory-entry caching policies, LLC replacement extensions and
 * entry-in-memory flows, for one or more sockets.
 *
 * The simulator is transaction-level: access() executes one memory
 * operation of one core atomically (full functional protocol update) and
 * returns its completion time, composed from array lookup latencies, mesh
 * hops, inter-socket links, and DRAM bank timing. Transactions must be
 * issued in globally non-decreasing time order (the Runner guarantees
 * this), which makes the protocol race-free by construction; the races
 * the paper reasons about (e.g. a forwarded socket having lost its
 * directory entry to memory) appear as explicit protocol states instead.
 */

#ifndef ZERODEV_CORE_CMP_SYSTEM_HH
#define ZERODEV_CORE_CMP_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/llc_bank.hh"
#include "coherence/private_cache.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "directory/dir_org.hh"
#include "directory/sparse_directory.hh"
#include "core/socket_dir.hh"
#include "interconnect/mesh.hh"
#include "interconnect/message.hh"
#include "mem/dram.hh"
#include "mem/memory_store.hh"
#include "obs/metrics.hh"

namespace zerodev
{

namespace obs
{
class Tracer;
class LatencyProfiler;
} // namespace obs

class ProtocolBackend;

/** Where a block's in-socket directory entry currently lives. */
enum class TrackWhere : std::uint8_t
{
    None,       //!< untracked within the socket
    SparseDir,  //!< dedicated sparse directory structure
    LlcSpilled, //!< spilled line in the LLC
    LlcFused,   //!< fused into the block's LLC line
    Org,        //!< baseline organisation (sparse/unbounded/SecDir/MgD)
};

/** Snapshot of a block's tracking state within one socket. */
struct Tracking
{
    TrackWhere where = TrackWhere::None;
    DirEntry entry;

    bool found() const { return where != TrackWhere::None; }
};

/** Service class of one completed access (latency accounting). */
enum class AccessClass : std::uint8_t
{
    L1Hit,
    L2Hit,
    Upgrade,
    TwoHop,      //!< uncore hit served by the home bank
    ThreeHop,    //!< forwarded to an owner/sharer core
    Memory,      //!< filled from DRAM
    Corrupted,   //!< served through a corrupted-block flow
    NumClasses,
};

const char *toString(AccessClass c);

/** System-wide protocol counters. */
struct ProtocolStats
{
    /**
     * Eviction provenance (leakage observability): every DEV and
     * inclusion invalidation is attributed to the *inducing* core — the
     * global core whose in-flight transaction forced the eviction.
     * Indexed by global core id; sized by CmpSystem's constructor. The
     * per-core sums always equal devInvalidations respectively
     * inclusionInvalidations (the provenance-conservation invariant).
     */
    std::vector<std::uint64_t> devByInducer;
    std::vector<std::uint64_t> inclusionByInducer;

    std::uint64_t accesses = 0;
    std::uint64_t l2Misses = 0;       //!< core cache misses (paper metric)
    std::uint64_t devInvalidations = 0; //!< DEV blocks invalidated
    std::uint64_t devOwnedInvalidations = 0; //!< of which M/E blocks
    std::uint64_t inclusionInvalidations = 0; //!< inclusive back-invs
    std::uint64_t threeHopReads = 0;
    std::uint64_t twoHopReads = 0;
    std::uint64_t llcDeEvictWbs = 0;  //!< WB_DE flows executed
    std::uint64_t getDeFlows = 0;     //!< GET_DE core-eviction flows
    std::uint64_t denfNacks = 0;      //!< racing-entry NACK flows
    std::uint64_t corruptedReadMisses = 0; //!< LLC misses to corrupted mem
    std::uint64_t corruptedResponses = 0;  //!< special corrupted responses
    std::uint64_t socketMisses = 0;
    std::uint64_t lastCopyRestores = 0; //!< memory un-corruption writes

    /** Per-service-class access counts and total latency cycles. */
    std::array<std::uint64_t,
               static_cast<std::size_t>(AccessClass::NumClasses)>
        classCount{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(AccessClass::NumClasses)>
        classCycles{};

    double
    meanLatency(AccessClass c) const
    {
        const auto i = static_cast<std::size_t>(c);
        return classCount[i] == 0
                   ? 0.0
                   : static_cast<double>(classCycles[i]) /
                         static_cast<double>(classCount[i]);
    }
};

class CmpSystem
{
  public:
    explicit CmpSystem(const SystemConfig &cfg);
    ~CmpSystem(); //!< out-of-line: ProtocolBackend is incomplete here

    CmpSystem(const CmpSystem &) = delete;
    CmpSystem &operator=(const CmpSystem &) = delete;

    /**
     * Execute one memory access of global core @p gcore at time @p now.
     * @return the cycle at which the access completes.
     */
    Cycle access(CoreId gcore, AccessType type, BlockAddr block, Cycle now);

    const SystemConfig &config() const { return cfg_; }

    std::uint32_t totalCores() const
    {
        return cfg_.sockets * cfg_.coresPerSocket;
    }

    // --- Introspection (tests, invariant checks, examples) ---

    const PrivateCache &privateCache(SocketId s, CoreId c) const
    {
        return sockets_[s]->cores[c];
    }

    const Llc &llc(SocketId s) const { return sockets_[s]->llc; }
    const Mesh &mesh(SocketId s) const { return sockets_[s]->mesh; }
    const Dram &dram(SocketId s) const { return sockets_[s]->dram; }
    const MemoryStore &memStore(SocketId s) const
    {
        return sockets_[s]->memStore;
    }
    const TrafficStats &traffic(SocketId s) const
    {
        return sockets_[s]->traffic;
    }

    /** Tracking state of @p block within socket @p s (does not touch
     *  recency state; safe for invariant checking). */
    Tracking peekTracking(SocketId s, BlockAddr block) const;

    /** Socket-level directory entry of a home block (multi-socket). */
    SocketDirEntry peekSocketEntry(BlockAddr block) const;

    /** Home socket of @p block. */
    SocketId homeSocket(BlockAddr block) const;

    const ProtocolStats &protoStats() const { return proto_; }

    /** Distribution of sharing degrees observed when sharers join. */
    const Histogram &sharingDegreeHist() const { return sharingDegree_; }

    /** Distribution of copies invalidated per DEV order. */
    const Histogram &devSizeHist() const { return devSize_; }

    /** Sparse directory of socket @p s, or null when absent. */
    const SparseDirectory *sparseDir(SocketId s) const
    {
        return sockets_[s]->sparseDir.get();
    }

    /** Baseline directory organisation of socket @p s, or null. */
    const DirOrgBase *dirOrg(SocketId s) const
    {
        return sockets_[s]->dirOrg.get();
    }

    /** Socket-directory statistics of socket @p s, or null. */
    const SocketDirStats *socketDirStats(SocketId s) const
    {
        return sockets_[s]->socketDir
                   ? &sockets_[s]->socketDir->stats()
                   : nullptr;
    }

    /** Aggregate interconnect bytes over all sockets. */
    std::uint64_t totalTrafficBytes() const;

    /** Aggregate DRAM stats over all sockets. */
    DramStats totalDramStats() const;

    /** Full statistics dump. */
    StatDump report() const;

    /** Attach (or detach, with null) a coherence tracer. The tracer must
     *  outlive the attachment; events flow only while it is enabled. */
    void attachTracer(obs::Tracer *t) { trc_ = t; }
    obs::Tracer *tracer() const { return trc_; }

    /** Attach (or detach, with null) a critical-path latency profiler.
     *  Same lifetime/cost contract as the tracer. */
    void attachLatencyProfiler(obs::LatencyProfiler *p) { lat_ = p; }
    obs::LatencyProfiler *latencyProfiler() const { return lat_; }

    // ----- snapshots (cmp_snapshot.cc / sim/snapshot.cc) -----

    /**
     * Serialize the complete architectural + statistics state: private
     * caches, sparse directory (or baseline organisation), LLC banks
     * including spilled/fused DE lines, memory-store DE regions, socket
     * directory, DRAM timing state and every counter. The stream begins
     * with the config fingerprint; restoreState() refuses a stream whose
     * fingerprint does not match its own config. Must be called between
     * transactions (never mid-access).
     */
    void saveState(SerialOut &out) const;

    /** Inverse of saveState() on a system built from the same config.
     *  On mismatch/corruption the error is reported through @p in. */
    void restoreState(SerialIn &in);

    /** Write / read a `zerodev-snapshot-v1` container file holding this
     *  system's state. Returns false and sets @p err on failure. */
    bool saveSnapshot(const std::string &path,
                      std::string *err = nullptr) const;
    bool restoreSnapshot(const std::string &path,
                         std::string *err = nullptr);

    /** The coherence protocol backend driving this system's misses,
     *  upgrades and private evictions (selected by cfg.protocol). */
    const ProtocolBackend &protocolBackend() const { return *backend_; }

  private:
    /** Backends are part of the protocol engine: they drive the private
     *  request/eviction machinery from outside this translation unit. */
    friend class ProtocolBackend;
    friend class MesiZeroDevBackend;
    friend class DlsBackend;
    friend class PhasePriorityBackend;

    struct Socket
    {
        Socket(const SystemConfig &cfg, SocketId id);

        SocketId id;
        std::vector<PrivateCache> cores;
        Llc llc;
        std::unique_ptr<SparseDirectory> sparseDir; //!< ZeroDEV mode
        std::unique_ptr<DirOrgBase> dirOrg;         //!< baseline modes
        Dram dram;
        MemoryStore memStore; //!< metadata of blocks homed here
        /** Socket-level directory cache of blocks homed here, over one
         *  of the two Section III-D5 backing schemes. */
        std::unique_ptr<SocketDirectory> socketDir;
        Mesh mesh;
        TrafficStats traffic;
    };

    // ----- construction helpers (cmp_system.cc) -----
    std::unique_ptr<SparseDirectory> buildSparseDir() const;
    std::unique_ptr<DirOrgBase> buildDirOrg() const;

    // ----- address helpers -----
    SocketId socketOfCore(CoreId gcore) const
    {
        return gcore / cfg_.coresPerSocket;
    }
    CoreId localCore(CoreId gcore) const
    {
        return gcore % cfg_.coresPerSocket;
    }

    /**
     * Model one protocol message on socket @p s's interconnect: carve a
     * Message from the mesh's pool, stamp it, account its wire bytes,
     * and recycle it. Steady state touches no heap; under
     * ZERODEV_ASSERTS the pool's outstanding counter proves the paths
     * leak no messages (checked by the invariant sweep).
     */
    static void
    send(Socket &s, MsgType t, BlockAddr block)
    {
        MessagePool &pool = s.mesh.msgPool();
        Message *m = pool.acquire();
        m->type = t;
        m->src = s.id;
        m->block = block;
        s.traffic.record(t);
        pool.release(m);
    }

    /** Mesh latency from core tile to the block's home bank tile. */
    Cycle meshCoreToBank(Socket &s, CoreId c, BlockAddr block) const;
    /** Mesh latency from the home bank tile to a core tile. */
    Cycle meshBankToCore(Socket &s, BlockAddr block, CoreId c) const;
    /** Mesh latency core to core (forwarded responses). */
    Cycle meshCoreToCore(Socket &s, CoreId a, CoreId b) const;

    bool zeroDev() const { return cfg_.dirOrg == DirOrg::ZeroDev; }

    // ----- request handling (cmp_access.cc) -----
    Cycle handleMiss(Socket &s, CoreId c, AccessType type, BlockAddr block,
                     Cycle now);
    Cycle handleUpgrade(Socket &s, CoreId c, BlockAddr block, Cycle now);

    /** Serve a request whose tracking entry was found in-socket. */
    Cycle serveTracked(Socket &s, CoreId c, AccessType type,
                       BlockAddr block, Cycle now, Tracking &trk,
                       LlcProbe &probe, Cycle base);

    /** Serve a socket miss (no tracking, no LLC block): memory and, in a
     *  multi-socket system, the Figure 15 flows. */
    Cycle serveSocketMiss(Socket &s, CoreId c, AccessType type,
                          BlockAddr block, Cycle now, Cycle base);

    /** Fill the requesting core (and LLC per flavour) after data arrived;
     *  returns the private-eviction follow-up it triggered. */
    void fillCore(Socket &s, CoreId c, AccessType type, BlockAddr block,
                  MesiState state, Cycle now);

    /** Allocate a data block in the LLC (per flavour), handling the
     *  victim (writebacks, DE-eviction flows, inclusive back-invs). */
    void llcAllocData(Socket &s, BlockAddr block, bool dirty, Cycle now,
                      bool global_exclusive);

    /** Update the existing LLC copy of @p block or allocate one (used by
     *  sharing writebacks and dirty-DEV retrievals). */
    void llcWritebackData(Socket &s, BlockAddr block, bool dirty,
                          Cycle now);

    /** EPD: drop @p block from the LLC because it turned M/E-private. */
    void epdDeallocate(Socket &s, BlockAddr block);

    /** Invalidate every private copy listed in @p inv (a forced directory
     *  eviction: the DEV path) and clean up data movement. */
    void applyInvalidation(Socket &s, const Invalidation &inv, Cycle now);

    // ----- eviction handling (cmp_evict.cc) -----
    void handlePrivateEviction(Socket &s, CoreId c,
                               const PrivateEviction &ev, Cycle now);

    /** Eviction notice whose directory entry is not in the socket:
     *  Figure 16 (GET_DE) flow. */
    void evictionWithoutEntry(Socket &s, CoreId c, BlockAddr block,
                              MesiState st, Cycle now);

    /** The evicting core removed the socket's last copy: notify the home
     *  socket, restoring corrupted memory when it was the system-wide
     *  last copy (Section III-D4). */
    void lastCopyInSocketGone(Socket &s, BlockAddr block, MesiState st,
                              bool data_written_back, Cycle now);

    /** Handle an LLC victim produced by any allocation. */
    void handleLlcVictim(Socket &s, const LlcVictim &victim, Cycle now);

    /** Inclusive LLC: a data eviction back-invalidates the core caches. */
    void inclusionInvalidate(Socket &s, BlockAddr block, Cycle now);

    // ----- ZeroDEV tracking management (zerodev_policies.cc) -----

    /** Find the in-socket tracking of @p block (touches recency). */
    Tracking findTracking(Socket &s, BlockAddr block);

    /**
     * Write back the (possibly updated) tracking state of @p block.
     * @p where must be the location findTracking reported. A dead entry
     * erases the tracking; transitions S <-> M/E maintain the FPSS
     * fuse/spill invariants; brand-new entries allocate per the
     * replacement-disabled sparse directory + LLC caching policy.
     */
    void writeTracking(Socket &s, BlockAddr block, TrackWhere where,
                       const DirEntry &entry, Cycle now);

    /** Install a brand-new entry (ZeroDEV allocation path). */
    void installNewTracking(Socket &s, BlockAddr block,
                            const DirEntry &entry, Cycle now);

    /** Write @p entry through the baseline organisation and apply the
     *  forced invalidations it reports, reusing invScratch_. */
    void applyOrgSet(Socket &s, BlockAddr block, const DirEntry &entry,
                     Cycle now);

    /** Accommodate @p entry in the LLC per the configured policy. */
    void cacheEntryInLlc(Socket &s, BlockAddr block, const DirEntry &entry,
                         Cycle now);

    /** WB_DE: a live entry was evicted from the LLC (Figure 14). */
    void writebackEntryToMemory(Socket &s, BlockAddr block,
                                const DirEntry &entry, Cycle now);

    /** Extract socket @p s's entry for @p block from home memory,
     *  clearing its segment. Returns nullopt if none is housed. */
    std::optional<DirEntry> extractEntryFromMemory(Socket &s,
                                                   BlockAddr block,
                                                   Cycle now);

    // ----- multi-socket (multi_socket.cc) -----

    Socket &home(BlockAddr block) { return *sockets_[homeSocket(block)]; }

    /** Socket-level directory entry at the home (untimed access for
     *  update paths; the timed miss-path lives in serveSocketMissMulti). */
    SocketDirEntry &socketEntry(BlockAddr block);

    /** Figure 15 socket-miss flows (sockets > 1). */
    Cycle serveSocketMissMulti(Socket &s, CoreId c, AccessType type,
                               BlockAddr block, Cycle now, Cycle base);

    /** Invalidate every other socket's copies of @p block before a local
     *  store completes; returns the added critical-path latency. */
    Cycle invalidateRemoteSharers(Socket &s, BlockAddr block, Cycle now);

    /** Remove socket @p s from the socket-level entry of @p block,
     *  restoring destroyed memory data when the system-wide last copy is
     *  leaving (@p restore_data supplies it from the evicting cache). */
    void socketEvictionNotice(SocketId s, BlockAddr block,
                              bool restore_data, Cycle now);

    /**
     * Figure 15: fetch @p block for socket @p s from another socket F
     * that the (corrupted-state) home entry lists as a sharer/owner.
     * Returns the added latency and whether the data came back dirty.
     */
    Cycle forwardToSharerSocket(Socket &s, CoreId c, AccessType type,
                                BlockAddr block, Cycle now,
                                SocketDirEntry &sentry);

    /** Within socket F: find the block via its tracking and supply it
     *  (invalidating/downgrading as the request demands). */
    Cycle supplyFromSocket(Socket &f, AccessType type, BlockAddr block,
                           Cycle now, bool invalidate_all);

    /** Classify-and-account helper for the access paths; also emits the
     *  transaction-completion trace event (cmp_system.cc). */
    Cycle finishAccess(AccessClass cls, Cycle start, Cycle done);

    /** Attribute one DEV / inclusion invalidation to the inducing core
     *  of the in-flight transaction (provenance + live metrics). */
    void noteDevInvalidation();
    void noteInclusionInvalidation();

    SystemConfig cfg_;
    std::vector<std::unique_ptr<Socket>> sockets_;
    /** Constructed after the sockets (it may cache per-socket pointers). */
    std::unique_ptr<ProtocolBackend> backend_;
    ProtocolStats proto_;
    /** Per-inducing-core Prometheus series (process-wide registry;
     *  registration is idempotent, so every system shares them). */
    std::vector<obs::Counter *> devInducerMetrics_;
    std::vector<obs::Counter *> inclInducerMetrics_;
    Histogram sharingDegree_{kMaxCores};
    Histogram devSize_{kMaxCores};
    obs::Tracer *trc_ = nullptr;
    obs::LatencyProfiler *lat_ = nullptr;
    /** Reusable forced-invalidation buffer for applyOrgSet(): hoists a
     *  per-access heap allocation out of the baseline-organisation hot
     *  path (borrowed via swap, so re-entrant DEV handling is safe). */
    std::vector<Invalidation> invScratch_;
    std::uint64_t txn_ = 0;   //!< id of the in-flight transaction
    CoreId txnCore_ = 0;      //!< global core that issued it
    BlockAddr txnBlock_ = 0;  //!< block it targets
};

} // namespace zerodev

#endif // ZERODEV_CORE_CMP_SYSTEM_HH
