#include "core/invariants.hh"

#include <map>
#include <set>
#include <sstream>

#include "common/log.hh"

namespace zerodev
{

namespace
{

std::string
hex(BlockAddr b)
{
    std::ostringstream os;
    os << std::hex << "0x" << b;
    return os.str();
}

} // namespace

std::vector<Violation>
checkInvariants(const CmpSystem &sys)
{
    std::vector<Violation> out;
    const SystemConfig &cfg = sys.config();
    const bool dls = cfg.protocol == ProtocolKind::Dls;
    const bool zerodev = !dls && cfg.dirOrg == DirOrg::ZeroDev;

    auto violate = [&](const std::string &rule, const std::string &det) {
        out.push_back({rule, det});
    };

    for (SocketId s = 0; s < cfg.sockets; ++s) {
        // Ground truth: which cores of this socket cache which blocks.
        struct Holders
        {
            SharerSet cores;
            std::uint32_t owners = 0; //!< cores holding the block in M/E
        };
        std::map<BlockAddr, Holders> cached;
        for (CoreId c = 0; c < cfg.coresPerSocket; ++c) {
            sys.privateCache(s, c).forEachBlock(
                [&](BlockAddr b, MesiState st) {
                    Holders &h = cached[b];
                    h.cores.set(c);
                    if (st == MesiState::Modified ||
                        st == MesiState::Exclusive) {
                        ++h.owners;
                    }
                });
        }

        // 1-DLS. The directoryless backend has no tracking state to
        // audit; its own protocol rules replace the directory checks:
        // single writer (an M owner is the sole holder) and, below once
        // the LLC is scanned, writer exclusivity against the LLC.
        if (dls) {
            for (const auto &[block, holders] : cached) {
                if (holders.owners > 1) {
                    violate("single-owner",
                            "block " + hex(block) +
                                " has multiple M/E owners");
                }
                if (holders.owners == 1 && holders.cores.count() != 1) {
                    violate("dls-swmr",
                            "block " + hex(block) +
                                " is owned M/E alongside other copies");
                }
            }
        }

        // 1. Tracking completeness: every privately cached block has a
        // directory entry (in-socket or housed in home memory) whose
        // sharer vector matches the caching cores exactly.
        for (const auto &[block, holders] : cached) {
            if (dls)
                break; // no tracking exists; rules 1-DLS above apply
            Tracking trk = sys.peekTracking(s, block);
            DirEntry entry;
            if (trk.found()) {
                entry = trk.entry;
            } else {
                auto seg = sys.memStore(sys.homeSocket(block))
                               .loadSegment(block, s);
                if (!seg) {
                    violate("tracking-completeness",
                            "socket " + std::to_string(s) + " block " +
                                hex(block) + " cached but untracked");
                    continue;
                }
                entry = *seg;
            }
            if (entry.sharers != holders.cores) {
                violate("tracking-precision",
                        "socket " + std::to_string(s) + " block " +
                            hex(block) + " sharer vector mismatch");
            }
            if (holders.owners > 1) {
                violate("single-owner",
                        "block " + hex(block) + " has multiple M/E owners");
            }
            if (holders.owners == 1 && entry.state != DirState::Owned) {
                violate("owner-state",
                        "block " + hex(block) +
                            " owned privately but tracked as Shared");
            }
            if (holders.owners == 0 && entry.state == DirState::Owned) {
                violate("owner-state",
                        "block " + hex(block) +
                            " tracked as Owned but no core holds M/E");
            }
        }

        // 2. No dangling entries: every live entry tracks cores that
        // really cache the block.
        auto check_entry = [&](BlockAddr block, const DirEntry &e,
                               const char *where) {
            if (!e.live()) {
                violate("live-entry", std::string(where) +
                                          " holds a dead entry for " +
                                          hex(block));
                return;
            }
            auto it = cached.find(block);
            if (it == cached.end() || it->second.cores != e.sharers) {
                violate("no-dangling",
                        std::string(where) + " entry for " + hex(block) +
                            " tracks cores that do not cache it");
            }
        };
        if (const SparseDirectory *dir = sys.sparseDir(s)) {
            dir->forEach([&](BlockAddr b, const DirEntry &e) {
                check_entry(b, e, "sparse-dir");
            });
        }

        // 3. LLC line rules.
        const Llc &llc = sys.llc(s);
        std::set<BlockAddr> llc_data;
        std::map<BlockAddr, int> tag_matches;
        llc.forEach([&](const LlcLine &l) {
            ++tag_matches[l.block];
            switch (l.kind) {
              case LlcLineKind::Data:
                llc_data.insert(l.block);
                break;
              case LlcLineKind::FusedDe:
                llc_data.insert(l.block);
                if (dls) {
                    violate("dls-no-directory-lines",
                            "directoryless LLC holds a fused entry for " +
                                hex(l.block));
                    break;
                }
                check_entry(l.block, l.de, "fused-line");
                if (zerodev &&
                    cfg.dirCachePolicy == DirCachePolicy::Fpss &&
                    l.de.state != DirState::Owned) {
                    violate("fpss-fused-owned",
                            "FPSS fused entry for " + hex(l.block) +
                                " is not in M/E state");
                }
                break;
              case LlcLineKind::SpilledDe:
                if (dls) {
                    violate("dls-no-directory-lines",
                            "directoryless LLC holds a spilled entry "
                            "for " +
                                hex(l.block));
                    break;
                }
                check_entry(l.block, l.de, "spilled-line");
                break;
              case LlcLineKind::Invalid:
                break;
            }
        });
        // At most two tag matches per block (block + spilled entry).
        for (const auto &[b, n] : tag_matches) {
            if (n > 2) {
                violate("tag-duplication",
                        "block " + hex(b) + " matches " +
                            std::to_string(n) + " LLC lines");
            }
        }
        // FPSS: a spilled entry co-resident with its data block must be
        // in S state (the two-tag-match critical-path invariant).
        if (zerodev && cfg.dirCachePolicy == DirCachePolicy::Fpss) {
            llc.forEach([&](const LlcLine &l) {
                if (l.kind == LlcLineKind::SpilledDe &&
                    llc_data.count(l.block) &&
                    l.de.state != DirState::Shared) {
                    violate("fpss-spilled-shared",
                            "FPSS spilled entry for " + hex(l.block) +
                                " co-resident with its block is not S");
                }
            });
        }

        // 3-DLS. Writer exclusivity: a store removed the LLC data line,
        // so an M/E holder and an LLC copy can never coexist.
        if (dls) {
            for (const auto &[block, holders] : cached) {
                if (holders.owners > 0 && llc_data.count(block)) {
                    violate("dls-llc-exclusion",
                            "M/E block " + hex(block) +
                                " still has an LLC data line");
                }
            }
        }

        // 4. Inclusion: every privately cached block is in the LLC.
        if (cfg.llcFlavor == LlcFlavor::Inclusive) {
            for (const auto &[block, holders] : cached) {
                (void)holders;
                if (!llc_data.count(block)) {
                    violate("inclusion",
                            "block " + hex(block) +
                                " cached privately but absent from an "
                                "inclusive LLC");
                }
            }
        }

        // 5. EPD: an M/E-owned block is not in the LLC as a data line.
        if (cfg.llcFlavor == LlcFlavor::Epd) {
            for (const auto &[block, holders] : cached) {
                if (holders.owners > 0 && llc_data.count(block)) {
                    Tracking trk = sys.peekTracking(s, block);
                    if (trk.found() &&
                        trk.where == TrackWhere::LlcFused) {
                        continue; // a fused line is not a usable copy
                    }
                    violate("epd-exclusive-private",
                            "M/E block " + hex(block) +
                                " resident in an EPD LLC");
                }
            }
        }

        // 6a. Provenance conservation: every DEV and inclusion
        // invalidation is attributed to exactly one inducing core, so
        // the per-core attribution vectors sum to the totals.
        if (s == 0) { // system-wide counters; check once
            std::uint64_t dev_sum = 0, incl_sum = 0;
            for (std::uint64_t v : sys.protoStats().devByInducer)
                dev_sum += v;
            for (std::uint64_t v : sys.protoStats().inclusionByInducer)
                incl_sum += v;
            if (dev_sum != sys.protoStats().devInvalidations) {
                violate("provenance-conservation",
                        "attributed DEVs " + std::to_string(dev_sum) +
                            " != total " +
                            std::to_string(
                                sys.protoStats().devInvalidations));
            }
            if (incl_sum != sys.protoStats().inclusionInvalidations) {
                violate("provenance-conservation",
                        "attributed inclusion invalidations " +
                            std::to_string(incl_sum) + " != total " +
                            std::to_string(
                                sys.protoStats()
                                    .inclusionInvalidations));
            }
        }

        // 6. ZeroDEV guarantee: no DEV has ever been delivered.
        if (zerodev && sys.protoStats().devInvalidations != 0) {
            violate("zero-dev",
                    "ZeroDEV delivered " +
                        std::to_string(sys.protoStats().devInvalidations) +
                        " DEV invalidations");
        }

        // 6-DLS. No directory means no directory-induced invalidations
        // of any kind, ever (the side-channel lab measures this).
        if (dls && s == 0 &&
            (sys.protoStats().devInvalidations != 0 ||
             sys.protoStats().inclusionInvalidations != 0)) {
            violate("dls-zero-dev",
                    "directoryless backend delivered directory-induced "
                    "invalidations");
        }

        // 7. Memory-corruption safety: every destroyed home block (homed
        // at this socket) is still cached somewhere, or held dirty in
        // some LLC that will eventually write it back.
        // (Validated via the segments: a destroyed block must have at
        // least one live segment, an in-socket entry, or a dirty LLC
        // copy somewhere.)
        // Gather dirty LLC copies lazily below.
    }

    // 7 (system-wide pass).
    std::set<BlockAddr> recoverable;
    for (SocketId s = 0; s < cfg.sockets; ++s) {
        for (CoreId c = 0; c < cfg.coresPerSocket; ++c) {
            sys.privateCache(s, c).forEachBlock(
                [&](BlockAddr b, MesiState) { recoverable.insert(b); });
        }
        sys.llc(s).forEach([&](const LlcLine &l) {
            if (l.kind == LlcLineKind::Data)
                recoverable.insert(l.block);
        });
    }
    for (SocketId h = 0; h < cfg.sockets; ++h) {
        sys.memStore(h).forEachDestroyed([&](BlockAddr b) {
            if (dls) {
                // DLS has no entry-to-memory flows: memory data can
                // never be destroyed under the directoryless backend.
                out.push_back({"dls-memory-intact",
                               "memory block " + hex(b) +
                                   " destroyed under the directoryless "
                                   "backend"});
                return;
            }
            if (!recoverable.count(b)) {
                out.push_back(
                    {"corruption-safety",
                     "destroyed memory block " + hex(b) +
                         " has no cached copy anywhere in the system"});
            }
        });
    }

    // 8. Message-pool hygiene: between transactions every modelled
    // message must have been returned to its socket's pool. The
    // outstanding counter only exists under ZERODEV_ASSERTS (it reads 0
    // otherwise, making this check a no-op in stripped builds).
    for (SocketId s = 0; s < cfg.sockets; ++s) {
        const std::uint64_t leaked = sys.mesh(s).msgPool().outstanding();
        if (leaked != 0) {
            out.push_back({"message-pool-leak",
                           "socket " + std::to_string(s) + " has " +
                               std::to_string(leaked) +
                               " unreleased pool messages"});
        }
    }

    return out;
}

void
assertInvariants(const CmpSystem &sys)
{
    const auto violations = checkInvariants(sys);
    if (violations.empty())
        return;
    for (const auto &v : violations)
        logMsg(LogLevel::Error, "%s: %s", v.rule.c_str(),
               v.detail.c_str());
    panic("%zu invariant violations", violations.size());
}

} // namespace zerodev
