/**
 * @file
 * Request-side protocol flows: core cache misses (GetS/GetX), upgrades,
 * tracked-entry service (2-hop and 3-hop paths), and socket misses,
 * covering the baseline MESI protocol, the three ZeroDEV directory
 * caching policies and both single- and multi-socket systems.
 */

#include "core/cmp_system.hh"

#include <algorithm>

#include "coherence/backend.hh"
#include "common/log.hh"
#include "obs/latency.hh"
#include "obs/trace.hh"

namespace zerodev
{

Cycle
CmpSystem::handleMiss(Socket &s, CoreId c, AccessType type,
                      BlockAddr block, Cycle now)
{
    PrivateCache &pc = s.cores[c];
    // Miss detection in L1+L2, then the request crosses the mesh to the
    // home bank where the LLC tag array and the directory slice are
    // looked up in parallel (Section III-A).
    const Cycle lookup = pc.l1Cycles() + pc.l2Cycles();
    const Cycle to_bank = meshCoreToBank(s, c, block);
    Cycle base = now + lookup + to_bank;
    ZDEV_LAT(lat_, obs::LatComp::CoreLookup, lookup);
    ZDEV_LAT(lat_, obs::LatComp::Mesh, to_bank);
    send(s, type == AccessType::Store ? MsgType::GetX
                                               : MsgType::GetS, block);
    base += s.llc.tagCycles();
    ZDEV_LAT(lat_, obs::LatComp::DirLookup, s.llc.tagCycles());

    Tracking trk = findTracking(s, block);
    LlcProbe probe = s.llc.probe(block);
    ZDEV_TRACE(trc_, obs::TraceEventKind::DirLookup,
               obs::TraceComp::Directory, s.id, c, block, base, 0,
               static_cast<std::uint32_t>(trk.where), txn_);

    if (trk.found())
        return serveTracked(s, c, type, block, now, trk, probe, base);

    if (probe.data && probe.data->kind == LlcLineKind::Data) {
        // LLC data hit with no in-socket directory entry. The dataLRU /
        // evict-together guarantee (Section III-D2 case iiia) means the
        // block has no sharer in this socket.
        s.llc.noteDataHit();
        s.llc.noteDataRead();
        const bool global_shared = probe.data->globalShared;
        s.llc.touchData(probe);
        const Cycle back = meshBankToCore(s, block, c);
        Cycle lat = base + s.llc.dataCycles() + back;
        ZDEV_LAT(lat_, obs::LatComp::LlcData, s.llc.dataCycles());
        ZDEV_LAT(lat_, obs::LatComp::Mesh, back);
        send(s, MsgType::DataResp, block);
        ++proto_.twoHopReads;

        MesiState fill;
        DirEntry entry;
        if (type == AccessType::Store) {
            if (cfg_.sockets > 1 && global_shared) {
                const Cycle data_path = lat;
                lat = std::max(lat, base + invalidateRemoteSharers(
                                        s, block, now));
                ZDEV_LAT(lat_, obs::LatComp::InvStall, lat - data_path);
            }
            fill = MesiState::Modified;
            entry.makeOwned(c);
        } else if (type == AccessType::Ifetch) {
            fill = MesiState::Shared;
            entry.addSharer(c);
        } else {
            fill = global_shared ? MesiState::Shared : MesiState::Exclusive;
            if (fill == MesiState::Exclusive)
                entry.makeOwned(c);
            else
                entry.addSharer(c);
        }

        if (cfg_.llcFlavor == LlcFlavor::Epd &&
            (fill == MesiState::Modified || fill == MesiState::Exclusive)) {
            // EPD: the block turns temporarily private and leaves the LLC
            // (Section III-E).
            epdDeallocate(s, block);
        }

        writeTracking(s, block, TrackWhere::None, entry, now);
        fillCore(s, c, type, block, fill, now);
        return lat;
    }

    s.llc.noteDataMiss();
    return serveSocketMiss(s, c, type, block, now, base);
}

Cycle
CmpSystem::handleUpgrade(Socket &s, CoreId c, BlockAddr block, Cycle now)
{
    PrivateCache &pc = s.cores[c];
    const Cycle lookup = pc.l1Cycles() + pc.l2Cycles();
    const Cycle to_bank = meshCoreToBank(s, c, block);
    Cycle base = now + lookup + to_bank;
    ZDEV_LAT(lat_, obs::LatComp::CoreLookup, lookup);
    ZDEV_LAT(lat_, obs::LatComp::Mesh, to_bank);
    send(s, MsgType::Upgrade, block);
    base += s.llc.tagCycles();
    ZDEV_LAT(lat_, obs::LatComp::DirLookup, s.llc.tagCycles());

    Tracking trk = findTracking(s, block);
    if (!trk.found()) {
        // The entry migrated to home memory (ZeroDEV): retrieve it via
        // the corrupted-block special response. The requester is a
        // sharer, so the home returns its segment (Figure 15, step 3).
        Socket &h = home(block);
        Cycle mem_base = base;
        if (h.id != s.id) {
            mem_base += cfg_.interSocketCycles;
            ZDEV_LAT(lat_, obs::LatComp::InterSocket,
                     cfg_.interSocketCycles);
            send(s, MsgType::GetDe, block);
        }
        auto entry = extractEntryFromMemory(s, block, mem_base);
        if (!entry)
            panic("upgrade with no directory entry anywhere for block "
                  "%#llx", static_cast<unsigned long long>(block));
        ++proto_.corruptedResponses;
        send(h, MsgType::DataRespCorrupted, block);
        base = h.dram.read(block, mem_base, true) + 1; // +1: extraction
        ZDEV_LAT(lat_, obs::LatComp::DeMemory, base - mem_base);
        if (h.id != s.id) {
            base += cfg_.interSocketCycles;
            ZDEV_LAT(lat_, obs::LatComp::InterSocket,
                     cfg_.interSocketCycles);
        }
        trk.where = TrackWhere::None;
        trk.entry = *entry;
    }

    DirEntry entry = trk.entry;
    if (!entry.isSharer(c))
        panic("upgrade from a core the directory does not track");

    // Reading a spilled entry costs a data-array access (Section
    // III-C2: "for upgrade requests, only EB is read out").
    if (trk.where == TrackWhere::LlcSpilled ||
        trk.where == TrackWhere::LlcFused) {
        base += s.llc.dataCycles();
        s.llc.noteDataRead();
        ZDEV_LAT(lat_, obs::LatComp::FuseSpill, s.llc.dataCycles());
    }

    // Invalidate the other sharers; the dataless response carries the
    // expected acknowledgment count.
    Cycle inv_done = base;
    for (CoreId x = 0; x < cfg_.coresPerSocket; ++x) {
        if (x == c || !entry.isSharer(x))
            continue;
        s.cores[x].invalidate(block, false);
        send(s, MsgType::Inv, block);
        send(s, MsgType::InvAck, block);
        inv_done = std::max(inv_done,
                            base + meshBankToCore(s, block, x) +
                                meshCoreToCore(s, x, c));
    }
    send(s, MsgType::AckResp, block);
    const Cycle back = meshBankToCore(s, block, c);
    ZDEV_LAT(lat_, obs::LatComp::Mesh, back);
    Cycle lat = std::max(base + back, inv_done);

    if (cfg_.sockets > 1)
        lat = std::max(lat, base + invalidateRemoteSharers(s, block, now));
    ZDEV_LAT(lat_, obs::LatComp::InvStall, lat - (base + back));

    entry.makeOwned(c);
    if (cfg_.llcFlavor == LlcFlavor::Epd)
        epdDeallocate(s, block);
    writeTracking(s, block, trk.where, entry, now);
    s.cores[c].upgradeToModified(block);
    return lat;
}

Cycle
CmpSystem::serveTracked(Socket &s, CoreId c, AccessType type,
                        BlockAddr block, Cycle now, Tracking &trk,
                        LlcProbe &probe, Cycle base)
{
    DirEntry entry = trk.entry;
    const bool data_in_llc =
        probe.data && probe.data->kind == LlcLineKind::Data;
    const bool fused_in_llc =
        probe.data && probe.data->kind == LlcLineKind::FusedDe;
    const bool two_tag_match = probe.data && probe.spilled;
    const bool llc_global_shared = probe.data && probe.data->globalShared;

    if (entry.state == DirState::Owned) {
        const CoreId o = entry.owner();
        if (o == c)
            panic("owner missed on its own block");
        // Three-hop transaction: forward to the owner, which responds to
        // the requester directly and sends busy-clear to the home.
        const Cycle fwd = meshBankToCore(s, block, o);
        const Cycle resp = meshCoreToCore(s, o, c);
        Cycle lat = base + fwd + s.cores[o].l2Cycles() + resp;
        ZDEV_LAT(lat_, obs::LatComp::Mesh, fwd + resp);
        ZDEV_LAT(lat_, obs::LatComp::CoreLookup, s.cores[o].l2Cycles());
        ZDEV_TRACE(trc_, obs::TraceEventKind::Forward,
                   obs::TraceComp::Mesh, s.id, c, block, base, lat - base,
                   o, txn_);

        if (type == AccessType::Store) {
            send(s, MsgType::FwdGetX, block);
            send(s, MsgType::DataResp, block);
            send(s, MsgType::BusyClear, block);
            s.cores[o].invalidate(block, false);
            entry.makeOwned(c);
            if (cfg_.sockets > 1 && llc_global_shared) {
                const Cycle data_path = lat;
                lat = std::max(lat, base + invalidateRemoteSharers(
                                        s, block, now));
                ZDEV_LAT(lat_, obs::LatComp::InvStall, lat - data_path);
            }
            writeTracking(s, block, trk.where, entry, now);
            fillCore(s, c, type, block, MesiState::Modified, now);
        } else {
            ++proto_.threeHopReads;
            send(s, MsgType::FwdGetS, block);
            send(s, MsgType::DataResp, block);
            // The busy-clear carries reconstruction bits when the entry
            // is fused in the LLC and must be spilled on the M/E -> S
            // transition (Section III-C2).
            send(s, trk.where == TrackWhere::LlcFused
                                 ? MsgType::BusyClearBits
                                 : MsgType::BusyClear, block);
            const MesiState prev = s.cores[o].downgrade(block);
            entry.addSharer(c);
            sharingDegree_.record(entry.count());
            writeTracking(s, block, trk.where, entry, now);
            if (prev == MesiState::Modified) {
                // Sharing writeback: the dirty data also lands in the
                // LLC so future readers conclude in two hops.
                llcWritebackData(s, block, true, now);
            } else if (!data_in_llc && !fused_in_llc) {
                // The block became shared: allocate it in the LLC to
                // accelerate future sharing (also the EPD rule of
                // Section III-E).
                llcWritebackData(s, block, false, now);
            }
            fillCore(s, c, type, block, MesiState::Shared, now);
        }
        return lat;
    }

    // entry.state == Shared.
    if (type == AccessType::Store) {
        // Read-exclusive to a shared block: invalidations to all sharers
        // plus data. With a spilled entry both the block and the entry
        // are read out one by one (Section III-C2).
        Cycle data_ready;
        if (data_in_llc) {
            s.llc.noteDataHit();
            s.llc.noteDataRead();
            s.llc.touchData(probe);
            Cycle read = s.llc.dataCycles();
            ZDEV_LAT(lat_, obs::LatComp::LlcData, s.llc.dataCycles());
            if (two_tag_match) {
                read += s.llc.dataCycles(); // entry + block, serialised
                s.llc.noteDataRead();
                ZDEV_LAT(lat_, obs::LatComp::FuseSpill,
                         s.llc.dataCycles());
            }
            const Cycle back = meshBankToCore(s, block, c);
            ZDEV_LAT(lat_, obs::LatComp::Mesh, back);
            data_ready = base + read + back;
            send(s, MsgType::DataResp, block);
        } else {
            // No usable data in the LLC (absent, or corrupted by a
            // FuseAll fusion): combine the forward with the invalidation
            // of an elected sharer (Section III-C3).
            const CoreId x = entry.anySharer();
            send(s, MsgType::FwdGetX, block);
            send(s, MsgType::DataResp, block);
            const Cycle fwd = meshBankToCore(s, block, x);
            const Cycle resp = meshCoreToCore(s, x, c);
            ZDEV_LAT(lat_, obs::LatComp::Mesh, fwd + resp);
            ZDEV_LAT(lat_, obs::LatComp::CoreLookup,
                     s.cores[x].l2Cycles());
            data_ready = base + fwd + s.cores[x].l2Cycles() + resp;
        }
        Cycle inv_done = base;
        for (CoreId x = 0; x < cfg_.coresPerSocket; ++x) {
            if (!entry.isSharer(x))
                continue;
            s.cores[x].invalidate(block, false);
            send(s, MsgType::Inv, block);
            send(s, MsgType::InvAck, block);
            inv_done = std::max(inv_done,
                                base + meshBankToCore(s, block, x) +
                                    meshCoreToCore(s, x, c));
        }
        Cycle lat = std::max(data_ready, inv_done);
        if (cfg_.sockets > 1 && (llc_global_shared || !data_in_llc))
            lat = std::max(lat,
                           base + invalidateRemoteSharers(s, block, now));
        ZDEV_LAT(lat_, obs::LatComp::InvStall, lat - data_ready);
        entry.makeOwned(c);
        if (cfg_.llcFlavor == LlcFlavor::Epd)
            epdDeallocate(s, block);
        writeTracking(s, block, trk.where, entry, now);
        fillCore(s, c, type, block, MesiState::Modified, now);
        return lat;
    }

    // Read (or instruction fetch) of a shared block.
    Cycle lat;
    if (data_in_llc) {
        s.llc.noteDataHit();
        s.llc.noteDataRead();
        s.llc.touchData(probe);
        ++proto_.twoHopReads;
        Cycle read = s.llc.dataCycles();
        ZDEV_LAT(lat_, obs::LatComp::LlcData, s.llc.dataCycles());
        if (two_tag_match && cfg_.dirCachePolicy == DirCachePolicy::SpillAll) {
            // SpillAll reads the entry first, then the block: the read
            // sees one extra data-array latency (Section III-C1). FPSS
            // reads the block first and updates the entry off the
            // critical path (Section III-C2).
            read += s.llc.dataCycles();
            s.llc.noteDataRead();
            ZDEV_LAT(lat_, obs::LatComp::FuseSpill, s.llc.dataCycles());
        }
        const Cycle back = meshBankToCore(s, block, c);
        ZDEV_LAT(lat_, obs::LatComp::Mesh, back);
        lat = base + read + back;
        send(s, MsgType::DataResp, block);
        if (trk.where == TrackWhere::LlcSpilled ||
            trk.where == TrackWhere::LlcFused) {
            s.llc.noteDeUpdate(); // sharer added off the critical path
        }
    } else {
        // FuseAll fused block (corrupted data) or LLC miss with a live
        // entry: forward to an elected sharer — the read critical path
        // becomes three hops (Section III-C3).
        const CoreId x = entry.anySharer();
        ++proto_.threeHopReads;
        send(s, MsgType::FwdGetS, block);
        send(s, MsgType::DataResp, block);
        send(s, MsgType::BusyClear, block);
        const Cycle fwd = meshBankToCore(s, block, x);
        const Cycle resp = meshCoreToCore(s, x, c);
        ZDEV_LAT(lat_, obs::LatComp::Mesh, fwd + resp);
        ZDEV_LAT(lat_, obs::LatComp::CoreLookup, s.cores[x].l2Cycles());
        lat = base + fwd + s.cores[x].l2Cycles() + resp;
        if (!fused_in_llc && cfg_.llcFlavor != LlcFlavor::Epd &&
            cfg_.dirCachePolicy != DirCachePolicy::FuseAll) {
            // The sharer's response also refills the LLC so later reads
            // conclude in two hops again.
            llcWritebackData(s, block, false, now);
        }
    }
    entry.addSharer(c);
    sharingDegree_.record(entry.count());
    writeTracking(s, block, trk.where, entry, now);
    fillCore(s, c, type, block, MesiState::Shared, now);
    return lat;
}

Cycle
CmpSystem::serveSocketMiss(Socket &s, CoreId c, AccessType type,
                           BlockAddr block, Cycle now, Cycle base)
{
    ++proto_.socketMisses;
    ZDEV_TRACE(trc_, obs::TraceEventKind::SocketMiss,
               obs::TraceComp::Protocol, s.id, c, block, base, 0, 0,
               txn_);
    if (cfg_.sockets > 1)
        return serveSocketMissMulti(s, c, type, block, now, base);

    // Single socket: home memory is local.
    Socket &h = s;
    if (h.memStore.destroyed(block)) {
        // The memory block houses our evicted directory entry and its
        // data is unusable; extract the entry and serve the request from
        // the caches it lists (Figure 15's corrupted flow, degenerated
        // to one socket).
        if (type != AccessType::Store)
            ++proto_.corruptedReadMisses;
        auto entry = extractEntryFromMemory(s, block, base);
        if (!entry)
            panic("destroyed memory block without our segment");
        ++proto_.corruptedResponses;
        const Cycle mem_done = h.dram.read(block, base, true) + 1;
        ZDEV_LAT(lat_, obs::LatComp::DeMemory, mem_done - base);
        send(s, MsgType::MemRead, block);
        send(s, MsgType::DataRespCorrupted, block);
        Tracking trk;
        trk.where = TrackWhere::None;
        trk.entry = *entry;
        LlcProbe probe = s.llc.probe(block); // no data lines here
        return finishAccess(
            AccessClass::Corrupted, now,
            serveTracked(s, c, type, block, now, trk, probe, mem_done));
    }

    send(s, MsgType::MemRead, block);
    send(s, MsgType::MemReadResp, block);
    const Cycle mem_done = h.dram.read(block, base, false);
    ZDEV_TRACE(trc_, obs::TraceEventKind::MemRead, obs::TraceComp::Memory,
               h.id, c, block, base, mem_done - base, 0, txn_);
    ZDEV_LAT(lat_, obs::LatComp::Dram, mem_done - base);
    const Cycle back = meshBankToCore(s, block, c);
    ZDEV_LAT(lat_, obs::LatComp::Mesh, back);
    const Cycle lat = mem_done + back;

    MesiState fill;
    DirEntry entry;
    if (type == AccessType::Store) {
        fill = MesiState::Modified;
        entry.makeOwned(c);
    } else if (type == AccessType::Ifetch) {
        fill = MesiState::Shared;
        entry.addSharer(c);
    } else {
        fill = MesiState::Exclusive;
        entry.makeOwned(c);
    }

    // Demand fills allocate in the LLC (baseline non-inclusive and
    // inclusive); EPD keeps temporarily-private blocks out of the LLC.
    if (cfg_.llcFlavor != LlcFlavor::Epd || fill == MesiState::Shared)
        llcAllocData(s, block, false, now, true);

    writeTracking(s, block, TrackWhere::None, entry, now);
    fillCore(s, c, type, block, fill, now);
    return finishAccess(AccessClass::Memory, now, lat);
}

void
CmpSystem::fillCore(Socket &s, CoreId c, AccessType type, BlockAddr block,
                    MesiState state, Cycle now)
{
    const PrivateEviction ev = s.cores[c].fill(type, block, state);
    if (ev.valid)
        backend_->privateEviction(s.id, c, ev, now);
}

void
CmpSystem::llcAllocData(Socket &s, BlockAddr block, bool dirty, Cycle now,
                        bool global_exclusive)
{
    LlcProbe probe = s.llc.probe(block);
    if (probe.data) {
        probe.data->dirty = probe.data->dirty || dirty;
        if (!global_exclusive)
            probe.data->globalShared = true;
        s.llc.touchData(probe);
        return;
    }
    const LlcVictim victim =
        s.llc.allocate(block, LlcLineKind::Data, dirty, DirEntry{});
    LlcProbe fresh = s.llc.probe(block);
    if (fresh.data && !global_exclusive)
        fresh.data->globalShared = true;
    handleLlcVictim(s, victim, now);
}

void
CmpSystem::llcWritebackData(Socket &s, BlockAddr block, bool dirty,
                            Cycle now)
{
    LlcProbe probe = s.llc.probe(block);
    if (probe.data) {
        if (probe.data->kind == LlcLineKind::FusedDe) {
            // The fused line keeps tracking; only its data/dirty state
            // changes (e.g. a dirty-DEV retrieval under FuseAll).
            probe.data->dirty = probe.data->dirty || dirty;
            return;
        }
        probe.data->dirty = probe.data->dirty || dirty;
        s.llc.touchData(probe);
        return;
    }
    llcAllocData(s, block, dirty, now, cfg_.sockets == 1);
}

void
CmpSystem::epdDeallocate(Socket &s, BlockAddr block)
{
    LlcProbe probe = s.llc.probe(block);
    if (probe.data && probe.data->kind == LlcLineKind::Data)
        s.llc.invalidateLine(*probe.data);
}

void
CmpSystem::applyInvalidation(Socket &s, const Invalidation &inv, Cycle now)
{
    devSize_.record(inv.cores.count());
    ZDEV_TRACE(trc_, obs::TraceEventKind::Dev, obs::TraceComp::Directory,
               s.id, 0, inv.block, now, 0,
               static_cast<std::uint32_t>(inv.cores.count()), txn_,
               txnCore_);
    bool dirty_retrieved = false;
    for (CoreId x = 0; x < cfg_.coresPerSocket; ++x) {
        if (!inv.cores.test(x))
            continue;
        const MesiState prev = s.cores[x].invalidate(inv.block, true);
        if (prev == MesiState::Invalid)
            continue;
        noteDevInvalidation();
        send(s, MsgType::Inv, inv.block);
        send(s, MsgType::InvAck, inv.block);
        if (prev == MesiState::Modified || prev == MesiState::Exclusive)
            ++proto_.devOwnedInvalidations;
        if (prev == MesiState::Modified)
            dirty_retrieved = true;
    }
    if (dirty_retrieved) {
        // The dirty block comes back with the DEV and lands in the LLC —
        // the effect that lets later requests be served from the LLC
        // (the freqmine observation in Section I-A1).
        send(s, MsgType::PutM, inv.block);
        llcWritebackData(s, inv.block, true, now);
    }
    if (cfg_.sockets > 1) {
        // If the socket lost its last copy, tell the home.
        LlcProbe probe = s.llc.probe(inv.block);
        const bool llc_has = probe.data != nullptr;
        if (!llc_has)
            socketEvictionNotice(s.id, inv.block, true, now);
    }
}

} // namespace zerodev
