/**
 * @file
 * zerodevd — the simulation-as-a-service daemon. Binds a Unix-domain
 * socket inside (by default) its spool directory, serves zerodev-rpc-v1
 * until drained or shut down, and checkpoints + re-queues the running
 * job on SIGTERM/SIGINT so a restart resumes bit-identically.
 * docs/SERVICE.md is the operator manual.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/daemon.hh"

namespace
{

constexpr const char *kUsage = R"(usage: zerodevd --spool DIR [options]

Serve zerodev-rpc-v1 jobs over a Unix-domain socket.

options:
  --spool DIR           spool directory (required; created if missing)
  --socket PATH         socket path (default: <spool>/zerodevd.sock)
  --max-queued N        bounded accept queue depth (default: 64)
  --snapshot-every N    checkpoint cadence in accesses per core for
                        preemptible jobs (default: 5000; sets
                        ZERODEV_SNAPSHOT_EVERY unless already set)
  --help                show this help

Telemetry publishes to <spool>/telemetry unless ZERODEV_TELEMETRY_DIR
is already set. SIGTERM/SIGINT checkpoint the running job, persist the
queue, and exit 0; a restarted daemon on the same spool re-adopts the
queue and resumes interrupted jobs bit-identically.

exit codes: 0 clean stop, 1 runtime failure, 2 usage error.
)";

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

} // namespace

int
main(int argc, char **argv)
{
    zerodev::service::Daemon::Options opt;
    std::string snapshotEvery = "5000";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "zerodevd: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else if (arg == "--spool") {
            opt.spoolDir = value("--spool");
        } else if (arg == "--socket") {
            opt.socketPath = value("--socket");
        } else if (arg == "--max-queued") {
            opt.maxQueued =
                static_cast<std::size_t>(
                    std::strtoull(value("--max-queued"), nullptr, 10));
            if (opt.maxQueued == 0) {
                std::fprintf(stderr,
                             "zerodevd: --max-queued must be > 0\n");
                return 2;
            }
        } else if (arg == "--snapshot-every") {
            snapshotEvery = value("--snapshot-every");
        } else {
            std::fprintf(stderr, "zerodevd: unknown option %s\n%s",
                         arg.c_str(), kUsage);
            return 2;
        }
    }
    if (opt.spoolDir.empty()) {
        std::fprintf(stderr, "zerodevd: --spool is required\n%s",
                     kUsage);
        return 2;
    }

    // Default the checkpoint cadence and telemetry sink for service
    // runs; explicit environment always wins so CI can steer both.
    ::setenv("ZERODEV_SNAPSHOT_EVERY", snapshotEvery.c_str(), 0);
    const std::string telemetryDir = opt.spoolDir + "/telemetry";
    ::setenv("ZERODEV_TELEMETRY_DIR", telemetryDir.c_str(), 0);

    zerodev::service::Daemon daemon(opt);
    std::string err;
    if (!daemon.start(&err)) {
        std::fprintf(stderr, "zerodevd: %s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr, "zerodevd: serving on %s (spool %s)\n",
                 daemon.socketPath().c_str(), opt.spoolDir.c_str());

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::thread watcher([&daemon] {
        while (g_signal == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        if (g_signal > 0) {
            std::fprintf(stderr,
                         "zerodevd: signal %d, checkpointing and "
                         "stopping\n",
                         static_cast<int>(g_signal));
            daemon.requestShutdown();
        }
    });

    const int rc = daemon.serve();
    g_signal = g_signal ? g_signal : -1; // release the watcher
    watcher.join();
    std::fprintf(stderr, "zerodevd: stopped\n");
    return rc;
}
