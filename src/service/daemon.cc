#include "service/daemon.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "obs/telemetry.hh"

namespace zerodev::service
{

namespace
{

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, 0);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

Daemon::Daemon(Options opt) : opt_(std::move(opt)), spool_(opt_.spoolDir)
{
    if (opt_.socketPath.empty())
        opt_.socketPath = opt_.spoolDir + "/zerodevd.sock";
    paused_ = opt_.startPaused;
}

Daemon::~Daemon()
{
    if (started_ && !joined_) {
        requestShutdown();
        serve();
    }
}

bool
Daemon::start(std::string *err)
{
    if (!spool_.init(err))
        return false;

    // Adopt whatever a previous daemon left behind. RUNNING jobs come
    // back as QUEUED (Spool::loadAll) and re-run from their
    // checkpoints; terminal jobs keep their results queryable.
    std::size_t requeued = 0;
    for (auto &p : spool_.loadAll()) {
        JobRec rec;
        rec.seq = p.seq;
        rec.spec = std::move(p.spec);
        rec.state = p.state;
        rec.error = std::move(p.error);
        if (p.seq >= nextSeq_)
            nextSeq_ = p.seq + 1;
        jobs_.emplace(p.id, std::move(rec));
        if (p.state == JobState::Queued) {
            queue_.push_back(p.id);
            ++requeued;
            spool_.writeState(p.id, JobState::Queued, "");
        }
    }
    if (!jobs_.empty())
        std::fprintf(stderr,
                     "zerodevd: adopted %zu job(s) from spool, "
                     "%zu queued\n",
                     jobs_.size(), requeued);

    // Never reuse the sequence number of an entry loadAll() skipped —
    // a corrupt job's directory stays on disk as evidence, so new ids
    // must not overwrite it.
    std::error_code ec;
    std::filesystem::directory_iterator it(spool_.jobsDir(), ec);
    if (!ec) {
        for (const auto &entry : it) {
            std::uint64_t seq = 0;
            if (std::sscanf(entry.path().filename().string().c_str(),
                            "job%" SCNu64, &seq) == 1 &&
                seq >= nextSeq_)
                nextSeq_ = seq + 1;
        }
    }

    ::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + opt_.socketPath;
        return false;
    }
    std::memcpy(addr.sun_path, opt_.socketPath.c_str(),
                opt_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(opt_.socketPath.c_str()); // stale socket from a crash
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        if (err)
            *err = "bind/listen " + opt_.socketPath + ": " +
                   std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    started_ = true;
    execThread_ = std::thread(&Daemon::executorLoop, this);
    acceptThread_ = std::thread(&Daemon::acceptLoop, this);
    return true;
}

int
Daemon::serve()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_; });
    }

    // Teardown order matters: stop accepting, let in-flight responses
    // drain (SHUT_RD only — connection threads finish their current
    // request, write the response, then see EOF), preempt the
    // executor last so the running job checkpoints and re-queues.
    acceptStop_.store(true);
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RD);
    }
    for (auto &t : connThreads_)
        if (t.joinable())
            t.join();

    execStop_.store(true);
    cv_.notify_all();
    if (execThread_.joinable())
        execThread_.join();

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(opt_.socketPath.c_str());
    joined_ = true;
    return 0;
}

void
Daemon::requestShutdown()
{
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    draining_ = true;
    execStop_.store(true);
    cv_.notify_all();
    idleCv_.notify_all();
}

void
Daemon::pauseExecutor()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
}

void
Daemon::resumeExecutor()
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    cv_.notify_all();
}

void
Daemon::acceptLoop()
{
    while (!acceptStop_.load()) {
        pollfd p{};
        p.fd = listenFd_;
        p.events = POLLIN;
        const int r = ::poll(&p, 1, 200);
        if (acceptStop_.load())
            return;
        if (r <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(connMu_);
        connFds_.push_back(fd);
        connThreads_.emplace_back(&Daemon::serveConnection, this, fd);
    }
}

void
Daemon::closeConnFd(int fd)
{
    ::close(fd);
    std::lock_guard<std::mutex> lock(connMu_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
        if (*it == fd) {
            connFds_.erase(it);
            break;
        }
    }
}

void
Daemon::serveConnection(int fd)
{
    std::string buf;
    char tmp[4096];
    for (;;) {
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            const std::string resp = handleLine(line) + "\n";
            if (!writeAll(fd, resp)) {
                closeConnFd(fd);
                return;
            }
        }
        if (buf.size() > kMaxRequestBytes) {
            writeAll(fd, rpcErrorJson("bad-request",
                                      "request too large") +
                             "\n");
            closeConnFd(fd);
            return;
        }
        const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n <= 0) {
            closeConnFd(fd);
            return;
        }
        buf.append(tmp, static_cast<std::size_t>(n));
    }
}

void
Daemon::executorLoop()
{
    for (;;) {
        std::string id;
        JobSpec spec;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (stopping_)
                return;
            id = queue_.front();
            queue_.pop_front();
            JobRec &j = jobs_[id];
            j.state = JobState::Running;
            runningId_ = id;
            spec = j.spec;
            // Reset the stop flag for this job under the same lock
            // that proved !stopping_, so a concurrent shutdown or
            // cancel can never have its request erased.
            execStop_.store(j.cancelRequested);
        }
        // Persist RUNNING before executing: a SIGKILL from here on is
        // recovered by loadAll()'s RUNNING -> QUEUED adoption.
        spool_.writeState(id, JobState::Running, "");

        JobOutcome out =
            executeJob(spec, spool_.artifactsDir(id), &execStop_);

        JobState st;
        std::string error;
        {
            std::lock_guard<std::mutex> lock(mu_);
            JobRec &j = jobs_[id];
            runningId_.clear();
            if (out.interrupted) {
                if (j.cancelRequested) {
                    j.state = JobState::Cancelled;
                    j.error = "cancelled";
                } else {
                    // Shutdown preemption: back to the front of the
                    // queue so a restarted daemon resumes it first.
                    j.state = JobState::Queued;
                    queue_.push_front(id);
                }
            } else if (!out.ok) {
                j.state = JobState::Failed;
                j.error = out.error;
            } else {
                j.state = JobState::Done;
            }
            st = j.state;
            error = j.error;
        }
        if (st == JobState::Done)
            spool_.writeResult(id, out.resultJson);
        spool_.writeState(id, st, error);
        {
            std::lock_guard<std::mutex> lock(mu_);
            idleCv_.notify_all();
            cv_.notify_all();
        }
    }
}

std::string
Daemon::handleLine(const std::string &line)
{
    RpcRequest req;
    std::string err;
    if (!parseRpcRequest(line, &req, &err))
        return rpcErrorJson("bad-request", err);
    if (req.op == "ping") {
        obs::JsonWriter w;
        beginRpcResponse(w, true);
        w.endObject();
        return w.str();
    }
    if (req.op == "submit")
        return handleSubmit(req);
    if (req.op == "status")
        return handleStatus(req);
    if (req.op == "result")
        return handleResult(req);
    if (req.op == "cancel")
        return handleCancel(req);
    if (req.op == "stats")
        return handleStats();
    if (req.op == "drain")
        return handleDrain();
    if (req.op == "shutdown")
        return handleShutdown();
    return rpcErrorJson("unknown-op", req.op);
}

std::string
Daemon::handleSubmit(const RpcRequest &req)
{
    if (!req.hasJob)
        return rpcErrorJson("bad-request", "submit needs a job object");
    JobSpec spec;
    std::string err;
    if (!JobSpec::parse(req.job, &spec, &err))
        return rpcErrorJson("bad-job", err);

    std::string id;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (draining_ || stopping_)
            return rpcErrorJson("draining",
                                "daemon is draining, not accepting "
                                "jobs");
        if (queue_.size() >= opt_.maxQueued)
            return rpcErrorJson("queue-full",
                                "accept queue is at capacity (" +
                                    std::to_string(opt_.maxQueued) +
                                    ")",
                                opt_.retryAfterMs);
        id = Spool::idFor(nextSeq_++);
        JobRec rec;
        rec.seq = nextSeq_ - 1;
        rec.spec = spec;
        jobs_.emplace(id, std::move(rec));
    }

    if (!spool_.createJob(id, spec, &err)) {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_.erase(id);
        return rpcErrorJson("spool-error", err);
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        JobRec &j = jobs_[id];
        // A cancel can only race in after the id is returned, which
        // happens below — but keep the check for belt and braces.
        if (j.state == JobState::Queued) {
            queue_.push_back(id);
            cv_.notify_all();
        }
    }

    obs::JsonWriter w;
    beginRpcResponse(w, true);
    w.field("id", id);
    w.field("state", toString(JobState::Queued));
    w.endObject();
    return w.str();
}

std::string
Daemon::handleStatus(const RpcRequest &req)
{
    if (req.id.empty())
        return rpcErrorJson("bad-request", "status needs an id");
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(req.id);
    if (it == jobs_.end())
        return rpcErrorJson("unknown-job", req.id);
    obs::JsonWriter w;
    beginRpcResponse(w, true);
    w.field("id", req.id);
    w.field("type", toString(it->second.spec.type));
    w.field("figure", it->second.spec.figure);
    w.field("state", toString(it->second.state));
    if (!it->second.error.empty())
        w.field("error", it->second.error);
    w.endObject();
    return w.str();
}

std::string
Daemon::handleResult(const RpcRequest &req)
{
    if (req.id.empty())
        return rpcErrorJson("bad-request", "result needs an id");
    JobState st;
    std::string error;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = jobs_.find(req.id);
        if (it == jobs_.end())
            return rpcErrorJson("unknown-job", req.id);
        if (!isTerminal(it->second.state))
            return rpcErrorJson("not-finished",
                                toString(it->second.state));
        st = it->second.state;
        error = it->second.error;
    }
    obs::JsonWriter w;
    beginRpcResponse(w, true);
    w.field("id", req.id);
    w.field("state", toString(st));
    if (!error.empty())
        w.field("error", error);
    if (st == JobState::Done) {
        const std::string result = spool_.readResult(req.id);
        if (!result.empty())
            w.key("result").raw(result);
    }
    w.endObject();
    return w.str();
}

std::string
Daemon::handleCancel(const RpcRequest &req)
{
    if (req.id.empty())
        return rpcErrorJson("bad-request", "cancel needs an id");
    bool persistCancelled = false;
    std::string resp;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = jobs_.find(req.id);
        if (it == jobs_.end())
            return rpcErrorJson("unknown-job", req.id);
        JobRec &j = it->second;
        obs::JsonWriter w;
        if (j.state == JobState::Queued) {
            for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
                if (*qit == req.id) {
                    queue_.erase(qit);
                    break;
                }
            }
            j.state = JobState::Cancelled;
            j.error = "cancelled";
            j.cancelRequested = true;
            persistCancelled = true;
            idleCv_.notify_all();
            beginRpcResponse(w, true);
            w.field("id", req.id);
            w.field("state", toString(JobState::Cancelled));
            w.endObject();
            resp = w.str();
        } else if (j.state == JobState::Running) {
            j.cancelRequested = true;
            execStop_.store(true);
            beginRpcResponse(w, true);
            w.field("id", req.id);
            w.field("state", toString(JobState::Running));
            w.field("cancel_requested", true);
            w.endObject();
            resp = w.str();
        } else {
            return rpcErrorJson("already-terminal",
                                toString(j.state));
        }
    }
    if (persistCancelled)
        spool_.writeState(req.id, JobState::Cancelled, "cancelled");
    return resp;
}

std::string
Daemon::handleStats()
{
    std::size_t queued, done = 0, failed = 0, cancelled = 0;
    bool running;
    {
        std::lock_guard<std::mutex> lock(mu_);
        queued = queue_.size();
        running = !runningId_.empty();
        for (const auto &[id, j] : jobs_) {
            (void)id;
            if (j.state == JobState::Done)
                ++done;
            else if (j.state == JobState::Failed)
                ++failed;
            else if (j.state == JobState::Cancelled)
                ++cancelled;
        }
    }
    obs::JsonWriter w;
    beginRpcResponse(w, true);
    w.field("queued", static_cast<std::uint64_t>(queued));
    w.field("running", static_cast<std::uint64_t>(running ? 1 : 0));
    w.field("done", static_cast<std::uint64_t>(done));
    w.field("failed", static_cast<std::uint64_t>(failed));
    w.field("cancelled", static_cast<std::uint64_t>(cancelled));
    w.field("max_queued",
            static_cast<std::uint64_t>(opt_.maxQueued));
    // Live zerodev-status-v1 from the telemetry sink, when publishing.
    if (obs::TelemetrySink *sink = obs::TelemetrySink::fromEnv())
        w.key("status").raw(sink->statusJson());
    w.endObject();
    return w.str();
}

std::string
Daemon::handleDrain()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        draining_ = true;
        idleCv_.wait(lock, [this] {
            return stopping_ ||
                   (queue_.empty() && runningId_.empty());
        });
        stopping_ = true;
        cv_.notify_all();
        idleCv_.notify_all();
    }
    obs::JsonWriter w;
    beginRpcResponse(w, true);
    w.field("drained", true);
    w.endObject();
    return w.str();
}

std::string
Daemon::handleShutdown()
{
    requestShutdown();
    obs::JsonWriter w;
    beginRpcResponse(w, true);
    w.field("stopping", true);
    w.endObject();
    return w.str();
}

} // namespace zerodev::service
