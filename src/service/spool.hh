/**
 * @file
 * The zerodevd spool directory: everything a daemon needs to survive a
 * crash lives here as plain files, so a restarted daemon re-adopts its
 * queue and resumes interrupted work from the checkpoints the runs
 * left behind (docs/SERVICE.md, "Spool layout").
 *
 *   <spool>/jobs/<id>/job.json    zerodev-job-v1 (the submitted spec)
 *   <spool>/jobs/<id>/state.json  zerodev-job-state-v1 (atomic rename)
 *   <spool>/jobs/<id>/result.json zerodev-job-result-v1 (terminal)
 *   <spool>/jobs/<id>/artifacts/  run reports, .ckpt files, fuzz
 *                                 traces — byte-identical to a direct
 *                                 run of the same spec
 *   <spool>/telemetry/            the daemon's TelemetrySink output
 *
 * state.json writes go through a temp file + rename, so a SIGKILL at
 * any instant leaves either the old or the new state, never a torn
 * document.
 */

#ifndef ZERODEV_SERVICE_SPOOL_HH
#define ZERODEV_SERVICE_SPOOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/jobspec.hh"

namespace zerodev::service
{

/** One job as recovered from the spool at daemon start. */
struct PersistedJob
{
    std::string id;
    std::uint64_t seq = 0; //!< numeric suffix of the id
    JobSpec spec;
    JobState state = JobState::Queued;
    std::string error;
};

class Spool
{
  public:
    explicit Spool(std::string root);

    /** Create the directory skeleton; false with a reason on failure. */
    bool init(std::string *err);

    const std::string &root() const { return root_; }
    std::string telemetryDir() const { return root_ + "/telemetry"; }
    std::string jobsDir() const { return root_ + "/jobs"; }
    std::string jobDir(const std::string &id) const;
    std::string artifactsDir(const std::string &id) const;

    /** "job%06u" for sequence number @p seq. */
    static std::string idFor(std::uint64_t seq);

    /** Create the job's directories and persist job.json (the stamped
     *  envelope around the submitted spec) + an initial QUEUED state. */
    bool createJob(const std::string &id, const JobSpec &spec,
                   std::string *err);

    /** Atomically rewrite state.json (temp file + rename). */
    bool writeState(const std::string &id, JobState state,
                    const std::string &error);

    /** Persist the terminal result document. */
    bool writeResult(const std::string &id,
                     const std::string &resultJson);

    /** Read back a job's result.json; empty when absent. */
    std::string readResult(const std::string &id) const;

    /**
     * Scan jobs/ and recover every persisted job, sorted by sequence
     * number. Unreadable entries are skipped with a warning — a
     * corrupt job must not brick the daemon. RUNNING jobs are returned
     * as QUEUED: the previous daemon died mid-run, and re-running
     * resumes from the checkpoints in artifacts/.
     */
    std::vector<PersistedJob> loadAll() const;

  private:
    std::string root_;
};

} // namespace zerodev::service

#endif // ZERODEV_SERVICE_SPOOL_HH
