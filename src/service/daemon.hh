/**
 * @file
 * The zerodevd daemon: a Unix-domain stream server speaking
 * `zerodev-rpc-v1` (service/protocol.hh), multiplexing submitted jobs
 * onto the existing simulation engines via a per-job state machine
 *
 *     QUEUED -> RUNNING -> DONE | FAILED | CANCELLED
 *
 * with a bounded accept queue (submit rejects with `queue-full` +
 * `retry_after_ms` back-pressure when full), cooperative cancellation
 * and preemption (a SIGTERM'd daemon checkpoints the running job and
 * re-queues it), and spool-backed crash recovery: a restarted daemon
 * re-adopts every non-terminal job from its spool directory and
 * resumes bit-identically from the checkpoints on disk.
 *
 * Threading: one accept thread, one connection thread per client, one
 * executor thread running jobs strictly in submission order (each job
 * fans out internally through the ThreadPool sweep engine). The class
 * is usable in-process — tests drive handleLine() directly and run
 * serve() on a thread.
 */

#ifndef ZERODEV_SERVICE_DAEMON_HH
#define ZERODEV_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/jobspec.hh"
#include "service/protocol.hh"
#include "service/spool.hh"

namespace zerodev::service
{

class Daemon
{
  public:
    struct Options
    {
        std::string spoolDir;

        /** Defaults to "<spool>/zerodevd.sock". */
        std::string socketPath;

        /** Bounded accept queue: QUEUED jobs beyond this are rejected
         *  with the back-pressure error. */
        std::size_t maxQueued = 64;

        /** Suggested client retry delay in queue-full rejections. */
        std::uint64_t retryAfterMs = 500;

        /** Tests: hold the executor before its first job so queue
         *  states can be observed deterministically. */
        bool startPaused = false;
    };

    explicit Daemon(Options opt);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Initialise the spool, adopt persisted jobs, bind the socket and
     *  spawn the worker threads. False with a reason on failure. */
    bool start(std::string *err);

    /** Block until shutdown/drain completes, then tear down: join the
     *  workers (preempting + re-queueing the running job), close the
     *  socket. Returns the process exit code (0 on a clean stop). */
    int serve();

    /** Graceful stop from outside the RPC path (the SIGTERM handler):
     *  equivalent to a `shutdown` request. */
    void requestShutdown();

    /** Dispatch one request line to one response line — the complete
     *  RPC surface, also driven directly by tests. */
    std::string handleLine(const std::string &line);

    const std::string &socketPath() const { return opt_.socketPath; }

    // Test hooks.
    void pauseExecutor();
    void resumeExecutor();

  private:
    struct JobRec
    {
        std::uint64_t seq = 0;
        JobSpec spec;
        JobState state = JobState::Queued;
        std::string error;
        bool cancelRequested = false;
    };

    void acceptLoop();
    void serveConnection(int fd);
    void executorLoop();

    std::string handleSubmit(const RpcRequest &req);
    std::string handleStatus(const RpcRequest &req);
    std::string handleResult(const RpcRequest &req);
    std::string handleCancel(const RpcRequest &req);
    std::string handleStats();
    std::string handleDrain();
    std::string handleShutdown();

    void closeConnFd(int fd);

    Options opt_;
    Spool spool_;

    std::mutex mu_;
    std::condition_variable cv_;     //!< executor + stop wakeups
    std::condition_variable idleCv_; //!< drain waiters
    std::map<std::string, JobRec> jobs_;
    std::deque<std::string> queue_; //!< QUEUED ids, submission order
    std::string runningId_;
    std::uint64_t nextSeq_ = 1;
    bool paused_ = false;
    bool draining_ = false;
    bool stopping_ = false;

    /** Threaded into the engines as RunConfig::stopRequest. */
    std::atomic<bool> execStop_{false};

    int listenFd_ = -1;
    std::atomic<bool> acceptStop_{false};
    std::thread acceptThread_;
    std::thread execThread_;
    std::mutex connMu_;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;
    bool started_ = false;
    bool joined_ = false;
};

} // namespace zerodev::service

#endif // ZERODEV_SERVICE_DAEMON_HH
