#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>

namespace zerodev::service
{

ServiceClient::~ServiceClient()
{
    close();
}

bool
ServiceClient::connect(const std::string &socketPath, std::string *err)
{
    close();
    ::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + socketPath;
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err)
            *err = "connect " + socketPath + ": " +
                   std::strerror(errno);
        close();
        return false;
    }
    return true;
}

std::optional<obs::JsonValue>
ServiceClient::request(const std::string &json, std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return std::nullopt;
    }
    const std::string line = json + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::send(fd_, line.data() + off, line.size() - off, 0);
        if (n <= 0) {
            if (err)
                *err = std::string("send: ") + std::strerror(errno);
            return std::nullopt;
        }
        off += static_cast<std::size_t>(n);
    }

    char tmp[4096];
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string resp = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            std::string perr;
            auto doc = obs::parseJson(resp, &perr);
            if (!doc) {
                if (err)
                    *err = "bad response: " + perr;
                return std::nullopt;
            }
            return doc;
        }
        const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
        if (n <= 0) {
            if (err)
                *err = n == 0 ? "connection closed by daemon"
                              : std::string("recv: ") +
                                    std::strerror(errno);
            return std::nullopt;
        }
        buf_.append(tmp, static_cast<std::size_t>(n));
    }
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

std::optional<obs::JsonValue>
rpcOnce(const std::string &socketPath, const std::string &json,
        std::string *err)
{
    ServiceClient c;
    if (!c.connect(socketPath, err))
        return std::nullopt;
    return c.request(json, err);
}

} // namespace zerodev::service
