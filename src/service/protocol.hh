/**
 * @file
 * The `zerodev-rpc-v1` wire protocol: one JSON object per line in each
 * direction over a Unix-domain stream socket. Requests carry an "op"
 * verb (submit / status / result / cancel / drain / shutdown / stats /
 * ping), responses are stamped JSON documents (obs::stampArtifact) with
 * an "ok" bool; failures carry an "error" code plus optional detail,
 * and queue back-pressure rejections carry "retry_after_ms". The full
 * spec lives in docs/SERVICE.md.
 */

#ifndef ZERODEV_SERVICE_PROTOCOL_HH
#define ZERODEV_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "obs/json.hh"

namespace zerodev::service
{

/** Schema identifier stamped on every RPC response line. */
inline constexpr const char *kRpcSchema = "zerodev-rpc-v1";

/** Requests longer than this are rejected before parsing (a line
 *  protocol needs a framing bound; job specs are small). */
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

/** A parsed request line. */
struct RpcRequest
{
    std::string op;
    std::string id;    //!< status / result / cancel
    obs::JsonValue job; //!< submit payload (object)
    bool hasJob = false;
};

/**
 * Parse one request line. On failure returns false with a reason in
 * @p err; the caller answers with rpcErrorJson("bad-request", err).
 */
bool parseRpcRequest(const std::string &line, RpcRequest *out,
                     std::string *err);

/** Begin a stamped response object: {"schema":...,"commit":...,"ok":..
 *  — the caller adds fields and calls endObject(). */
void beginRpcResponse(obs::JsonWriter &w, bool ok);

/** A complete error response line (no trailing newline). A non-zero
 *  @p retryAfterMs adds the back-pressure field. */
std::string rpcErrorJson(const std::string &code,
                         const std::string &detail = "",
                         std::uint64_t retryAfterMs = 0);

// --- client-side request builders ---

/** {"op":...} — drain / shutdown / stats / ping. */
std::string rpcRequestJson(const std::string &op);

/** {"op":...,"id":...} — status / result / cancel. */
std::string rpcRequestJson(const std::string &op, const std::string &id);

/** {"op":"submit","job":<jobJson>} — @p jobJson must be a valid JSON
 *  object rendering. */
std::string rpcSubmitJson(const std::string &jobJson);

} // namespace zerodev::service

#endif // ZERODEV_SERVICE_PROTOCOL_HH
