/**
 * @file
 * Service job specifications (`zerodev-job-v1`): the three workload
 * shapes a zerodevd daemon accepts — a single run, a figure sweep, a
 * differential fuzz batch — parsed from the submit RPC's "job" object
 * into validated simulator configurations, plus the executor that runs
 * a parsed spec through the exact same engines the one-shot tools use
 * (bench_util::runSweep, verify::runFuzzBatch). Because both paths are
 * one code path, a daemon-submitted job's artifacts are byte-identical
 * to a direct invocation — the property the service CI jobs gate.
 *
 * Parsing is strict: unknown keys, out-of-range values and unknown
 * enum/app names are rejected at submit time with a reason, so a bad
 * spec can never reach the simulator's fatal() paths.
 */

#ifndef ZERODEV_SERVICE_JOBSPEC_HH
#define ZERODEV_SERVICE_JOBSPEC_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "verify/fuzz_batch.hh"

namespace zerodev::obs
{
struct JsonValue;
} // namespace zerodev::obs

namespace zerodev::service
{

/** The three job shapes (ISSUE: run / sweep / fuzz batch). */
enum class JobType : std::uint8_t
{
    Run,
    Sweep,
    Fuzz,
};

/** Per-job lifecycle states (docs/SERVICE.md state machine). */
enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
};

const char *toString(JobType t);
const char *toString(JobState s);
bool jobTypeFromString(const std::string &s, JobType *out);
bool jobStateFromString(const std::string &s, JobState *out);

/** True for DONE / FAILED / CANCELLED. */
bool isTerminal(JobState s);

/** One validated (config, workload, length) run of a run/sweep job. */
struct RunSpec
{
    SystemConfig cfg;
    std::string app;            //!< application profile name
    std::uint32_t threads = 8;  //!< workload thread / rate-copy count
    std::uint64_t accesses = 0; //!< accesses per core
};

/** One parsed and validated job. */
struct JobSpec
{
    JobType type = JobType::Run;

    /** Figure slug ([A-Za-z0-9._-]): names report files and telemetry
     *  jobs, exactly like bench banner() figures. */
    std::string figure = "job";

    /** Run: exactly one entry; Sweep: one per run. */
    std::vector<RunSpec> runs;

    /** Fuzz batches reuse the engine options directly (outDir / stop /
     *  telemetryPrefix are filled in by the executor, not the spec). */
    verify::FuzzBatchOptions fuzz;

    /** The submitted "job" object re-rendered compactly — persisted
     *  verbatim in the spool so a restarted daemon re-parses exactly
     *  what was submitted. */
    std::string rawJson;

    /**
     * Parse + validate a submit request's "job" object. On failure
     * returns false with a reason in @p err; on success every config
     * has been materialised and every name resolved.
     */
    static bool parse(const obs::JsonValue &job, JobSpec *out,
                      std::string *err);
};

/** Terminal outcome of one executed job. */
struct JobOutcome
{
    bool ok = false;

    /** Preempted by the stop flag (shutdown or cancel): checkpoints
     *  stay in the artifacts directory, nothing was reported, and the
     *  job can re-run later to a bit-identical completion. */
    bool interrupted = false;

    std::string error; //!< reason when !ok && !interrupted

    /** Fuzz batches: the engine's 0/1/4 exit code (a divergence is a
     *  *finding* — the job itself is DONE with exit_code 4). */
    int exitCode = 0;
    bool divergence = false;

    /** The stamped `zerodev-job-result-v1` document (terminal success
     *  only). */
    std::string resultJson;
};

/**
 * Execute @p spec in the calling thread: reports, checkpoints and fuzz
 * artifacts land in @p artifactsDir (routed via obs output-dir
 * overrides), the stop flag is threaded into the engines for
 * preemption, and per-run live telemetry publishes through the global
 * sink. Exactly one job may execute per process at a time (the daemon
 * serialises; run-local clients run one job).
 */
JobOutcome executeJob(const JobSpec &spec,
                      const std::string &artifactsDir,
                      const std::atomic<bool> *stop);

} // namespace zerodev::service

#endif // ZERODEV_SERVICE_JOBSPEC_HH
