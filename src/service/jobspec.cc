#include "service/jobspec.hh"

#include <cinttypes>
#include <cstdio>

#include "bench_util.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "workload/app_profiles.hh"
#include "workload/workload.hh"

namespace zerodev::service
{

namespace
{

constexpr std::uint64_t kMaxAccesses = 10'000'000;
constexpr std::size_t kMaxSweepRuns = 256;
constexpr std::uint64_t kMaxFuzzSeeds = 100'000;
constexpr double kMaxDirRatio = 64.0;

bool
fail(std::string *err, const std::string &why)
{
    if (err)
        *err = why;
    return false;
}

bool
validFigure(const std::string &s)
{
    if (s.empty() || s.size() > 64)
        return false;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

/** Non-fatal profile lookup (profileByName() aborts on unknown). */
bool
findProfile(const std::string &name, AppProfile *out)
{
    for (const std::string &suite : suiteNames()) {
        for (const AppProfile &p : suiteProfiles(suite)) {
            if (p.name == name) {
                *out = p;
                return true;
            }
        }
    }
    return false;
}

/** Integer member in [lo, hi]; false (with reason) otherwise. */
bool
parseInt(const obs::JsonValue &obj, const char *key, std::uint64_t lo,
         std::uint64_t hi, std::uint64_t *out, std::string *err)
{
    const obs::JsonValue *v = obj.find(key);
    if (!v || !v->isNumber() || v->number < 0 ||
        v->number != static_cast<double>(
                         static_cast<std::uint64_t>(v->number))) {
        return fail(err, std::string(key) +
                             " must be a non-negative integer");
    }
    const auto n = static_cast<std::uint64_t>(v->number);
    if (n < lo || n > hi) {
        return fail(err, std::string(key) + " out of range [" +
                             std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
    }
    *out = n;
    return true;
}

bool
parseDirOrg(const std::string &s, DirOrg *out)
{
    if (s == "sparse-NRU")
        *out = DirOrg::SparseNru;
    else if (s == "unbounded")
        *out = DirOrg::Unbounded;
    else if (s == "ZeroDEV")
        *out = DirOrg::ZeroDev;
    else if (s == "SecDir")
        *out = DirOrg::SecDir;
    else if (s == "MgD")
        *out = DirOrg::MultiGrain;
    else
        return false;
    return true;
}

bool
parseLlcFlavor(const std::string &s, LlcFlavor *out)
{
    if (s == "non-inclusive")
        *out = LlcFlavor::NonInclusive;
    else if (s == "inclusive")
        *out = LlcFlavor::Inclusive;
    else if (s == "EPD")
        *out = LlcFlavor::Epd;
    else
        return false;
    return true;
}

bool
parseDirCachePolicy(const std::string &s, DirCachePolicy *out)
{
    if (s == "none")
        *out = DirCachePolicy::None;
    else if (s == "SpillAll")
        *out = DirCachePolicy::SpillAll;
    else if (s == "FPSS")
        *out = DirCachePolicy::Fpss;
    else if (s == "FuseAll")
        *out = DirCachePolicy::FuseAll;
    else
        return false;
    return true;
}

bool
parseLlcRepl(const std::string &s, LlcReplPolicy *out)
{
    if (s == "LRU")
        *out = LlcReplPolicy::Lru;
    else if (s == "spLRU")
        *out = LlcReplPolicy::SpLru;
    else if (s == "dataLRU")
        *out = LlcReplPolicy::DataLru;
    else
        return false;
    return true;
}

bool
parseProtocol(const std::string &s, ProtocolKind *out)
{
    if (s == "mesi-zerodev")
        *out = ProtocolKind::MesiZeroDev;
    else if (s == "DLS" || s == "dls") // "dls" = the differ variant name
        *out = ProtocolKind::Dls;
    else if (s == "phase-priority" || s == "phasepri")
        *out = ProtocolKind::PhasePriority;
    else
        return false;
    return true;
}

/**
 * Materialise a "config" object: a named preset plus a restricted set
 * of safe knobs (the enums and ratios the figure benches sweep). Every
 * key is checked; unknown keys are rejected rather than ignored.
 */
bool
parseConfigSpec(const obs::JsonValue &spec, SystemConfig *out,
                std::string *err)
{
    const std::string preset = spec.str("preset", "eight-core");
    if (preset == "eight-core")
        *out = makeEightCoreConfig();
    else if (preset == "server")
        *out = makeServerConfig();
    else if (preset == "quad-socket")
        *out = makeQuadSocketConfig();
    else
        return fail(err, "config.preset must be eight-core, server or "
                         "quad-socket");

    for (const auto &[key, value] : spec.object) {
        if (key == "preset") {
            continue;
        } else if (key == "name") {
            if (!value.isString() || !validFigure(value.string))
                return fail(err, "config.name must be a short "
                                 "[A-Za-z0-9._-] string");
            out->name = value.string;
        } else if (key == "zdev_ratio") {
            if (!value.isNumber() || value.number < 0.0 ||
                value.number > kMaxDirRatio)
                return fail(err, "config.zdev_ratio out of range");
            applyZeroDev(*out, value.number);
        } else if (key == "dir_org") {
            if (!value.isString() ||
                !parseDirOrg(value.string, &out->dirOrg))
                return fail(err, "config.dir_org must be sparse-NRU, "
                                 "unbounded, ZeroDEV, SecDir or MgD");
        } else if (key == "dir_ratio") {
            if (!value.isNumber() || value.number < 0.0 ||
                value.number > kMaxDirRatio)
                return fail(err, "config.dir_ratio out of range");
            out->directory.sizeRatio = value.number;
        } else if (key == "dir_replacement_disabled") {
            if (!value.isBool())
                return fail(err, "config.dir_replacement_disabled "
                                 "must be a bool");
            out->directory.replacementDisabled = value.boolean;
        } else if (key == "tag_partitions") {
            if (!value.isNumber() || value.number < 0 ||
                value.number > out->directory.ways ||
                (value.number > 0 &&
                 out->directory.ways %
                         static_cast<std::uint32_t>(value.number) !=
                     0))
                return fail(err, "config.tag_partitions must divide "
                                 "the directory ways");
            out->directory.tagPartitions =
                static_cast<std::uint32_t>(value.number);
        } else if (key == "dir_cache_policy") {
            if (!value.isString() ||
                !parseDirCachePolicy(value.string,
                                     &out->dirCachePolicy))
                return fail(err, "config.dir_cache_policy must be "
                                 "none, SpillAll, FPSS or FuseAll");
        } else if (key == "llc_repl") {
            if (!value.isString() ||
                !parseLlcRepl(value.string, &out->llcReplPolicy))
                return fail(err, "config.llc_repl must be LRU, spLRU "
                                 "or dataLRU");
        } else if (key == "llc_flavor") {
            if (!value.isString() ||
                !parseLlcFlavor(value.string, &out->llcFlavor))
                return fail(err, "config.llc_flavor must be "
                                 "non-inclusive, inclusive or EPD");
        } else if (key == "protocol") {
            if (!value.isString() ||
                !parseProtocol(value.string, &out->protocol))
                return fail(err, "config.protocol must be "
                                 "mesi-zerodev, DLS or phase-priority");
        } else {
            return fail(err, "unknown config key: " + key);
        }
    }

    // The rival backends restrict the knobs they ignore; reject here
    // with a reason rather than letting validate() fatal() later.
    if (out->protocol != ProtocolKind::MesiZeroDev) {
        const std::string proto = toString(out->protocol);
        if (out->sockets != 1)
            return fail(err, "config.protocol " + proto +
                                 " is single-socket only");
        if (out->llcFlavor != LlcFlavor::NonInclusive)
            return fail(err, "config.protocol " + proto +
                                 " requires a non-inclusive LLC");
        if (out->dirCachePolicy != DirCachePolicy::None)
            return fail(err, "config.protocol " + proto +
                                 " takes no dir_cache_policy");
        if (out->directory.tagPartitions != 0)
            return fail(err, "config.protocol " + proto +
                                 " takes no tag_partitions");
        if (out->protocol == ProtocolKind::PhasePriority &&
            out->dirOrg != DirOrg::SparseNru)
            return fail(err, "config.protocol phase-priority requires "
                             "dir_org sparse-NRU");
    }
    return true;
}

/** One run entry (the whole job object for type "run", one element of
 *  "runs" for type "sweep"). */
bool
parseRunSpec(const obs::JsonValue &obj, RunSpec *out, std::string *err)
{
    if (const obs::JsonValue *cfg = obj.find("config")) {
        if (!cfg->isObject())
            return fail(err, "config must be an object");
        if (!parseConfigSpec(*cfg, &out->cfg, err))
            return false;
    } else {
        out->cfg = makeEightCoreConfig();
    }

    out->app = obj.str("app");
    AppProfile profile;
    if (out->app.empty() || !findProfile(out->app, &profile))
        return fail(err, "app must name a known application profile");

    const std::uint32_t totalCores =
        out->cfg.coresPerSocket * out->cfg.sockets;
    std::uint64_t threads = totalCores;
    if (obj.has("threads") &&
        !parseInt(obj, "threads", 1, totalCores, &threads, err))
        return false;
    out->threads = static_cast<std::uint32_t>(threads);

    if (!parseInt(obj, "accesses", 1, kMaxAccesses, &out->accesses,
                  err))
        return false;

    for (const auto &[key, value] : obj.object) {
        (void)value;
        if (key != "config" && key != "app" && key != "threads" &&
            key != "accesses")
            return fail(err, "unknown run key: " + key);
    }
    return true;
}

bool
parseFuzzSpec(const obs::JsonValue &job, JobSpec *out, std::string *err)
{
    verify::FuzzBatchOptions &f = out->fuzz;
    if (job.has("seeds") &&
        !parseInt(job, "seeds", 1, kMaxFuzzSeeds, &f.seeds, err))
        return false;
    if (job.has("accesses") &&
        !parseInt(job, "accesses", 1, kMaxAccesses, &f.accesses, err))
        return false;
    std::uint64_t cores = f.cores;
    if (job.has("cores") &&
        !parseInt(job, "cores", 1, kMaxCores * kMaxSockets, &cores,
                  err))
        return false;
    f.cores = static_cast<std::uint32_t>(cores);
    if (const obs::JsonValue *q = job.find("quick")) {
        if (!q->isBool())
            return fail(err, "quick must be a bool");
        f.quick = q->boolean;
    }
    if (job.has("snapshot_every") &&
        !parseInt(job, "snapshot_every", 1, kMaxAccesses,
                  &f.snapshotEvery, err))
        return false;
    if (const obs::JsonValue *fault = job.find("fault")) {
        if (!fault->isString())
            return fail(err, "fault must be an \"I,B,S\" string");
        unsigned long long i = 0, b = 0, n = 0;
        char extra = 0;
        if (std::sscanf(fault->string.c_str(), "%llu,%llu,%llu%c", &i,
                        &b, &n, &extra) != 3)
            return fail(err, "fault must be an \"I,B,S\" string");
        const std::size_t variants =
            (f.quick ? verify::Differ::quickVariants(f.cores)
                     : verify::Differ::standardVariants(f.cores))
                .size();
        if (i >= variants)
            return fail(err, "fault variant index out of range");
        f.fault.enabled = true;
        f.fault.instance = static_cast<std::size_t>(i);
        f.fault.block = b;
        f.fault.afterStores = n;
    }

    for (const auto &[key, value] : job.object) {
        (void)value;
        if (key != "type" && key != "figure" && key != "seeds" &&
            key != "accesses" && key != "cores" && key != "quick" &&
            key != "snapshot_every" && key != "fault")
            return fail(err, "unknown fuzz key: " + key);
    }
    return true;
}

} // namespace

const char *
toString(JobType t)
{
    switch (t) {
      case JobType::Run: return "run";
      case JobType::Sweep: return "sweep";
      case JobType::Fuzz: return "fuzz";
    }
    return "?";
}

const char *
toString(JobState s)
{
    switch (s) {
      case JobState::Queued: return "QUEUED";
      case JobState::Running: return "RUNNING";
      case JobState::Done: return "DONE";
      case JobState::Failed: return "FAILED";
      case JobState::Cancelled: return "CANCELLED";
    }
    return "?";
}

bool
jobTypeFromString(const std::string &s, JobType *out)
{
    if (s == "run")
        *out = JobType::Run;
    else if (s == "sweep")
        *out = JobType::Sweep;
    else if (s == "fuzz")
        *out = JobType::Fuzz;
    else
        return false;
    return true;
}

bool
jobStateFromString(const std::string &s, JobState *out)
{
    if (s == "QUEUED")
        *out = JobState::Queued;
    else if (s == "RUNNING")
        *out = JobState::Running;
    else if (s == "DONE")
        *out = JobState::Done;
    else if (s == "FAILED")
        *out = JobState::Failed;
    else if (s == "CANCELLED")
        *out = JobState::Cancelled;
    else
        return false;
    return true;
}

bool
isTerminal(JobState s)
{
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Cancelled;
}

bool
JobSpec::parse(const obs::JsonValue &job, JobSpec *out,
               std::string *err)
{
    if (!job.isObject())
        return fail(err, "job must be a JSON object");
    if (!jobTypeFromString(job.str("type"), &out->type))
        return fail(err, "job.type must be run, sweep or fuzz");

    out->figure = job.str("figure", "job");
    if (!validFigure(out->figure))
        return fail(err, "job.figure must be a short [A-Za-z0-9._-] "
                         "string");

    switch (out->type) {
      case JobType::Run: {
        RunSpec run;
        // The run spec rides at the top level next to type/figure.
        obs::JsonValue stripped = job;
        std::erase_if(stripped.object, [](const auto &kv) {
            return kv.first == "type" || kv.first == "figure";
        });
        if (!parseRunSpec(stripped, &run, err))
            return false;
        out->runs = {std::move(run)};
        break;
      }
      case JobType::Sweep: {
        const obs::JsonValue *runs = job.find("runs");
        if (!runs || !runs->isArray() || runs->array.empty() ||
            runs->array.size() > kMaxSweepRuns) {
            return fail(err, "job.runs must be a non-empty array of "
                             "at most " +
                                 std::to_string(kMaxSweepRuns) +
                                 " runs");
        }
        for (const auto &[key, value] : job.object) {
            (void)value;
            if (key != "type" && key != "figure" && key != "runs")
                return fail(err, "unknown sweep key: " + key);
        }
        for (std::size_t i = 0; i < runs->array.size(); ++i) {
            RunSpec run;
            std::string rerr;
            if (!parseRunSpec(runs->array[i], &run, &rerr)) {
                return fail(err, "runs[" + std::to_string(i) +
                                     "]: " + rerr);
            }
            out->runs.push_back(std::move(run));
        }
        break;
      }
      case JobType::Fuzz:
        if (!parseFuzzSpec(job, out, err))
            return false;
        break;
    }

    out->rawJson = obs::renderJson(job);
    return true;
}

namespace
{

/** Scoped artifact routing + stop flag for one job execution. */
class ExecutionScope
{
  public:
    ExecutionScope(const std::string &artifactsDir,
                   const std::atomic<bool> *stop)
    {
        obs::setOutputDirOverride("ZERODEV_REPORT_DIR", artifactsDir);
        obs::setOutputDirOverride("ZERODEV_SNAPSHOT_DIR",
                                  artifactsDir);
        bench::setSweepStop(stop);
    }

    ~ExecutionScope()
    {
        bench::setSweepStop(nullptr);
        obs::setOutputDirOverride("ZERODEV_REPORT_DIR", "");
        obs::setOutputDirOverride("ZERODEV_SNAPSHOT_DIR", "");
    }
};

JobOutcome
executeRuns(const JobSpec &spec, const std::string &artifactsDir,
            const std::atomic<bool> *stop)
{
    JobOutcome out;
    ExecutionScope scope(artifactsDir, stop);

    bench::BenchReporter &rep = bench::BenchReporter::instance();
    rep.reset();
    rep.setFigure(spec.figure);

    std::vector<bench::SweepJob> jobs;
    jobs.reserve(spec.runs.size());
    for (const RunSpec &r : spec.runs) {
        const Workload w =
            bench::workloadFor(profileByName(r.app), r.threads);
        jobs.push_back({r.cfg, w, r.accesses});
    }

    const std::vector<RunResult> results = bench::runSweep(jobs);
    rep.flush();

    for (const RunResult &res : results) {
        if (res.interrupted) {
            out.interrupted = true;
            return out;
        }
    }

    obs::JsonWriter w;
    w.beginObject();
    obs::stampArtifact(w, "zerodev-job-result-v1");
    w.field("type", toString(spec.type));
    w.field("figure", spec.figure);
    w.field("exit_code", 0);
    w.key("runs").beginArray();
    for (std::size_t i = 0; i < results.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "_run%04zu", i);
        const RunResult &res = results[i];
        w.beginObject();
        w.field("report", spec.figure + name + ".json");
        w.field("workload", res.workload);
        w.field("cycles", static_cast<std::uint64_t>(res.cycles));
        w.field("core_cache_misses", res.coreCacheMisses);
        w.field("traffic_bytes", res.trafficBytes);
        w.field("dev_invalidations", res.devInvalidations);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    out.ok = true;
    out.resultJson = w.str();
    return out;
}

JobOutcome
executeFuzz(const JobSpec &spec, const std::string &artifactsDir,
            const std::atomic<bool> *stop)
{
    JobOutcome out;
    verify::FuzzBatchOptions opt = spec.fuzz;
    opt.outDir = artifactsDir;
    opt.stop = stop;
    opt.telemetryPrefix = spec.figure + "_";

    const verify::FuzzBatchResult res = verify::runFuzzBatch(opt);
    if (res.cancelled) {
        out.interrupted = true;
        return out;
    }
    if (res.exitCode == 1) {
        out.error = "fuzz batch runtime failure";
        return out;
    }

    obs::JsonWriter w;
    w.beginObject();
    obs::stampArtifact(w, "zerodev-job-result-v1");
    w.field("type", toString(spec.type));
    w.field("figure", spec.figure);
    w.field("exit_code", res.exitCode);
    w.field("seeds_run", res.seedsRun);
    w.key("fuzz_report").raw(res.report);
    w.endObject();

    out.ok = true;
    out.exitCode = res.exitCode;
    out.divergence = res.divergence;
    out.resultJson = w.str();
    return out;
}

} // namespace

JobOutcome
executeJob(const JobSpec &spec, const std::string &artifactsDir,
           const std::atomic<bool> *stop)
{
    switch (spec.type) {
      case JobType::Run:
      case JobType::Sweep:
        return executeRuns(spec, artifactsDir, stop);
      case JobType::Fuzz:
        return executeFuzz(spec, artifactsDir, stop);
    }
    JobOutcome out;
    out.error = "unknown job type";
    return out;
}

} // namespace zerodev::service
