#include "service/protocol.hh"

#include <utility>

#include "obs/report.hh"

namespace zerodev::service
{

bool
parseRpcRequest(const std::string &line, RpcRequest *out,
                std::string *err)
{
    const auto fail = [err](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    if (line.size() > kMaxRequestBytes)
        return fail("request exceeds " +
                    std::to_string(kMaxRequestBytes) + " bytes");
    std::string perr;
    auto doc = obs::parseJson(line, &perr);
    if (!doc)
        return fail("invalid JSON: " + perr);
    if (!doc->isObject())
        return fail("request must be a JSON object");
    out->op = doc->str("op");
    if (out->op.empty())
        return fail("missing op");
    out->id = doc->str("id");
    if (const obs::JsonValue *job = doc->find("job")) {
        out->job = *job;
        out->hasJob = true;
    }
    return true;
}

void
beginRpcResponse(obs::JsonWriter &w, bool ok)
{
    w.beginObject();
    obs::stampArtifact(w, kRpcSchema);
    w.field("ok", ok);
}

std::string
rpcErrorJson(const std::string &code, const std::string &detail,
             std::uint64_t retryAfterMs)
{
    obs::JsonWriter w;
    beginRpcResponse(w, false);
    w.field("error", code);
    if (!detail.empty())
        w.field("detail", detail);
    if (retryAfterMs)
        w.field("retry_after_ms", retryAfterMs);
    w.endObject();
    return w.str();
}

std::string
rpcRequestJson(const std::string &op)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("op", op);
    w.endObject();
    return w.str();
}

std::string
rpcRequestJson(const std::string &op, const std::string &id)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("op", op);
    w.field("id", id);
    w.endObject();
    return w.str();
}

std::string
rpcSubmitJson(const std::string &jobJson)
{
    obs::JsonWriter w;
    w.beginObject();
    w.field("op", "submit");
    w.key("job").raw(jobJson);
    w.endObject();
    return w.str();
}

} // namespace zerodev::service
