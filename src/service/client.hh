/**
 * @file
 * Client side of `zerodev-rpc-v1`: connect to a zerodevd Unix-domain
 * socket, exchange one JSON line per request, parse the response.
 * Shared by zerodevctl and fuzz_tool's --daemon mode.
 */

#ifndef ZERODEV_SERVICE_CLIENT_HH
#define ZERODEV_SERVICE_CLIENT_HH

#include <optional>
#include <string>

#include "obs/json.hh"

namespace zerodev::service
{

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connect to @p socketPath; false with a reason on failure. */
    bool connect(const std::string &socketPath, std::string *err);

    /**
     * Send one request line and read one response line. Returns the
     * parsed response object, or std::nullopt with a transport-level
     * reason in @p err (a response with ok:false still parses).
     */
    std::optional<obs::JsonValue> request(const std::string &json,
                                          std::string *err);

    void close();
    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string buf_; //!< unconsumed bytes past the last newline
};

/** One-shot: connect, send, read, close. */
std::optional<obs::JsonValue> rpcOnce(const std::string &socketPath,
                                      const std::string &json,
                                      std::string *err);

} // namespace zerodev::service

#endif // ZERODEV_SERVICE_CLIENT_HH
