#include "service/spool.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "obs/json.hh"
#include "obs/report.hh"

namespace zerodev::service
{

namespace
{

/** writeTextFile + rename: either the old or the new document exists
 *  at @p path after any crash, never a torn one. */
bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    if (!obs::writeTextFile(tmp, content))
        return false;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

Spool::Spool(std::string root) : root_(std::move(root)) {}

bool
Spool::init(std::string *err)
{
    std::error_code ec;
    std::filesystem::create_directories(jobsDir(), ec);
    if (!ec)
        std::filesystem::create_directories(telemetryDir(), ec);
    if (ec) {
        if (err)
            *err = "cannot create spool " + root_ + ": " + ec.message();
        return false;
    }
    return true;
}

std::string
Spool::jobDir(const std::string &id) const
{
    return jobsDir() + "/" + id;
}

std::string
Spool::artifactsDir(const std::string &id) const
{
    return jobDir(id) + "/artifacts";
}

std::string
Spool::idFor(std::uint64_t seq)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "job%06" PRIu64, seq);
    return buf;
}

bool
Spool::createJob(const std::string &id, const JobSpec &spec,
                 std::string *err)
{
    std::error_code ec;
    std::filesystem::create_directories(artifactsDir(id), ec);
    if (ec) {
        if (err)
            *err = "cannot create job dir: " + ec.message();
        return false;
    }

    obs::JsonWriter w;
    w.beginObject();
    obs::stampArtifact(w, "zerodev-job-v1");
    w.field("id", id);
    w.key("job").raw(spec.rawJson);
    w.endObject();
    if (!writeFileAtomic(jobDir(id) + "/job.json", w.str() + "\n")) {
        if (err)
            *err = "cannot persist job.json";
        return false;
    }
    if (!writeState(id, JobState::Queued, "")) {
        if (err)
            *err = "cannot persist state.json";
        return false;
    }
    return true;
}

bool
Spool::writeState(const std::string &id, JobState state,
                  const std::string &error)
{
    obs::JsonWriter w;
    w.beginObject();
    obs::stampArtifact(w, "zerodev-job-state-v1");
    w.field("id", id);
    w.field("state", toString(state));
    if (!error.empty())
        w.field("error", error);
    w.endObject();
    return writeFileAtomic(jobDir(id) + "/state.json", w.str() + "\n");
}

bool
Spool::writeResult(const std::string &id, const std::string &resultJson)
{
    return writeFileAtomic(jobDir(id) + "/result.json",
                           resultJson + "\n");
}

std::string
Spool::readResult(const std::string &id) const
{
    const auto text = obs::readTextFile(jobDir(id) + "/result.json");
    if (!text)
        return {};
    std::string out = *text;
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out;
}

std::vector<PersistedJob>
Spool::loadAll() const
{
    std::vector<PersistedJob> jobs;
    std::error_code ec;
    std::filesystem::directory_iterator it(jobsDir(), ec);
    if (ec)
        return jobs;
    for (const auto &entry : it) {
        if (!entry.is_directory(ec))
            continue;
        const std::string id = entry.path().filename().string();
        std::uint64_t seq = 0;
        if (std::sscanf(id.c_str(), "job%" SCNu64, &seq) != 1) {
            std::fprintf(stderr,
                         "zerodevd: skipping foreign spool entry %s\n",
                         id.c_str());
            continue;
        }

        const auto jobText =
            obs::readTextFile(jobDir(id) + "/job.json");
        if (!jobText) {
            std::fprintf(stderr,
                         "zerodevd: skipping %s: no job.json\n",
                         id.c_str());
            continue;
        }
        std::string perr;
        const auto doc = obs::parseJson(*jobText, &perr);
        const obs::JsonValue *payload =
            doc ? doc->find("job") : nullptr;
        PersistedJob job;
        if (!payload ||
            !JobSpec::parse(*payload, &job.spec, &perr)) {
            std::fprintf(stderr,
                         "zerodevd: skipping %s: bad job.json (%s)\n",
                         id.c_str(), perr.c_str());
            continue;
        }
        job.id = id;
        job.seq = seq;

        if (const auto stateText =
                obs::readTextFile(jobDir(id) + "/state.json")) {
            if (const auto st = obs::parseJson(*stateText)) {
                jobStateFromString(st->str("state"), &job.state);
                job.error = st->str("error");
            }
        }
        // A job persisted as RUNNING means the previous daemon died
        // mid-run: re-queue it. The re-run resumes bit-identically
        // from the checkpoints left in artifacts/.
        if (job.state == JobState::Running)
            job.state = JobState::Queued;
        jobs.push_back(std::move(job));
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const PersistedJob &a, const PersistedJob &b) {
                  return a.seq < b.seq;
              });
    return jobs;
}

} // namespace zerodev::service
