/**
 * @file
 * The `zerodev-snapshot-v1` container: a versioned, CRC-checked file of
 * named binary sections, used to checkpoint and resume simulations.
 *
 * Layout (everything little-endian):
 *
 *     8 bytes   magic "ZDEVSNAP"
 *     u32       container version (1)
 *     u32       section count
 *     per section:
 *         str   name (u32 length + bytes)
 *         u64   payload size
 *         ...   payload bytes
 *     u32       CRC-32 (IEEE) of everything after the magic
 *
 * Section payloads are opaque to the container. The "system" section
 * holds CmpSystem::saveState() output and opens with the config
 * fingerprint, so restoring into a differently-configured system is
 * rejected before any state is touched. The "runner" section (written
 * by mid-run checkpoints, sim/runner.cc) carries the issue-engine state
 * needed for bit-identical resume: per-core ready/progress state and the
 * workload generators' RNG streams. Consumers that only need the system
 * image (e.g. `trace_tool replay --restore`) ignore sections they do not
 * recognise — and future writers may add sections without a version
 * bump; any change to *existing* payload layouts requires one.
 */

#ifndef ZERODEV_SIM_SNAPSHOT_HH
#define ZERODEV_SIM_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hh"

namespace zerodev
{

class CmpSystem;

/** Container version this build reads and writes. */
constexpr std::uint32_t kSnapshotVersion = 1;

/** The 8 magic bytes opening every snapshot file. */
extern const std::uint8_t kSnapshotMagic[8];

/** An in-memory snapshot: an ordered list of named byte sections. */
class Snapshot
{
  public:
    /** Encoder for the section named @p name, created on first use.
     *  Repeated calls return the same encoder (append semantics). */
    SerialOut &section(const std::string &name);

    /** Bytes of section @p name; null when absent. */
    const std::vector<std::uint8_t> *find(const std::string &name) const;

    bool has(const std::string &name) const { return find(name); }

    /** Serialize the container (magic + version + sections + CRC). */
    std::vector<std::uint8_t> encode() const;

    /** Parse @p size bytes at @p data, replacing current contents.
     *  Returns false and sets @p err on malformed input (bad magic,
     *  truncation, CRC mismatch, unsupported version). */
    bool decode(const std::uint8_t *data, std::size_t size,
                std::string *err);

    bool writeFile(const std::string &path, std::string *err) const;
    bool readFile(const std::string &path, std::string *err);

  private:
    std::vector<std::pair<std::string, SerialOut>> sections_;
};

/** Restore @p sys from the "system" section of @p snap. Returns false
 *  and sets @p err on a missing section, fingerprint mismatch, or a
 *  malformed payload. On failure the system state is unspecified and
 *  the caller should discard it. */
bool restoreSystemSection(const Snapshot &snap, CmpSystem &sys,
                          std::string *err);

} // namespace zerodev

#endif // ZERODEV_SIM_SNAPSHOT_HH
