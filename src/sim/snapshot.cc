#include "sim/snapshot.hh"

#include <cstdio>
#include <cstring>

#include "core/cmp_system.hh"

namespace zerodev
{

const std::uint8_t kSnapshotMagic[8] = {'Z', 'D', 'E', 'V',
                                        'S', 'N', 'A', 'P'};

SerialOut &
Snapshot::section(const std::string &name)
{
    for (auto &[n, out] : sections_) {
        if (n == name)
            return out;
    }
    sections_.emplace_back(name, SerialOut{});
    return sections_.back().second;
}

const std::vector<std::uint8_t> *
Snapshot::find(const std::string &name) const
{
    for (const auto &[n, out] : sections_) {
        if (n == name)
            return &out.data();
    }
    return nullptr;
}

std::vector<std::uint8_t>
Snapshot::encode() const
{
    SerialOut body;
    body.u32(kSnapshotVersion);
    body.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const auto &[name, out] : sections_) {
        body.str(name);
        body.u64(out.size());
        body.raw(out.data().data(), out.size());
    }

    std::vector<std::uint8_t> file;
    file.reserve(sizeof kSnapshotMagic + body.size() + 4);
    file.insert(file.end(), kSnapshotMagic,
                kSnapshotMagic + sizeof kSnapshotMagic);
    file.insert(file.end(), body.data().begin(), body.data().end());
    const std::uint32_t crc = crc32(body.data().data(), body.size());
    SerialOut tail;
    tail.u32(crc);
    file.insert(file.end(), tail.data().begin(), tail.data().end());
    return file;
}

bool
Snapshot::decode(const std::uint8_t *data, std::size_t size,
                 std::string *err)
{
    const auto fail = [err](const char *msg) {
        if (err)
            *err = msg;
        return false;
    };

    sections_.clear();
    if (size < sizeof kSnapshotMagic + 4 + 4 + 4)
        return fail("snapshot truncated");
    if (std::memcmp(data, kSnapshotMagic, sizeof kSnapshotMagic) != 0)
        return fail("bad snapshot magic");

    const std::uint8_t *body = data + sizeof kSnapshotMagic;
    const std::size_t bodySize = size - sizeof kSnapshotMagic - 4;
    SerialIn crcIn(data + size - 4, 4);
    if (crc32(body, bodySize) != crcIn.u32())
        return fail("snapshot CRC mismatch");

    SerialIn in(body, bodySize);
    const std::uint32_t version = in.u32();
    if (version != kSnapshotVersion)
        return fail("unsupported snapshot version");
    const std::uint32_t n = in.u32();
    for (std::uint32_t i = 0; i < n && in.ok(); ++i) {
        const std::string name = in.str();
        const std::uint64_t payload = in.u64();
        if (!in.ok() || in.remaining() < payload)
            return fail("snapshot truncated");
        SerialOut &out = section(name);
        for (std::uint64_t b = 0; b < payload; ++b)
            out.u8(in.u8());
    }
    if (!in.exhausted())
        return fail(in.ok() ? "trailing bytes after snapshot sections"
                            : "snapshot truncated");
    return true;
}

bool
Snapshot::writeFile(const std::string &path, std::string *err) const
{
    const std::vector<std::uint8_t> bytes = encode();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        if (err)
            *err = "cannot open " + path + " for writing";
        return false;
    }
    const bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed) {
        if (err)
            *err = "short write to " + path;
        return false;
    }
    return true;
}

bool
Snapshot::readFile(const std::string &path, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[65536];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    const bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk) {
        if (err)
            *err = "read error on " + path;
        return false;
    }
    return decode(bytes.data(), bytes.size(), err);
}

bool
restoreSystemSection(const Snapshot &snap, CmpSystem &sys,
                     std::string *err)
{
    const std::vector<std::uint8_t> *bytes = snap.find("system");
    if (!bytes) {
        if (err)
            *err = "snapshot has no system section";
        return false;
    }
    SerialIn in(*bytes);
    sys.restoreState(in);
    if (!in.exhausted()) {
        if (err)
            *err = in.ok() ? "trailing bytes in system section"
                           : in.error();
        return false;
    }
    return true;
}

bool
CmpSystem::saveSnapshot(const std::string &path, std::string *err) const
{
    Snapshot snap;
    saveState(snap.section("system"));
    return snap.writeFile(path, err);
}

bool
CmpSystem::restoreSnapshot(const std::string &path, std::string *err)
{
    Snapshot snap;
    if (!snap.readFile(path, err))
        return false;
    return restoreSystemSection(snap, *this, err);
}

} // namespace zerodev
