/**
 * @file
 * Experiment helpers shared by the benchmark harness: speedup and
 * weighted-speedup computation (the paper's metrics), fixed-width table
 * rendering that mirrors the figures' rows/series, and a tiny qualitative
 * check reporter (PASS/CHECK lines on each figure's headline claim).
 */

#ifndef ZERODEV_SIM_EXPERIMENT_HH
#define ZERODEV_SIM_EXPERIMENT_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace zerodev
{

/** Execution-time speedup of @p test over @p base (multi-threaded
 *  metric: completion-time ratio). */
double speedup(const RunResult &base, const RunResult &test);

/**
 * Weighted speedup of @p test normalised to @p base (multi-programmed
 * metric): sum over cores of IPC_test / IPC_base, divided by core count.
 */
double weightedSpeedup(const RunResult &base, const RunResult &test);

/** Ratio helper for normalised traffic/miss bars. */
double ratio(double test, double base);

/**
 * A printable results table.
 *
 * Row insertion is safe under concurrent sweep workers: addRow()
 * appends under a lock, and setRow() places a row at a fixed index so
 * workers finishing out of order still produce the submission-ordered
 * table a serial sweep would have printed.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Convenience: first cell is a label, the rest are numbers. */
    void addRow(const std::string &label, const std::vector<double> &vals,
                int precision = 3);

    /** Place @p cells at row @p index (growing the table as needed):
     *  rows keyed by submission index, not completion order. */
    void setRow(std::size_t index, std::vector<std::string> cells);

    /** setRow() with the label-plus-numbers convenience format. */
    void setRow(std::size_t index, const std::string &label,
                const std::vector<double> &vals, int precision = 3);

    /** Render with aligned columns. */
    std::string render() const;

    void print() const;

  private:
    mutable std::mutex mu_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmt(double v, int precision = 3);

/** Emit a qualitative-claim check line: "[PASS] ..." or "[CHECK] ...". */
void claim(bool ok, const std::string &description);

/** Count of failed claims so far (exit-code hook for the harness). */
int failedClaims();

} // namespace zerodev

#endif // ZERODEV_SIM_EXPERIMENT_HH
