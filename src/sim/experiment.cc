#include "sim/experiment.hh"

#include <atomic>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace zerodev
{

namespace
{
std::atomic<int> gFailedClaims{0};

std::vector<std::string>
labelledCells(const std::string &label, const std::vector<double> &vals,
              int precision)
{
    std::vector<std::string> cells;
    cells.reserve(vals.size() + 1);
    cells.push_back(label);
    for (double v : vals)
        cells.push_back(fmt(v, precision));
    return cells;
}
} // namespace

double
speedup(const RunResult &base, const RunResult &test)
{
    if (test.cycles == 0)
        return 0.0;
    return static_cast<double>(base.cycles) /
           static_cast<double>(test.cycles);
}

double
weightedSpeedup(const RunResult &base, const RunResult &test)
{
    return test.weightedSpeedupOver(base);
}

double
ratio(double test, double base)
{
    return base == 0.0 ? 0.0 : test / base;
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &vals,
              int precision)
{
    addRow(labelledCells(label, vals, precision));
}

void
Table::setRow(std::size_t index, std::vector<std::string> cells)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (index >= rows_.size())
        rows_.resize(index + 1);
    rows_[index] = std::move(cells);
}

void
Table::setRow(std::size_t index, const std::string &label,
              const std::vector<double> &vals, int precision)
{
    setRow(index, labelledCells(label, vals, precision));
}

std::string
Table::render() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size() && i < width.size();
             ++i) {
            os << (i == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(width[i])) << cells[i];
        }
        os << "\n";
    };
    emit(headers_);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i)
        rule += std::string(width[i], '-') + (i + 1 < width.size() ? "  "
                                                                   : "");
    os << rule << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

void
claim(bool ok, const std::string &description)
{
    std::printf("[%s] %s\n", ok ? "PASS" : "CHECK", description.c_str());
    if (!ok)
        ++gFailedClaims;
}

int
failedClaims()
{
    return gFailedClaims;
}

} // namespace zerodev
