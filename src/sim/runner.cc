#include "sim/runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "common/log.hh"
#include "common/serialize.hh"
#include "core/invariants.hh"
#include "obs/latency.hh"
#include "obs/sampler.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "sim/snapshot.hh"

namespace zerodev
{

namespace
{

/** Per-core issue state. */
struct CoreState
{
    Cycle ready = 0;          //!< time the core can issue its next access
    std::uint64_t done = 0;   //!< accesses completed (incl. warm-up)
    std::uint64_t instructions = 0;
    Cycle finish = 0;         //!< completion time of the last access
    bool active = false;
};

/** Attaches the run's observers to the system and guarantees they are
 *  detached/finished on every exit path. */
class ObserverScope
{
  public:
    ObserverScope(CmpSystem &sys, const RunConfig &rc)
        : sys_(sys), sampler_(rc.sampler), latency_(rc.latency),
          start_(std::chrono::steady_clock::now())
    {
        if (rc.tracer)
            sys_.attachTracer(rc.tracer);
        if (latency_)
            sys_.attachLatencyProfiler(latency_);
    }

    /** Advance the sampler to the latest completion time seen. */
    void
    advance(Cycle done)
    {
        horizon_ = std::max(horizon_, done);
        if (sampler_)
            sampler_->tick(horizon_);
    }

    /** Latest simulated completion time seen (heartbeat payload). */
    Cycle horizon() const { return horizon_; }

    /** Close out the run: final sample and wall-clock accounting. With
     *  ZERODEV_ZERO_WALL set (non-empty) the wall clock is zeroed so
     *  reports of identical work render byte-identically. */
    void
    complete(RunResult &res)
    {
        if (sampler_)
            sampler_->finish(res.cycles);
        if (latency_)
            res.latency = latency_->snapshot();
        const char *zero = std::getenv("ZERODEV_ZERO_WALL");
        res.wallSeconds =
            (zero && *zero)
                ? 0.0
                : std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    }

    ~ObserverScope()
    {
        sys_.attachTracer(nullptr);
        sys_.attachLatencyProfiler(nullptr);
    }

  private:
    CmpSystem &sys_;
    obs::IntervalSampler *sampler_;
    obs::LatencyProfiler *latency_;
    std::chrono::steady_clock::time_point start_;
    Cycle horizon_ = 0;
};

/** The "runner" snapshot section distinguishes the two issue engines:
 *  resuming a generator run from a replay checkpoint (or vice versa)
 *  would silently desynchronise, so the mode is checked. */
constexpr std::uint8_t kRunnerModeRun = 0;
constexpr std::uint8_t kRunnerModeReplay = 1;

/** Substitute the "{n}" placeholder with the executed-access count. */
std::string
checkpointPath(const std::string &tmpl, std::uint64_t n)
{
    const std::size_t pos = tmpl.find("{n}");
    if (pos == std::string::npos)
        return tmpl;
    return tmpl.substr(0, pos) + std::to_string(n) +
           tmpl.substr(pos + 3);
}

/** Snapshot cadence: the RunConfig field, else ZERODEV_SNAPSHOT_EVERY
 *  (only meaningful when a snapshot path exists to write to). */
std::uint64_t
effectiveSnapshotEvery(const RunConfig &rc)
{
    if (rc.snapshotPath.empty())
        return 0;
    if (rc.snapshotEvery)
        return rc.snapshotEvery;
    if (const char *env = std::getenv("ZERODEV_SNAPSHOT_EVERY"))
        return std::strtoull(env, nullptr, 10);
    return 0;
}

void
saveCoreStates(SerialOut &out, const std::vector<CoreState> &state)
{
    out.u32(static_cast<std::uint32_t>(state.size()));
    for (const CoreState &cs : state) {
        out.u64(cs.ready);
        out.u64(cs.done);
        out.u64(cs.instructions);
        out.u64(cs.finish);
        out.b(cs.active);
    }
}

void
restoreCoreStates(SerialIn &in, std::vector<CoreState> &state)
{
    if (!in.check(in.u32() == state.size(),
                  "checkpoint core count mismatch"))
        return;
    for (CoreState &cs : state) {
        cs.ready = in.u64();
        cs.done = in.u64();
        cs.instructions = in.u64();
        cs.finish = in.u64();
        cs.active = in.b();
    }
}

/** Write one mid-run checkpoint (system + issue-engine state; when a
 *  sampler is attached its phase state rides along in a "sampler"
 *  section so resumed time series stay aligned with a straight run). */
void
writeCheckpoint(const CmpSystem &sys, std::uint8_t mode,
                const std::vector<CoreState> &state,
                const std::vector<ThreadGenerator> *gens,
                std::uint64_t executed,
                const obs::IntervalSampler *sampler,
                const std::string &path)
{
    Snapshot snap;
    sys.saveState(snap.section("system"));
    SerialOut &r = snap.section("runner");
    r.u8(mode);
    r.u64(executed);
    saveCoreStates(r, state);
    r.b(gens != nullptr);
    if (gens) {
        r.u32(static_cast<std::uint32_t>(gens->size()));
        for (const ThreadGenerator &g : *gens)
            g.save(r);
    }
    if (sampler)
        sampler->save(snap.section("sampler"));
    std::string err;
    if (!snap.writeFile(path, &err))
        fatal("checkpoint write failed: %s", err.c_str());
}

/** Restore a mid-run checkpoint; returns the executed-access count the
 *  run continues from. Any mismatch with the current run setup is fatal
 *  (the tools pre-validate with CmpSystem::restoreSnapshot and the
 *  shared exit contract; the engine itself has no partial-failure
 *  story). */
std::uint64_t
loadCheckpoint(CmpSystem &sys, std::uint8_t mode,
               std::vector<CoreState> &state,
               std::vector<ThreadGenerator> *gens,
               obs::IntervalSampler *sampler, const std::string &path)
{
    Snapshot snap;
    std::string err;
    if (!snap.readFile(path, &err))
        fatal("cannot restore checkpoint %s: %s", path.c_str(),
              err.c_str());
    if (!restoreSystemSection(snap, sys, &err))
        fatal("cannot restore checkpoint %s: %s", path.c_str(),
              err.c_str());
    const std::vector<std::uint8_t> *bytes = snap.find("runner");
    if (!bytes)
        fatal("checkpoint %s has no runner section", path.c_str());
    SerialIn in(*bytes);
    in.check(in.u8() == mode, "checkpoint issue-engine mode mismatch");
    const std::uint64_t executed = in.u64();
    restoreCoreStates(in, state);
    const bool hasGens = in.b();
    if (gens) {
        in.check(hasGens, "checkpoint lacks workload generator state");
        in.check(in.u32() == gens->size(),
                 "checkpoint generator count mismatch");
        if (in.ok()) {
            for (ThreadGenerator &g : *gens)
                g.restore(in);
        }
    }
    if (!in.exhausted())
        fatal("cannot restore checkpoint %s: %s", path.c_str(),
              in.ok() ? "trailing bytes in runner section"
                      : in.error().c_str());

    // A sampler attached to the resumed run continues the checkpointed
    // phase (older checkpoints without the section start it fresh; a
    // section without an attached sampler is simply unused).
    if (sampler) {
        if (const std::vector<std::uint8_t> *sb = snap.find("sampler")) {
            SerialIn sin(*sb);
            sampler->restore(sin);
            if (!sin.exhausted())
                fatal("cannot restore checkpoint %s: %s", path.c_str(),
                      sin.ok() ? "trailing bytes in sampler section"
                               : sin.error().c_str());
        }
    }
    return executed;
}

} // namespace

double
weightedSpeedup(const std::vector<double> &base_ipc,
                const std::vector<double> &test_ipc)
{
    const std::size_t n = std::min(base_ipc.size(), test_ipc.size());
    if (n == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        if (base_ipc[c] > 0.0)
            sum += test_ipc[c] / base_ipc[c];
    }
    return sum / static_cast<double>(n);
}

double
RunResult::weightedSpeedupOver(const RunResult &base) const
{
    std::vector<double> b, t;
    b.reserve(base.coreCycles.size());
    t.reserve(coreCycles.size());
    for (std::uint32_t c = 0; c < base.coreCycles.size(); ++c)
        b.push_back(base.ipc(c));
    for (std::uint32_t c = 0; c < coreCycles.size(); ++c)
        t.push_back(ipc(c));
    return zerodev::weightedSpeedup(b, t);
}

RunResult
run(CmpSystem &sys, const Workload &workload, const RunConfig &rc)
{
    const std::uint32_t cores =
        std::min(sys.totalCores(), workload.threadCount());
    if (cores == 0)
        fatal("workload %s has no threads", workload.name().c_str());

    std::vector<ThreadGenerator> gens;
    gens.reserve(cores);
    std::vector<CoreState> state(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        gens.push_back(workload.makeGenerator(c));
        state[c].active = true;
    }

    std::unique_ptr<TraceWriter> tracer;
    if (!rc.tracePath.empty())
        tracer = std::make_unique<TraceWriter>(rc.tracePath, cores);

    ObserverScope observers(sys, rc);

    const std::uint64_t total =
        rc.warmupPerCore + rc.accessesPerCore;
    std::uint64_t executed = 0;
    if (!rc.restorePath.empty()) {
        executed = loadCheckpoint(sys, kRunnerModeRun, state, &gens,
                                  rc.sampler, rc.restorePath);
    }
    const std::uint64_t snap_every = effectiveSnapshotEvery(rc);
    std::uint64_t next_snap =
        snap_every ? (executed / snap_every + 1) * snap_every : ~0ull;
    std::uint64_t next_check =
        rc.invariantCheckInterval ? executed + rc.invariantCheckInterval
                                  : ~0ull;
    const std::uint64_t beat =
        rc.telemetry ? rc.telemetry->heartbeatEvery() : 0;
    std::uint64_t next_beat = beat ? (executed / beat + 1) * beat : ~0ull;

    // Issue in globally non-decreasing ready-time order: a linear scan
    // over <= 128 cores per transaction keeps the engine simple and is
    // far from the bottleneck.
    bool interrupted = false;
    while (true) {
        std::uint32_t best = cores;
        Cycle best_t = ~0ull;
        for (std::uint32_t c = 0; c < cores; ++c) {
            if (state[c].active && state[c].ready < best_t) {
                best_t = state[c].ready;
                best = c;
            }
        }
        if (best == cores)
            break; // every core finished

        CoreState &cs = state[best];
        const MemAccess a = gens[best].next();
        if (tracer)
            tracer->append({best, a});

        const Cycle issue = cs.ready + a.gap; // 1 IPC between accesses
        const Cycle done = sys.access(best, a.type, a.block, issue);
        observers.advance(done);
        cs.ready = done;
        cs.finish = done;
        cs.instructions += a.gap + 1;
        ++cs.done;
        if (cs.done >= total)
            cs.active = false;

        ++executed;
        if (executed >= next_check) {
            assertInvariants(sys);
            next_check += rc.invariantCheckInterval;
        }
        if (executed >= next_snap) {
            writeCheckpoint(sys, kRunnerModeRun, state, &gens, executed,
                            rc.sampler,
                            checkpointPath(rc.snapshotPath, executed));
            next_snap += snap_every;
        }
        // Cooperative preemption: poll every 256 transactions; park a
        // final checkpoint so the run can resume bit-identically.
        if (rc.stopRequest && (executed & 0xffu) == 0 &&
            rc.stopRequest->load(std::memory_order_relaxed)) {
            if (!rc.snapshotPath.empty()) {
                writeCheckpoint(
                    sys, kRunnerModeRun, state, &gens, executed,
                    rc.sampler,
                    checkpointPath(rc.snapshotPath, executed));
            }
            interrupted = true;
            break;
        }
        if (executed >= next_beat) {
            rc.telemetry->progress(executed, observers.horizon());
            if (rc.telemetry->stallSnapshotRequested()) {
                const std::string p = rc.telemetry->claimStallSnapshot();
                if (!p.empty()) {
                    writeCheckpoint(sys, kRunnerModeRun, state, &gens,
                                    executed, rc.sampler, p);
                }
            }
            next_beat += beat;
        }
        if (rc.plantStallAt && executed == rc.plantStallAt &&
            rc.plantStallSeconds > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(rc.plantStallSeconds));
        }
    }
    if (rc.telemetry)
        rc.telemetry->progress(executed, observers.horizon());

    RunResult res;
    res.workload = workload.name();
    res.coreCycles.resize(cores);
    res.coreInstructions.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        res.coreCycles[c] = state[c].finish;
        res.coreInstructions[c] = state[c].instructions;
        res.cycles = std::max(res.cycles, state[c].finish);
        res.instructions += state[c].instructions;
    }
    res.coreCacheMisses = sys.protoStats().l2Misses;
    res.trafficBytes = sys.totalTrafficBytes();
    res.devInvalidations = sys.protoStats().devInvalidations;
    res.devByInducer = sys.protoStats().devByInducer;
    res.inclusionByInducer = sys.protoStats().inclusionByInducer;
    res.accesses = sys.protoStats().accesses;
    res.system = sys.report();
    res.interrupted = interrupted;
    observers.complete(res);
    return res;
}

RunResult
replay(CmpSystem &sys, const TraceReader &trace, const RunConfig &rc)
{
    const std::uint32_t cores = trace.cores();
    std::vector<CoreState> state(cores);
    ObserverScope observers(sys, rc);

    std::uint64_t executed = 0;
    if (!rc.restorePath.empty()) {
        executed = loadCheckpoint(sys, kRunnerModeReplay, state, nullptr,
                                  rc.sampler, rc.restorePath);
    }
    const std::uint64_t snap_every = effectiveSnapshotEvery(rc);
    std::uint64_t next_snap =
        snap_every ? (executed / snap_every + 1) * snap_every : ~0ull;
    const std::uint64_t beat =
        rc.telemetry ? rc.telemetry->heartbeatEvery() : 0;
    std::uint64_t next_beat = beat ? (executed / beat + 1) * beat : ~0ull;

    const std::vector<TraceRecord> &records = trace.records();
    if (executed > records.size()) {
        fatal("checkpoint is %llu records in, but the trace has only %zu",
              static_cast<unsigned long long>(executed), records.size());
    }
    for (std::size_t i = executed; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];
        if (rec.core >= cores)
            fatal("trace record references core %u of %u", rec.core,
                  cores);
        CoreState &cs = state[rec.core];
        const Cycle issue = cs.ready + rec.access.gap;
        const Cycle done =
            sys.access(rec.core, rec.access.type, rec.access.block, issue);
        observers.advance(done);
        cs.ready = done;
        cs.finish = done;
        cs.instructions += rec.access.gap + 1;
        ++cs.done;

        ++executed;
        if (executed >= next_snap) {
            writeCheckpoint(sys, kRunnerModeReplay, state, nullptr,
                            executed, rc.sampler,
                            checkpointPath(rc.snapshotPath, executed));
            next_snap += snap_every;
        }
        if (executed >= next_beat) {
            rc.telemetry->progress(executed, observers.horizon());
            if (rc.telemetry->stallSnapshotRequested()) {
                const std::string p = rc.telemetry->claimStallSnapshot();
                if (!p.empty()) {
                    writeCheckpoint(sys, kRunnerModeReplay, state,
                                    nullptr, executed, rc.sampler, p);
                }
            }
            next_beat += beat;
        }
        if (rc.plantStallAt && executed == rc.plantStallAt &&
            rc.plantStallSeconds > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(rc.plantStallSeconds));
        }
    }
    if (rc.telemetry)
        rc.telemetry->progress(executed, observers.horizon());

    RunResult res;
    res.workload = "trace";
    res.coreCycles.resize(cores);
    res.coreInstructions.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        res.coreCycles[c] = state[c].finish;
        res.coreInstructions[c] = state[c].instructions;
        res.cycles = std::max(res.cycles, state[c].finish);
        res.instructions += state[c].instructions;
    }
    res.coreCacheMisses = sys.protoStats().l2Misses;
    res.trafficBytes = sys.totalTrafficBytes();
    res.devInvalidations = sys.protoStats().devInvalidations;
    res.devByInducer = sys.protoStats().devByInducer;
    res.inclusionByInducer = sys.protoStats().inclusionByInducer;
    res.accesses = sys.protoStats().accesses;
    res.system = sys.report();
    observers.complete(res);
    return res;
}

} // namespace zerodev
