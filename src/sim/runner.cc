#include "sim/runner.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/log.hh"
#include "core/invariants.hh"
#include "obs/latency.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace zerodev
{

namespace
{

/** Per-core issue state. */
struct CoreState
{
    Cycle ready = 0;          //!< time the core can issue its next access
    std::uint64_t done = 0;   //!< accesses completed (incl. warm-up)
    std::uint64_t instructions = 0;
    Cycle finish = 0;         //!< completion time of the last access
    bool active = false;
};

/** Attaches the run's observers to the system and guarantees they are
 *  detached/finished on every exit path. */
class ObserverScope
{
  public:
    ObserverScope(CmpSystem &sys, const RunConfig &rc)
        : sys_(sys), sampler_(rc.sampler), latency_(rc.latency),
          start_(std::chrono::steady_clock::now())
    {
        if (rc.tracer)
            sys_.attachTracer(rc.tracer);
        if (latency_)
            sys_.attachLatencyProfiler(latency_);
    }

    /** Advance the sampler to the latest completion time seen. */
    void
    advance(Cycle done)
    {
        horizon_ = std::max(horizon_, done);
        if (sampler_)
            sampler_->tick(horizon_);
    }

    /** Close out the run: final sample and wall-clock accounting. */
    void
    complete(RunResult &res)
    {
        if (sampler_)
            sampler_->finish(res.cycles);
        if (latency_)
            res.latency = latency_->snapshot();
        res.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
    }

    ~ObserverScope()
    {
        sys_.attachTracer(nullptr);
        sys_.attachLatencyProfiler(nullptr);
    }

  private:
    CmpSystem &sys_;
    obs::IntervalSampler *sampler_;
    obs::LatencyProfiler *latency_;
    std::chrono::steady_clock::time_point start_;
    Cycle horizon_ = 0;
};

} // namespace

double
weightedSpeedup(const std::vector<double> &base_ipc,
                const std::vector<double> &test_ipc)
{
    const std::size_t n = std::min(base_ipc.size(), test_ipc.size());
    if (n == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        if (base_ipc[c] > 0.0)
            sum += test_ipc[c] / base_ipc[c];
    }
    return sum / static_cast<double>(n);
}

double
RunResult::weightedSpeedupOver(const RunResult &base) const
{
    std::vector<double> b, t;
    b.reserve(base.coreCycles.size());
    t.reserve(coreCycles.size());
    for (std::uint32_t c = 0; c < base.coreCycles.size(); ++c)
        b.push_back(base.ipc(c));
    for (std::uint32_t c = 0; c < coreCycles.size(); ++c)
        t.push_back(ipc(c));
    return zerodev::weightedSpeedup(b, t);
}

RunResult
run(CmpSystem &sys, const Workload &workload, const RunConfig &rc)
{
    const std::uint32_t cores =
        std::min(sys.totalCores(), workload.threadCount());
    if (cores == 0)
        fatal("workload %s has no threads", workload.name().c_str());

    std::vector<ThreadGenerator> gens;
    gens.reserve(cores);
    std::vector<CoreState> state(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        gens.push_back(workload.makeGenerator(c));
        state[c].active = true;
    }

    std::unique_ptr<TraceWriter> tracer;
    if (!rc.tracePath.empty())
        tracer = std::make_unique<TraceWriter>(rc.tracePath, cores);

    ObserverScope observers(sys, rc);

    const std::uint64_t total =
        rc.warmupPerCore + rc.accessesPerCore;
    std::uint64_t executed = 0;
    std::uint64_t next_check =
        rc.invariantCheckInterval ? rc.invariantCheckInterval : ~0ull;

    // Issue in globally non-decreasing ready-time order: a linear scan
    // over <= 128 cores per transaction keeps the engine simple and is
    // far from the bottleneck.
    while (true) {
        std::uint32_t best = cores;
        Cycle best_t = ~0ull;
        for (std::uint32_t c = 0; c < cores; ++c) {
            if (state[c].active && state[c].ready < best_t) {
                best_t = state[c].ready;
                best = c;
            }
        }
        if (best == cores)
            break; // every core finished

        CoreState &cs = state[best];
        const MemAccess a = gens[best].next();
        if (tracer)
            tracer->append({best, a});

        const Cycle issue = cs.ready + a.gap; // 1 IPC between accesses
        const Cycle done = sys.access(best, a.type, a.block, issue);
        observers.advance(done);
        cs.ready = done;
        cs.finish = done;
        cs.instructions += a.gap + 1;
        ++cs.done;
        if (cs.done >= total)
            cs.active = false;

        if (++executed >= next_check) {
            assertInvariants(sys);
            next_check += rc.invariantCheckInterval;
        }
    }

    RunResult res;
    res.workload = workload.name();
    res.coreCycles.resize(cores);
    res.coreInstructions.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        res.coreCycles[c] = state[c].finish;
        res.coreInstructions[c] = state[c].instructions;
        res.cycles = std::max(res.cycles, state[c].finish);
        res.instructions += state[c].instructions;
    }
    res.coreCacheMisses = sys.protoStats().l2Misses;
    res.trafficBytes = sys.totalTrafficBytes();
    res.devInvalidations = sys.protoStats().devInvalidations;
    res.accesses = sys.protoStats().accesses;
    res.system = sys.report();
    observers.complete(res);
    return res;
}

RunResult
replay(CmpSystem &sys, const TraceReader &trace, const RunConfig &rc)
{
    const std::uint32_t cores = trace.cores();
    std::vector<CoreState> state(cores);
    ObserverScope observers(sys, rc);

    for (const TraceRecord &rec : trace.records()) {
        if (rec.core >= cores)
            fatal("trace record references core %u of %u", rec.core,
                  cores);
        CoreState &cs = state[rec.core];
        const Cycle issue = cs.ready + rec.access.gap;
        const Cycle done =
            sys.access(rec.core, rec.access.type, rec.access.block, issue);
        observers.advance(done);
        cs.ready = done;
        cs.finish = done;
        cs.instructions += rec.access.gap + 1;
        ++cs.done;
    }

    RunResult res;
    res.workload = "trace";
    res.coreCycles.resize(cores);
    res.coreInstructions.resize(cores);
    for (std::uint32_t c = 0; c < cores; ++c) {
        res.coreCycles[c] = state[c].finish;
        res.coreInstructions[c] = state[c].instructions;
        res.cycles = std::max(res.cycles, state[c].finish);
        res.instructions += state[c].instructions;
    }
    res.coreCacheMisses = sys.protoStats().l2Misses;
    res.trafficBytes = sys.totalTrafficBytes();
    res.devInvalidations = sys.protoStats().devInvalidations;
    res.accesses = sys.protoStats().accesses;
    res.system = sys.report();
    observers.complete(res);
    return res;
}

} // namespace zerodev
