/**
 * @file
 * The simulation driver: executes a Workload on a CmpSystem by issuing
 * each core's accesses in globally non-decreasing time order (the
 * transaction-level ordering the protocol engine requires), collects
 * per-core progress, and extracts the metrics the paper's figures use
 * (execution cycles, weighted speedup inputs, core cache misses,
 * interconnect traffic).
 */

#ifndef ZERODEV_SIM_RUNNER_HH
#define ZERODEV_SIM_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "core/cmp_system.hh"
#include "obs/latency.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

namespace zerodev
{

namespace obs
{
class Tracer;
class IntervalSampler;
class TelemetryJob;
} // namespace obs

/** Run-control parameters. */
struct RunConfig
{
    /** Memory accesses each core executes (fixed work per core). */
    std::uint64_t accessesPerCore = 50000;

    /** Warm-up accesses per core (executed, not counted in cycles). */
    std::uint64_t warmupPerCore = 0;

    /** Check system invariants every N accesses (0 = never). */
    std::uint64_t invariantCheckInterval = 0;

    /** Optional path to record the access trace. */
    std::string tracePath;

    /** Optional coherence tracer, attached to the system for the run
     *  (events only flow when the tracer is runtime-enabled). */
    obs::Tracer *tracer = nullptr;

    /** Optional interval sampler, ticked as simulated time advances and
     *  finished at the run's completion cycle. */
    obs::IntervalSampler *sampler = nullptr;

    /** Optional critical-path latency profiler, attached to the system
     *  for the run; its snapshot lands in RunResult::latency. */
    obs::LatencyProfiler *latency = nullptr;

    /** Optional live-telemetry job (obs/telemetry.hh): the issue loop
     *  publishes a heartbeat — accesses executed, simulated time — every
     *  heartbeatEvery() accesses and services snapshot-on-stall requests
     *  at those same (checkpoint-safe) boundaries. Completion is
     *  published by the caller from the RunResult. */
    obs::TelemetryJob *telemetry = nullptr;

    /** Test-only planted stall for the watchdog self-test: after
     *  executing access #plantStallAt the loop sleeps plantStallSeconds
     *  of host time (0 = disabled; never set outside tests/tools). */
    std::uint64_t plantStallAt = 0;
    double plantStallSeconds = 0.0;

    // --- checkpointing (sim/snapshot.hh) ---

    /** Write a checkpoint every N executed accesses (0 = disabled; the
     *  ZERODEV_SNAPSHOT_EVERY environment variable supplies the cadence
     *  when this is 0). Checkpoints only happen when snapshotPath is
     *  set, and are always taken between transactions. */
    std::uint64_t snapshotEvery = 0;

    /** Checkpoint file path. A "{n}" placeholder is replaced with the
     *  executed-access count (keeping every checkpoint); without it the
     *  latest checkpoint overwrites the file. */
    std::string snapshotPath;

    /** Resume from this checkpoint file: the system state and the issue
     *  engine (per-core progress, workload RNG streams) continue exactly
     *  where the checkpoint was taken, so the completed run is
     *  bit-identical to an uninterrupted one. */
    std::string restorePath;

    /** Optional cooperative stop request (service preemption): the
     *  issue loop polls the flag at transaction boundaries and, when it
     *  flips true, writes a final checkpoint to snapshotPath (when set,
     *  regardless of cadence) and returns early with
     *  RunResult::interrupted set. Resuming the checkpoint completes
     *  the run bit-identically to an uninterrupted one. */
    const std::atomic<bool> *stopRequest = nullptr;
};

/** Aggregated result of one run. */
struct RunResult
{
    std::string workload;
    Cycle cycles = 0;              //!< completion time (max over cores)
    std::uint64_t instructions = 0;
    std::vector<Cycle> coreCycles; //!< per-core completion time
    std::vector<std::uint64_t> coreInstructions;
    std::uint64_t coreCacheMisses = 0;
    std::uint64_t trafficBytes = 0;
    std::uint64_t devInvalidations = 0;
    /** Eviction provenance: DEV / inclusion invalidations attributed to
     *  each inducing global core (leakage observability; the sums equal
     *  devInvalidations resp. the inclusion counter in `system`). */
    std::vector<std::uint64_t> devByInducer;
    std::vector<std::uint64_t> inclusionByInducer;
    StatDump system; //!< the full CmpSystem dump

    /** Critical-path latency attribution (zeros unless a profiler was
     *  attached through RunConfig::latency). */
    obs::LatencyBreakdown latency;

    /** Simulated memory accesses executed (protocol transactions,
     *  including warm-up) — the work unit of the sim-rate metric. */
    std::uint64_t accesses = 0;

    /** Host wall-clock seconds the run consumed (sim-rate profiling).
     *  Zeroed when the ZERODEV_ZERO_WALL environment variable is set to
     *  a non-empty value, so two runs of the same work render
     *  byte-identical reports (daemon-vs-direct CI gates). */
    double wallSeconds = 0.0;

    /** True when the run stopped early at a RunConfig::stopRequest; the
     *  partial metrics are not meaningful and must not be reported. */
    bool interrupted = false;

    /** Host simulation rate in million accesses per second; 0 when the
     *  wall clock was zeroed (determinism comparisons). Informational
     *  only — never a gated metric. */
    double
    maccessesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(accesses) / wallSeconds / 1e6
                   : 0.0;
    }

    /** Per-core IPC (weighted-speedup ingredient). */
    double ipc(std::uint32_t core) const
    {
        if (core >= coreCycles.size()) {
            panic("RunResult::ipc(%u): run had only %zu cores", core,
                  coreCycles.size());
        }
        return coreCycles[core] == 0
                   ? 0.0
                   : static_cast<double>(coreInstructions[core]) /
                         static_cast<double>(coreCycles[core]);
    }

    /** The paper's multi-programmed metric: weighted speedup of this run
     *  over @p base — mean over the common cores of IPC / base IPC. */
    double weightedSpeedupOver(const RunResult &base) const;
};

/** Weighted speedup of @p test_ipc over @p base_ipc: sum of test/base
 *  IPC ratios over the common prefix (cores whose base IPC is zero
 *  contribute 0), divided by the common core count. Returns 0 when the
 *  prefix is empty. */
double weightedSpeedup(const std::vector<double> &base_ipc,
                       const std::vector<double> &test_ipc);

/** Execute @p workload on @p sys. Thread i of the workload drives global
 *  core i; cores beyond the workload's thread count stay idle. */
RunResult run(CmpSystem &sys, const Workload &workload,
              const RunConfig &rc);

/** Replay a recorded trace on @p sys. */
RunResult replay(CmpSystem &sys, const TraceReader &trace,
                 const RunConfig &rc);

} // namespace zerodev

#endif // ZERODEV_SIM_RUNNER_HH
