/**
 * @file
 * zerodevctl — control client for the zerodevd simulation service.
 *
 * Speaks zerodev-rpc-v1 over the daemon's Unix-domain socket: submit a
 * job spec, watch it to completion, fetch the result document, cancel,
 * drain or stop the daemon, or dump live stats. `run-local` executes a
 * job spec in-process through the exact service code path without a
 * daemon — the comparator CI uses to prove daemon-submitted artifacts
 * are byte-identical to direct execution.
 *
 * Exit codes (aligned with trace_tool / fuzz_tool — see
 * docs/OBSERVABILITY.md):
 *   0  success (a DONE job's own exit_code when fetching results)
 *   1  runtime failure / job FAILED or CANCELLED / RPC error
 *   2  usage error
 *   3  job spec file unreadable or invalid JSON
 *   4  divergence detected (a fuzz job's exit_code passes through)
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "obs/json.hh"
#include "obs/report.hh"
#include "service/client.hh"
#include "service/jobspec.hh"
#include "service/protocol.hh"

using namespace zerodev;
using namespace zerodev::service;

namespace
{

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;

const char *const kUsage =
    "usage: zerodevctl [--socket PATH] <verb> [args]\n"
    "\n"
    "The socket defaults to $ZERODEVD_SOCKET.\n"
    "\n"
    "verbs:\n"
    "  submit <job.json> [--retry N]\n"
    "      submit a zerodev-job-v1 spec; prints the job id. On\n"
    "      queue-full back-pressure, --retry re-submits up to N times,\n"
    "      sleeping the daemon's suggested retry_after_ms between\n"
    "      attempts.\n"
    "  status <id>     print the job's state\n"
    "  watch <id>      poll until the job is terminal; exit 0 on DONE,\n"
    "                  1 on FAILED/CANCELLED\n"
    "  result <id>     print the job's result document; exits with the\n"
    "                  job's own exit code (fuzz divergences exit 4)\n"
    "  cancel <id>     cancel a queued or running job\n"
    "  stats           print daemon queue counters + live status\n"
    "  ping            check the daemon is responding\n"
    "  drain           finish queued work, then stop the daemon\n"
    "  shutdown        checkpoint the running job and stop immediately\n"
    "  run-local <job.json> --out DIR\n"
    "      execute a job spec in-process (no daemon): artifacts land\n"
    "      in DIR exactly as a daemon would produce them\n"
    "\n"
    "exit codes: 0 ok, 1 runtime/job failure, 2 usage error,\n"
    "            3 bad job file, 4 divergence detected\n";

int
usage(const char *why = nullptr)
{
    if (why)
        std::fprintf(stderr, "zerodevctl: %s\n", why);
    std::fputs(kUsage, stderr);
    return kExitUsage;
}

int
transportError(const std::string &err)
{
    std::fprintf(stderr, "zerodevctl: %s\n", err.c_str());
    return kExitRuntime;
}

/** Print an ok:false response's error code + detail; returns 1. */
int
rpcError(const obs::JsonValue &resp)
{
    const std::string detail = resp.str("detail");
    std::fprintf(stderr, "zerodevctl: daemon error: %s%s%s\n",
                 resp.str("error").c_str(), detail.empty() ? "" : ": ",
                 detail.c_str());
    return kExitRuntime;
}

bool
respOk(const obs::JsonValue &resp)
{
    const obs::JsonValue *ok = resp.find("ok");
    return ok && ok->isBool() && ok->boolean;
}

/** Load a job spec file, validate it client-side, return the compact
 *  rendering (empty on failure, with a message on stderr). */
std::string
loadJobSpec(const std::string &path)
{
    const auto text = obs::readTextFile(path);
    if (!text) {
        std::fprintf(stderr, "zerodevctl: cannot read %s\n",
                     path.c_str());
        return {};
    }
    std::string perr;
    const auto doc = obs::parseJson(*text, &perr);
    if (!doc) {
        std::fprintf(stderr, "zerodevctl: %s: invalid JSON: %s\n",
                     path.c_str(), perr.c_str());
        return {};
    }
    JobSpec spec;
    if (!JobSpec::parse(*doc, &spec, &perr)) {
        std::fprintf(stderr, "zerodevctl: %s: bad job spec: %s\n",
                     path.c_str(), perr.c_str());
        return {};
    }
    return spec.rawJson;
}

int
cmdSubmit(const std::string &sock, const std::string &path,
          std::uint64_t retries)
{
    const std::string jobJson = loadJobSpec(path);
    if (jobJson.empty())
        return kExitLoad;
    for (std::uint64_t attempt = 0;; ++attempt) {
        std::string err;
        const auto resp =
            rpcOnce(sock, rpcSubmitJson(jobJson), &err);
        if (!resp)
            return transportError(err);
        if (respOk(*resp)) {
            std::printf("%s\n", resp->str("id").c_str());
            return kExitOk;
        }
        if (resp->str("error") == "queue-full" && attempt < retries) {
            std::uint64_t waitMs = 500;
            if (const obs::JsonValue *ra =
                    resp->find("retry_after_ms"))
                waitMs = static_cast<std::uint64_t>(ra->number);
            std::fprintf(stderr,
                         "zerodevctl: queue full, retrying in %" PRIu64
                         " ms (%" PRIu64 "/%" PRIu64 ")\n",
                         waitMs, attempt + 1, retries);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(waitMs));
            continue;
        }
        return rpcError(*resp);
    }
}

int
cmdStatus(const std::string &sock, const std::string &id)
{
    std::string err;
    const auto resp = rpcOnce(sock, rpcRequestJson("status", id), &err);
    if (!resp)
        return transportError(err);
    if (!respOk(*resp))
        return rpcError(*resp);
    const std::string error = resp->str("error");
    std::printf("%s %s %s%s%s\n", id.c_str(),
                resp->str("type").c_str(), resp->str("state").c_str(),
                error.empty() ? "" : " ", error.c_str());
    return kExitOk;
}

int
cmdWatch(const std::string &sock, const std::string &id)
{
    ServiceClient client;
    std::string err;
    if (!client.connect(sock, &err))
        return transportError(err);
    std::string last;
    for (;;) {
        const auto resp =
            client.request(rpcRequestJson("status", id), &err);
        if (!resp)
            return transportError(err);
        if (!respOk(*resp))
            return rpcError(*resp);
        const std::string state = resp->str("state");
        if (state != last) {
            std::printf("%s %s\n", id.c_str(), state.c_str());
            std::fflush(stdout);
            last = state;
        }
        JobState st;
        if (jobStateFromString(state, &st) && isTerminal(st))
            return st == JobState::Done ? kExitOk : kExitRuntime;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
}

int
cmdResult(const std::string &sock, const std::string &id)
{
    std::string err;
    const auto resp = rpcOnce(sock, rpcRequestJson("result", id), &err);
    if (!resp)
        return transportError(err);
    if (!respOk(*resp))
        return rpcError(*resp);
    const std::string state = resp->str("state");
    if (state != "DONE") {
        std::fprintf(stderr, "zerodevctl: %s is %s%s%s\n", id.c_str(),
                     state.c_str(),
                     resp->str("error").empty() ? "" : ": ",
                     resp->str("error").c_str());
        return kExitRuntime;
    }
    const obs::JsonValue *result = resp->find("result");
    if (!result) {
        std::fprintf(stderr, "zerodevctl: %s has no result document\n",
                     id.c_str());
        return kExitRuntime;
    }
    std::printf("%s\n", obs::renderJson(*result).c_str());
    int code = kExitOk;
    if (const obs::JsonValue *ec = result->find("exit_code"))
        code = static_cast<int>(ec->number);
    return code;
}

int
cmdSimple(const std::string &sock, const std::string &op)
{
    std::string err;
    const auto resp = rpcOnce(sock, rpcRequestJson(op), &err);
    if (!resp)
        return transportError(err);
    if (!respOk(*resp))
        return rpcError(*resp);
    std::printf("%s\n", obs::renderJson(*resp).c_str());
    return kExitOk;
}

int
cmdCancel(const std::string &sock, const std::string &id)
{
    std::string err;
    const auto resp = rpcOnce(sock, rpcRequestJson("cancel", id), &err);
    if (!resp)
        return transportError(err);
    if (!respOk(*resp))
        return rpcError(*resp);
    std::printf("%s\n", obs::renderJson(*resp).c_str());
    return kExitOk;
}

int
cmdRunLocal(const std::string &path, const std::string &outDir)
{
    const auto text = obs::readTextFile(path);
    if (!text) {
        std::fprintf(stderr, "zerodevctl: cannot read %s\n",
                     path.c_str());
        return kExitLoad;
    }
    std::string perr;
    const auto doc = obs::parseJson(*text, &perr);
    if (!doc) {
        std::fprintf(stderr, "zerodevctl: %s: invalid JSON: %s\n",
                     path.c_str(), perr.c_str());
        return kExitLoad;
    }
    JobSpec spec;
    if (!JobSpec::parse(*doc, &spec, &perr)) {
        std::fprintf(stderr, "zerodevctl: %s: bad job spec: %s\n",
                     path.c_str(), perr.c_str());
        return kExitLoad;
    }
    std::error_code ec;
    std::filesystem::create_directories(outDir, ec);
    if (ec) {
        std::fprintf(stderr, "zerodevctl: cannot create %s: %s\n",
                     outDir.c_str(), ec.message().c_str());
        return kExitRuntime;
    }

    const JobOutcome out = executeJob(spec, outDir, nullptr);
    if (!out.ok) {
        std::fprintf(stderr, "zerodevctl: job failed: %s\n",
                     out.error.empty() ? "interrupted"
                                       : out.error.c_str());
        return kExitRuntime;
    }
    obs::writeTextFile(outDir + "/result.json", out.resultJson + "\n");
    std::printf("%s\n", out.resultJson.c_str());
    return out.exitCode;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *env = std::getenv("ZERODEVD_SOCKET");
    std::string sock = env ? env : "";
    int i = 1;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            return kExitOk;
        }
        if (arg == "--socket") {
            if (i + 1 >= argc)
                return usage("--socket needs a path");
            sock = argv[++i];
            continue;
        }
        break;
    }
    if (i >= argc)
        return usage();
    const std::string verb = argv[i++];

    if (verb == "run-local") {
        std::string path, outDir;
        for (; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
                outDir = argv[++i];
            else if (path.empty() && argv[i][0] != '-')
                path = argv[i];
            else
                return usage("run-local: unknown option");
        }
        if (path.empty() || outDir.empty())
            return usage("run-local needs <job.json> and --out DIR");
        return cmdRunLocal(path, outDir);
    }

    if (sock.empty())
        return usage("no socket (use --socket or $ZERODEVD_SOCKET)");

    if (verb == "submit") {
        std::string path;
        std::uint64_t retries = 0;
        for (; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--retry") && i + 1 < argc)
                retries = std::strtoull(argv[++i], nullptr, 10);
            else if (path.empty() && argv[i][0] != '-')
                path = argv[i];
            else
                return usage("submit: unknown option");
        }
        if (path.empty())
            return usage("submit needs <job.json>");
        return cmdSubmit(sock, path, retries);
    }
    if (verb == "status" || verb == "watch" || verb == "result" ||
        verb == "cancel") {
        if (i >= argc)
            return usage((verb + " needs <id>").c_str());
        const std::string id = argv[i];
        if (verb == "status")
            return cmdStatus(sock, id);
        if (verb == "watch")
            return cmdWatch(sock, id);
        if (verb == "result")
            return cmdResult(sock, id);
        return cmdCancel(sock, id);
    }
    if (verb == "stats" || verb == "ping" || verb == "drain" ||
        verb == "shutdown")
        return cmdSimple(sock, verb);
    return usage(("unknown verb: " + verb).c_str());
}
