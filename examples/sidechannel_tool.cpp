/**
 * @file
 * Directory side-channel lab CLI: the measurement end of the leakage
 * observability stack (docs/SIDECHANNEL.md).
 *
 * Runs the attack scenarios of src/attack/ across the standard config
 * cross product (unbounded directory, sparse baselines, every ZeroDEV
 * flavour, multi-socket splits) plus a partitioned-tag sparse variant,
 * estimates per-configuration channel capacity / mutual information /
 * decoder bit-error rate from the (secret, observable) trial pairs, and
 * writes one machine-readable `zerodev-leakage-v1` JSON report. The
 * verdict is the paper's isolation claim, CI-gated:
 *
 *  - every replacement-managed directory must LEAK (capacity >= 0.5
 *    bits/trial — the replacement-induced DEV channel of PAPER.md
 *    Section I-A2): the sparse baselines and the phase-priority rival
 *    backend,
 *  - every ZeroDEV flavour, the partitioned-tag variant and the
 *    directoryless DLS rival backend must NOT (capacity <= 0.05
 *    bits/trial),
 *  - no trial may violate a system invariant (including
 *    eviction-provenance conservation).
 *
 * Everything observable is simulated-time deterministic: the report is a
 * pure function of (--trials, --seed), independent of --jobs and wall
 * clock, so two runs diff clean.
 *
 * Exit codes (aligned with trace_tool/fuzz_tool — docs/OBSERVABILITY.md;
 * 3 is reserved, this tool loads nothing):
 *   0  all expectations met
 *   1  runtime failure, or a sparse baseline failed to leak
 *      (the lab lost its positive control)
 *   2  usage error
 *   4  isolation violation: a supposedly-isolating configuration
 *      leaked, or an invariant was violated
 */

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "attack/scenario.hh"
#include "bench_util.hh"
#include "common/parallel.hh"
#include "obs/json.hh"
#include "obs/leakage.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "verify/differ.hh"

using namespace zerodev;

namespace
{

// Exit codes — keep in sync with the file header and docs.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIsolation = 4;

// The CI-gated thresholds, in bits/trial of channel capacity.
constexpr double kLeakThresholdBits = 0.5;
constexpr double kIsolationEpsilonBits = 0.05;

const char *const kUsage =
    "usage: sidechannel_tool [--trials N] [--seed S] [--jobs J]\n"
    "                        [--out FILE] [--smoke]\n"
    "\n"
    "Runs the directory Prime+Probe and occupancy scenarios across the\n"
    "standard config cross product plus a partitioned-tag sparse\n"
    "variant, and writes a zerodev-leakage-v1 JSON report (default\n"
    "leakage.json). --smoke cuts trials to 24 for CI gates (an explicit\n"
    "--trials wins). The report is deterministic in (--trials, --seed):\n"
    "--jobs only changes wall time.\n"
    "\n"
    "exit codes: 0 ok, 1 runtime failure or sparse baseline failed to\n"
    "            leak, 2 usage error, 4 isolation violation\n";

int
usage(const char *why = nullptr)
{
    if (why)
        std::fprintf(stderr, "sidechannel_tool: %s\n", why);
    std::fputs(kUsage, stderr);
    return kExitUsage;
}

/** Strict decimal parse; nullopt on garbage, sign or overflow. */
std::optional<std::uint64_t>
parseCount(const char *s)
{
    if (!s || !*s)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || *end != '\0' || s[0] == '-')
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

/** One (variant, scenario) cell of the cross product. */
struct Cell
{
    std::string variant;
    SystemConfig cfg;
    attack::ScenarioKind kind = attack::ScenarioKind::DirPrimeProbe;
    bool expectLeak = false;

    attack::ScenarioResult res;
    obs::LeakageEstimate est;
    bool pass = false;
};

/**
 * The lab's configurations: the Differ's standard cross product (the
 * same variants the equivalence fuzzer exercises) plus "Partitioned
 * Tags, Shared Data"-style strict isolation on the 1/8-ratio sparse
 * baseline — the third point of the leakage story: sparse leaks,
 * ZeroDEV removes the channel by construction, way partitioning
 * removes it by isolation (while still paying self-conflict DEVs).
 */
std::vector<verify::Variant>
labVariants()
{
    std::vector<verify::Variant> vars =
        verify::Differ::standardVariants(4);
    SystemConfig cfg;
    for (const verify::Variant &v : vars) {
        if (v.name == "sparse-8th")
            cfg = v.cfg;
    }
    cfg.directory.tagPartitions = 4;
    vars.push_back({"sparse-parttag", cfg});
    return vars;
}

/**
 * Only the replacement-managed directories carry the DEV channel: the
 * sparse baselines and the phase-priority backend (bounded directory,
 * priority-driven victim selection — a different replacement schedule,
 * same channel). Everything else is expected to isolate, including the
 * directoryless DLS backend: its "no directory" claim is measured here,
 * not assumed (the dls-zero-dev invariant merely cross-checks it).
 */
bool
expectsLeak(const std::string &variant)
{
    return variant == "sparse-1x" || variant == "sparse-8th" ||
           variant == "phasepri";
}

void
writeReport(obs::JsonWriter &w, const std::vector<Cell> &cells,
            std::uint64_t trials, std::uint64_t seed)
{
    w.beginObject();
    obs::stampArtifact(w, "zerodev-leakage-v1");
    w.field("figure", "sidechannel");
    w.field("trials", trials);
    w.field("seed", seed);
    w.key("thresholds").beginObject();
    w.field("leakCapacityBits", kLeakThresholdBits);
    w.field("isolateCapacityBits", kIsolationEpsilonBits);
    w.endObject();

    std::uint64_t leaking_baselines = 0, isolation_violations = 0;
    std::uint64_t invariant_violations = 0;
    w.key("entries").beginArray();
    for (const Cell &c : cells) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(
                          obs::configFingerprint(c.cfg)));
        w.beginObject();
        w.field("variant", c.variant);
        w.field("fingerprint", fp);
        w.field("scenario", attack::toString(c.kind));
        w.field("expectLeak", c.expectLeak);
        w.field("capacityBits", c.est.capacityBits);
        w.field("miBits", c.est.miBits);
        w.field("ber", c.est.ber);
        w.field("bins", static_cast<std::uint64_t>(c.est.bins));
        w.field("devInvalidations", c.res.devInvalidations);
        w.field("inclusionInvalidations", c.res.inclusionInvalidations);
        w.key("devByInducingCore").beginArray();
        for (std::uint64_t n : c.res.devByInducer)
            w.value(n);
        w.endArray();
        w.key("inclusionByInducingCore").beginArray();
        for (std::uint64_t n : c.res.inclusionByInducer)
            w.value(n);
        w.endArray();
        w.field("invariantViolations", c.res.invariantViolations);
        w.field("pass", c.pass);
        w.endObject();

        invariant_violations += c.res.invariantViolations;
        if (c.expectLeak && c.pass)
            ++leaking_baselines;
        if (!c.expectLeak && !c.pass)
            ++isolation_violations;
    }
    w.endArray();

    bool all = invariant_violations == 0;
    for (const Cell &c : cells)
        all = all && c.pass;
    w.key("verdict").beginObject();
    w.field("pass", all);
    w.field("leakingBaselines", leaking_baselines);
    w.field("isolationViolations", isolation_violations);
    w.field("invariantViolations", invariant_violations);
    w.endObject();
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t trials = 64, seed = 1;
    bool trials_explicit = false;
    bool smoke = false;
    std::string out = "leakage.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--trials") {
            const auto v = parseCount(next());
            if (!v || *v == 0)
                return usage("--trials wants a positive count");
            trials = *v;
            trials_explicit = true;
        } else if (arg == "--seed") {
            const auto v = parseCount(next());
            if (!v)
                return usage("--seed wants a number");
            seed = *v;
        } else if (arg == "--jobs") {
            const auto v = parseCount(next());
            if (!v || *v == 0)
                return usage("--jobs wants a positive count");
            setJobs(static_cast<unsigned>(*v));
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return usage("--out wants a path");
            out = v;
        } else if (arg == "--smoke") {
            smoke = true;
        } else {
            return usage(("unknown argument: " + arg).c_str());
        }
    }
    if (smoke && !trials_explicit)
        trials = 24;

    bench::banner("sidechannel",
                  "directory side-channel leakage lab "
                  "(docs/SIDECHANNEL.md)");

    // The full cross product: every lab variant under both scenarios.
    const std::vector<verify::Variant> vars = labVariants();
    std::vector<Cell> cells;
    for (const verify::Variant &v : vars) {
        for (const auto kind : {attack::ScenarioKind::DirPrimeProbe,
                                attack::ScenarioKind::DirOccupancy}) {
            Cell c;
            c.variant = v.name;
            c.cfg = v.cfg;
            c.kind = kind;
            c.expectLeak = expectsLeak(v.name);
            cells.push_back(std::move(c));
        }
    }

    // One sweep task per cell; trials heartbeat into live telemetry.
    // Cells are written in place by index, so the report below comes
    // out in task order whatever --jobs is.
    std::vector<bench::TaskJob> tasks;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        Cell &c = cells[i];
        bench::TaskJob t;
        t.name = c.variant + "_" + attack::toString(c.kind);
        t.cfg = c.cfg;
        t.units = trials;
        t.run = [&c, trials, seed](obs::TelemetryJob *tj) {
            attack::ScenarioOptions opt;
            opt.kind = c.kind;
            opt.trials = trials;
            opt.seed = seed;
            c.res = attack::runScenario(
                c.cfg, opt, [tj](std::uint64_t done) {
                    if (tj)
                        tj->progress(done, done);
                });
            c.est = obs::estimateLeakage(c.res.secrets,
                                         c.res.observables);
            const bool leaks =
                c.est.capacityBits >= kLeakThresholdBits;
            const bool isolates =
                c.est.capacityBits <= kIsolationEpsilonBits;
            c.pass = (c.expectLeak ? leaks : isolates) &&
                     c.res.invariantViolations == 0;
        };
        tasks.push_back(std::move(t));
    }
    bench::runSweep(tasks);

    std::printf("%-16s %-16s %9s %7s %6s %5s %8s %6s\n", "variant",
                "scenario", "capacity", "mi", "ber", "bins", "DEVs",
                "pass");
    bool sparse_failed = false, isolation_failed = false;
    for (const Cell &c : cells) {
        std::printf("%-16s %-16s %9.3f %7.3f %6.3f %5u %8" PRIu64
                    " %6s\n",
                    c.variant.c_str(), attack::toString(c.kind),
                    c.est.capacityBits, c.est.miBits, c.est.ber,
                    c.est.bins, c.res.devInvalidations,
                    c.pass ? "ok" : "FAIL");
        if (!c.pass) {
            if (c.expectLeak && c.res.invariantViolations == 0)
                sparse_failed = true;
            else
                isolation_failed = true;
        }
    }

    obs::JsonWriter w;
    writeReport(w, cells, trials, seed);
    if (!obs::writeTextFile(out, w.str() + "\n")) {
        std::fprintf(stderr, "sidechannel_tool: cannot write %s\n",
                     out.c_str());
        return kExitRuntime;
    }
    std::printf("\nreport: %s\n", out.c_str());

    if (isolation_failed) {
        std::fprintf(stderr,
                     "sidechannel_tool: ISOLATION VIOLATION — a "
                     "non-leaking configuration leaked or violated an "
                     "invariant\n");
        return kExitIsolation;
    }
    if (sparse_failed) {
        std::fprintf(stderr,
                     "sidechannel_tool: positive control lost — a "
                     "sparse baseline failed to leak\n");
        return kExitRuntime;
    }
    return kExitOk;
}
