/**
 * @file
 * Differential config-equivalence fuzz farm CLI.
 *
 * `run` drives the differential harness (src/verify/) over adversarial
 * access streams, one seed per job, across the standard config cross
 * product: unbounded directory, sparse baselines, every ZeroDEV flavour,
 * and multi-socket splits. Any divergence — a load observing a different
 * value, a destroyed memory copy being served, an invariant violation, a
 * strict core-cache-state mismatch — is automatically ddmin-shrunk to a
 * minimal repro and written out next to a machine-readable
 * `zerodev-fuzz-report-v1` JSON report. `shrink` and `replay` operate on
 * saved traces (the nightly-failure reproduction workflow); `gen` writes
 * a fuzz stream to a trace file for corpus seeding.
 *
 * Exit codes (aligned with trace_tool — see docs/OBSERVABILITY.md):
 *   0  success / no divergence
 *   1  runtime failure (I/O)
 *   2  usage error
 *   3  trace or snapshot load failure
 *   4  divergence detected
 */

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "verify/differ.hh"
#include "verify/shrink.hh"
#include "workload/trace.hh"

using namespace zerodev;
using namespace zerodev::verify;

namespace
{

// Exit codes — keep in sync with the file header and docs.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;
constexpr int kExitDivergence = 4;

const char *const kUsage =
    "usage: fuzz_tool <subcommand> [args]\n"
    "\n"
    "subcommands:\n"
    "  run [--seeds N] [--minutes M] [--jobs J] [--accesses A]\n"
    "      [--cores C] [--out DIR] [--quick] [--plant-fault I,B,S]\n"
    "      [--snapshot-every K]\n"
    "      differentially fuzz the config cross product. Runs N seeds\n"
    "      (default 8), or waves of seeds until M minutes elapsed when\n"
    "      --minutes is given. On divergence the trace is ddmin-shrunk\n"
    "      and both traces land in DIR (default .) next to\n"
    "      fuzz-report.json. --plant-fault injects a synthetic\n"
    "      mis-observation into variant I for block B after S stores\n"
    "      (pipeline self-test only). --snapshot-every checkpoints the\n"
    "      lockstep state every K accesses and saves the last\n"
    "      pre-divergence checkpoint as divergence-seed<S>.ckpt.\n"
    "  shrink <trace> [--out FILE] [--quick]\n"
    "      ddmin-shrink a diverging trace to a minimal repro\n"
    "      (FILE defaults to <trace>.min.trc)\n"
    "  replay <trace> [--quick] [--plant-fault I,B,S]\n"
    "      [--snapshot-every K] [--save-checkpoint FILE]\n"
    "      [--restore FILE]\n"
    "      replay a trace through the differential harness. With\n"
    "      --snapshot-every, a diverging replay is fast-forwarded: the\n"
    "      last pre-divergence checkpoint is restored and only the tail\n"
    "      re-runs (the replayed fraction is printed, and the\n"
    "      checkpoint is saved with --save-checkpoint). --restore skips\n"
    "      straight to a saved checkpoint and replays only the tail.\n"
    "  gen <seed> <cores> <accesses> <file>\n"
    "      write the fuzz stream for a seed to a trace file\n"
    "\n"
    "exit codes: 0 ok/no divergence, 1 runtime failure, 2 usage error,\n"
    "            3 trace/snapshot load failure, 4 divergence detected\n";

int
usage(const char *why = nullptr)
{
    if (why)
        std::fprintf(stderr, "fuzz_tool: %s\n", why);
    std::fputs(kUsage, stderr);
    return kExitUsage;
}

/** Strict decimal parse; nullopt on garbage, sign or overflow. */
std::optional<std::uint64_t>
parseCount(const char *s)
{
    if (!s || !*s)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || *end != '\0' || s[0] == '-')
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::optional<std::uint32_t>
parseCores(const char *s)
{
    const auto v = parseCount(s);
    if (!v || *v == 0 || *v > kMaxCores * kMaxSockets)
        return std::nullopt;
    return static_cast<std::uint32_t>(*v);
}

/** "I,B,S" (variant index, block, store count) for --plant-fault. */
std::optional<FaultHook>
parseFault(const char *s)
{
    FaultHook hook;
    unsigned long long i = 0, b = 0, n = 0;
    char extra = 0;
    if (std::sscanf(s, "%llu,%llu,%llu%c", &i, &b, &n, &extra) != 3)
        return std::nullopt;
    hook.enabled = true;
    hook.instance = static_cast<std::size_t>(i);
    hook.block = b;
    hook.afterStores = n;
    return hook;
}

bool
writeTrace(const std::string &path, std::uint32_t cores,
           const std::vector<TraceRecord> &records)
{
    TraceWriter w(path, cores);
    for (const TraceRecord &rec : records)
        w.append(rec);
    w.close();
    return w.written() == records.size();
}

struct RunOptions
{
    std::uint64_t seeds = 8;
    std::uint64_t minutes = 0; //!< 0 = fixed seed count
    unsigned jobs = 0;         //!< 0 = library default
    std::uint64_t accesses = 20000;
    std::uint32_t cores = 4;
    std::string outDir = ".";
    bool quick = false;
    FaultHook fault;
    std::uint64_t snapshotEvery = 0;
};

struct SeedOutcome
{
    std::uint64_t seed = 0;
    DifferResult result;
};

void
printDivergence(const std::string &label, const Divergence &d)
{
    std::printf("DIVERGENCE %s: rule=%s instance=%s access=%" PRIu64
                "\n  %s\n",
                label.c_str(), d.rule.c_str(), d.instance.c_str(),
                d.accessIndex, d.detail.c_str());
}

/** The machine-readable run summary consumed by CI. */
std::string
fuzzReport(const RunOptions &opt, const Differ &differ,
           std::uint64_t seedsRun, double elapsedSec,
           const SeedOutcome *bad, const ShrinkResult *shrunk,
           const std::string &tracePath, const std::string &minPath,
           const std::string &ckptPath)
{
    obs::JsonWriter w;
    w.beginObject();
    obs::stampArtifact(w, "zerodev-fuzz-report-v1");
    w.field("mode", opt.minutes ? "minutes" : "seeds");
    w.field("seeds_run", seedsRun);
    w.field("accesses_per_seed", opt.accesses);
    w.field("cores", static_cast<std::uint64_t>(opt.cores));
    w.field("elapsed_seconds", elapsedSec);
    w.field("fault_planted", opt.fault.enabled);
    w.key("variants").beginArray();
    for (const Variant &v : differ.variants())
        w.value(v.name);
    w.endArray();
    w.key("divergence");
    if (!bad) {
        w.null();
    } else {
        const Divergence &d = bad->result.divergence;
        w.beginObject();
        w.field("seed", bad->seed);
        w.field("rule", d.rule);
        w.field("instance", d.instance);
        w.field("access_index", d.accessIndex);
        w.field("detail", d.detail);
        w.field("trace", tracePath);
        if (!ckptPath.empty()) {
            w.field("checkpoint", ckptPath);
            w.field("checkpoint_access_index",
                    bad->result.checkpoint.accessIndex);
        }
        if (shrunk && shrunk->shrunk()) {
            w.field("shrunk_trace", minPath);
            w.field("original_accesses",
                    static_cast<std::uint64_t>(shrunk->originalSize));
            w.field("shrunk_accesses",
                    static_cast<std::uint64_t>(shrunk->trace.size()));
            w.field("shrink_candidates", shrunk->candidatesTried);
            w.field("shrink_hit_cap", shrunk->hitCandidateCap);
        }
        w.endObject();
    }
    w.endObject();
    return w.str();
}

int
cmdRun(int argc, char **argv)
{
    RunOptions opt;
    for (int i = 2; i < argc; ++i) {
        const auto want = [&](const char *flag) {
            if (std::strcmp(argv[i], flag) != 0)
                return false;
            if (i + 1 >= argc)
                return false;
            return true;
        };
        if (want("--seeds")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0)
                return usage("run: --seeds needs a positive count");
            opt.seeds = *v;
        } else if (want("--minutes")) {
            const auto v = parseCount(argv[++i]);
            if (!v)
                return usage("run: --minutes needs a count");
            opt.minutes = *v;
        } else if (want("--jobs")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0)
                return usage("run: --jobs needs a positive count");
            opt.jobs = static_cast<unsigned>(*v);
        } else if (want("--accesses")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0)
                return usage("run: --accesses needs a positive count");
            opt.accesses = *v;
        } else if (want("--cores")) {
            const auto v = parseCores(argv[++i]);
            if (!v)
                return usage("run: --cores must be a valid core count");
            opt.cores = *v;
        } else if (want("--out")) {
            opt.outDir = argv[++i];
        } else if (want("--snapshot-every")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0) {
                return usage(
                    "run: --snapshot-every needs a positive count");
            }
            opt.snapshotEvery = *v;
        } else if (want("--plant-fault")) {
            const auto hook = parseFault(argv[++i]);
            if (!hook)
                return usage("run: --plant-fault needs I,B,S");
            opt.fault = *hook;
        } else if (!std::strcmp(argv[i], "--quick")) {
            opt.quick = true;
        } else {
            return usage("run: unknown or incomplete option");
        }
    }

    DifferOptions dopt;
    dopt.snapshotCadence = opt.snapshotEvery;
    Differ differ(opt.quick ? Differ::quickVariants(opt.cores)
                            : Differ::standardVariants(opt.cores),
                  dopt);
    if (opt.fault.enabled) {
        if (opt.fault.instance >= differ.variants().size())
            return usage("run: --plant-fault variant index out of range");
        differ.setFaultHook(opt.fault);
    }

    std::error_code ec;
    std::filesystem::create_directories(opt.outDir, ec);
    if (ec) {
        std::fprintf(stderr, "fuzz_tool: cannot create %s: %s\n",
                     opt.outDir.c_str(), ec.message().c_str());
        return kExitRuntime;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    const auto runSeed = [&](std::uint64_t seed) {
        SeedOutcome out;
        out.seed = seed;
        const auto stream =
            fuzzStream(seed, differ.cores(), opt.accesses);
        obs::TelemetrySink *sink = obs::TelemetrySink::fromEnv();
        if (!sink) {
            out.result = differ.run(stream);
            return out;
        }
        // Live telemetry: a per-seed Differ (same variants, same fault
        // hook) carries a progress hook feeding this seed's job.
        obs::TelemetryJob *tj =
            sink->beginJob("seed" + std::to_string(seed), "fuzz", "",
                           stream.size());
        DifferOptions sopt = differ.options();
        sopt.progress = [tj](std::uint64_t done) {
            tj->progress(done, 0);
        };
        Differ seedDiffer(differ.variants(), sopt);
        seedDiffer.setFaultHook(differ.faultHook());
        out.result = seedDiffer.run(stream);
        obs::JobCompletion c;
        c.workload = "fuzz";
        c.accesses = out.result.accesses;
        c.failed = !out.result.ok();
        if (c.failed)
            c.error = out.result.divergence.rule;
        tj->complete(c);
        return out;
    };

    std::printf("fuzz: %zu variants x %" PRIu64
                " accesses/seed, %u cores%s\n",
                differ.variants().size(), opt.accesses, opt.cores,
                opt.fault.enabled ? " [fault planted]" : "");

    std::vector<SeedOutcome> outcomes;
    std::uint64_t nextSeed = 1;
    bool timedOut = false;
    while (true) {
        // Seed-count mode runs one exact batch; time-budget mode keeps
        // issuing waves of one-per-worker until the budget is spent.
        std::uint64_t wave;
        if (opt.minutes == 0) {
            wave = opt.seeds - (nextSeed - 1);
            if (wave == 0)
                break;
        } else {
            if (elapsed() >= static_cast<double>(opt.minutes) * 60.0) {
                timedOut = true;
                break;
            }
            wave = opt.jobs ? opt.jobs : defaultJobs();
        }
        const std::uint64_t base = nextSeed;
        auto batch = parallelMap(
            static_cast<std::size_t>(wave),
            [&](std::size_t i) { return runSeed(base + i); }, opt.jobs);
        nextSeed += wave;
        bool anyBad = false;
        for (auto &o : batch) {
            anyBad = anyBad || !o.result.ok();
            outcomes.push_back(std::move(o));
        }
        if (anyBad)
            break;
    }

    const SeedOutcome *bad = nullptr;
    for (const auto &o : outcomes) {
        if (!o.result.ok() && !bad)
            bad = &o;
    }

    std::string tracePath, minPath, ckptPath;
    ShrinkResult shrunk;
    bool haveShrunk = false;
    if (bad) {
        printDivergence("seed " + std::to_string(bad->seed),
                        bad->result.divergence);
        const auto stream =
            fuzzStream(bad->seed, differ.cores(), opt.accesses);
        tracePath = opt.outDir + "/divergence-seed" +
                    std::to_string(bad->seed) + ".trc";
        if (!writeTrace(tracePath, differ.cores(), stream))
            return kExitRuntime;
        if (bad->result.checkpoint.valid) {
            // The last lockstep state captured before the divergence:
            // `fuzz_tool replay --restore` fast-forwards to it and
            // re-runs only the tail.
            ckptPath = opt.outDir + "/divergence-seed" +
                       std::to_string(bad->seed) + ".ckpt";
            std::string err;
            if (!bad->result.checkpoint.save(ckptPath, &err)) {
                std::fprintf(stderr, "fuzz_tool: %s\n", err.c_str());
                return kExitRuntime;
            }
            std::printf("checkpoint at access %" PRIu64 ": %s\n",
                        bad->result.checkpoint.accessIndex,
                        ckptPath.c_str());
        }
        std::printf("wrote %s (%zu records); shrinking...\n",
                    tracePath.c_str(), stream.size());
        shrunk = shrinkTrace(differ, stream);
        haveShrunk = shrunk.shrunk();
        if (haveShrunk) {
            minPath = opt.outDir + "/divergence-seed" +
                      std::to_string(bad->seed) + ".min.trc";
            if (!writeTrace(minPath, differ.cores(), shrunk.trace))
                return kExitRuntime;
            std::printf("shrunk %zu -> %zu records (%" PRIu64
                        " candidates%s): %s\n",
                        shrunk.originalSize, shrunk.trace.size(),
                        shrunk.candidatesTried,
                        shrunk.hitCandidateCap ? ", hit cap" : "",
                        minPath.c_str());
        }
    }

    const std::string report = fuzzReport(
        opt, differ, outcomes.size(), elapsed(), bad,
        haveShrunk ? &shrunk : nullptr, tracePath, minPath, ckptPath);
    const std::string reportPath = opt.outDir + "/fuzz-report.json";
    if (!obs::writeTextFile(reportPath, report + "\n"))
        return kExitRuntime;

    std::printf("%" PRIu64 " seed(s) in %.1fs%s -> %s\n",
                static_cast<std::uint64_t>(outcomes.size()), elapsed(),
                timedOut ? " (time budget reached)" : "",
                reportPath.c_str());
    if (bad)
        return kExitDivergence;
    std::printf("no divergence\n");
    return kExitOk;
}

int
cmdShrink(int argc, char **argv)
{
    std::string in, out;
    bool quick = false;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (in.empty() && argv[i][0] != '-') {
            in = argv[i];
        } else {
            return usage("shrink: unknown or incomplete option");
        }
    }
    if (in.empty())
        return usage("shrink needs <trace>");
    if (out.empty())
        out = in + ".min.trc";

    TraceReader trace(in);
    if (!trace.ok()) {
        std::fprintf(stderr, "fuzz_tool: %s\n", trace.error().c_str());
        return kExitLoad;
    }
    const Differ differ(quick ? Differ::quickVariants(trace.cores())
                              : Differ::standardVariants(trace.cores()));
    const ShrinkResult res = shrinkTrace(differ, trace.records());
    if (!res.shrunk()) {
        std::printf("trace does not diverge; nothing to shrink\n");
        return kExitOk;
    }
    if (!writeTrace(out, differ.cores(), res.trace))
        return kExitRuntime;
    printDivergence(in, res.divergence);
    std::printf("shrunk %zu -> %zu records (%" PRIu64
                " candidates%s): %s\n",
                res.originalSize, res.trace.size(), res.candidatesTried,
                res.hitCandidateCap ? ", hit cap" : "", out.c_str());
    return kExitDivergence;
}

/** "replayed X of Y records (Z% of the stream)" — the fast-forward
 *  payoff line the CI demo greps for. */
void
printTail(std::uint64_t from, std::uint64_t ran, std::size_t total)
{
    const double pct =
        total ? 100.0 * static_cast<double>(ran) /
                    static_cast<double>(total)
              : 0.0;
    std::printf("fast-forward: restored to access %" PRIu64
                ", replayed %" PRIu64 " of %zu records (%.1f%%)\n",
                from, ran, total, pct);
}

int
cmdReplay(int argc, char **argv)
{
    std::string in, restorePath, savePath;
    bool quick = false;
    std::uint64_t every = 0;
    FaultHook fault;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--plant-fault") &&
                   i + 1 < argc) {
            const auto hook = parseFault(argv[++i]);
            if (!hook)
                return usage("replay: --plant-fault needs I,B,S");
            fault = *hook;
        } else if (!std::strcmp(argv[i], "--snapshot-every") &&
                   i + 1 < argc) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0) {
                return usage(
                    "replay: --snapshot-every needs a positive count");
            }
            every = *v;
        } else if (!std::strcmp(argv[i], "--save-checkpoint") &&
                   i + 1 < argc) {
            savePath = argv[++i];
        } else if (!std::strcmp(argv[i], "--restore") && i + 1 < argc) {
            restorePath = argv[++i];
        } else if (in.empty() && argv[i][0] != '-') {
            in = argv[i];
        } else {
            return usage("replay: unknown or incomplete option");
        }
    }
    if (in.empty())
        return usage("replay needs <trace>");

    TraceReader trace(in);
    if (!trace.ok()) {
        std::fprintf(stderr, "fuzz_tool: %s\n", trace.error().c_str());
        return kExitLoad;
    }
    DifferOptions dopt;
    dopt.snapshotCadence = every;
    Differ differ(quick ? Differ::quickVariants(trace.cores())
                        : Differ::standardVariants(trace.cores()),
                  dopt);
    if (fault.enabled) {
        if (fault.instance >= differ.variants().size())
            return usage("replay: --plant-fault variant index out of range");
        differ.setFaultHook(fault);
    }

    // Tail-only mode: skip straight to a saved checkpoint.
    if (!restorePath.empty()) {
        DifferCheckpoint ckpt;
        std::string err;
        if (!ckpt.load(restorePath, &err)) {
            std::fprintf(stderr, "cannot restore %s: %s\n",
                         restorePath.c_str(), err.c_str());
            return kExitLoad;
        }
        const DifferResult res = differ.resume(ckpt, trace.records());
        printTail(ckpt.accessIndex, res.accesses - ckpt.accessIndex,
                  trace.records().size());
        if (!res.ok()) {
            printDivergence(in, res.divergence);
            return kExitDivergence;
        }
        std::printf("no divergence\n");
        return kExitOk;
    }

    const DifferResult res = differ.run(trace.records());
    std::printf("%zu records x %zu variants: %" PRIu64 " sweeps\n",
                trace.records().size(), differ.variants().size(),
                res.sweeps);
    if (!res.ok()) {
        printDivergence(in, res.divergence);
        if (res.checkpoint.valid) {
            // Demonstrate the fast-forward: restore the last
            // pre-divergence checkpoint and re-run only the tail; the
            // verdict must be identical.
            const DifferResult tail =
                differ.resume(res.checkpoint, trace.records());
            printTail(res.checkpoint.accessIndex,
                      tail.accesses - res.checkpoint.accessIndex,
                      trace.records().size());
            if (tail.ok() ||
                tail.divergence.accessIndex !=
                    res.divergence.accessIndex ||
                tail.divergence.rule != res.divergence.rule) {
                std::fprintf(stderr,
                             "fuzz_tool: fast-forwarded replay did not "
                             "reproduce the divergence\n");
                return kExitRuntime;
            }
            if (!savePath.empty()) {
                std::string err;
                if (!res.checkpoint.save(savePath, &err)) {
                    std::fprintf(stderr, "fuzz_tool: %s\n", err.c_str());
                    return kExitRuntime;
                }
                std::printf("checkpoint saved: %s\n", savePath.c_str());
            }
        }
        return kExitDivergence;
    }
    std::printf("no divergence\n");
    return kExitOk;
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 6)
        return usage("gen needs <seed> <cores> <accesses> <file>");
    const auto seed = parseCount(argv[2]);
    const auto cores = parseCores(argv[3]);
    const auto acc = parseCount(argv[4]);
    if (!seed)
        return usage("gen: <seed> must be a number");
    if (!cores)
        return usage("gen: <cores> must be a valid core count");
    if (!acc || *acc == 0)
        return usage("gen: <accesses> must be a positive count");
    const auto stream = fuzzStream(*seed, *cores, *acc);
    if (!writeTrace(argv[5], *cores, stream))
        return kExitRuntime;
    std::printf("wrote %zu records to %s\n", stream.size(), argv[5]);
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
            std::fputs(kUsage, stdout);
            return kExitOk;
        }
    }
    if (!std::strcmp(argv[1], "help")) {
        std::fputs(kUsage, stdout);
        return kExitOk;
    }
    if (!std::strcmp(argv[1], "run"))
        return cmdRun(argc, argv);
    if (!std::strcmp(argv[1], "shrink"))
        return cmdShrink(argc, argv);
    if (!std::strcmp(argv[1], "replay"))
        return cmdReplay(argc, argv);
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    return usage("unknown subcommand");
}
