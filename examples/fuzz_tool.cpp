/**
 * @file
 * Differential config-equivalence fuzz farm CLI.
 *
 * `run` drives the differential harness (src/verify/) over adversarial
 * access streams, one seed per job, across the standard config cross
 * product: unbounded directory, sparse baselines, every ZeroDEV flavour,
 * and multi-socket splits. Any divergence — a load observing a different
 * value, a destroyed memory copy being served, an invariant violation, a
 * strict core-cache-state mismatch — is automatically ddmin-shrunk to a
 * minimal repro and written out next to a machine-readable
 * `zerodev-fuzz-report-v1` JSON report. `shrink` and `replay` operate on
 * saved traces (the nightly-failure reproduction workflow); `gen` writes
 * a fuzz stream to a trace file for corpus seeding.
 *
 * Exit codes (aligned with trace_tool — see docs/OBSERVABILITY.md):
 *   0  success / no divergence
 *   1  runtime failure (I/O)
 *   2  usage error
 *   3  trace or snapshot load failure
 *   4  divergence detected
 */

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/report.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "verify/differ.hh"
#include "verify/fuzz_batch.hh"
#include "verify/shrink.hh"
#include "workload/trace.hh"

using namespace zerodev;
using namespace zerodev::verify;

namespace
{

// Exit codes — keep in sync with the file header and docs.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;
constexpr int kExitDivergence = 4;

const char *const kUsage =
    "usage: fuzz_tool <subcommand> [args]\n"
    "\n"
    "subcommands:\n"
    "  run [--seeds N] [--minutes M] [--jobs J] [--accesses A]\n"
    "      [--cores C] [--out DIR] [--quick] [--plant-fault I,B,S]\n"
    "      [--snapshot-every K] [--daemon SOCKET]\n"
    "      differentially fuzz the config cross product. Runs N seeds\n"
    "      (default 8), or waves of seeds until M minutes elapsed when\n"
    "      --minutes is given. On divergence the trace is ddmin-shrunk\n"
    "      and both traces land in DIR (default .) next to\n"
    "      fuzz-report.json. --plant-fault injects a synthetic\n"
    "      mis-observation into variant I for block B after S stores\n"
    "      (pipeline self-test only). --snapshot-every checkpoints the\n"
    "      lockstep state every K accesses and saves the last\n"
    "      pre-divergence checkpoint as divergence-seed<S>.ckpt.\n"
    "      --daemon submits the batch to a zerodevd service socket\n"
    "      instead of running in-process, polls it to completion, and\n"
    "      copies fuzz-report.json into DIR; the report and exit code\n"
    "      are identical to a direct run (--minutes is not available\n"
    "      in daemon mode).\n"
    "  shrink <trace> [--out FILE] [--quick]\n"
    "      ddmin-shrink a diverging trace to a minimal repro\n"
    "      (FILE defaults to <trace>.min.trc)\n"
    "  replay <trace> [--quick] [--plant-fault I,B,S]\n"
    "      [--snapshot-every K] [--save-checkpoint FILE]\n"
    "      [--restore FILE]\n"
    "      replay a trace through the differential harness. With\n"
    "      --snapshot-every, a diverging replay is fast-forwarded: the\n"
    "      last pre-divergence checkpoint is restored and only the tail\n"
    "      re-runs (the replayed fraction is printed, and the\n"
    "      checkpoint is saved with --save-checkpoint). --restore skips\n"
    "      straight to a saved checkpoint and replays only the tail.\n"
    "  gen <seed> <cores> <accesses> <file>\n"
    "      write the fuzz stream for a seed to a trace file\n"
    "\n"
    "exit codes: 0 ok/no divergence, 1 runtime failure, 2 usage error,\n"
    "            3 trace/snapshot load failure, 4 divergence detected\n";

int
usage(const char *why = nullptr)
{
    if (why)
        std::fprintf(stderr, "fuzz_tool: %s\n", why);
    std::fputs(kUsage, stderr);
    return kExitUsage;
}

/** Strict decimal parse; nullopt on garbage, sign or overflow. */
std::optional<std::uint64_t>
parseCount(const char *s)
{
    if (!s || !*s)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || *end != '\0' || s[0] == '-')
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::optional<std::uint32_t>
parseCores(const char *s)
{
    const auto v = parseCount(s);
    if (!v || *v == 0 || *v > kMaxCores * kMaxSockets)
        return std::nullopt;
    return static_cast<std::uint32_t>(*v);
}

/** "I,B,S" (variant index, block, store count) for --plant-fault. */
std::optional<FaultHook>
parseFault(const char *s)
{
    FaultHook hook;
    unsigned long long i = 0, b = 0, n = 0;
    char extra = 0;
    if (std::sscanf(s, "%llu,%llu,%llu%c", &i, &b, &n, &extra) != 3)
        return std::nullopt;
    hook.enabled = true;
    hook.instance = static_cast<std::size_t>(i);
    hook.block = b;
    hook.afterStores = n;
    return hook;
}

bool
writeTrace(const std::string &path, std::uint32_t cores,
           const std::vector<TraceRecord> &records)
{
    TraceWriter w(path, cores);
    for (const TraceRecord &rec : records)
        w.append(rec);
    w.close();
    return w.written() == records.size();
}

void
printDivergence(const std::string &label, const Divergence &d)
{
    std::printf("DIVERGENCE %s: rule=%s instance=%s access=%" PRIu64
                "\n  %s\n",
                label.c_str(), d.rule.c_str(), d.instance.c_str(),
                d.accessIndex, d.detail.c_str());
}

/**
 * Daemon mode: submit the batch as a service fuzz job, poll it to a
 * terminal state, and copy fuzz-report.json from the result document
 * into the local output directory. Because the daemon executes through
 * the same verify::runFuzzBatch engine, the report and exit code are
 * identical to a direct run.
 */
int
cmdDaemonRun(const FuzzBatchOptions &opt, const std::string &socket)
{
    obs::JsonWriter job;
    job.beginObject();
    job.field("type", "fuzz");
    job.field("figure", "fuzz");
    job.field("seeds", opt.seeds);
    job.field("accesses", opt.accesses);
    job.field("cores", static_cast<std::uint64_t>(opt.cores));
    if (opt.quick)
        job.field("quick", true);
    if (opt.snapshotEvery)
        job.field("snapshot_every", opt.snapshotEvery);
    if (opt.fault.enabled) {
        char buf[80];
        std::snprintf(buf, sizeof(buf), "%zu,%" PRIu64 ",%" PRIu64,
                      opt.fault.instance,
                      static_cast<std::uint64_t>(opt.fault.block),
                      static_cast<std::uint64_t>(
                          opt.fault.afterStores));
        job.field("fault", buf);
    }
    job.endObject();

    service::ServiceClient client;
    std::string err;
    if (!client.connect(socket, &err)) {
        std::fprintf(stderr, "fuzz_tool: %s\n", err.c_str());
        return kExitRuntime;
    }
    const auto fetch = [&](const std::string &req)
        -> std::optional<obs::JsonValue> {
        auto resp = client.request(req, &err);
        if (!resp) {
            std::fprintf(stderr, "fuzz_tool: %s\n", err.c_str());
            return std::nullopt;
        }
        const obs::JsonValue *ok = resp->find("ok");
        if (!ok || !ok->isBool() || !ok->boolean) {
            const std::string detail = resp->str("detail");
            std::fprintf(stderr, "fuzz_tool: daemon error: %s%s%s\n",
                         resp->str("error").c_str(),
                         detail.empty() ? "" : ": ", detail.c_str());
            return std::nullopt;
        }
        return resp;
    };

    const auto sub = fetch(service::rpcSubmitJson(job.str()));
    if (!sub)
        return kExitRuntime;
    const std::string id = sub->str("id");
    std::printf("fuzz: submitted %s to %s\n", id.c_str(),
                socket.c_str());

    std::string state;
    for (;;) {
        const auto st = fetch(service::rpcRequestJson("status", id));
        if (!st)
            return kExitRuntime;
        state = st->str("state");
        if (state == "DONE" || state == "FAILED" ||
            state == "CANCELLED")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    if (state != "DONE") {
        std::fprintf(stderr, "fuzz_tool: job %s ended %s\n", id.c_str(),
                     state.c_str());
        return kExitRuntime;
    }

    const auto res = fetch(service::rpcRequestJson("result", id));
    if (!res)
        return kExitRuntime;
    const obs::JsonValue *result = res->find("result");
    const obs::JsonValue *report =
        result ? result->find("fuzz_report") : nullptr;
    if (!report) {
        std::fprintf(stderr, "fuzz_tool: job %s has no fuzz report\n",
                     id.c_str());
        return kExitRuntime;
    }

    std::error_code ec;
    std::filesystem::create_directories(opt.outDir, ec);
    if (ec) {
        std::fprintf(stderr, "fuzz_tool: cannot create %s: %s\n",
                     opt.outDir.c_str(), ec.message().c_str());
        return kExitRuntime;
    }
    const std::string reportPath = opt.outDir + "/fuzz-report.json";
    if (!obs::writeTextFile(reportPath,
                            obs::renderJson(*report) + "\n"))
        return kExitRuntime;

    int code = kExitOk;
    if (const obs::JsonValue *ec2 = result->find("exit_code"))
        code = static_cast<int>(ec2->number);
    std::printf("fuzz: job %s DONE -> %s\n", id.c_str(),
                reportPath.c_str());
    if (code == kExitOk)
        std::printf("no divergence\n");
    return code;
}

int
cmdRun(int argc, char **argv)
{
    FuzzBatchOptions opt;
    std::string daemonSocket;
    bool minutesSet = false, jobsSet = false;
    for (int i = 2; i < argc; ++i) {
        const auto want = [&](const char *flag) {
            if (std::strcmp(argv[i], flag) != 0)
                return false;
            if (i + 1 >= argc)
                return false;
            return true;
        };
        if (want("--seeds")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0)
                return usage("run: --seeds needs a positive count");
            opt.seeds = *v;
        } else if (want("--minutes")) {
            const auto v = parseCount(argv[++i]);
            if (!v)
                return usage("run: --minutes needs a count");
            opt.minutes = *v;
            minutesSet = true;
        } else if (want("--jobs")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0)
                return usage("run: --jobs needs a positive count");
            opt.jobs = static_cast<unsigned>(*v);
            jobsSet = true;
        } else if (want("--daemon")) {
            daemonSocket = argv[++i];
        } else if (want("--accesses")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0)
                return usage("run: --accesses needs a positive count");
            opt.accesses = *v;
        } else if (want("--cores")) {
            const auto v = parseCores(argv[++i]);
            if (!v)
                return usage("run: --cores must be a valid core count");
            opt.cores = *v;
        } else if (want("--out")) {
            opt.outDir = argv[++i];
        } else if (want("--snapshot-every")) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0) {
                return usage(
                    "run: --snapshot-every needs a positive count");
            }
            opt.snapshotEvery = *v;
        } else if (want("--plant-fault")) {
            const auto hook = parseFault(argv[++i]);
            if (!hook)
                return usage("run: --plant-fault needs I,B,S");
            opt.fault = *hook;
        } else if (!std::strcmp(argv[i], "--quick")) {
            opt.quick = true;
        } else {
            return usage("run: unknown or incomplete option");
        }
    }

    // Validate the fault's variant index here (the library fatal()s on
    // a bad instance; the CLI owes a usage error instead).
    if (opt.fault.enabled) {
        const std::size_t variants =
            (opt.quick ? Differ::quickVariants(opt.cores)
                       : Differ::standardVariants(opt.cores))
                .size();
        if (opt.fault.instance >= variants)
            return usage("run: --plant-fault variant index out of range");
    }

    if (!daemonSocket.empty()) {
        if (minutesSet)
            return usage("run: --minutes is not available with "
                         "--daemon (submit a seed count)");
        if (jobsSet)
            return usage("run: --jobs is not available with --daemon "
                         "(the daemon owns its parallelism)");
        return cmdDaemonRun(opt, daemonSocket);
    }

    const FuzzBatchResult res = runFuzzBatch(opt);
    return res.exitCode;
}

int
cmdShrink(int argc, char **argv)
{
    std::string in, out;
    bool quick = false;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (in.empty() && argv[i][0] != '-') {
            in = argv[i];
        } else {
            return usage("shrink: unknown or incomplete option");
        }
    }
    if (in.empty())
        return usage("shrink needs <trace>");
    if (out.empty())
        out = in + ".min.trc";

    TraceReader trace(in);
    if (!trace.ok()) {
        std::fprintf(stderr, "fuzz_tool: %s\n", trace.error().c_str());
        return kExitLoad;
    }
    const Differ differ(quick ? Differ::quickVariants(trace.cores())
                              : Differ::standardVariants(trace.cores()));
    const ShrinkResult res = shrinkTrace(differ, trace.records());
    if (!res.shrunk()) {
        std::printf("trace does not diverge; nothing to shrink\n");
        return kExitOk;
    }
    if (!writeTrace(out, differ.cores(), res.trace))
        return kExitRuntime;
    printDivergence(in, res.divergence);
    std::printf("shrunk %zu -> %zu records (%" PRIu64
                " candidates%s): %s\n",
                res.originalSize, res.trace.size(), res.candidatesTried,
                res.hitCandidateCap ? ", hit cap" : "", out.c_str());
    return kExitDivergence;
}

/** "replayed X of Y records (Z% of the stream)" — the fast-forward
 *  payoff line the CI demo greps for. */
void
printTail(std::uint64_t from, std::uint64_t ran, std::size_t total)
{
    const double pct =
        total ? 100.0 * static_cast<double>(ran) /
                    static_cast<double>(total)
              : 0.0;
    std::printf("fast-forward: restored to access %" PRIu64
                ", replayed %" PRIu64 " of %zu records (%.1f%%)\n",
                from, ran, total, pct);
}

int
cmdReplay(int argc, char **argv)
{
    std::string in, restorePath, savePath;
    bool quick = false;
    std::uint64_t every = 0;
    FaultHook fault;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--plant-fault") &&
                   i + 1 < argc) {
            const auto hook = parseFault(argv[++i]);
            if (!hook)
                return usage("replay: --plant-fault needs I,B,S");
            fault = *hook;
        } else if (!std::strcmp(argv[i], "--snapshot-every") &&
                   i + 1 < argc) {
            const auto v = parseCount(argv[++i]);
            if (!v || *v == 0) {
                return usage(
                    "replay: --snapshot-every needs a positive count");
            }
            every = *v;
        } else if (!std::strcmp(argv[i], "--save-checkpoint") &&
                   i + 1 < argc) {
            savePath = argv[++i];
        } else if (!std::strcmp(argv[i], "--restore") && i + 1 < argc) {
            restorePath = argv[++i];
        } else if (in.empty() && argv[i][0] != '-') {
            in = argv[i];
        } else {
            return usage("replay: unknown or incomplete option");
        }
    }
    if (in.empty())
        return usage("replay needs <trace>");

    TraceReader trace(in);
    if (!trace.ok()) {
        std::fprintf(stderr, "fuzz_tool: %s\n", trace.error().c_str());
        return kExitLoad;
    }
    DifferOptions dopt;
    dopt.snapshotCadence = every;
    Differ differ(quick ? Differ::quickVariants(trace.cores())
                        : Differ::standardVariants(trace.cores()),
                  dopt);
    if (fault.enabled) {
        if (fault.instance >= differ.variants().size())
            return usage("replay: --plant-fault variant index out of range");
        differ.setFaultHook(fault);
    }

    // Tail-only mode: skip straight to a saved checkpoint.
    if (!restorePath.empty()) {
        DifferCheckpoint ckpt;
        std::string err;
        if (!ckpt.load(restorePath, &err)) {
            std::fprintf(stderr, "cannot restore %s: %s\n",
                         restorePath.c_str(), err.c_str());
            return kExitLoad;
        }
        const DifferResult res = differ.resume(ckpt, trace.records());
        printTail(ckpt.accessIndex, res.accesses - ckpt.accessIndex,
                  trace.records().size());
        if (!res.ok()) {
            printDivergence(in, res.divergence);
            return kExitDivergence;
        }
        std::printf("no divergence\n");
        return kExitOk;
    }

    const DifferResult res = differ.run(trace.records());
    std::printf("%zu records x %zu variants: %" PRIu64 " sweeps\n",
                trace.records().size(), differ.variants().size(),
                res.sweeps);
    if (!res.ok()) {
        printDivergence(in, res.divergence);
        if (res.checkpoint.valid) {
            // Demonstrate the fast-forward: restore the last
            // pre-divergence checkpoint and re-run only the tail; the
            // verdict must be identical.
            const DifferResult tail =
                differ.resume(res.checkpoint, trace.records());
            printTail(res.checkpoint.accessIndex,
                      tail.accesses - res.checkpoint.accessIndex,
                      trace.records().size());
            if (tail.ok() ||
                tail.divergence.accessIndex !=
                    res.divergence.accessIndex ||
                tail.divergence.rule != res.divergence.rule) {
                std::fprintf(stderr,
                             "fuzz_tool: fast-forwarded replay did not "
                             "reproduce the divergence\n");
                return kExitRuntime;
            }
            if (!savePath.empty()) {
                std::string err;
                if (!res.checkpoint.save(savePath, &err)) {
                    std::fprintf(stderr, "fuzz_tool: %s\n", err.c_str());
                    return kExitRuntime;
                }
                std::printf("checkpoint saved: %s\n", savePath.c_str());
            }
        }
        return kExitDivergence;
    }
    std::printf("no divergence\n");
    return kExitOk;
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 6)
        return usage("gen needs <seed> <cores> <accesses> <file>");
    const auto seed = parseCount(argv[2]);
    const auto cores = parseCores(argv[3]);
    const auto acc = parseCount(argv[4]);
    if (!seed)
        return usage("gen: <seed> must be a number");
    if (!cores)
        return usage("gen: <cores> must be a valid core count");
    if (!acc || *acc == 0)
        return usage("gen: <accesses> must be a positive count");
    const auto stream = fuzzStream(*seed, *cores, *acc);
    if (!writeTrace(argv[5], *cores, stream))
        return kExitRuntime;
    std::printf("wrote %zu records to %s\n", stream.size(), argv[5]);
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
            std::fputs(kUsage, stdout);
            return kExitOk;
        }
    }
    if (!std::strcmp(argv[1], "help")) {
        std::fputs(kUsage, stdout);
        return kExitOk;
    }
    if (!std::strcmp(argv[1], "run"))
        return cmdRun(argc, argv);
    if (!std::strcmp(argv[1], "shrink"))
        return cmdShrink(argc, argv);
    if (!std::strcmp(argv[1], "replay"))
        return cmdReplay(argc, argv);
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    return usage("unknown subcommand");
}
