/**
 * @file
 * A guided tour of the life of a ZeroDEV directory entry (Sections III-C
 * and III-D): born in the replacement-disabled sparse directory (or the
 * LLC), fused into its block on ownership, spilled on sharing, evicted
 * from the LLC into the (stale) home memory block — corrupting it — and
 * finally recovered or retired, with the memory data restored from the
 * last cached copy. Every stage prints the authoritative tracking
 * location straight from the simulator's introspection API.
 */

#include <cstdio>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "core/invariants.hh"

using namespace zerodev;

namespace
{

const char *
whereName(TrackWhere w)
{
    switch (w) {
      case TrackWhere::None: return "none (home memory or untracked)";
      case TrackWhere::SparseDir: return "sparse directory";
      case TrackWhere::LlcSpilled: return "LLC (spilled line)";
      case TrackWhere::LlcFused: return "LLC (fused into the block)";
      case TrackWhere::Org: return "baseline organisation";
    }
    return "?";
}

void
show(const CmpSystem &sys, BlockAddr b, const char *stage)
{
    const Tracking trk = sys.peekTracking(0, b);
    std::printf("%-46s -> entry in %s", stage, whereName(trk.where));
    if (trk.found()) {
        std::printf(" [%s, %u sharer(s)]", toString(trk.entry.state),
                    trk.entry.count());
    } else if (sys.memStore(0).hasSegment(b, 0)) {
        std::printf(" [housed in the memory block; data destroyed=%d]",
                    sys.memStore(0).destroyed(b) ? 1 : 0);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // Tiny 2-core system; plain LRU + SpillAll so entries age out of
    // the LLC and reach memory within a short run.
    SystemConfig cfg;
    cfg.coresPerSocket = 2;
    cfg.l1i = CacheConfig{2 * 1024, 8, 3};
    cfg.l1d = CacheConfig{2 * 1024, 8, 3};
    cfg.l2 = CacheConfig{4 * 1024, 8, 8};
    cfg.llcSizeBytes = 64 * 1024;
    cfg.llcBanks = 2;
    applyZeroDev(cfg, 0.0); // no sparse directory: straight to the LLC
    cfg.dirCachePolicy = DirCachePolicy::Fpss;
    cfg.llcReplPolicy = LlcReplPolicy::Lru;
    CmpSystem sys(cfg);

    const BlockAddr b = 64; // LLC bank 0, set 0
    Cycle t = 0;

    std::printf("The life of block %#llx's directory entry under "
                "ZeroDEV (FPSS)\n",
                static_cast<unsigned long long>(b));
    std::printf("================================================="
                "=============\n");

    t = sys.access(0, AccessType::Store, b, t + 100);
    show(sys, b, "1. core 0 stores (M state, entry fuses)");

    t = sys.access(1, AccessType::Load, b, t + 100);
    show(sys, b, "2. core 1 reads (M->S, entry spills)");

    t = sys.access(1, AccessType::Store, b, t + 100);
    show(sys, b, "3. core 1 upgrades (S->M, entry re-fuses)");

    // Flood the LLC set with other blocks from core 0 until the fused
    // entry is evicted: WB_DE writes it into the home memory block.
    for (std::uint32_t i = 1; i <= 40; ++i)
        t = sys.access(0, AccessType::Load, b + 64ull * i, t + 100);
    show(sys, b, "4. LLC set flooded (WB_DE to home memory)");

    t = sys.access(0, AccessType::Load, b, t + 100);
    show(sys, b, "5. core 0 reads (corrupted response, recovery)");

    // Evict every cached copy; the last one restores the memory data.
    for (std::uint32_t i = 0; i < 20; ++i) {
        t = sys.access(0, AccessType::Load, 16384 + 8ull * i, t + 100);
        t = sys.access(1, AccessType::Load, 32768 + 8ull * i, t + 100);
    }
    show(sys, b, "6. all private copies evicted (entry retired)");
    std::printf("   memory destroyed=%d (the LLC still holds the dirty "
                "block; its eventual\n   writeback restores the memory "
                "data), DEVs delivered=%llu\n",
                sys.memStore(0).destroyed(b) ? 1 : 0,
                static_cast<unsigned long long>(
                    sys.protoStats().devInvalidations));

    assertInvariants(sys);
    std::printf("\nAll invariants hold; no core ever received a "
                "directory-eviction invalidation.\n");
    return 0;
}
