/**
 * @file
 * Telemetry utility: a `top`-style live view of a running sweep, plus
 * the validation commands CI uses to gate the telemetry subsystem.
 *
 * `top` tails the status.json / events.jsonl pair a TelemetrySink
 * publishes (set ZERODEV_TELEMETRY_DIR on any tool or benchmark to get
 * one) and renders a per-job progress table until the sink reaches a
 * terminal state. `check-prom` and `check-status` validate the
 * Prometheus exposition and the status document; `selftest-stall` runs
 * a real simulation with a planted stall against a live sink and
 * verifies the watchdog fires and the snapshot-on-stall checkpoint
 * lands — the telemetry analogue of `fuzz_tool --plant-fault`, and like
 * it the *expected* outcome is the detection exit code 4.
 *
 * Exit codes (shared with trace_tool / fuzz_tool):
 *   0  success (for `selftest-stall`: the watchdog did NOT fire)
 *   1  runtime failure (I/O)
 *   2  usage error (unknown subcommand / missing operands)
 *   3  an input file could not be read
 *   4  validation failure — or, for `selftest-stall`, stall detected
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace zerodev;

namespace
{

// Exit codes — keep in sync with the file header and docs.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;
constexpr int kExitCheck = 4;

const char *const kUsage =
    "usage: telemetry_tool <subcommand> [args]\n"
    "\n"
    "subcommands:\n"
    "  top <dir> [--once] [--interval S]\n"
    "      live view of a telemetry directory: renders status.json as\n"
    "      a job table and tails events.jsonl, refreshing every S\n"
    "      seconds (default 1) until the sink reaches a terminal\n"
    "      state; --once prints a single frame and exits\n"
    "  check-prom <file>\n"
    "      validate a Prometheus text exposition (metrics.prom)\n"
    "  check-status <file> [--state S] [--min-jobs N]\n"
    "      validate a status.json document: schema + commit stamp and\n"
    "      per-job fields; optionally require sink state S and at\n"
    "      least N jobs\n"
    "  selftest-stall <dir> [--stall-seconds S]\n"
    "      run a small simulation with a planted stall against a live\n"
    "      sink in <dir>; the watchdog must emit a `stall` event and\n"
    "      the snapshot-on-stall checkpoint must appear. Detection\n"
    "      exits 4 (the expected outcome, as with fuzz_tool\n"
    "      --plant-fault); a silent watchdog exits 0\n"
    "\n"
    "exit codes: 0 ok, 1 runtime failure, 2 usage error, 3 unreadable\n"
    "            input, 4 validation failure / stall detected\n";

int
usage(const char *why = nullptr)
{
    if (why)
        std::fprintf(stderr, "telemetry_tool: %s\n", why);
    std::fputs(kUsage, stderr);
    return kExitUsage;
}

bool
wantsHelp(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h"))
            return true;
    }
    return false;
}

std::optional<double>
parseSeconds(const char *s)
{
    if (!s || !*s)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(s, &end);
    if (errno != 0 || *end != '\0' || v <= 0.0)
        return std::nullopt;
    return v;
}

// --- top ----------------------------------------------------------------

/** Render one status document as a job table; returns the sink state. */
std::string
renderStatus(const obs::JsonValue &doc)
{
    const std::string state = doc.str("state", "?");
    std::printf("zerodev telemetry  state=%s  stalls=%.0f  commit=%s\n",
                state.c_str(), doc.num("stalls"),
                doc.str("commit", "-").c_str());
    std::printf("%-24s %-9s %9s %14s %10s %8s\n", "job", "state",
                "progress", "accesses", "Macc/s", "eta");
    const obs::JsonValue *jobs = doc.find("jobs");
    if (jobs && jobs->isArray()) {
        for (const obs::JsonValue &j : jobs->array) {
            const double total = j.num("total_accesses");
            std::printf("%-24s %-9s %8.1f%% %14.0f %10.2f %7.0fs\n",
                        j.str("name", "?").c_str(),
                        j.str("state", "?").c_str(),
                        100.0 * j.num("progress"), j.num("accesses"),
                        j.num("maccesses_per_second"),
                        j.num("eta_seconds"));
            (void)total;
        }
    }
    return state;
}

/** Print the last @p n event lines (kind + job only, compactly). */
void
renderEvents(const std::string &dir, std::size_t n)
{
    const auto text = obs::readTextFile(dir + "/events.jsonl");
    if (!text)
        return;
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text->size()) {
        const std::size_t nl = text->find('\n', start);
        const std::size_t end = nl == std::string::npos ? text->size() : nl;
        if (end > start)
            lines.push_back(text->substr(start, end - start));
        start = end + 1;
    }
    const std::size_t first = lines.size() > n ? lines.size() - n : 0;
    std::printf("\nrecent events:\n");
    for (std::size_t i = first; i < lines.size(); ++i) {
        const auto ev = obs::parseJson(lines[i]);
        if (!ev)
            continue;
        const std::string job = ev->str("job");
        std::printf("  %-14s %s\n", ev->str("kind", "?").c_str(),
                    job.empty() ? "-" : job.c_str());
    }
}

int
cmdTop(int argc, char **argv)
{
    if (argc < 3)
        return usage("top needs a telemetry directory");
    const std::string dir = argv[2];
    bool once = false;
    double interval = 1.0;
    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--once")) {
            once = true;
        } else if (!std::strcmp(argv[i], "--interval") && i + 1 < argc) {
            const auto s = parseSeconds(argv[++i]);
            if (!s)
                return usage("--interval needs a positive number");
            interval = *s;
        } else {
            return usage("unknown top argument");
        }
    }

    while (true) {
        const auto text = obs::readTextFile(dir + "/status.json");
        if (!text) {
            if (once) {
                std::fprintf(stderr, "telemetry_tool: no status.json in %s\n",
                             dir.c_str());
                return kExitLoad;
            }
            std::printf("waiting for %s/status.json ...\n", dir.c_str());
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval));
            continue;
        }
        std::string err;
        const auto doc = obs::parseJson(*text, &err);
        if (!doc) {
            // A torn read is impossible (the sink renames into place);
            // a parse failure means a genuinely bad document.
            std::fprintf(stderr, "telemetry_tool: bad status.json: %s\n",
                         err.c_str());
            return kExitCheck;
        }
        if (!once)
            std::printf("\033[2J\033[H"); // clear screen, home cursor
        const std::string state = renderStatus(*doc);
        renderEvents(dir, 6);
        std::fflush(stdout);
        if (once || state != "running")
            return kExitOk;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
    }
}

// --- check-prom ---------------------------------------------------------

int
cmdCheckProm(int argc, char **argv)
{
    if (argc < 3)
        return usage("check-prom needs a file");
    const auto text = obs::readTextFile(argv[2]);
    if (!text) {
        std::fprintf(stderr, "telemetry_tool: cannot read %s\n", argv[2]);
        return kExitLoad;
    }
    std::string err;
    if (!obs::checkPrometheusText(*text, &err)) {
        std::fprintf(stderr, "telemetry_tool: %s: %s\n", argv[2],
                     err.c_str());
        return kExitCheck;
    }
    std::printf("%s: valid Prometheus exposition\n", argv[2]);
    return kExitOk;
}

// --- check-status -------------------------------------------------------

int
checkFail(const char *file, const std::string &why)
{
    std::fprintf(stderr, "telemetry_tool: %s: %s\n", file, why.c_str());
    return kExitCheck;
}

int
cmdCheckStatus(int argc, char **argv)
{
    if (argc < 3)
        return usage("check-status needs a file");
    const char *file = argv[2];
    std::string wantState;
    std::size_t minJobs = 0;
    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--state") && i + 1 < argc) {
            wantState = argv[++i];
        } else if (!std::strcmp(argv[i], "--min-jobs") && i + 1 < argc) {
            minJobs = std::strtoull(argv[++i], nullptr, 10);
        } else {
            return usage("unknown check-status argument");
        }
    }

    const auto text = obs::readTextFile(file);
    if (!text) {
        std::fprintf(stderr, "telemetry_tool: cannot read %s\n", file);
        return kExitLoad;
    }
    std::string err;
    const auto doc = obs::parseJson(*text, &err);
    if (!doc)
        return checkFail(file, "not valid JSON: " + err);
    if (doc->str("schema") != "zerodev-status-v1")
        return checkFail(file, "schema is not zerodev-status-v1");
    if (!doc->has("commit"))
        return checkFail(file, "missing provenance commit stamp");
    if (!doc->has("generated_ms"))
        return checkFail(file, "missing generated_ms");
    const std::string state = doc->str("state");
    if (state != "running" && state != "completed" && state != "aborted")
        return checkFail(file, "unknown sink state '" + state + "'");
    if (!wantState.empty() && state != wantState) {
        return checkFail(file, "sink state is '" + state +
                                   "', expected '" + wantState + "'");
    }
    const obs::JsonValue *jobs = doc->find("jobs");
    if (!jobs || !jobs->isArray())
        return checkFail(file, "missing jobs array");
    if (jobs->array.size() < minJobs) {
        return checkFail(file, "only " +
                                   std::to_string(jobs->array.size()) +
                                   " jobs, expected >= " +
                                   std::to_string(minJobs));
    }
    for (const obs::JsonValue &j : jobs->array) {
        const std::string name = j.str("name", "?");
        for (const char *k :
             {"name", "state", "total_accesses", "accesses", "progress"}) {
            if (!j.has(k))
                return checkFail(file, "job " + name + " missing " + k);
        }
        const double p = j.num("progress");
        if (p < 0.0 || p > 1.0 + 1e-9) {
            return checkFail(file, "job " + name +
                                       " progress out of range");
        }
        const std::string js = j.str("state");
        if (js != "running" && js != "stalled" && js != "completed" &&
            js != "failed") {
            return checkFail(file,
                             "job " + name + " has unknown state " + js);
        }
    }
    std::printf("%s: valid status document (%zu jobs, state %s)\n", file,
                jobs->array.size(), state.c_str());
    return kExitOk;
}

// --- selftest-stall -----------------------------------------------------

int
cmdSelftestStall(int argc, char **argv)
{
    if (argc < 3)
        return usage("selftest-stall needs an output directory");
    const std::string dir = argv[2];
    double stallSeconds = 0.4;
    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--stall-seconds") && i + 1 < argc) {
            const auto s = parseSeconds(argv[++i]);
            if (!s)
                return usage("--stall-seconds needs a positive number");
            stallSeconds = *s;
        } else {
            return usage("unknown selftest-stall argument");
        }
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "telemetry_tool: cannot create %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        return kExitRuntime;
    }

    // A deterministic sink with an aggressive watchdog: the publisher
    // beats every 50 ms and declares a stall after `stallSeconds` of
    // no progress, while the planted sleep holds the worker for 3x
    // that window.
    obs::TelemetryOptions topt;
    topt.dir = dir;
    topt.flushPeriodSeconds = 0.05;
    topt.stallSeconds = stallSeconds;
    topt.stallSnapshots = true;
    topt.heartbeatEvery = 256;
    // Honour the bench checkpoint directory for the stall snapshot
    // (recursively created, exit 2 when unwritable — same contract as
    // every other ZERODEV_*_DIR consumer).
    topt.snapshotDir = obs::outputDirFromEnv("ZERODEV_SNAPSHOT_DIR");
    obs::TelemetrySink sink(topt);

    const AppProfile profile = profileByName("canneal");
    const Workload workload = Workload::multiThreaded(profile, 4);
    RunConfig rc;
    rc.accessesPerCore = 8000;
    const std::uint64_t total =
        rc.accessesPerCore * workload.threadCount();
    obs::TelemetryJob *job =
        sink.beginJob("selftest_stall", "selftest", "", total);
    rc.telemetry = job;
    rc.plantStallAt = total / 4;
    rc.plantStallSeconds = 3.0 * stallSeconds;

    SystemConfig cfg = makeEightCoreConfig();
    CmpSystem sys(cfg);
    const RunResult res = run(sys, workload, rc);
    job->complete(obs::completionOf(res));
    sink.finalize();

    const std::uint64_t stalls = sink.stallsDetected();
    const std::string snapDir =
        topt.snapshotDir.empty() ? dir : topt.snapshotDir;
    const std::string snap = snapDir + "/stall-selftest_stall.ckpt";
    const bool haveSnapshot = std::filesystem::exists(snap);
    const auto events = obs::readTextFile(dir + "/events.jsonl");
    const bool haveEvent =
        events && events->find("\"kind\":\"stall\"") != std::string::npos;

    std::printf("planted %.1fs stall at access %llu: %llu stall(s) "
                "detected, event %s, snapshot %s\n",
                rc.plantStallSeconds,
                static_cast<unsigned long long>(rc.plantStallAt),
                static_cast<unsigned long long>(stalls),
                haveEvent ? "logged" : "MISSING",
                haveSnapshot ? snap.c_str() : "MISSING");
    if (stalls > 0 && haveEvent && haveSnapshot) {
        std::printf("watchdog detected the planted stall (exit %d, the "
                    "expected outcome)\n",
                    kExitCheck);
        return kExitCheck;
    }
    std::printf("watchdog did NOT detect the planted stall\n");
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (wantsHelp(argc, argv) ||
        (argc >= 2 && !std::strcmp(argv[1], "help"))) {
        std::fputs(kUsage, stdout);
        return kExitOk;
    }
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "top")
        return cmdTop(argc, argv);
    if (cmd == "check-prom")
        return cmdCheckProm(argc, argv);
    if (cmd == "check-status")
        return cmdCheckStatus(argc, argv);
    if (cmd == "selftest-stall")
        return cmdSelftestStall(argc, argv);
    return usage("unknown subcommand");
}
