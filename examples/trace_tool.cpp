/**
 * @file
 * Trace utility: generate reproducible access traces from the synthetic
 * application profiles, inspect them, and replay them on any system
 * configuration — the workflow for bit-identical experiment repeats or
 * for feeding external traces to the simulator.
 *
 * Usage:
 *   trace_tool gen <app> <cores> <accesses-per-core> <file>
 *   trace_tool info <file>
 *   trace_tool replay <file> [baseline|unbounded|zerodev]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "sim/runner.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

using namespace zerodev;

namespace
{

int
cmdGen(int argc, char **argv)
{
    if (argc < 6) {
        std::fprintf(stderr,
                     "usage: trace_tool gen <app> <cores> <acc> <file>\n");
        return 2;
    }
    const AppProfile p = profileByName(argv[2]);
    const auto cores = static_cast<std::uint32_t>(std::atoi(argv[3]));
    const std::uint64_t acc = std::strtoull(argv[4], nullptr, 10);
    const Workload w = p.suite == "cpu2017"
                           ? Workload::rate(p, cores)
                           : Workload::multiThreaded(p, cores);

    TraceWriter out(argv[5], cores);
    std::vector<ThreadGenerator> gens;
    for (std::uint32_t c = 0; c < cores; ++c)
        gens.push_back(w.makeGenerator(c));
    // Round-robin interleave (replay re-times per core anyway).
    for (std::uint64_t i = 0; i < acc; ++i) {
        for (std::uint32_t c = 0; c < cores; ++c)
            out.append({c, gens[c].next()});
    }
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(out.written()), argv[5]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: trace_tool info <file>\n");
        return 2;
    }
    const TraceReader trace(argv[2]);
    std::map<std::uint32_t, std::uint64_t> per_core;
    std::uint64_t loads = 0, stores = 0, ifetches = 0, instructions = 0;
    std::set<BlockAddr> footprint;
    for (const TraceRecord &r : trace.records()) {
        ++per_core[r.core];
        instructions += r.access.gap + 1;
        footprint.insert(r.access.block);
        switch (r.access.type) {
          case AccessType::Load: ++loads; break;
          case AccessType::Store: ++stores; break;
          case AccessType::Ifetch: ++ifetches; break;
        }
    }
    std::printf("cores: %u\nrecords: %zu\ninstructions: %llu\n",
                trace.cores(), trace.records().size(),
                static_cast<unsigned long long>(instructions));
    std::printf("loads: %llu  stores: %llu  ifetches: %llu\n",
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(ifetches));
    std::printf("footprint: %zu blocks (%.1f MB)\n", footprint.size(),
                static_cast<double>(footprint.size()) * 64 / 1048576.0);
    for (const auto &[core, n] : per_core)
        std::printf("  core %u: %llu accesses\n", core,
                    static_cast<unsigned long long>(n));
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: trace_tool replay <file> [org]\n");
        return 2;
    }
    const TraceReader trace(argv[2]);
    SystemConfig cfg = makeEightCoreConfig();
    const char *org = argc > 3 ? argv[3] : "baseline";
    if (!std::strcmp(org, "unbounded")) {
        cfg.dirOrg = DirOrg::Unbounded;
    } else if (!std::strcmp(org, "zerodev")) {
        applyZeroDev(cfg, 0.0);
    }
    CmpSystem sys(cfg);
    const RunResult r = replay(sys, trace, RunConfig{});
    std::printf("org: %s\ncycles: %llu\ncore cache misses: %llu\n"
                "traffic bytes: %llu\nDEV invalidations: %llu\n",
                toString(cfg.dirOrg),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.coreCacheMisses),
                static_cast<unsigned long long>(r.trafficBytes),
                static_cast<unsigned long long>(r.devInvalidations));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_tool gen|info|replay ...\n");
        return 2;
    }
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    if (!std::strcmp(argv[1], "info"))
        return cmdInfo(argc, argv);
    if (!std::strcmp(argv[1], "replay"))
        return cmdReplay(argc, argv);
    std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
    return 2;
}
