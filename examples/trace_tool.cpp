/**
 * @file
 * Trace utility: generate reproducible access traces from the synthetic
 * application profiles, inspect them, and replay them on any system
 * configuration — the workflow for bit-identical experiment repeats or
 * for feeding external traces to the simulator.
 *
 * The `sim` and `inspect` subcommands drive the observability layer:
 * `sim` runs a workload with the coherence tracer and interval sampler
 * attached and writes the full artefact set (Chrome trace, JSONL trace,
 * interval CSV/JSON, run report); `inspect` summarises a JSONL trace.
 *
 * Usage:
 *   trace_tool gen <app> <cores> <accesses-per-core> <file>
 *   trace_tool info <file>
 *   trace_tool replay <file> [baseline|unbounded|zerodev]
 *   trace_tool sim <app> <cores> <accesses-per-core> <outdir>
 *                  [baseline|unbounded|zerodev]
 *   trace_tool inspect <trace.jsonl>
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "obs/json.hh"
#include "obs/probes.hh"
#include "obs/report.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/runner.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

using namespace zerodev;

namespace
{

int
cmdGen(int argc, char **argv)
{
    if (argc < 6) {
        std::fprintf(stderr,
                     "usage: trace_tool gen <app> <cores> <acc> <file>\n");
        return 2;
    }
    const AppProfile p = profileByName(argv[2]);
    const auto cores = static_cast<std::uint32_t>(std::atoi(argv[3]));
    const std::uint64_t acc = std::strtoull(argv[4], nullptr, 10);
    const Workload w = p.suite == "cpu2017"
                           ? Workload::rate(p, cores)
                           : Workload::multiThreaded(p, cores);

    TraceWriter out(argv[5], cores);
    std::vector<ThreadGenerator> gens;
    for (std::uint32_t c = 0; c < cores; ++c)
        gens.push_back(w.makeGenerator(c));
    // Round-robin interleave (replay re-times per core anyway).
    for (std::uint64_t i = 0; i < acc; ++i) {
        for (std::uint32_t c = 0; c < cores; ++c)
            out.append({c, gens[c].next()});
    }
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(out.written()), argv[5]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: trace_tool info <file>\n");
        return 2;
    }
    const TraceReader trace(argv[2]);
    std::map<std::uint32_t, std::uint64_t> per_core;
    std::uint64_t loads = 0, stores = 0, ifetches = 0, instructions = 0;
    std::set<BlockAddr> footprint;
    for (const TraceRecord &r : trace.records()) {
        ++per_core[r.core];
        instructions += r.access.gap + 1;
        footprint.insert(r.access.block);
        switch (r.access.type) {
          case AccessType::Load: ++loads; break;
          case AccessType::Store: ++stores; break;
          case AccessType::Ifetch: ++ifetches; break;
        }
    }
    std::printf("cores: %u\nrecords: %zu\ninstructions: %llu\n",
                trace.cores(), trace.records().size(),
                static_cast<unsigned long long>(instructions));
    std::printf("loads: %llu  stores: %llu  ifetches: %llu\n",
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(ifetches));
    std::printf("footprint: %zu blocks (%.1f MB)\n", footprint.size(),
                static_cast<double>(footprint.size()) * 64 / 1048576.0);
    for (const auto &[core, n] : per_core)
        std::printf("  core %u: %llu accesses\n", core,
                    static_cast<unsigned long long>(n));
    return 0;
}

SystemConfig
configFor(const char *org)
{
    SystemConfig cfg = makeEightCoreConfig();
    if (!std::strcmp(org, "unbounded")) {
        cfg.dirOrg = DirOrg::Unbounded;
    } else if (!std::strcmp(org, "zerodev")) {
        applyZeroDev(cfg, 0.0);
    }
    return cfg;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: trace_tool replay <file> [org]\n");
        return 2;
    }
    const TraceReader trace(argv[2]);
    const char *org = argc > 3 ? argv[3] : "baseline";
    const SystemConfig cfg = configFor(org);
    CmpSystem sys(cfg);
    const RunResult r = replay(sys, trace, RunConfig{});
    std::printf("org: %s\ncycles: %llu\ncore cache misses: %llu\n"
                "traffic bytes: %llu\nDEV invalidations: %llu\n",
                toString(cfg.dirOrg),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.coreCacheMisses),
                static_cast<unsigned long long>(r.trafficBytes),
                static_cast<unsigned long long>(r.devInvalidations));
    obs::maybeWriteRunReport(std::string("trace_replay_") + org, cfg, r);
    return 0;
}

int
cmdSim(int argc, char **argv)
{
    if (argc < 6) {
        std::fprintf(stderr,
                     "usage: trace_tool sim <app> <cores> <acc> <outdir> "
                     "[baseline|unbounded|zerodev]\n");
        return 2;
    }
    const AppProfile p = profileByName(argv[2]);
    const auto cores = static_cast<std::uint32_t>(std::atoi(argv[3]));
    const std::uint64_t acc = std::strtoull(argv[4], nullptr, 10);
    const std::string outdir = argv[5];
    const char *org = argc > 6 ? argv[6] : "zerodev";

    const SystemConfig cfg = configFor(org);
    const Workload w = p.suite == "cpu2017"
                           ? Workload::rate(p, cores)
                           : Workload::multiThreaded(p, cores);

    CmpSystem sys(cfg);
    obs::Tracer tracer;
    tracer.setEnabled(true);
    obs::IntervalSampler sampler(10000);
    obs::registerSystemProbes(sampler, sys);

    RunConfig rc;
    rc.accessesPerCore = acc;
    rc.tracer = &tracer;
    rc.sampler = &sampler;
    const RunResult r = run(sys, w, rc);

    const bool ok = tracer.writeChromeJson(outdir + "/trace.json") &&
                    tracer.writeJsonl(outdir + "/trace.jsonl") &&
                    sampler.writeCsv(outdir + "/intervals.csv") &&
                    sampler.writeJson(outdir + "/intervals.json") &&
                    obs::writeRunReport(outdir + "/report.json", cfg, r);

    std::printf("org: %s  cycles: %llu  DEVs: %llu\n", toString(cfg.dirOrg),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.devInvalidations));
    std::printf("trace: %llu events recorded, %llu dropped (ring %zu)\n",
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()),
                tracer.capacity());
    std::printf("intervals: %zu samples every %llu cycles\n",
                sampler.samples().size(),
                static_cast<unsigned long long>(sampler.interval()));
    std::printf("%s trace.json trace.jsonl intervals.csv intervals.json "
                "report.json in %s\n",
                ok ? "wrote" : "FAILED writing", outdir.c_str());
    return ok ? 0 : 1;
}

int
cmdInspect(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: trace_tool inspect <trace.jsonl>\n");
        return 2;
    }
    const auto text = obs::readTextFile(argv[2]);
    if (!text) {
        std::fprintf(stderr, "cannot read %s\n", argv[2]);
        return 1;
    }

    std::map<std::string, std::uint64_t> by_kind, by_comp;
    std::set<std::uint64_t> txns;
    std::uint64_t events = 0, bad = 0;
    std::uint64_t min_cycle = ~0ull, max_cycle = 0;
    std::size_t pos = 0;
    while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        if (eol == std::string::npos)
            eol = text->size();
        const std::string_view line(text->data() + pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        std::string err;
        const auto v = obs::parseJson(line, &err);
        if (!v || !v->isObject()) {
            ++bad;
            continue;
        }
        ++events;
        ++by_kind[v->str("kind", "?")];
        ++by_comp[v->str("comp", "?")];
        const auto cycle = static_cast<std::uint64_t>(v->num("cycle"));
        min_cycle = std::min(min_cycle, cycle);
        max_cycle = std::max(max_cycle, cycle);
        const auto txn = static_cast<std::uint64_t>(v->num("txn"));
        if (txn)
            txns.insert(txn);
    }

    std::printf("events: %llu", static_cast<unsigned long long>(events));
    if (bad)
        std::printf("  (unparseable lines: %llu)",
                    static_cast<unsigned long long>(bad));
    std::printf("\n");
    if (events) {
        std::printf("cycles: %llu .. %llu\n",
                    static_cast<unsigned long long>(min_cycle),
                    static_cast<unsigned long long>(max_cycle));
        std::printf("transactions: %zu\n", txns.size());
        std::printf("by kind:\n");
        for (const auto &[k, n] : by_kind)
            std::printf("  %-12s %llu\n", k.c_str(),
                        static_cast<unsigned long long>(n));
        std::printf("by component:\n");
        for (const auto &[c, n] : by_comp)
            std::printf("  %-12s %llu\n", c.c_str(),
                        static_cast<unsigned long long>(n));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: trace_tool gen|info|replay|sim|inspect ...\n");
        return 2;
    }
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    if (!std::strcmp(argv[1], "info"))
        return cmdInfo(argc, argv);
    if (!std::strcmp(argv[1], "replay"))
        return cmdReplay(argc, argv);
    if (!std::strcmp(argv[1], "sim"))
        return cmdSim(argc, argv);
    if (!std::strcmp(argv[1], "inspect"))
        return cmdInspect(argc, argv);
    std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
    return 2;
}
