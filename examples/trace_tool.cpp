/**
 * @file
 * Trace utility: generate reproducible access traces from the synthetic
 * application profiles, inspect them, and replay them on any system
 * configuration — the workflow for bit-identical experiment repeats or
 * for feeding external traces to the simulator.
 *
 * The `sim` and `inspect` subcommands drive the observability layer:
 * `sim` runs a workload with the coherence tracer, interval sampler and
 * latency profiler attached and writes the full artefact set (Chrome
 * trace, JSONL trace, interval CSV/JSON, v2 run report); `inspect`
 * summarises a JSONL trace. `compare` is the perf-regression gate: it
 * diffs two run reports (or directories of them) pair-wise by config
 * fingerprint + workload and fails when a gated metric grew beyond its
 * noise threshold.
 *
 * Exit codes (shared by every subcommand):
 *   0  success (for `compare`: no regression)
 *   1  runtime failure (I/O, malformed trace)
 *   2  usage error (unknown subcommand / missing operands)
 *   3  a load failure: `compare` report sets, or a `--restore` snapshot
 *   4  `compare` detected a regression
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "obs/compare.hh"
#include "obs/json.hh"
#include "obs/latency.hh"
#include "obs/probes.hh"
#include "obs/report.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/runner.hh"
#include "sim/snapshot.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

using namespace zerodev;

namespace
{

// Exit codes — keep in sync with the file header and docs.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitCompareLoad = 3;
constexpr int kExitRegression = 4;

const char *const kUsage =
    "usage: trace_tool <subcommand> [args]\n"
    "\n"
    "subcommands:\n"
    "  gen <app> <cores> <accesses-per-core> <file>\n"
    "      generate a reproducible access trace\n"
    "  info <file>\n"
    "      summarise a binary access trace\n"
    "  replay <file> [baseline|unbounded|zerodev]\n"
    "      [--snapshot FILE [--every N]] [--restore FILE]\n"
    "      replay a trace on a system configuration. --snapshot writes\n"
    "      zerodev-snapshot-v1 checkpoints every N accesses (a \"{n}\"\n"
    "      in FILE becomes the access count; default N from\n"
    "      ZERODEV_SNAPSHOT_EVERY); --restore resumes bit-identically\n"
    "      from a checkpoint\n"
    "  sim <app> <cores> <accesses-per-core> <outdir>\n"
    "      [baseline|unbounded|zerodev]\n"
    "      run with tracer+sampler+latency profiler attached; writes\n"
    "      trace.json, trace.jsonl, intervals.csv/json, report.json\n"
    "  inspect <trace.jsonl>\n"
    "      summarise a JSONL coherence trace\n"
    "  compare <baseline> <candidate> [--json <file>] [--markdown <file>]\n"
    "      diff run reports (files or directories) by config fingerprint\n"
    "      + workload; prints a markdown table and a JSON verdict\n"
    "\n"
    "exit codes: 0 ok/no regression, 1 runtime failure, 2 usage error,\n"
    "            3 compare/snapshot load failure, 4 regression detected\n";

int
usage(const char *why = nullptr)
{
    if (why)
        std::fprintf(stderr, "trace_tool: %s\n", why);
    std::fputs(kUsage, stderr);
    return kExitUsage;
}

bool
wantsHelp(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h"))
            return true;
    }
    return false;
}

/** Strict decimal parse; nullopt on garbage, sign or overflow. */
std::optional<std::uint64_t>
parseCount(const char *s)
{
    if (!s || !*s)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || *end != '\0' || s[0] == '-')
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

/** Core-count operand: an integer in [1, kMaxCores * kMaxSockets]. */
std::optional<std::uint32_t>
parseCores(const char *s)
{
    const auto v = parseCount(s);
    if (!v || *v == 0 || *v > kMaxCores * kMaxSockets)
        return std::nullopt;
    return static_cast<std::uint32_t>(*v);
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 6)
        return usage("gen needs <app> <cores> <accesses-per-core> <file>");
    const AppProfile p = profileByName(argv[2]);
    const auto cores = parseCores(argv[3]);
    const auto acc = parseCount(argv[4]);
    if (!cores)
        return usage("gen: <cores> must be a positive core count");
    if (!acc || *acc == 0)
        return usage("gen: <accesses-per-core> must be a positive count");
    const Workload w = p.suite == "cpu2017"
                           ? Workload::rate(p, *cores)
                           : Workload::multiThreaded(p, *cores);

    TraceWriter out(argv[5], *cores);
    std::vector<ThreadGenerator> gens;
    for (std::uint32_t c = 0; c < *cores; ++c)
        gens.push_back(w.makeGenerator(c));
    // Round-robin interleave (replay re-times per core anyway).
    for (std::uint64_t i = 0; i < *acc; ++i) {
        for (std::uint32_t c = 0; c < *cores; ++c)
            out.append({c, gens[c].next()});
    }
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(out.written()), argv[5]);
    return kExitOk;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage("info needs <file>");
    const TraceReader trace = TraceReader::mustLoad(argv[2]);
    std::map<std::uint32_t, std::uint64_t> per_core;
    std::uint64_t loads = 0, stores = 0, ifetches = 0, instructions = 0;
    std::set<BlockAddr> footprint;
    for (const TraceRecord &r : trace.records()) {
        ++per_core[r.core];
        instructions += r.access.gap + 1;
        footprint.insert(r.access.block);
        switch (r.access.type) {
          case AccessType::Load: ++loads; break;
          case AccessType::Store: ++stores; break;
          case AccessType::Ifetch: ++ifetches; break;
        }
    }
    std::printf("cores: %u\nrecords: %zu\ninstructions: %llu\n",
                trace.cores(), trace.records().size(),
                static_cast<unsigned long long>(instructions));
    std::printf("loads: %llu  stores: %llu  ifetches: %llu\n",
                static_cast<unsigned long long>(loads),
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(ifetches));
    std::printf("footprint: %zu blocks (%.1f MB)\n", footprint.size(),
                static_cast<double>(footprint.size()) * 64 / 1048576.0);
    for (const auto &[core, n] : per_core)
        std::printf("  core %u: %llu accesses\n", core,
                    static_cast<unsigned long long>(n));
    return kExitOk;
}

/** nullopt for an unknown organisation name (a usage error). */
std::optional<SystemConfig>
configFor(const char *org)
{
    SystemConfig cfg = makeEightCoreConfig();
    if (!std::strcmp(org, "unbounded")) {
        cfg.dirOrg = DirOrg::Unbounded;
    } else if (!std::strcmp(org, "zerodev")) {
        applyZeroDev(cfg, 0.0);
    } else if (std::strcmp(org, "baseline") != 0) {
        return std::nullopt;
    }
    return cfg;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage("replay needs <file> [org]");
    const char *org = "baseline";
    RunConfig rc;
    for (int i = 3; i < argc; ++i) {
        const std::string_view a = argv[i];
        if (a == "--snapshot" || a == "--restore" || a == "--every") {
            if (i + 1 >= argc)
                return usage("replay: missing value after option");
            if (a == "--snapshot") {
                rc.snapshotPath = argv[++i];
            } else if (a == "--restore") {
                rc.restorePath = argv[++i];
            } else {
                const auto v = parseCount(argv[++i]);
                if (!v || *v == 0)
                    return usage("replay: --every needs a positive count");
                rc.snapshotEvery = *v;
            }
        } else if (a.size() && a[0] != '-') {
            org = argv[i];
        } else {
            return usage("replay: unknown option");
        }
    }
    const auto cfg = configFor(org);
    if (!cfg)
        return usage("replay: org must be baseline|unbounded|zerodev");
    const TraceReader trace = TraceReader::mustLoad(argv[2]);
    CmpSystem sys(*cfg);
    if (trace.cores() > sys.totalCores()) {
        fatal("trace drives %u cores but the %s config has only %u",
              trace.cores(), org, sys.totalCores());
    }

    // Pre-validate the checkpoint under the shared exit contract (the
    // engine itself treats a bad checkpoint as fatal): the container
    // must parse, carry issue-engine state, and match this config's
    // fingerprint. The engine re-reads it when the replay starts.
    if (!rc.restorePath.empty()) {
        Snapshot snap;
        std::string err;
        if (!snap.readFile(rc.restorePath, &err) ||
            !restoreSystemSection(snap, sys, &err)) {
            std::fprintf(stderr, "cannot restore %s: %s\n",
                         rc.restorePath.c_str(), err.c_str());
            return kExitCompareLoad;
        }
        if (!snap.has("runner")) {
            std::fprintf(stderr,
                         "cannot restore %s: snapshot has no runner "
                         "section (not a mid-run checkpoint)\n",
                         rc.restorePath.c_str());
            return kExitCompareLoad;
        }
    }

    const RunResult r = replay(sys, trace, rc);
    std::printf("org: %s\ncycles: %llu\ncore cache misses: %llu\n"
                "traffic bytes: %llu\nDEV invalidations: %llu\n",
                toString(cfg->dirOrg),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.coreCacheMisses),
                static_cast<unsigned long long>(r.trafficBytes),
                static_cast<unsigned long long>(r.devInvalidations));
    obs::maybeWriteRunReport(std::string("trace_replay_") + org, *cfg, r);
    return kExitOk;
}

int
cmdSim(int argc, char **argv)
{
    if (argc < 6) {
        return usage(
            "sim needs <app> <cores> <accesses-per-core> <outdir> [org]");
    }
    const AppProfile p = profileByName(argv[2]);
    const auto cores = parseCores(argv[3]);
    const auto acc = parseCount(argv[4]);
    if (!cores)
        return usage("sim: <cores> must be a positive core count");
    if (!acc || *acc == 0)
        return usage("sim: <accesses-per-core> must be a positive count");
    const std::string outdir = argv[5];
    const char *org = argc > 6 ? argv[6] : "zerodev";

    const auto maybe_cfg = configFor(org);
    if (!maybe_cfg)
        return usage("sim: org must be baseline|unbounded|zerodev");
    const SystemConfig &cfg = *maybe_cfg;
    const Workload w = p.suite == "cpu2017"
                           ? Workload::rate(p, *cores)
                           : Workload::multiThreaded(p, *cores);

    CmpSystem sys(cfg);
    obs::Tracer tracer;
    tracer.setEnabled(true);
    obs::IntervalSampler sampler(10000);
    obs::registerSystemProbes(sampler, sys);
    obs::LatencyProfiler latency;

    RunConfig rc;
    rc.accessesPerCore = *acc;
    rc.tracer = &tracer;
    rc.sampler = &sampler;
    rc.latency = &latency;
    const RunResult r = run(sys, w, rc);

    const bool ok = tracer.writeChromeJson(outdir + "/trace.json") &&
                    tracer.writeJsonl(outdir + "/trace.jsonl") &&
                    sampler.writeCsv(outdir + "/intervals.csv") &&
                    sampler.writeJson(outdir + "/intervals.json") &&
                    obs::writeRunReport(outdir + "/report.json", cfg, r);

    std::printf("org: %s  cycles: %llu  DEVs: %llu\n", toString(cfg.dirOrg),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.devInvalidations));
    std::printf("trace: %llu events recorded, %llu dropped (ring %zu)\n",
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()),
                tracer.capacity());
    std::printf("intervals: %zu samples every %llu cycles\n",
                sampler.samples().size(),
                static_cast<unsigned long long>(sampler.interval()));
    std::printf("latency: %llu transactions attributed\n",
                static_cast<unsigned long long>(latency.transactions()));
    std::printf("%s trace.json trace.jsonl intervals.csv intervals.json "
                "report.json in %s\n",
                ok ? "wrote" : "FAILED writing", outdir.c_str());
    return ok ? kExitOk : kExitRuntime;
}

int
cmdInspect(int argc, char **argv)
{
    if (argc < 3)
        return usage("inspect needs <trace.jsonl>");
    const auto text = obs::readTextFile(argv[2]);
    if (!text) {
        std::fprintf(stderr, "cannot read %s\n", argv[2]);
        return kExitRuntime;
    }

    std::map<std::string, std::uint64_t> by_kind, by_comp;
    std::map<std::uint64_t, std::uint64_t> by_prov;
    std::set<std::uint64_t> txns;
    std::uint64_t events = 0, bad = 0;
    std::uint64_t min_cycle = ~0ull, max_cycle = 0;
    std::size_t pos = 0;
    while (pos < text->size()) {
        std::size_t eol = text->find('\n', pos);
        if (eol == std::string::npos)
            eol = text->size();
        const std::string_view line(text->data() + pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        std::string err;
        const auto v = obs::parseJson(line, &err);
        if (!v || !v->isObject()) {
            ++bad;
            continue;
        }
        ++events;
        ++by_kind[v->str("kind", "?")];
        ++by_comp[v->str("comp", "?")];
        const auto cycle = static_cast<std::uint64_t>(v->num("cycle"));
        min_cycle = std::min(min_cycle, cycle);
        max_cycle = std::max(max_cycle, cycle);
        const auto txn = static_cast<std::uint64_t>(v->num("txn"));
        if (txn)
            txns.insert(txn);
        // "prov" is the v2 eviction-provenance member (the global core
        // whose transaction induced a dev/llc_victim); v1 traces simply
        // have no such member.
        if (v->has("prov"))
            ++by_prov[static_cast<std::uint64_t>(v->num("prov"))];
    }

    std::printf("events: %llu", static_cast<unsigned long long>(events));
    if (bad)
        std::printf("  (unparseable lines: %llu)",
                    static_cast<unsigned long long>(bad));
    std::printf("\n");
    if (events) {
        std::printf("cycles: %llu .. %llu\n",
                    static_cast<unsigned long long>(min_cycle),
                    static_cast<unsigned long long>(max_cycle));
        std::printf("transactions: %zu\n", txns.size());
        std::printf("by kind:\n");
        for (const auto &[k, n] : by_kind)
            std::printf("  %-12s %llu\n", k.c_str(),
                        static_cast<unsigned long long>(n));
        std::printf("by component:\n");
        for (const auto &[c, n] : by_comp)
            std::printf("  %-12s %llu\n", c.c_str(),
                        static_cast<unsigned long long>(n));
        if (!by_prov.empty()) {
            std::printf("evictions by inducing core:\n");
            for (const auto &[core, n] : by_prov)
                std::printf("  core %-6llu %llu\n",
                            static_cast<unsigned long long>(core),
                            static_cast<unsigned long long>(n));
        }
    }
    return kExitOk;
}

int
cmdCompare(int argc, char **argv)
{
    std::string base_path, cand_path, json_path, md_path;
    for (int i = 2; i < argc; ++i) {
        const std::string_view a = argv[i];
        if (a == "--json" || a == "--markdown") {
            if (i + 1 >= argc)
                return usage("compare: missing value after option");
            (a == "--json" ? json_path : md_path) = argv[++i];
        } else if (base_path.empty()) {
            base_path = a;
        } else if (cand_path.empty()) {
            cand_path = a;
        } else {
            return usage("compare takes exactly two report paths");
        }
    }
    if (base_path.empty() || cand_path.empty())
        return usage("compare needs <baseline> <candidate>");

    std::vector<obs::LoadedReport> base, cand;
    std::string err;
    if (!obs::loadReports(base_path, base, &err)) {
        std::fprintf(stderr, "cannot load baseline: %s\n", err.c_str());
        return kExitCompareLoad;
    }
    if (!obs::loadReports(cand_path, cand, &err)) {
        std::fprintf(stderr, "cannot load candidate: %s\n", err.c_str());
        return kExitCompareLoad;
    }

    const obs::CompareResult res = obs::compareReports(base, cand);
    const std::string md = res.markdown();
    const std::string verdict = res.verdictJson();

    std::fputs(md.c_str(), stdout);
    if (!md_path.empty() && !obs::writeTextFile(md_path, md))
        return kExitRuntime;
    if (!json_path.empty()) {
        if (!obs::writeTextFile(json_path, verdict + "\n"))
            return kExitRuntime;
    } else {
        std::printf("\n%s\n", verdict.c_str());
    }
    return res.regression() ? kExitRegression : kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (wantsHelp(argc, argv) || !std::strcmp(argv[1], "help")) {
        std::fputs(kUsage, stdout);
        return kExitOk;
    }
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    if (!std::strcmp(argv[1], "info"))
        return cmdInfo(argc, argv);
    if (!std::strcmp(argv[1], "replay"))
        return cmdReplay(argc, argv);
    if (!std::strcmp(argv[1], "sim"))
        return cmdSim(argc, argv);
    if (!std::strcmp(argv[1], "inspect"))
        return cmdInspect(argc, argv);
    if (!std::strcmp(argv[1], "compare"))
        return cmdCompare(argc, argv);
    return usage("unknown subcommand");
}
