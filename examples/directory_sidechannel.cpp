/**
 * @file
 * The motivating security scenario (Section I-A2): directory-conflict
 * Prime+Probe. An attacker primes a sparse directory set with its own
 * blocks; a victim access that maps to the same set evicts one of the
 * attacker's entries, which invalidates the attacker's cached copy — a
 * DEV the attacker can time on its next access. The victim's secret
 * (which directory set it touched) leaks through the attacker's misses.
 *
 * Under ZeroDEV the victim's allocation goes to the LLC instead of
 * evicting a live entry: the attacker's probe sees nothing, for either
 * secret value — the core caches are isolated from directory evictions.
 *
 * This is a defensive demonstration of the vulnerability the paper sets
 * out to close, on a deliberately tiny directory so one access suffices.
 *
 * It is the two-minute narrative version. The measured version — many
 * trials, channel-capacity / bit-error-rate estimates, the full config
 * cross product, and a CI-gated verdict — is the side-channel lab:
 * src/attack/scenario.hh + obs/leakage.hh driven by
 * examples/sidechannel_tool.cpp (see docs/SIDECHANNEL.md).
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "workload/workload.hh"

using namespace zerodev;

namespace
{

/** A tiny 2-core system whose directory slices have a single set, so
 *  priming one slice is trivial. */
SystemConfig
attackConfig(bool zerodev)
{
    SystemConfig cfg;
    cfg.name = "attack";
    cfg.coresPerSocket = 2;
    cfg.l1i = CacheConfig{2 * 1024, 8, 3};
    cfg.l1d = CacheConfig{2 * 1024, 8, 3};
    cfg.l2 = CacheConfig{4 * 1024, 8, 8};
    cfg.llcSizeBytes = 64 * 1024;
    cfg.llcBanks = 2;
    cfg.directory.sizeRatio = 0.125; // one 8-way set per slice
    if (zerodev)
        applyZeroDev(cfg, 0.125);
    return cfg;
}

/** Attacker blocks: all map to directory slice 0 (block & 1 == 0). */
BlockAddr
attackerBlock(std::uint32_t i)
{
    return 2ull * 16 * (i + 1); // even -> slice 0
}

/** Victim block in slice `slice`. */
BlockAddr
victimBlock(std::uint32_t slice)
{
    return 4096ull + slice; // parity selects the slice
}

/** Run the Prime+Probe round; returns the number of attacker blocks
 *  that were invalidated (the probe signal). */
int
primeProbe(bool zerodev, bool secret)
{
    CmpSystem sys(attackConfig(zerodev));
    Cycle t = 0;

    // Prime: the attacker (core 0) fills directory slice 0's only set.
    for (std::uint32_t i = 0; i < 8; ++i)
        t = sys.access(0, AccessType::Load, attackerBlock(i), t + 100);

    // Victim (core 1) makes one secret-dependent access: slice 0 if the
    // secret bit is set, slice 1 otherwise.
    t = sys.access(1, AccessType::Load, victimBlock(secret ? 0 : 1),
                   t + 1000);

    // Probe: how many of the attacker's blocks are gone?
    int signal = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
        if (sys.privateCache(0, 0).state(attackerBlock(i)) ==
            MesiState::Invalid) {
            ++signal;
        }
    }
    return signal;
}

} // namespace

int
main()
{
    std::printf("Directory Prime+Probe (Section I-A2 threat model)\n");
    std::printf("--------------------------------------------------\n\n");

    for (const bool zerodev : {false, true}) {
        const int sig1 = primeProbe(zerodev, true);
        const int sig0 = primeProbe(zerodev, false);
        std::printf("%-22s probe signal: secret=1 -> %d, secret=0 -> "
                    "%d   %s\n",
                    zerodev ? "ZeroDEV (no DEVs):" : "baseline sparse:",
                    sig1, sig0,
                    sig1 != sig0 ? "[SECRET LEAKS]" : "[no leak]");
    }

    std::printf("\nThe baseline's directory eviction victim reveals "
                "which directory set\nthe victim touched; ZeroDEV "
                "accommodates the conflicting entry in the\nLLC, so the "
                "attacker's cached blocks are never invalidated.\n");
    return 0;
}
