/**
 * @file
 * Policy explorer: run any application profile under any point of the
 * ZeroDEV design space from the command line and print the full metric
 * set — a convenient way to explore the simulator beyond the paper's
 * figures.
 *
 * Usage:
 *   policy_explorer [app] [org] [policy] [repl] [flavor] [ratio] [acc]
 *     app    : profile name (default canneal); "list" lists them all
 *     org    : baseline | unbounded | zerodev | secdir | mgd
 *     policy : spillall | fpss | fuseall        (zerodev only)
 *     repl   : lru | splru | datalru
 *     flavor : noninclusive | inclusive | epd
 *     ratio  : sparse directory size ratio (e.g. 1.0, 0.125, 0)
 *     acc    : accesses per core (default 50000)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/config.hh"
#include "common/log.hh"
#include "core/cmp_system.hh"
#include "core/invariants.hh"
#include "obs/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace zerodev;

namespace
{

DirOrg
parseOrg(const char *s)
{
    if (!std::strcmp(s, "baseline")) return DirOrg::SparseNru;
    if (!std::strcmp(s, "unbounded")) return DirOrg::Unbounded;
    if (!std::strcmp(s, "zerodev")) return DirOrg::ZeroDev;
    if (!std::strcmp(s, "secdir")) return DirOrg::SecDir;
    if (!std::strcmp(s, "mgd")) return DirOrg::MultiGrain;
    fatal("unknown organisation '%s'", s);
}

DirCachePolicy
parsePolicy(const char *s)
{
    if (!std::strcmp(s, "spillall")) return DirCachePolicy::SpillAll;
    if (!std::strcmp(s, "fpss")) return DirCachePolicy::Fpss;
    if (!std::strcmp(s, "fuseall")) return DirCachePolicy::FuseAll;
    fatal("unknown policy '%s'", s);
}

LlcReplPolicy
parseRepl(const char *s)
{
    if (!std::strcmp(s, "lru")) return LlcReplPolicy::Lru;
    if (!std::strcmp(s, "splru")) return LlcReplPolicy::SpLru;
    if (!std::strcmp(s, "datalru")) return LlcReplPolicy::DataLru;
    fatal("unknown replacement policy '%s'", s);
}

LlcFlavor
parseFlavor(const char *s)
{
    if (!std::strcmp(s, "noninclusive")) return LlcFlavor::NonInclusive;
    if (!std::strcmp(s, "inclusive")) return LlcFlavor::Inclusive;
    if (!std::strcmp(s, "epd")) return LlcFlavor::Epd;
    fatal("unknown LLC flavor '%s'", s);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "canneal";
    if (app == "list") {
        for (const auto &suite : suiteNames()) {
            std::printf("%s:", suite.c_str());
            for (const auto &p : suiteProfiles(suite))
                std::printf(" %s", p.name.c_str());
            std::printf("\n");
        }
        return 0;
    }

    SystemConfig cfg = makeEightCoreConfig();
    cfg.dirOrg = argc > 2 ? parseOrg(argv[2]) : DirOrg::ZeroDev;
    cfg.dirCachePolicy =
        argc > 3 ? parsePolicy(argv[3]) : DirCachePolicy::Fpss;
    cfg.llcReplPolicy =
        argc > 4 ? parseRepl(argv[4]) : LlcReplPolicy::DataLru;
    cfg.llcFlavor =
        argc > 5 ? parseFlavor(argv[5]) : LlcFlavor::NonInclusive;
    cfg.directory.sizeRatio = argc > 6 ? std::atof(argv[6]) : 0.0;
    const std::uint64_t acc =
        argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 50000;

    if (cfg.dirOrg == DirOrg::ZeroDev) {
        cfg.directory.replacementDisabled = true;
    } else {
        cfg.dirCachePolicy = DirCachePolicy::None;
        if (cfg.directory.sizeRatio == 0.0)
            cfg.directory.sizeRatio = 1.0;
    }

    const AppProfile profile = profileByName(app);
    const Workload w = profile.suite == "cpu2017"
                           ? Workload::rate(profile, 8)
                           : Workload::multiThreaded(profile, 8);

    std::printf("app=%s org=%s policy=%s repl=%s flavor=%s ratio=%.4g "
                "acc=%llu\n\n",
                app.c_str(), toString(cfg.dirOrg),
                toString(cfg.dirCachePolicy),
                toString(cfg.llcReplPolicy), toString(cfg.llcFlavor),
                cfg.directory.sizeRatio,
                static_cast<unsigned long long>(acc));

    CmpSystem sys(cfg);
    RunConfig rc;
    rc.accessesPerCore = acc;
    const RunResult r = run(sys, w, rc);

    std::printf("%s\n", r.system.toString().c_str());
    std::printf("cycles = %llu\ninstructions = %llu\nIPC(core0) = %.3f\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instructions),
                r.ipc(0));

    const auto violations = checkInvariants(sys);
    if (violations.empty()) {
        std::printf("\ninvariants: all hold\n");
    } else {
        for (const auto &v : violations)
            std::printf("VIOLATION %s: %s\n", v.rule.c_str(),
                        v.detail.c_str());
    }
    obs::maybeWriteRunReport("policy_explorer_" + app, cfg, r);
    return violations.empty() ? 0 : 1;
}
