/**
 * @file
 * Quickstart: build the paper's 8-core CMP (Table I), run a PARSEC-style
 * workload on the 1x sparse-directory baseline and on ZeroDEV with no
 * sparse directory at all, and compare the numbers that matter —
 * execution cycles, core cache misses, interconnect traffic, and
 * directory eviction victims (DEVs).
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [app-name] [accesses-per-core]
 */

#include <cstdio>
#include <cstdlib>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "core/invariants.hh"
#include "obs/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace zerodev;

int
main(int argc, char **argv)
{
    const std::string app = argc > 1 ? argv[1] : "canneal";
    const std::uint64_t accesses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;

    const AppProfile profile = profileByName(app);
    const Workload workload =
        profile.suite == "cpu2017" ? Workload::rate(profile, 8)
                                   : Workload::multiThreaded(profile, 8);
    RunConfig rc;
    rc.accessesPerCore = accesses;

    std::printf("workload: %s (%s), %u threads, %llu accesses/core\n\n",
                profile.name.c_str(), profile.suite.c_str(),
                workload.threadCount(),
                static_cast<unsigned long long>(accesses));

    // --- Baseline: 1x sparse directory, NRU replacement -------------
    SystemConfig base_cfg = makeEightCoreConfig();
    CmpSystem base_sys(base_cfg);
    const RunResult base = run(base_sys, workload, rc);

    // --- ZeroDEV: no sparse directory, FPSS caching, dataLRU --------
    SystemConfig zdev_cfg = makeEightCoreConfig();
    applyZeroDev(zdev_cfg, /*dir_ratio=*/0.0);
    CmpSystem zdev_sys(zdev_cfg);
    const RunResult zdev = run(zdev_sys, workload, rc);
    assertInvariants(zdev_sys); // the protocol state is consistent

    Table t({"metric", "baseline 1x", "ZeroDEV NoDir"});
    t.addRow("cycles", {static_cast<double>(base.cycles),
                        static_cast<double>(zdev.cycles)}, 0);
    t.addRow("core cache misses",
             {static_cast<double>(base.coreCacheMisses),
              static_cast<double>(zdev.coreCacheMisses)}, 0);
    t.addRow("interconnect bytes",
             {static_cast<double>(base.trafficBytes),
              static_cast<double>(zdev.trafficBytes)}, 0);
    t.addRow("DEV invalidations",
             {static_cast<double>(base.devInvalidations),
              static_cast<double>(zdev.devInvalidations)}, 0);
    t.addRow("dir entries in LLC (peak)",
             {0.0, zdev.system.get("s0.llc.peak_de_lines")}, 0);
    t.print();

    std::printf("\nspeedup of ZeroDEV over baseline: %.3f\n",
                speedup(base, zdev));
    std::printf("ZeroDEV delivered %llu DEVs (the design guarantee is "
                "zero).\n",
                static_cast<unsigned long long>(zdev.devInvalidations));

    // With ZERODEV_REPORT_DIR set, leave machine-readable reports too.
    obs::maybeWriteRunReport("quickstart_baseline", base_cfg, base);
    obs::maybeWriteRunReport("quickstart_zerodev", zdev_cfg, zdev);
    return 0;
}
