# Empty dependencies file for fig26_mgd.
# This may be replaced when dependencies are built.
