file(REMOVE_RECURSE
  "CMakeFiles/fig26_mgd.dir/fig26_mgd.cc.o"
  "CMakeFiles/fig26_mgd.dir/fig26_mgd.cc.o.d"
  "fig26_mgd"
  "fig26_mgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_mgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
