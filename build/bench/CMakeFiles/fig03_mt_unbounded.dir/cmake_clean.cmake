file(REMOVE_RECURSE
  "CMakeFiles/fig03_mt_unbounded.dir/fig03_mt_unbounded.cc.o"
  "CMakeFiles/fig03_mt_unbounded.dir/fig03_mt_unbounded.cc.o.d"
  "fig03_mt_unbounded"
  "fig03_mt_unbounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_mt_unbounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
