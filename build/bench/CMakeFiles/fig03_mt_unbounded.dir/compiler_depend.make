# Empty compiler generated dependencies file for fig03_mt_unbounded.
# This may be replaced when dependencies are built.
