# Empty dependencies file for ablation_socketdir.
# This may be replaced when dependencies are built.
