file(REMOVE_RECURSE
  "CMakeFiles/ablation_socketdir.dir/ablation_socketdir.cc.o"
  "CMakeFiles/ablation_socketdir.dir/ablation_socketdir.cc.o.d"
  "ablation_socketdir"
  "ablation_socketdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_socketdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
