file(REMOVE_RECURSE
  "CMakeFiles/fig04_dir_size.dir/fig04_dir_size.cc.o"
  "CMakeFiles/fig04_dir_size.dir/fig04_dir_size.cc.o.d"
  "fig04_dir_size"
  "fig04_dir_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dir_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
