# Empty dependencies file for fig04_dir_size.
# This may be replaced when dependencies are built.
