file(REMOVE_RECURSE
  "CMakeFiles/fig18_replacement.dir/fig18_replacement.cc.o"
  "CMakeFiles/fig18_replacement.dir/fig18_replacement.cc.o.d"
  "fig18_replacement"
  "fig18_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
