# Empty dependencies file for fig18_replacement.
# This may be replaced when dependencies are built.
