# Empty compiler generated dependencies file for energy_model.
# This may be replaced when dependencies are built.
