file(REMOVE_RECURSE
  "CMakeFiles/energy_model.dir/energy_model.cc.o"
  "CMakeFiles/energy_model.dir/energy_model.cc.o.d"
  "energy_model"
  "energy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
