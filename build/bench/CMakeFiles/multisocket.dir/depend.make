# Empty dependencies file for multisocket.
# This may be replaced when dependencies are built.
