file(REMOVE_RECURSE
  "CMakeFiles/multisocket.dir/multisocket.cc.o"
  "CMakeFiles/multisocket.dir/multisocket.cc.o.d"
  "multisocket"
  "multisocket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
