file(REMOVE_RECURSE
  "CMakeFiles/fig05_occupancy.dir/fig05_occupancy.cc.o"
  "CMakeFiles/fig05_occupancy.dir/fig05_occupancy.cc.o.d"
  "fig05_occupancy"
  "fig05_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
