# Empty compiler generated dependencies file for fig05_occupancy.
# This may be replaced when dependencies are built.
