# Empty dependencies file for fig19_parsec.
# This may be replaced when dependencies are built.
