file(REMOVE_RECURSE
  "CMakeFiles/fig19_parsec.dir/fig19_parsec.cc.o"
  "CMakeFiles/fig19_parsec.dir/fig19_parsec.cc.o.d"
  "fig19_parsec"
  "fig19_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
