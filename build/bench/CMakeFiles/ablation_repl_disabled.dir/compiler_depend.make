# Empty compiler generated dependencies file for ablation_repl_disabled.
# This may be replaced when dependencies are built.
