file(REMOVE_RECURSE
  "CMakeFiles/ablation_repl_disabled.dir/ablation_repl_disabled.cc.o"
  "CMakeFiles/ablation_repl_disabled.dir/ablation_repl_disabled.cc.o.d"
  "ablation_repl_disabled"
  "ablation_repl_disabled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repl_disabled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
