# Empty compiler generated dependencies file for fig22_llc_capacity.
# This may be replaced when dependencies are built.
