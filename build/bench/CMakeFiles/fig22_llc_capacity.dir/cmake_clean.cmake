file(REMOVE_RECURSE
  "CMakeFiles/fig22_llc_capacity.dir/fig22_llc_capacity.cc.o"
  "CMakeFiles/fig22_llc_capacity.dir/fig22_llc_capacity.cc.o.d"
  "fig22_llc_capacity"
  "fig22_llc_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_llc_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
