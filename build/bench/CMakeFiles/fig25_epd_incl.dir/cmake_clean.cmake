file(REMOVE_RECURSE
  "CMakeFiles/fig25_epd_incl.dir/fig25_epd_incl.cc.o"
  "CMakeFiles/fig25_epd_incl.dir/fig25_epd_incl.cc.o.d"
  "fig25_epd_incl"
  "fig25_epd_incl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_epd_incl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
