# Empty compiler generated dependencies file for fig25_epd_incl.
# This may be replaced when dependencies are built.
