file(REMOVE_RECURSE
  "CMakeFiles/fig23_het.dir/fig23_het.cc.o"
  "CMakeFiles/fig23_het.dir/fig23_het.cc.o.d"
  "fig23_het"
  "fig23_het.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_het.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
