# Empty compiler generated dependencies file for fig23_het.
# This may be replaced when dependencies are built.
