file(REMOVE_RECURSE
  "CMakeFiles/fig20_mt_suites.dir/fig20_mt_suites.cc.o"
  "CMakeFiles/fig20_mt_suites.dir/fig20_mt_suites.cc.o.d"
  "fig20_mt_suites"
  "fig20_mt_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_mt_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
