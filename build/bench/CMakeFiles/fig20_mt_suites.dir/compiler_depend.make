# Empty compiler generated dependencies file for fig20_mt_suites.
# This may be replaced when dependencies are built.
