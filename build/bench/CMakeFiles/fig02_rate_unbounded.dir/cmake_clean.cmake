file(REMOVE_RECURSE
  "CMakeFiles/fig02_rate_unbounded.dir/fig02_rate_unbounded.cc.o"
  "CMakeFiles/fig02_rate_unbounded.dir/fig02_rate_unbounded.cc.o.d"
  "fig02_rate_unbounded"
  "fig02_rate_unbounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_rate_unbounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
