# Empty compiler generated dependencies file for fig02_rate_unbounded.
# This may be replaced when dependencies are built.
