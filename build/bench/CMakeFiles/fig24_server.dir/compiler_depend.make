# Empty compiler generated dependencies file for fig24_server.
# This may be replaced when dependencies are built.
