file(REMOVE_RECURSE
  "CMakeFiles/fig24_server.dir/fig24_server.cc.o"
  "CMakeFiles/fig24_server.dir/fig24_server.cc.o.d"
  "fig24_server"
  "fig24_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
