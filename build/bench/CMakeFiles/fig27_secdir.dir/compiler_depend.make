# Empty compiler generated dependencies file for fig27_secdir.
# This may be replaced when dependencies are built.
