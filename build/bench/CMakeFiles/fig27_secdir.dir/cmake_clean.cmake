file(REMOVE_RECURSE
  "CMakeFiles/fig27_secdir.dir/fig27_secdir.cc.o"
  "CMakeFiles/fig27_secdir.dir/fig27_secdir.cc.o.d"
  "fig27_secdir"
  "fig27_secdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_secdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
