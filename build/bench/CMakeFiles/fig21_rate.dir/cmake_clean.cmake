file(REMOVE_RECURSE
  "CMakeFiles/fig21_rate.dir/fig21_rate.cc.o"
  "CMakeFiles/fig21_rate.dir/fig21_rate.cc.o.d"
  "fig21_rate"
  "fig21_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
