# Empty compiler generated dependencies file for fig21_rate.
# This may be replaced when dependencies are built.
