file(REMOVE_RECURSE
  "CMakeFiles/fig17_policy.dir/fig17_policy.cc.o"
  "CMakeFiles/fig17_policy.dir/fig17_policy.cc.o.d"
  "fig17_policy"
  "fig17_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
