# Empty compiler generated dependencies file for fig17_policy.
# This may be replaced when dependencies are built.
