# Empty dependencies file for fig06_llc_ways.
# This may be replaced when dependencies are built.
