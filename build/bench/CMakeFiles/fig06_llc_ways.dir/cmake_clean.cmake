file(REMOVE_RECURSE
  "CMakeFiles/fig06_llc_ways.dir/fig06_llc_ways.cc.o"
  "CMakeFiles/fig06_llc_ways.dir/fig06_llc_ways.cc.o.d"
  "fig06_llc_ways"
  "fig06_llc_ways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_llc_ways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
