# Empty dependencies file for zerodev.
# This may be replaced when dependencies are built.
