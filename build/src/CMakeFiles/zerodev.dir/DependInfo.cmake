
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/zerodev.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/zerodev.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/cache/replacement.cc.o.d"
  "/root/repo/src/coherence/llc_bank.cc" "src/CMakeFiles/zerodev.dir/coherence/llc_bank.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/coherence/llc_bank.cc.o.d"
  "/root/repo/src/coherence/private_cache.cc" "src/CMakeFiles/zerodev.dir/coherence/private_cache.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/coherence/private_cache.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/zerodev.dir/common/config.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/common/config.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/zerodev.dir/common/log.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/zerodev.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/common/stats.cc.o.d"
  "/root/repo/src/core/cmp_access.cc" "src/CMakeFiles/zerodev.dir/core/cmp_access.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/cmp_access.cc.o.d"
  "/root/repo/src/core/cmp_evict.cc" "src/CMakeFiles/zerodev.dir/core/cmp_evict.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/cmp_evict.cc.o.d"
  "/root/repo/src/core/cmp_system.cc" "src/CMakeFiles/zerodev.dir/core/cmp_system.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/cmp_system.cc.o.d"
  "/root/repo/src/core/energy_model.cc" "src/CMakeFiles/zerodev.dir/core/energy_model.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/energy_model.cc.o.d"
  "/root/repo/src/core/invariants.cc" "src/CMakeFiles/zerodev.dir/core/invariants.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/invariants.cc.o.d"
  "/root/repo/src/core/multi_socket.cc" "src/CMakeFiles/zerodev.dir/core/multi_socket.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/multi_socket.cc.o.d"
  "/root/repo/src/core/socket_dir.cc" "src/CMakeFiles/zerodev.dir/core/socket_dir.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/socket_dir.cc.o.d"
  "/root/repo/src/core/zerodev_policies.cc" "src/CMakeFiles/zerodev.dir/core/zerodev_policies.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/core/zerodev_policies.cc.o.d"
  "/root/repo/src/directory/dir_formats.cc" "src/CMakeFiles/zerodev.dir/directory/dir_formats.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/directory/dir_formats.cc.o.d"
  "/root/repo/src/directory/dir_org.cc" "src/CMakeFiles/zerodev.dir/directory/dir_org.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/directory/dir_org.cc.o.d"
  "/root/repo/src/directory/mgd.cc" "src/CMakeFiles/zerodev.dir/directory/mgd.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/directory/mgd.cc.o.d"
  "/root/repo/src/directory/secdir.cc" "src/CMakeFiles/zerodev.dir/directory/secdir.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/directory/secdir.cc.o.d"
  "/root/repo/src/directory/sharer_formats.cc" "src/CMakeFiles/zerodev.dir/directory/sharer_formats.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/directory/sharer_formats.cc.o.d"
  "/root/repo/src/directory/sparse_directory.cc" "src/CMakeFiles/zerodev.dir/directory/sparse_directory.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/directory/sparse_directory.cc.o.d"
  "/root/repo/src/interconnect/mesh.cc" "src/CMakeFiles/zerodev.dir/interconnect/mesh.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/interconnect/mesh.cc.o.d"
  "/root/repo/src/interconnect/message.cc" "src/CMakeFiles/zerodev.dir/interconnect/message.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/interconnect/message.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/zerodev.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_store.cc" "src/CMakeFiles/zerodev.dir/mem/memory_store.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/mem/memory_store.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/zerodev.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/zerodev.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/sim/runner.cc.o.d"
  "/root/repo/src/workload/access_pattern.cc" "src/CMakeFiles/zerodev.dir/workload/access_pattern.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/workload/access_pattern.cc.o.d"
  "/root/repo/src/workload/app_profiles.cc" "src/CMakeFiles/zerodev.dir/workload/app_profiles.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/workload/app_profiles.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/zerodev.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/zerodev.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/zerodev.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
