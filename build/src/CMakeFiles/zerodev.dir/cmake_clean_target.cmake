file(REMOVE_RECURSE
  "libzerodev.a"
)
