# Empty dependencies file for test_protocol_zerodev.
# This may be replaced when dependencies are built.
