file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_zerodev.dir/test_protocol_zerodev.cc.o"
  "CMakeFiles/test_protocol_zerodev.dir/test_protocol_zerodev.cc.o.d"
  "test_protocol_zerodev"
  "test_protocol_zerodev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_zerodev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
