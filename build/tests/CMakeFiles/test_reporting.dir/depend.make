# Empty dependencies file for test_reporting.
# This may be replaced when dependencies are built.
