file(REMOVE_RECURSE
  "CMakeFiles/test_reporting.dir/test_reporting.cc.o"
  "CMakeFiles/test_reporting.dir/test_reporting.cc.o.d"
  "test_reporting"
  "test_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
