# Empty dependencies file for test_errors.
# This may be replaced when dependencies are built.
