file(REMOVE_RECURSE
  "CMakeFiles/test_errors.dir/test_errors.cc.o"
  "CMakeFiles/test_errors.dir/test_errors.cc.o.d"
  "test_errors"
  "test_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
