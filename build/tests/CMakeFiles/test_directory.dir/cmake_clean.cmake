file(REMOVE_RECURSE
  "CMakeFiles/test_directory.dir/test_directory.cc.o"
  "CMakeFiles/test_directory.dir/test_directory.cc.o.d"
  "test_directory"
  "test_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
