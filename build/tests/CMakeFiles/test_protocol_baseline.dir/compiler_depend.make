# Empty compiler generated dependencies file for test_protocol_baseline.
# This may be replaced when dependencies are built.
