file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_baseline.dir/test_protocol_baseline.cc.o"
  "CMakeFiles/test_protocol_baseline.dir/test_protocol_baseline.cc.o.d"
  "test_protocol_baseline"
  "test_protocol_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
