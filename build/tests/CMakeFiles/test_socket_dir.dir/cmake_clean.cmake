file(REMOVE_RECURSE
  "CMakeFiles/test_socket_dir.dir/test_socket_dir.cc.o"
  "CMakeFiles/test_socket_dir.dir/test_socket_dir.cc.o.d"
  "test_socket_dir"
  "test_socket_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socket_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
