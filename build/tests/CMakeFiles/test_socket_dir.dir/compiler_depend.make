# Empty compiler generated dependencies file for test_socket_dir.
# This may be replaced when dependencies are built.
