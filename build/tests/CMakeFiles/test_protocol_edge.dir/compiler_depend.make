# Empty compiler generated dependencies file for test_protocol_edge.
# This may be replaced when dependencies are built.
