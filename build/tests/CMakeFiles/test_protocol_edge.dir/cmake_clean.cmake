file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_edge.dir/test_protocol_edge.cc.o"
  "CMakeFiles/test_protocol_edge.dir/test_protocol_edge.cc.o.d"
  "test_protocol_edge"
  "test_protocol_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
