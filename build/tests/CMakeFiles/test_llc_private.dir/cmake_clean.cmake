file(REMOVE_RECURSE
  "CMakeFiles/test_llc_private.dir/test_llc_private.cc.o"
  "CMakeFiles/test_llc_private.dir/test_llc_private.cc.o.d"
  "test_llc_private"
  "test_llc_private.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llc_private.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
