# Empty dependencies file for test_llc_private.
# This may be replaced when dependencies are built.
