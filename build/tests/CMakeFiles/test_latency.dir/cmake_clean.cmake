file(REMOVE_RECURSE
  "CMakeFiles/test_latency.dir/test_latency.cc.o"
  "CMakeFiles/test_latency.dir/test_latency.cc.o.d"
  "test_latency"
  "test_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
