file(REMOVE_RECURSE
  "CMakeFiles/test_sharer_formats.dir/test_sharer_formats.cc.o"
  "CMakeFiles/test_sharer_formats.dir/test_sharer_formats.cc.o.d"
  "test_sharer_formats"
  "test_sharer_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharer_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
