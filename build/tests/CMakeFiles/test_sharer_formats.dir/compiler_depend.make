# Empty compiler generated dependencies file for test_sharer_formats.
# This may be replaced when dependencies are built.
