file(REMOVE_RECURSE
  "CMakeFiles/test_cache_array.dir/test_cache_array.cc.o"
  "CMakeFiles/test_cache_array.dir/test_cache_array.cc.o.d"
  "test_cache_array"
  "test_cache_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
