# Empty dependencies file for test_regions.
# This may be replaced when dependencies are built.
