file(REMOVE_RECURSE
  "CMakeFiles/test_regions.dir/test_regions.cc.o"
  "CMakeFiles/test_regions.dir/test_regions.cc.o.d"
  "test_regions"
  "test_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
