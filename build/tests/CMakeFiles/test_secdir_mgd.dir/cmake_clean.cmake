file(REMOVE_RECURSE
  "CMakeFiles/test_secdir_mgd.dir/test_secdir_mgd.cc.o"
  "CMakeFiles/test_secdir_mgd.dir/test_secdir_mgd.cc.o.d"
  "test_secdir_mgd"
  "test_secdir_mgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secdir_mgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
