# Empty compiler generated dependencies file for test_secdir_mgd.
# This may be replaced when dependencies are built.
