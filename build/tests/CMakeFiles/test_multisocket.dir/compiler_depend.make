# Empty compiler generated dependencies file for test_multisocket.
# This may be replaced when dependencies are built.
