file(REMOVE_RECURSE
  "CMakeFiles/test_multisocket.dir/test_multisocket.cc.o"
  "CMakeFiles/test_multisocket.dir/test_multisocket.cc.o.d"
  "test_multisocket"
  "test_multisocket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multisocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
