file(REMOVE_RECURSE
  "CMakeFiles/test_interconnect.dir/test_interconnect.cc.o"
  "CMakeFiles/test_interconnect.dir/test_interconnect.cc.o.d"
  "test_interconnect"
  "test_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
