# Empty compiler generated dependencies file for test_interconnect.
# This may be replaced when dependencies are built.
