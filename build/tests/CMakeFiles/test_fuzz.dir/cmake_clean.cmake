file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz.dir/test_fuzz.cc.o"
  "CMakeFiles/test_fuzz.dir/test_fuzz.cc.o.d"
  "test_fuzz"
  "test_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
