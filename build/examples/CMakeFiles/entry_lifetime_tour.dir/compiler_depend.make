# Empty compiler generated dependencies file for entry_lifetime_tour.
# This may be replaced when dependencies are built.
