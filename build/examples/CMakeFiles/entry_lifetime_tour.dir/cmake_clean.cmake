file(REMOVE_RECURSE
  "CMakeFiles/entry_lifetime_tour.dir/entry_lifetime_tour.cpp.o"
  "CMakeFiles/entry_lifetime_tour.dir/entry_lifetime_tour.cpp.o.d"
  "entry_lifetime_tour"
  "entry_lifetime_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entry_lifetime_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
