# Empty compiler generated dependencies file for directory_sidechannel.
# This may be replaced when dependencies are built.
