file(REMOVE_RECURSE
  "CMakeFiles/directory_sidechannel.dir/directory_sidechannel.cpp.o"
  "CMakeFiles/directory_sidechannel.dir/directory_sidechannel.cpp.o.d"
  "directory_sidechannel"
  "directory_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
