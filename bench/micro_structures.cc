/**
 * @file
 * Google-benchmark microbenchmarks of the hot simulator structures:
 * sparse directory lookup/allocate, LLC probe with two tag matches,
 * private cache access, the bit-level entry encoders and the end-to-end
 * per-access cost of the protocol engine.
 */

#include <benchmark/benchmark.h>

#include "common/config.hh"
#include "core/cmp_system.hh"
#include "directory/dir_formats.hh"
#include "directory/sparse_directory.hh"
#include "workload/workload.hh"

namespace
{

using namespace zerodev;

void
BM_SparseDirFindHit(benchmark::State &state)
{
    SparseDirectory dir(8, 512, 8, false);
    for (BlockAddr b = 0; b < 1024; ++b)
        dir.alloc(b).entry->makeOwned(0);
    BlockAddr b = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir.find(b));
        b = (b + 1) % 1024;
    }
}
BENCHMARK(BM_SparseDirFindHit);

void
BM_SparseDirAllocFree(benchmark::State &state)
{
    SparseDirectory dir(8, 512, 8, false);
    BlockAddr b = 0;
    for (auto _ : state) {
        DirAllocResult r = dir.alloc(b);
        r.entry->makeOwned(0);
        dir.free(b);
        b = (b + 97) % (1u << 20);
    }
}
BENCHMARK(BM_SparseDirAllocFree);

void
BM_LlcProbeTwoTag(benchmark::State &state)
{
    SystemConfig cfg = makeEightCoreConfig();
    Llc llc(cfg);
    DirEntry e;
    e.addSharer(0);
    for (BlockAddr b = 0; b < 256; ++b) {
        llc.allocate(b, LlcLineKind::Data, false, DirEntry{});
        llc.allocate(b, LlcLineKind::SpilledDe, false, e);
    }
    BlockAddr b = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(llc.probe(b));
        b = (b + 1) % 256;
    }
}
BENCHMARK(BM_LlcProbeTwoTag);

void
BM_EncodeDecodeSpilled(benchmark::State &state)
{
    DirEntry e;
    e.addSharer(3);
    e.addSharer(97);
    for (auto _ : state) {
        const BlockImage img = encodeSpilled(e, 128);
        benchmark::DoNotOptimize(decodeSpilled(img, 128));
    }
}
BENCHMARK(BM_EncodeDecodeSpilled);

void
BM_ProtocolAccessBaseline(benchmark::State &state)
{
    SystemConfig cfg = makeEightCoreConfig();
    CmpSystem sys(cfg);
    const Workload w = Workload::rate(profileByName("gcc.pp"), 8);
    ThreadGenerator gen = w.makeGenerator(0);
    Cycle t = 0;
    for (auto _ : state) {
        const MemAccess a = gen.next();
        t = sys.access(0, a.type, a.block, t + a.gap);
    }
}
BENCHMARK(BM_ProtocolAccessBaseline);

void
BM_ProtocolAccessZeroDev(benchmark::State &state)
{
    SystemConfig cfg = makeEightCoreConfig();
    applyZeroDev(cfg, 0.0);
    CmpSystem sys(cfg);
    const Workload w = Workload::rate(profileByName("gcc.pp"), 8);
    ThreadGenerator gen = w.makeGenerator(0);
    Cycle t = 0;
    for (auto _ : state) {
        const MemAccess a = gen.next();
        t = sys.access(0, a.type, a.block, t + a.gap);
    }
}
BENCHMARK(BM_ProtocolAccessZeroDev);

} // namespace

BENCHMARK_MAIN();
