/**
 * @file
 * Host simulation-throughput micro bench: how many simulated memory
 * accesses per host second the protocol engine sustains under each
 * directory policy (baseline sparse, ZeroDEV SpillAll / FPSS /
 * FuseAll). The Maccesses/s figures are informational — they depend on
 * the host — but the trajectory line this emits (via runWorkload when
 * ZERODEV_REPORT_DIR is set) makes sim-rate regressions visible in
 * BENCH_micro_simrate.json across commits.
 *
 * Runs execute serially on purpose: per-run wall time is the metric,
 * and concurrent runs would contend for cores and skew it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"
#include "core/cmp_system.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main()
{
    banner("micro_simrate",
           "host simulation throughput (Maccesses/s) per policy");

    const std::uint64_t accesses = accessesPerCore(20000);

    struct Point
    {
        const char *name;
        SystemConfig cfg;
    };
    const auto zdevWith = [](DirCachePolicy pol) {
        SystemConfig cfg = zdevEightCore(0.0);
        cfg.dirCachePolicy = pol;
        return cfg;
    };
    const std::vector<Point> points = {
        {"Baseline", makeEightCoreConfig()},
        {"SpillAll", zdevWith(DirCachePolicy::SpillAll)},
        {"FPSS", zdevWith(DirCachePolicy::Fpss)},
        {"FuseAll", zdevWith(DirCachePolicy::FuseAll)},
    };

    const AppProfile p = profileByName("canneal");
    const Workload w = workloadFor(p, 8);

    Table t({"policy", "cycles", "accesses", "wall (s)", "Maccesses/s"});
    for (const Point &pt : points) {
        const RunResult r = runWorkload(pt.cfg, w, accesses);
        t.addRow({pt.name, std::to_string(r.cycles),
                  std::to_string(r.accesses), fmt(r.wallSeconds, 3),
                  fmt(r.maccessesPerSecond(), 2)});
    }
    t.print();
    return 0;
}
