/**
 * @file
 * Host simulation-throughput micro bench: how many simulated memory
 * accesses per host second the protocol engine sustains under each
 * directory policy (baseline sparse, ZeroDEV SpillAll / FPSS /
 * FuseAll). The Maccesses/s figures are informational — they depend on
 * the host — but the trajectory line this emits (via runWorkload when
 * ZERODEV_REPORT_DIR is set) makes sim-rate regressions visible in
 * BENCH_micro_simrate.json across commits; each run carries its policy
 * name as the trajectory "label".
 *
 * Gate mode (`--gate <floor.json>`): after measuring, compare each
 * policy's rate against the checked-in floor
 * (bench/baselines/simrate.json) minus the file's tolerance, and exit
 * with the standard regression contract — 0 = all policies at or above
 * the effective floor, 4 = sim-rate regression, 2 = unusable floor
 * file. Floors are deliberately conservative (CI runners vary widely in
 * single-thread speed); the gate exists to catch structural
 * regressions, not percent-level noise.
 *
 * Runs execute serially on purpose: per-run wall time is the metric,
 * and concurrent runs would contend for cores and skew it.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/config.hh"
#include "core/cmp_system.hh"
#include "obs/json.hh"

using namespace zerodev;
using namespace zerodev::bench;

namespace
{

struct Point
{
    const char *name;
    SystemConfig cfg;
    double rate = 0.0;
};

/** Gate every measured policy rate against the floor file. Returns the
 *  process exit code (0 / 2 / 4 per the header contract). */
int
gate(const std::string &floor_path, const std::vector<Point> &points)
{
    const auto text = obs::readTextFile(floor_path);
    if (!text) {
        std::fprintf(stderr, "gate: cannot read %s\n",
                     floor_path.c_str());
        return 2;
    }
    std::string err;
    const auto doc = obs::parseJson(*text, &err);
    if (!doc || !doc->isObject()) {
        std::fprintf(stderr, "gate: %s: %s\n", floor_path.c_str(),
                     err.empty() ? "not a JSON object" : err.c_str());
        return 2;
    }
    if (doc->str("schema") != "zerodev-simrate-floor-v1") {
        std::fprintf(stderr, "gate: %s: unexpected schema \"%s\"\n",
                     floor_path.c_str(), doc->str("schema").c_str());
        return 2;
    }
    const double tolerance = doc->num("tolerance", 0.15);
    const obs::JsonValue *floors = doc->find("floors");
    if (!floors || !floors->isObject()) {
        std::fprintf(stderr, "gate: %s: no \"floors\" object\n",
                     floor_path.c_str());
        return 2;
    }

    bool fail = false;
    for (const Point &pt : points) {
        const obs::JsonValue *f = floors->find(pt.name);
        if (!f || !f->isNumber()) {
            std::fprintf(stderr, "gate: %s: no floor for policy %s\n",
                         floor_path.c_str(), pt.name);
            return 2;
        }
        const double eff = f->number * (1.0 - tolerance);
        const bool ok = pt.rate >= eff;
        fail = fail || !ok;
        std::printf("gate: %-8s floor %.2f (-%2.0f%% => %.2f) "
                    "measured %.2f Maccesses/s  %s\n",
                    pt.name, f->number, tolerance * 100.0, eff, pt.rate,
                    ok ? "ok" : "REGRESSED");
    }
    if (fail) {
        std::printf("gate: FAIL — sim-rate below the checked-in floor "
                    "(%s)\n",
                    floor_path.c_str());
        return 4;
    }
    std::printf("gate: PASS — every policy at or above its floor\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string floor_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
            floor_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--gate <simrate-floor.json>]\n",
                         argv[0]);
            return 2;
        }
    }

    banner("micro_simrate",
           "host simulation throughput (Maccesses/s) per policy");

    const std::uint64_t accesses = accessesPerCore(20000);

    const auto zdevWith = [](DirCachePolicy pol) {
        SystemConfig cfg = zdevEightCore(0.0);
        cfg.dirCachePolicy = pol;
        return cfg;
    };
    std::vector<Point> points = {
        {"Baseline", makeEightCoreConfig(), 0.0},
        {"SpillAll", zdevWith(DirCachePolicy::SpillAll), 0.0},
        {"FPSS", zdevWith(DirCachePolicy::Fpss), 0.0},
        {"FuseAll", zdevWith(DirCachePolicy::FuseAll), 0.0},
    };

    const AppProfile p = profileByName("canneal");
    const Workload w = workloadFor(p, 8);

    Table t({"policy", "cycles", "accesses", "wall (s)", "Maccesses/s"});
    for (Point &pt : points) {
        BenchReporter::instance().setNextRunLabel(pt.name);
        const RunResult r = runWorkload(pt.cfg, w, accesses);
        pt.rate = r.maccessesPerSecond();
        t.addRow({pt.name, std::to_string(r.cycles),
                  std::to_string(r.accesses), fmt(r.wallSeconds, 3),
                  fmt(pt.rate, 2)});
    }
    t.print();

    if (!floor_path.empty())
        return gate(floor_path, points);
    return 0;
}
