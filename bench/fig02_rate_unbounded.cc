/**
 * @file
 * Figure 2: normalized interconnect traffic, core cache misses and
 * weighted speedup of the 8-way rate (homogeneous) multi-programmed SPEC
 * CPU 2017 workloads when going from the baseline 1x sparse directory to
 * an unlimited-capacity directory. The paper reports ~10% traffic and
 * ~15% core-cache-miss savings but <1% average speedup, with xalancbmk
 * the outlier (3.2 MPKI saved, ~4% speedup).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main()
{
    banner("Figure 2",
           "1x vs unbounded directory, SPEC CPU 2017 rate workloads");
    const std::uint64_t acc = accessesPerCore();

    SystemConfig base_cfg = makeEightCoreConfig();
    base_cfg.dirOrg = DirOrg::SparseNru;
    SystemConfig unb_cfg = makeEightCoreConfig();
    unb_cfg.dirOrg = DirOrg::Unbounded;

    Table t({"app", "traffic", "core-miss", "wspeedup", "mpki-saved"});
    std::vector<double> traffic, miss, ws;
    double max_mpki_saved = 0;
    std::string max_app;

    const std::vector<AppProfile> apps = cpu2017Profiles();
    std::vector<SweepJob> jobs;
    for (const AppProfile &p : apps) {
        const Workload w = workloadFor(p, 8);
        jobs.push_back({base_cfg, w, acc});
        jobs.push_back({unb_cfg, w, acc});
    }
    const std::vector<RunResult> results = runSweep(jobs);

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const AppProfile &p = apps[a];
        const RunResult &base = results[2 * a];
        const RunResult &test = results[2 * a + 1];
        const double tr = ratio(static_cast<double>(test.trafficBytes),
                                static_cast<double>(base.trafficBytes));
        const double ms =
            ratio(static_cast<double>(test.coreCacheMisses),
                  static_cast<double>(base.coreCacheMisses));
        const double sp = weightedSpeedup(base, test);
        const double mpki_saved =
            (static_cast<double>(base.coreCacheMisses) -
             static_cast<double>(test.coreCacheMisses)) *
            1000.0 / static_cast<double>(base.instructions);
        traffic.push_back(tr);
        miss.push_back(ms);
        ws.push_back(sp);
        if (mpki_saved > max_mpki_saved) {
            max_mpki_saved = mpki_saved;
            max_app = p.name;
        }
        t.addRow(p.name, {tr, ms, sp, mpki_saved});
    }
    t.addRow("GEOMEAN", {geomean(traffic), geomean(miss), geomean(ws), 0});
    t.print();

    claim(geomean(ws) < 1.03,
          "average rate-mode speedup from an unbounded directory is "
          "small (paper: <1%)");
    claim(geomean(traffic) < 0.99,
          "an unbounded directory saves interconnect traffic (paper: "
          "~10%)");
    claim(geomean(miss) < 0.99,
          "an unbounded directory saves core cache misses (paper: ~15%)");
    claim(max_app == "xalancbmk",
          "xalancbmk saves the most core-cache MPKI (paper: 3.2), got " +
              max_app + " with " + fmt(max_mpki_saved, 2));
    return 0;
}
