/**
 * @file
 * CI smoke sweep: a reduced-access figure sweep whose v2 run reports
 * feed the perf-regression gate. CI runs this with ZERODEV_REPORT_DIR
 * pointing at a scratch directory and then executes
 *
 *   trace_tool compare bench/baselines/smoke <scratch>
 *
 * against the checked-in baseline reports; any gated metric growing
 * past its noise threshold fails the job. Regenerate the baseline by
 * running this target with ZERODEV_REPORT_DIR=bench/baselines/smoke
 * (after deleting the old contents) whenever a perf change is
 * intentional.
 *
 * The access count is fixed — not ZERODEV_ACCESSES-overridable — so the
 * checked-in baseline and the CI run always simulate the same work.
 *
 * Runs execute on the parallel sweep engine: --jobs N (or ZERODEV_JOBS)
 * picks the worker count, defaulting to the host's hardware threads.
 * Simulated output is bit-identical at any job count; only the wall
 * time and the informational Maccesses/s sim-rate depend on the host.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hh"
#include "common/config.hh"
#include "common/parallel.hh"
#include "core/cmp_system.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            setJobs(static_cast<unsigned>(std::atoi(argv[++i])));
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            setJobs(static_cast<unsigned>(std::atoi(argv[i] + 7)));
        } else {
            std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
            return 2;
        }
    }

    banner("smoke", "reduced-access sweep for the CI perf gate");

    // Fixed work: the baseline on disk was generated with exactly this.
    constexpr std::uint64_t kAccesses = 3000;

    // One multi-threaded app and one rate app, on the three directory
    // organisations the figures sweep — small enough for CI, wide
    // enough to cover the baseline, unbounded, and ZeroDEV protocols.
    const char *apps[] = {"canneal", "mcf"};

    const std::vector<std::function<SystemConfig()>> configs = {
        [] { return makeEightCoreConfig(); },
        [] {
            SystemConfig cfg = makeEightCoreConfig();
            cfg.dirOrg = DirOrg::Unbounded;
            return cfg;
        },
        [] { return zdevEightCore(0.0); },
    };

    std::vector<SweepJob> jobs;
    for (const char *app : apps) {
        const AppProfile p = profileByName(app);
        const Workload w = workloadFor(p, 8);
        for (const auto &make_cfg : configs)
            jobs.push_back({make_cfg(), w, kAccesses});
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<RunResult> results = runSweep(jobs);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    Table t({"app", "config", "cycles", "misses", "DEVs"});
    std::uint64_t total_accesses = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const RunResult &r = results[i];
        total_accesses += r.accesses;
        t.setRow(i, {profileByName(apps[i / configs.size()]).name,
                     toString(jobs[i].cfg.dirOrg),
                     std::to_string(r.cycles),
                     std::to_string(r.coreCacheMisses),
                     std::to_string(r.devInvalidations)});
    }
    t.print();

    std::printf("\nsweep: %zu runs, %.2f s wall, %.2f Maccesses/s "
                "(jobs=%u)\n",
                jobs.size(), wall,
                wall > 0.0 ? static_cast<double>(total_accesses) / wall /
                                 1e6
                           : 0.0,
                zerodev::jobs());
    return 0;
}
