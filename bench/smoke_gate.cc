/**
 * @file
 * CI smoke sweep: a reduced-access figure sweep whose v2 run reports
 * feed the perf-regression gate. CI runs this with ZERODEV_REPORT_DIR
 * pointing at a scratch directory and then executes
 *
 *   trace_tool compare bench/baselines/smoke <scratch>
 *
 * against the checked-in baseline reports; any gated metric growing
 * past its noise threshold fails the job. Regenerate the baseline by
 * running this target with ZERODEV_REPORT_DIR=bench/baselines/smoke
 * (after deleting the old contents) whenever a perf change is
 * intentional.
 *
 * The access count is fixed — not ZERODEV_ACCESSES-overridable — so the
 * checked-in baseline and the CI run always simulate the same work.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"
#include "core/cmp_system.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main()
{
    banner("smoke", "reduced-access sweep for the CI perf gate");

    // Fixed work: the baseline on disk was generated with exactly this.
    constexpr std::uint64_t kAccesses = 3000;

    // One multi-threaded app and one rate app, on the three directory
    // organisations the figures sweep — small enough for CI, wide
    // enough to cover the baseline, unbounded, and ZeroDEV protocols.
    const char *apps[] = {"canneal", "mcf"};

    const std::vector<std::function<SystemConfig()>> configs = {
        [] { return makeEightCoreConfig(); },
        [] {
            SystemConfig cfg = makeEightCoreConfig();
            cfg.dirOrg = DirOrg::Unbounded;
            return cfg;
        },
        [] { return zdevEightCore(0.0); },
    };

    Table t({"app", "config", "cycles", "misses", "DEVs"});
    for (const char *app : apps) {
        const AppProfile p = profileByName(app);
        const Workload w = workloadFor(p, 8);
        for (const auto &make_cfg : configs) {
            const SystemConfig cfg = make_cfg();
            const RunResult r = runWorkload(cfg, w, kAccesses);
            t.addRow({p.name, toString(cfg.dirOrg),
                      std::to_string(r.cycles),
                      std::to_string(r.coreCacheMisses),
                      std::to_string(r.devInvalidations)});
        }
    }
    t.print();
    return 0;
}
