/**
 * @file
 * Figure 23: the 36 heterogeneous 8-way multi-programmed SPEC CPU 2017
 * mixes (W1..W36, equal representation of every application), normalized
 * weighted speedup of ZeroDEV with 1x, 1/8x and no sparse directory vs
 * the 1x baseline. The paper: individual slowdowns at most ~2%, averages
 * within ~1% for all three configurations.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main()
{
    banner("Figure 23", "heterogeneous multi-programmed mixes W1..W36");
    const std::uint64_t acc = accessesPerCore();

    const SystemConfig base_cfg = makeEightCoreConfig();
    const double ratios[] = {1.0, 0.125, 0.0};

    Table t({"mix", "1x", "1/8x", "NoDir"});
    std::vector<double> c1, c8, c0;
    for (const Workload &w : Workload::hetMixes(36, 8)) {
        const RunResult base = runWorkload(base_cfg, w, acc);
        std::vector<double> row;
        for (double r : ratios) {
            const RunResult test =
                runWorkload(zdevEightCore(r), w, acc);
            row.push_back(weightedSpeedup(base, test));
        }
        c1.push_back(row[0]);
        c8.push_back(row[1]);
        c0.push_back(row[2]);
        t.addRow(w.name(), row);
    }
    t.addRow("GEOMEAN", {geomean(c1), geomean(c8), geomean(c0)});
    t.print();

    claim(geomean(c0) > 0.97,
          "ZeroDEV NoDir within a few percent on het mixes (paper: "
          "~1%), got " + fmt(geomean(c0)));
    claim(minOf(c0) > 0.93,
          "worst het-mix slowdown is bounded (paper: <=2%), got " +
              fmt(minOf(c0)));
    return 0;
}
