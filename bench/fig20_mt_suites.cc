/**
 * @file
 * Figure 20: ZeroDEV (FPSS + dataLRU) on SPLASH2X, SPEC OMP and FFTW
 * with 1x, 1/8x and no sparse directory, normalized to the 1x baseline.
 * The paper: within ~1% on average; lu_ncb, raytrace, water_nsquared
 * and 330.art see 1-4% slowdowns.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main()
{
    banner("Figure 20",
           "ZeroDEV on SPLASH2X / SPEC OMP / FFTW (1x, 1/8x, NoDir)");
    const std::uint64_t acc = accessesPerCore();

    auto base_cfg = [] { return makeEightCoreConfig(); };
    std::vector<std::function<SystemConfig()>> tests = {
        [] { return zdevEightCore(1.0); },
        [] { return zdevEightCore(0.125); },
        [] { return zdevEightCore(0.0); },
    };

    Table t({"app", "1x", "1/8x", "NoDir"});
    std::vector<double> all0;
    double worst0 = 1.0;
    std::string worst_app;
    for (const char *suite : {"splash2x", "specomp", "fftw"}) {
        const auto rows = sweepSuite(suite, base_cfg, tests, acc);
        for (const auto &r : rows) {
            t.addRow(r.app, r.values);
            all0.push_back(r.values[2]);
            if (r.values[2] < worst0) {
                worst0 = r.values[2];
                worst_app = r.app;
            }
        }
        const auto g = columnGeomeans(rows);
        t.addRow(std::string(suite) + "-GEOMEAN", g);
    }
    t.print();

    claim(geomean(all0) > 0.96,
          "ZeroDEV NoDir stays within a few percent of baseline on the "
          "multi-threaded suites (paper: ~1%), got " +
              fmt(geomean(all0)));
    claim(worst0 > 0.90,
          "the worst multi-threaded slowdown is bounded (paper: 1-4%), "
          "worst " + worst_app + " at " + fmt(worst0));
    return 0;
}
