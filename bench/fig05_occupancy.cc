/**
 * @file
 * Figure 5: projected LLC occupancy of spilled directory entries — the
 * number of directory entries that do not fit in the 1x sparse directory
 * (set conflicts) and must be accommodated in the LLC, assuming one
 * entry per LLC block. Measured as the peak number of DE-bearing LLC
 * lines under ZeroDEV with a 1x replacement-disabled directory and the
 * SpillAll policy. The paper reports a maximum of ~12% of LLC capacity
 * (less than two ways of the 16-way LLC) and per-suite averages <=10%.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"
#include "core/cmp_system.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main()
{
    banner("Figure 5", "projected LLC occupancy of spilled entries");
    const std::uint64_t acc = accessesPerCore();

    Table t({"suite", "max-of-max %", "avg-of-max %", "max app"});
    double global_max = 0.0;

    for (const char *suite :
         {"parsec", "splash2x", "specomp", "fftw", "cpu2017"}) {
        double suite_max = 0.0, sum = 0.0;
        std::string max_app;
        std::size_t n = 0;
        for (const AppProfile &p : suiteProfiles(suite)) {
            SystemConfig cfg = makeEightCoreConfig();
            applyZeroDev(cfg, 1.0);
            cfg.dirCachePolicy = DirCachePolicy::SpillAll;
            CmpSystem sys(cfg);
            const Workload w = workloadFor(p, 8);
            RunConfig rc;
            rc.accessesPerCore = acc;
            run(sys, w, rc);
            const double pct =
                100.0 *
                static_cast<double>(sys.llc(0).stats().peakDeLines) /
                static_cast<double>(cfg.llcBlocks());
            sum += pct;
            ++n;
            if (pct > suite_max) {
                suite_max = pct;
                max_app = p.name;
            }
        }
        t.addRow(suite + std::string(" (") + max_app + ")",
                 {suite_max, sum / static_cast<double>(n)}, 2);
        global_max = std::max(global_max, suite_max);
    }
    t.print();

    claim(global_max < 25.0,
          "peak spilled-entry occupancy is a small fraction of the LLC "
          "(paper: ~12% max), got " + fmt(global_max, 1) + "%");
    return 0;
}
