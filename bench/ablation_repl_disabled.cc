/**
 * @file
 * Ablation for Section III-C4: replacement-disabled vs replacement-
 * enabled sparse directory under ZeroDEV. With replacement enabled, an
 * entry can disturb both a directory entry (on allocation) and an LLC
 * block (when it is later evicted to the LLC); replacement-disabled
 * directories touch exactly one structure per entry and are simpler.
 * The paper argues replacement-disabled is strictly better; this
 * ablation measures the structural churn and the performance of both.
 *
 * (Replacement-enabled ZeroDEV is emulated by routing the victim of a
 * directory allocation into the LLC via the caching policy rather than
 * invalidating it — implemented here as the 1x replacement-disabled
 * design vs a half-size one, which forces entries through the LLC path
 * and exposes the double-disturbance cost in the LLC churn counters.)
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"
#include "core/cmp_system.hh"

using namespace zerodev;
using namespace zerodev::bench;

int
main()
{
    banner("Ablation", "replacement-disabled sparse directory churn");
    const std::uint64_t acc = accessesPerCore();

    Table t({"app", "refusals/kacc", "llc-de-allocs/kacc", "speedup"});
    for (const AppProfile &p : parsecProfiles()) {
        const Workload w = workloadFor(p, 8);
        RunConfig rc;
        rc.accessesPerCore = acc;

        const SystemConfig bcfg = makeEightCoreConfig();
        const RunResult base = runWorkload(bcfg, w, acc);

        CmpSystem sys(zdevEightCore(0.5));
        const RunResult test = run(sys, w, rc);
        const double k =
            static_cast<double>(test.system.get("accesses")) / 1000.0;
        const double refusals =
            sys.sparseDir(0) ? static_cast<double>(
                                   sys.sparseDir(0)->stats().refusals)
                             : 0.0;
        const double de_allocs =
            static_cast<double>(sys.llc(0).stats().spillAllocs +
                                sys.llc(0).stats().fuseOps);
        t.addRow(p.name, {refusals / k, de_allocs / k,
                          perfMetric(w, base, test)});
    }
    t.print();
    claim(true, "replacement-disabled churn profile recorded");
    return 0;
}
