/**
 * @file
 * Section V "Energy Expense": CACTI-style estimate of the sparse
 * directory + LLC energy. ZeroDEV without a sparse directory saves the
 * directory's leakage and lookup energy but pays extra LLC data-array
 * accesses for the cached entries; the paper reports ~9% average saving
 * for the (directory + LLC) pair.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/config.hh"
#include "core/cmp_system.hh"
#include "core/energy_model.hh"

using namespace zerodev;
using namespace zerodev::bench;

namespace
{

EnergyActivity
activityOf(const CmpSystem &sys, const RunResult &r, bool zerodev)
{
    EnergyActivity act;
    const LlcStats &l = sys.llc(0).stats();
    act.llcTagLookups = l.lookups;
    act.llcDataReads = l.dataHits;
    act.llcDataWrites = l.dataEvictions + l.dirtyWritebacks +
                        l.spillAllocs + l.fuseOps;
    act.llcDeAccesses = l.deUpdates;
    act.cycles = r.cycles;
    if (!zerodev) {
        // Every uncore request looks up the directory; updates write it.
        act.dirLookups = l.lookups;
        act.dirWrites = l.lookups / 2;
    }
    return act;
}

} // namespace

int
main()
{
    banner("Energy", "sparse directory + LLC energy (CACTI-lite)");
    const std::uint64_t acc = accessesPerCore();

    Table t({"suite", "base (mJ)", "ZeroDEV-NoDir (mJ)", "saving %"});
    double total_saving = 0.0;
    int n = 0;
    std::vector<std::string> suites = mainSuites();
    suites.push_back("server"); // 32 MB LLC, 128 cores (paper text)
    for (const std::string &suite : suites) {
        const bool server = suite == "server";
        double e_base_sum = 0.0, e_zdev_sum = 0.0;
        for (const AppProfile &p : suiteProfiles(suite)) {
            const std::uint32_t cores = server ? 128 : 8;
            const Workload w = workloadFor(p, cores);
            RunConfig rc;
            rc.accessesPerCore = server ? serverAccessesPerCore() : acc;

            const SystemConfig bcfg =
                server ? makeServerConfig() : makeEightCoreConfig();
            CmpSystem bsys(bcfg);
            const RunResult br = run(bsys, w, rc);
            e_base_sum +=
                energyOfRun(bcfg, activityOf(bsys, br, false)).totalMj();

            SystemConfig zcfg =
                server ? makeServerConfig() : makeEightCoreConfig();
            applyZeroDev(zcfg, 0.0);
            CmpSystem zsys(zcfg);
            const RunResult zr = run(zsys, w, rc);
            e_zdev_sum +=
                energyOfRun(zcfg, activityOf(zsys, zr, true)).totalMj();
        }
        const double saving = 100.0 * (1.0 - e_zdev_sum / e_base_sum);
        t.addRow(suite, {e_base_sum, e_zdev_sum, saving}, 2);
        total_saving += saving;
        ++n;
    }
    t.print();
    const double avg = total_saving / n;
    std::printf("average (dir+LLC) energy saving: %.1f%%\n", avg);

    claim(avg > 0.0 && avg < 25.0,
          "ZeroDEV-NoDir saves (dir+LLC) energy on average (paper: ~9%; "
          "the saving concentrates in the server-class configuration, "
          "whose directory is proportionally largest), got " +
              fmt(avg, 1) + "%");
    return 0;
}
