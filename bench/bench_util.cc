#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "common/parallel.hh"
#include "core/cmp_system.hh"
#include "obs/json.hh"
#include "obs/latency.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"

namespace zerodev::bench
{

namespace
{

/** Cooperative stop flag threaded into every run (setSweepStop). */
const std::atomic<bool> *g_sweepStop = nullptr;

std::uint64_t
envOverride(const char *name, std::uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v)
        return dflt;
    const unsigned long long parsed = std::strtoull(v, nullptr, 10);
    return parsed == 0 ? dflt : parsed;
}

std::string
reportDir()
{
    // Hardened: creates the directory recursively, exits 2 with a clear
    // message when it cannot be created or written.
    return obs::outputDirFromEnv("ZERODEV_REPORT_DIR");
}

/**
 * Checkpoint path of run @p key (ZERODEV_SNAPSHOT_DIR; empty = resume
 * disabled). Keyed by the figure slug and the deterministic submission
 * index, so a re-invocation after a crash computes the same path, finds
 * the interrupted run's file, and resumes it; @p kind separates the
 * runWorkload() and runSweep() numbering spaces.
 */
std::string
snapshotPathFor(const char *kind, std::size_t key)
{
    const std::string dir =
        obs::outputDirFromEnv("ZERODEV_SNAPSHOT_DIR");
    if (dir.empty())
        return {};
    char name[48];
    std::snprintf(name, sizeof(name), "_%s%04zu.ckpt", kind, key);
    return dir + "/" + BenchReporter::instance().figure() + name;
}

/**
 * Register one telemetry job for a run about to execute (nullptr when
 * ZERODEV_TELEMETRY_DIR is unset). @p key matches the run's report slot
 * when reporting is on, so "<figure>_runNNNN" names the same run in
 * status.json and in the v2 report file — one source of truth.
 */
obs::TelemetryJob *
beginTelemetryJob(const SystemConfig &cfg, const Workload &w,
                  std::uint64_t accesses, std::size_t key)
{
    obs::TelemetrySink *sink = obs::TelemetrySink::fromEnv();
    if (!sink)
        return nullptr;
    const std::string figure = BenchReporter::instance().figure();
    char name[32];
    std::snprintf(name, sizeof(name), "_run%04zu", key);
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(
                      obs::configFingerprint(cfg)));
    const std::uint64_t cores =
        std::min<std::uint64_t>(cfg.coresPerSocket * cfg.sockets,
                                w.threadCount());
    return sink->beginJob(figure + name, figure, fp, accesses * cores);
}

/**
 * One run on a fresh system. Latency attribution costs a few array adds
 * per transaction, so it is only attached when the reports that would
 * carry it are actually written — and never when checkpointing is on:
 * profiler state is not part of a snapshot, so a resumed run with a
 * profiler attached would report tail-only attribution and break the
 * bit-identical-resume contract for the written reports.
 */
RunResult
runOne(const SystemConfig &cfg, const Workload &w, std::uint64_t accesses,
       bool with_latency, const std::string &ckpt = {},
       obs::TelemetryJob *tj = nullptr)
{
    CmpSystem sys(cfg);
    RunConfig rc;
    rc.accessesPerCore = accesses;
    rc.telemetry = tj;
    rc.stopRequest = g_sweepStop;
    obs::LatencyProfiler latency;
    if (with_latency && ckpt.empty())
        rc.latency = &latency;
    if (!ckpt.empty()) {
        rc.snapshotPath = ckpt;
        if (std::FILE *f = std::fopen(ckpt.c_str(), "rb")) {
            std::fclose(f);
            rc.restorePath = ckpt;
        }
    }
    RunResult res = run(sys, w, rc);
    if (res.interrupted) {
        // Preempted: the checkpoint (when one is configured) stays on
        // disk for the resuming invocation; partial metrics are not a
        // completed run, so nothing is reported.
        if (tj) {
            obs::JobCompletion c;
            c.workload = res.workload;
            c.failed = true;
            c.error = "interrupted";
            tj->complete(c);
        }
        return res;
    }
    if (!ckpt.empty())
        std::remove(ckpt.c_str());
    if (tj)
        tj->complete(obs::completionOf(res));
    return res;
}

} // namespace

BenchReporter &
BenchReporter::instance()
{
    static BenchReporter reporter;
    return reporter;
}

bool
BenchReporter::enabled() const
{
    return !reportDir().empty();
}

void
BenchReporter::setFigure(const std::string &slug)
{
    std::lock_guard<std::mutex> lock(mu_);
    slug_ = slug;
}

std::string
BenchReporter::figure() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return slug_;
}

std::size_t
BenchReporter::reserveSlot()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!atexitRegistered_) {
        atexitRegistered_ = true;
        std::atexit([] { BenchReporter::instance().flush(); });
    }
    const std::size_t slot = runs_.size();
    runs_.emplace_back();
    runs_.back().label = std::move(pendingLabel_);
    pendingLabel_.clear();
    return slot;
}

void
BenchReporter::setNextRunLabel(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mu_);
    pendingLabel_ = label;
}

void
BenchReporter::record(std::size_t slot, const SystemConfig &cfg,
                      const RunResult &res)
{
    const std::string dir = reportDir();
    if (dir.empty())
        return;

    // One v2 report per run, numbered by reservation (= submission)
    // order; the compare tool re-pairs reports by config fingerprint +
    // workload, so the numbering only has to be stable, which slot
    // reservation guarantees under any worker interleaving.
    char name[32];
    std::snprintf(name, sizeof(name), "_run%04zu", slot);
    obs::writeRunReport(dir + "/" + figure() + name + ".json", cfg, res);

    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(
                      obs::configFingerprint(cfg)));

    std::lock_guard<std::mutex> lock(mu_);
    if (slot >= runs_.size()) {
        std::fprintf(stderr,
                     "BenchReporter: record() of unreserved slot %zu\n",
                     slot);
        return;
    }
    TrajectoryRun &r = runs_[slot];
    r.fingerprint = fp;
    r.workload = res.workload;
    r.cycles = res.cycles;
    r.coreCacheMisses = res.coreCacheMisses;
    r.trafficBytes = res.trafficBytes;
    r.devInvalidations = res.devInvalidations;
    r.maccessesPerSecond = res.maccessesPerSecond();
    r.recorded = true;
}

/**
 * Append one JSON line to "<dir>/BENCH_<figure>.json" (schema
 * "zerodev-bench-trajectory-v1"): the commit (ZERODEV_COMMIT
 * environment variable, when set) plus every recorded run's fingerprint
 * and key metrics — including the informational host sim-rate.
 * Append-mode so successive commits accumulate a perf history in one
 * file per figure.
 */
void
BenchReporter::flush()
{
    const std::string dir = reportDir();
    if (dir.empty())
        return;

    std::lock_guard<std::mutex> lock(mu_);
    bool any = false;
    for (const TrajectoryRun &r : runs_)
        any = any || (r.recorded && !r.flushed);
    if (!any)
        return;

    obs::JsonWriter w;
    w.beginObject();
    obs::stampArtifact(w, "zerodev-bench-trajectory-v1");
    w.field("figure", slug_);
    w.key("runs").beginArray();
    for (TrajectoryRun &r : runs_) {
        if (!r.recorded || r.flushed)
            continue;
        r.flushed = true;
        w.beginObject();
        if (!r.label.empty())
            w.field("label", r.label);
        w.field("fingerprint", r.fingerprint);
        w.field("workload", r.workload);
        w.field("cycles", r.cycles);
        w.field("coreCacheMisses", r.coreCacheMisses);
        w.field("trafficBytes", r.trafficBytes);
        w.field("devInvalidations", r.devInvalidations);
        w.field("maccessesPerSecond", r.maccessesPerSecond);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    obs::appendTextFile(dir + "/BENCH_" + slug_ + ".json",
                        w.str() + "\n");
}

void
BenchReporter::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    runs_.clear();
    pendingLabel_.clear();
}

void
setSweepStop(const std::atomic<bool> *stop)
{
    g_sweepStop = stop;
}

std::uint64_t
accessesPerCore(std::uint64_t dflt)
{
    return envOverride("ZERODEV_ACCESSES", dflt);
}

std::uint64_t
serverAccessesPerCore(std::uint64_t dflt)
{
    return envOverride("ZERODEV_SERVER_ACCESSES", dflt);
}

RunResult
runWorkload(const SystemConfig &cfg, const Workload &w,
            std::uint64_t accesses)
{
    // Deterministic per-call numbering: benches call this from the main
    // thread in program order, so call N gets checkpoint "one000N" on
    // every (re-)invocation.
    static std::size_t calls = 0;
    const std::size_t call = calls++;
    const std::string ckpt = snapshotPathFor("one", call);

    BenchReporter &rep = BenchReporter::instance();
    if (!rep.enabled()) {
        return runOne(cfg, w, accesses, false, ckpt,
                      beginTelemetryJob(cfg, w, accesses, call));
    }
    const std::size_t slot = rep.reserveSlot();
    RunResult res = runOne(cfg, w, accesses, true, ckpt,
                           beginTelemetryJob(cfg, w, accesses, slot));
    if (!res.interrupted)
        rep.record(slot, cfg, res);
    return res;
}

std::vector<RunResult>
runSweep(const std::vector<SweepJob> &jobs)
{
    BenchReporter &rep = BenchReporter::instance();
    const bool report = rep.enabled();

    // Reserve report slots up front, in job order: the serial numbering
    // the compare/trajectory consumers expect, however workers race.
    std::vector<std::size_t> slots(jobs.size(), 0);
    if (report) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            slots[i] = rep.reserveSlot();
    }

    // Telemetry jobs registered up front too (from this thread, in job
    // order), so status.json lists the whole sweep before work starts.
    std::vector<obs::TelemetryJob *> tjs(jobs.size(), nullptr);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        tjs[i] = beginTelemetryJob(jobs[i].cfg, jobs[i].w,
                                   jobs[i].accesses,
                                   report ? slots[i] : i);
    }

    return parallelMap(jobs.size(), [&](std::size_t i) {
        const SweepJob &j = jobs[i];
        RunResult res = runOne(j.cfg, j.w, j.accesses, report,
                               snapshotPathFor("job", i), tjs[i]);
        if (report && !res.interrupted)
            rep.record(slots[i], j.cfg, res);
        return res;
    });
}

void
runSweep(const std::vector<TaskJob> &jobs)
{
    // Telemetry jobs registered up front from this thread, in task
    // order, mirroring the workload overload. Task names (not slot
    // numbers) key the status entries: a task is not a run report, so
    // there is no runNNNN numbering to match.
    std::vector<obs::TelemetryJob *> tjs(jobs.size(), nullptr);
    if (obs::TelemetrySink *sink = obs::TelemetrySink::fromEnv()) {
        const std::string figure = BenchReporter::instance().figure();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            char fp[32];
            std::snprintf(fp, sizeof(fp), "%016llx",
                          static_cast<unsigned long long>(
                              obs::configFingerprint(jobs[i].cfg)));
            tjs[i] = sink->beginJob(figure + "_" + jobs[i].name, figure,
                                    fp, jobs[i].units);
        }
    }

    parallelMap(jobs.size(), [&](std::size_t i) {
        jobs[i].run(tjs[i]);
        if (tjs[i]) {
            obs::JobCompletion c;
            c.workload = jobs[i].name;
            c.accesses = jobs[i].units;
            tjs[i]->complete(c);
        }
        return 0;
    });
}

Workload
workloadFor(const AppProfile &p, std::uint32_t cores)
{
    if (p.suite == "cpu2017")
        return Workload::rate(p, cores);
    return Workload::multiThreaded(p, cores);
}

double
perfMetric(const Workload &w, const RunResult &base, const RunResult &test)
{
    return w.multiProgrammed() ? weightedSpeedup(base, test)
                               : speedup(base, test);
}

std::vector<SuiteRow>
sweepSuite(const std::string &suite,
           const std::function<SystemConfig()> &base_cfg,
           const std::vector<std::function<SystemConfig()>> &test_cfgs,
           std::uint64_t accesses)
{
    // Materialise the whole (app x config) grid up front — config
    // factories run on this thread, in serial order — then execute the
    // embarrassingly parallel grid in one sweep.
    std::vector<SweepJob> jobs;
    std::vector<std::string> apps;
    for (const AppProfile &p : suiteProfiles(suite)) {
        const SystemConfig bcfg = base_cfg();
        const Workload w =
            workloadFor(p, bcfg.coresPerSocket * bcfg.sockets);
        apps.push_back(p.name);
        jobs.push_back({bcfg, w, accesses});
        for (const auto &make_cfg : test_cfgs)
            jobs.push_back({make_cfg(), w, accesses});
    }

    const std::vector<RunResult> results = runSweep(jobs);

    const std::size_t stride = test_cfgs.size() + 1;
    std::vector<SuiteRow> rows;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const RunResult &base = results[a * stride];
        SuiteRow row;
        row.app = apps[a];
        for (std::size_t t = 0; t < test_cfgs.size(); ++t) {
            row.values.push_back(perfMetric(jobs[a * stride].w, base,
                                            results[a * stride + 1 + t]));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<double>
columnGeomeans(const std::vector<SuiteRow> &rows)
{
    if (rows.empty())
        return {};
    std::vector<double> out;
    for (std::size_t c = 0; c < rows[0].values.size(); ++c) {
        std::vector<double> col;
        col.reserve(rows.size());
        for (const auto &r : rows)
            col.push_back(r.values[c]);
        out.push_back(geomean(col));
    }
    return out;
}

std::vector<double>
columnMins(const std::vector<SuiteRow> &rows)
{
    if (rows.empty())
        return {};
    std::vector<double> out;
    for (std::size_t c = 0; c < rows[0].values.size(); ++c) {
        std::vector<double> col;
        col.reserve(rows.size());
        for (const auto &r : rows)
            col.push_back(r.values[c]);
        out.push_back(minOf(col));
    }
    return out;
}

SystemConfig
zdevEightCore(double ratio)
{
    SystemConfig cfg = makeEightCoreConfig();
    applyZeroDev(cfg, ratio);
    return cfg;
}

SystemConfig
backendEightCore(ProtocolKind protocol, double dir_ratio)
{
    SystemConfig cfg = makeEightCoreConfig();
    cfg.protocol = protocol;
    cfg.name = std::string("eight-core-") + toString(protocol);
    if (protocol == ProtocolKind::PhasePriority)
        cfg.directory.sizeRatio = dir_ratio;
    return cfg;
}

const std::vector<std::string> &
mainSuites()
{
    static const std::vector<std::string> suites{
        "parsec", "splash2x", "specomp", "fftw", "cpu2017"};
    return suites;
}

void
banner(const std::string &figure, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), what.c_str());
    std::printf("==============================================================\n");

    // Remember a filesystem-safe slug of the figure name so run reports
    // accumulated by runWorkload() land in a per-figure file.
    std::string slug;
    for (char c : figure) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        slug += ok ? c : '_';
    }
    if (!slug.empty())
        BenchReporter::instance().setFigure(slug);
}

} // namespace zerodev::bench
